#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Build (release), full test suite, and a warning-free clippy pass over
# every target so solver refactors keep a clean lint baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
