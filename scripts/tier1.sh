#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Build (release), full test suite, a warning-free clippy pass over
# every target, a warning-free rustdoc build (crate docs are part of
# the deliverable), a `--threads 1` smoke run so the sequential
# solver path — the default everywhere — cannot rot while development
# happens against the parallel one, and a sharded `mahjong_cli` smoke
# that checks the telemetry export parses and carries the merge-phase
# counters (in particular `mahjong.hk_runs`, which the signature fast
# path keeps at zero, and `pta.pts_interned`, which is nonzero whenever
# the solver's hash-consing seal sweeps ran). The profiler smoke runs
# `repro --profile` on a
# small two-thread workload and asserts the timeline parses, carries
# per-level records, and attributes ≥90% of the solver wall clock; the
# schema check validates every committed BENCH/PROFILE record. The
# serving smoke saves a luindex@2 snapshot, warm-starts `repro
# --serve-bench` from it, and requires the save/load fingerprints to
# match bit for bit (see SERVING.md).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q
cargo run --release -q -p bench --bin repro -- --exp fig9 --scale 1 --threads 1

# A private scratch dir: `--metrics-json` makes both binaries write a
# BENCH_pta.json sibling and refuse to clobber an existing one, so the
# smokes must not share /tmp with anything.
scratch="$(mktemp -d /tmp/tier1.XXXXXX)"
trap 'rm -rf "$scratch"' EXIT
profile_json="$scratch/tier1_profile.json"
mahjong_metrics="$scratch/tier1_mahjong.jsonl"

cargo run --release -q -p bench --bin repro -- --exp table2 --scale 1 \
    --programs luindex --threads 2 --budget 120 \
    --profile --profile-json "$profile_json" > /dev/null
python3 - "$profile_json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
prof = doc["profile"]
records = prof["records"]
assert records, "profile has no timeline records"
keys = {"run", "wave", "level", "pops", "objects", "words",
        "resolve_ns", "propagate_ns", "merge_ns", "shards", "busy_ns", "idle_ns"}
for rec in records:
    missing = keys - rec.keys()
    assert not missing, f"timeline record missing {sorted(missing)}"
assert any(r["level"] >= 0 for r in records), \
    "no per-level records (only seed/mixed/overhead sentinels)"
wall = doc["main_analysis_secs"]
covered = sum(r["resolve_ns"] + r["propagate_ns"] + r["merge_ns"] for r in records) / 1e9
if wall > 0.05 and prof["records_dropped"] == 0:
    assert covered >= 0.9 * wall, f"timeline covers {covered:.2f}s of {wall:.2f}s wall"
print(f"tier1: profile smoke ok ({len(records)} records, "
      f"{covered:.2f}s/{wall:.2f}s attributed)")
EOF

# Serving smoke (SERVING.md): analyze luindex@2 once and save the
# snapshot, then warm-start a serve bench from it. The canonical
# fingerprint printed on the save and load sides must match bit for
# bit — a snapshot is a perfect stand-in for the analysis — and the
# serve record must be self-consistent.
serve_snap="$scratch/luindex.mjsn"
serve_json="$scratch/BENCH_serve.json"
save_out="$(cargo run --release -q -p bench --bin repro -- \
    --programs luindex --scale 2 --threads 2 --save-snapshot "$serve_snap")"
load_out="$(cargo run --release -q -p bench --bin repro -- \
    --load-snapshot "$serve_snap" --serve-bench --serve-queries 20000 \
    --threads 2 --serve-json "$serve_json")"
save_fp="$(grep -o 'fingerprint 0x[0-9a-f]*' <<<"$save_out")"
load_fp="$(grep -o 'fingerprint 0x[0-9a-f]*' <<<"$load_out")"
if [ -z "$save_fp" ] || [ "$save_fp" != "$load_fp" ]; then
    echo "tier1: snapshot fingerprint mismatch (save: ${save_fp:-none}," \
         "load: ${load_fp:-none})" >&2
    exit 1
fi
python3 - "$serve_json" <<'EOF'
import json, sys

rec = json.load(open(sys.argv[1]))
assert rec["exp"] == "serve" and rec["source"] == "snapshot", rec
classes = ["points_to", "may_alias", "call_targets", "cast_check", "not_found"]
total = sum(rec["classes"][c]["count"] for c in classes)
assert total == rec["queries"], f"class counts {total} != queries {rec['queries']}"
assert rec["qps"] > 0 and rec["warm_start_ms"] > 0, rec
print(f"tier1: serve smoke ok ({rec['qps']:.0f} qps, "
      f"warm start {rec['warm_start_ms']:.1f} ms)")
EOF

python3 scripts/bench_table.py --check

cargo run --release -q -p bench --bin mahjong_cli -- corpus/containers.jir \
    --threads 2 --metrics-json "$mahjong_metrics" > /dev/null
python3 - "$mahjong_metrics" <<'EOF'
import json, sys

counters = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)  # every line must be valid JSON
        if rec.get("type") == "counter":
            counters[rec["name"]] = rec["value"]
assert "mahjong.hk_runs" in counters, f"mahjong.hk_runs missing from {sorted(counters)}"
assert counters["mahjong.hk_runs"] == 0, f"fast path ran HK: {counters['mahjong.hk_runs']}"
assert "pta.pts_interned" in counters, f"pta.pts_interned missing from {sorted(counters)}"
assert counters["pta.pts_interned"] > 0, "solver sealed no points-to sets"
print(f"tier1: mahjong_cli smoke ok ({len(counters)} counters, hk_runs=0, "
      f"pts_interned={counters['pta.pts_interned']})")
EOF
