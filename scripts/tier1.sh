#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Build (release), full test suite, a warning-free clippy pass over
# every target, a warning-free rustdoc build (crate docs are part of
# the deliverable), and a `--threads 1` smoke run so the sequential
# solver path — the default everywhere — cannot rot while development
# happens against the parallel one.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q
cargo run --release -q -p bench --bin repro -- --exp fig9 --scale 1 --threads 1
