#!/usr/bin/env bash
# Tier-1 verification: everything a PR must keep green.
#
#   ./scripts/tier1.sh
#
# Build (release), full test suite, a warning-free clippy pass over
# every target, a warning-free rustdoc build (crate docs are part of
# the deliverable), a `--threads 1` smoke run so the sequential
# solver path — the default everywhere — cannot rot while development
# happens against the parallel one, and a sharded `mahjong_cli` smoke
# that checks the telemetry export parses and carries the merge-phase
# counters (in particular `mahjong.hk_runs`, which the signature fast
# path keeps at zero).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q
cargo run --release -q -p bench --bin repro -- --exp fig9 --scale 1 --threads 1

mahjong_metrics="$(mktemp /tmp/tier1_mahjong.XXXXXX.jsonl)"
trap 'rm -f "$mahjong_metrics"' EXIT
cargo run --release -q -p mahjong --bin mahjong_cli -- corpus/containers.jir \
    --threads 2 --metrics-json "$mahjong_metrics" > /dev/null
python3 - "$mahjong_metrics" <<'EOF'
import json, sys

counters = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)  # every line must be valid JSON
        if rec.get("type") == "counter":
            counters[rec["name"]] = rec["value"]
assert "mahjong.hk_runs" in counters, f"mahjong.hk_runs missing from {sorted(counters)}"
assert counters["mahjong.hk_runs"] == 0, f"fast path ran HK: {counters['mahjong.hk_runs']}"
print(f"tier1: mahjong_cli smoke ok ({len(counters)} counters, hk_runs=0)")
EOF
