#!/usr/bin/env python3
"""Render the committed BENCH_*.json records as a markdown table.

Each PR that changes solver performance commits a `BENCH_*.json`
snapshot (written by `repro --metrics-json` / `--bench-json`; schema
documented in README "Observability"). This script turns the set of
committed snapshots into the "Performance trajectory" table in
README.md, so the perf story is reproducible from checked-in data
instead of hand-edited numbers.

    scripts/bench_table.py              # print the table to stdout
    scripts/bench_table.py --update     # rewrite the marked README block
    scripts/bench_table.py --check      # validate committed record schemas
    scripts/bench_table.py --dir D      # render records from directory D
                                        # (e.g. a bench_matrix.sh sweep)

The schema has grown across PRs (cycle-collapse counters arrived in
PR 3, thread counters in PR 4, hash-consing counters in PR 7);
missing keys render as `-` so old records stay first-class rows — but
the current `BENCH_pta.json` must carry every key the table renders,
or `--check` fails.

Since the canonical-signature merge path, `repro` also writes a
sibling Mahjong record next to each solver record: `BENCH_pta.json`
pairs with `BENCH_mahjong.json`, and `BENCH_<label>.json` pairs with
`BENCH_mahjong_<label>.json`. The sibling feeds the trailing Mahjong
columns (DFAs built, signature buckets, HK runs, canonicalization
time); rows without a sibling render `-` there.
"""

import argparse
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BEGIN = "<!-- bench-table:begin -->"
END = "<!-- bench-table:end -->"
SERVE_BEGIN = "<!-- serve-table:begin -->"
SERVE_END = "<!-- serve-table:end -->"

# (column header, json key, formatter)
COLUMNS = [
    ("main analysis (s)", ("phase_secs", "main_analysis"), lambda v: f"{v:.1f}"),
    ("pre-analysis (s)", ("phase_secs", "pre_analysis"), lambda v: f"{v:.2f}"),
    ("mahjong (s)", ("phase_secs", "mahjong"), lambda v: f"{v:.2f}"),
    ("worklist pops", ("worklist_pops",), "{:,}".format),
    ("delta objects", ("delta_objects",), "{:,}".format),
    ("pts peak (words)", ("pts_peak_words",), "{:,}".format),
    ("pts interned", ("pts_interned",), "{:,}".format),
    ("dedup hits", ("pts_dedup_hits",), "{:,}".format),
    ("SCC-collapsed ptrs", ("scc_collapsed_ptrs",), "{:,}".format),
    ("wave rounds", ("wave_rounds",), "{:,}".format),
    ("threads", ("threads",), str),
    ("par shards", ("par_shards",), "{:,}".format),
    ("merge shards", ("par_merge_shards",), "{:,}".format),
    ("mask ranges", ("mask_ranges",), "{:,}".format),
    ("range hits", ("range_union_hits",), "{:,}".format),
]

# Columns sourced from the paired BENCH_mahjong*.json sibling record.
MAHJONG_COLUMNS = [
    ("DFAs built", ("dfa_built",), "{:,}".format),
    ("sig buckets", ("sig_buckets",), "{:,}".format),
    ("HK runs", ("hk_runs",), "{:,}".format),
    ("canon (ms)", ("canon_ns",), lambda v: f"{v / 1e6:.1f}"),
]


def mahjong_sibling(path: Path) -> Path:
    # BENCH_pta.json -> BENCH_mahjong.json,
    # BENCH_baseline_pr4.json -> BENCH_mahjong_baseline_pr4.json
    rest = path.stem.removeprefix("BENCH_")
    name = "BENCH_mahjong" if rest == "pta" else f"BENCH_mahjong_{rest}"
    return path.with_name(f"{name}{path.suffix}")


def lookup(record, path):
    for key in path:
        if not isinstance(record, dict) or key not in record:
            return None
        record = record[key]
    return record


def label(path: Path) -> str:
    # BENCH_baseline_pr2.json -> "baseline_pr2", BENCH_pta.json -> "pta (current)"
    stem = path.stem.removeprefix("BENCH_")
    return f"{stem} (current)" if stem == "pta" else stem


def sort_key(path: Path):
    # Baselines in PR order first, then threads-sweep records
    # (BENCH_pta_t1.json, BENCH_pta_t2.json, ...) in thread order, and
    # the live BENCH_pta.json record last.
    m = re.search(r"pr(\d+)", path.stem)
    if m:
        return (0, int(m.group(1)))
    m = re.search(r"_t(\d+)$", path.stem)
    return (1, int(m.group(1))) if m else (2, 0)


def render(root: Path) -> str:
    records = []
    for path in sorted(root.glob("BENCH_*.json"), key=sort_key):
        if path.stem.startswith("BENCH_mahjong"):
            continue  # siblings join their solver record below
        if path.stem == "BENCH_serve":
            continue  # the serving record has its own table
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_table: skipping {path.name}: {e}", file=sys.stderr)
            continue
        sibling = mahjong_sibling(path)
        mahjong = {}
        if sibling.exists():
            try:
                mahjong = json.loads(sibling.read_text())
            except (OSError, json.JSONDecodeError) as e:
                print(f"bench_table: skipping {sibling.name}: {e}", file=sys.stderr)
        records.append((label(path), record, mahjong))
    if not records:
        return "_no BENCH_*.json records committed_"

    lines = []
    meta = records[0][1]
    workload = "{exp}@{scale}, budget {budget}s".format(
        exp=meta.get("exp", "?"),
        scale=meta.get("scale", "?"),
        budget=meta.get("budget_secs", "?"),
    )
    lines.append(f"Workload: `{workload}` (all rows; lower is better).")
    lines.append("")
    headers = [h for h, _, _ in COLUMNS] + [h for h, _, _ in MAHJONG_COLUMNS]
    lines.append("| record | " + " | ".join(headers) + " |")
    lines.append("|---|" + "---:|" * len(headers))
    for name, record, mahjong in records:
        cells = []
        for _, path, fmt in COLUMNS:
            value = lookup(record, path)
            cells.append("-" if value is None else fmt(value))
        for _, path, fmt in MAHJONG_COLUMNS:
            value = lookup(mahjong, path)
            cells.append("-" if value is None else fmt(value))
        lines.append(f"| `{name}` | " + " | ".join(cells) + " |")
    return "\n".join(lines)


# Keys every BENCH_*.json solver record must carry, whatever PR wrote
# it. `phase_secs.*` are nested under ("phase_secs", key).
BASE_KEYS = [
    ("exp",),
    ("scale",),
    ("budget_secs",),
    ("phase_secs", "pre_analysis"),
    ("phase_secs", "mahjong"),
    ("phase_secs", "main_analysis"),
    ("worklist_pops",),
    ("propagated_objects",),
    ("delta_objects",),
    ("copy_edges",),
    ("pts_peak_words",),
]

# Every key the table renders from the solver record. The *current*
# record (BENCH_pta.json) must carry all of them — a record whose
# columns all print `-` is a silently broken pipeline, not a row.
RENDERED_KEYS = [path for _, path, _ in COLUMNS]

# Keys the *current* record (BENCH_pta.json) must additionally carry —
# these arrived with later PRs and old baselines may lack them.
# (Rendered keys like threads / scc_collapsed_ptrs / pts_interned are
# covered by RENDERED_KEYS; this list is for non-column counters.)
CURRENT_KEYS = [
    ("collapse_sweeps",),
    ("par_steal_none",),
    ("wave_barrier_ns",),
    ("intern_probe_ns",),
]

# Keys that arrived with the hierarchy-numbering / range-table PR.
# Every current-generation record — BENCH_pta.json and the fresh
# threads-sweep points — must carry them; older baselines may not.
RANGE_KEYS = [
    ("mask_ranges",),
    ("range_union_hits",),
    ("par_merge_shards",),
]

MAHJONG_KEYS = [("dfa_built",), ("sig_buckets",), ("hk_runs",), ("canon_ns",)]

# The serving record (BENCH_serve.json, written by `repro
# --serve-bench`; schema documented in SERVING.md). One record, five
# per-class latency entries.
SERVE_CLASSES = ["points_to", "may_alias", "call_targets", "cast_check", "not_found"]
SERVE_KEYS = [
    ("exp",), ("program",), ("scale",), ("analysis",), ("heap",), ("source",),
    ("threads",), ("queries",), ("batch",), ("seed",), ("warm_start_ms",),
    ("fingerprint",), ("wall_secs",), ("qps",), ("checksum",),
] + [
    ("classes", c, k)
    for c in SERVE_CLASSES
    for k in ("count", "p50_ns", "p99_ns")
]


def render_serve(root: Path):
    """The serving table from BENCH_serve.json, or None when absent."""
    path = root / "BENCH_serve.json"
    if not path.exists():
        return None
    try:
        rec = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_table: skipping {path.name}: {e}", file=sys.stderr)
        return None
    lines = [
        "Serving: `{program}@{scale}` ({analysis}, {heap}), {threads} threads, "
        "{queries:,} queries from a {source} start — "
        "**{qps:,.0f} qps**, warm start {warm_start_ms:.1f} ms.".format(
            program=rec.get("program", "?"),
            scale=rec.get("scale", "?"),
            analysis=rec.get("analysis", "?"),
            heap=rec.get("heap", "?"),
            threads=rec.get("threads", "?"),
            queries=rec.get("queries", 0),
            source=rec.get("source", "?"),
            qps=rec.get("qps", 0.0),
            warm_start_ms=rec.get("warm_start_ms", 0.0),
        ),
        "",
        "| query class | count | p50 (ns) | p99 (ns) |",
        "|---|---:|---:|---:|",
    ]
    for c in SERVE_CLASSES:
        stats = lookup(rec, ("classes", c)) or {}
        lines.append(
            "| `{}` | {:,} | {:,} | {:,} |".format(
                c, stats.get("count", 0), stats.get("p50_ns", 0), stats.get("p99_ns", 0)
            )
        )
    return "\n".join(lines)


def check_serve(path: Path):
    """Schema + self-consistency checks for a BENCH_serve.json record."""
    problems = []
    try:
        rec = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path.name}: unreadable: {e}"]
    for key in SERVE_KEYS:
        if lookup(rec, key) is None:
            problems.append(f"{path.name}: missing key {'.'.join(key)}")
    if problems:
        return problems
    if rec["exp"] != "serve":
        problems.append(f"{path.name}: exp is {rec['exp']!r}, expected 'serve'")
    if rec["source"] not in ("snapshot", "fresh"):
        problems.append(f"{path.name}: source {rec['source']!r} not snapshot/fresh")
    for key in ("fingerprint", "checksum"):
        value = rec[key]
        if not (isinstance(value, str) and value.startswith("0x")):
            problems.append(f"{path.name}: {key} must be a 0x-prefixed hex string")
    total = sum(rec["classes"][c]["count"] for c in SERVE_CLASSES)
    if total != rec["queries"]:
        problems.append(
            f"{path.name}: class counts sum to {total}, not queries={rec['queries']}")
    return problems

# Per-record keys in PROFILE_pta.json's "profile.records" entries.
PROFILE_RECORD_KEYS = [
    "run", "wave", "level", "pops", "objects", "words",
    "resolve_ns", "propagate_ns", "merge_ns", "shards", "busy_ns", "idle_ns",
]


def check(root: Path) -> int:
    """Validate committed record schemas; print one line per problem."""
    problems = []

    def need(path: Path, record, keys):
        for key in keys:
            if lookup(record, key) is None:
                problems.append(f"{path.name}: missing key {'.'.join(key)}")

    bench_paths = [
        p for p in sorted(root.glob("BENCH_*.json"), key=sort_key)
        if not p.stem.startswith("BENCH_mahjong") and p.stem != "BENCH_serve"
    ]
    if not bench_paths:
        problems.append(f"{root}: no BENCH_*.json solver records found")
    for path in bench_paths:
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            problems.append(f"{path.name}: unreadable: {e}")
            continue
        need(path, record, BASE_KEYS)
        if path.stem == "BENCH_pta":
            need(path, record, RENDERED_KEYS)
            need(path, record, CURRENT_KEYS)
        current = path.stem == "BENCH_pta" or re.search(r"_t\d+$", path.stem)
        if current:
            need(path, record, RANGE_KEYS)
        sibling = mahjong_sibling(path)
        if sibling.exists():
            try:
                sib = json.loads(sibling.read_text())
            except (OSError, json.JSONDecodeError) as e:
                problems.append(f"{sibling.name}: unreadable: {e}")
            else:
                # The canon-phase keys arrived with the signature path
                # (PR 5); only current-generation siblings must have them.
                if current:
                    need(sibling, sib, MAHJONG_KEYS)
        elif current:
            problems.append(f"{path.name}: sibling {sibling.name} is missing")

    profile = root / "PROFILE_pta.json"
    if profile.exists():
        problems.extend(check_profile(profile))

    serve = root / "BENCH_serve.json"
    if serve.exists():
        problems.extend(check_serve(serve))

    for p in problems:
        print(f"bench_table: CHECK FAIL: {p}", file=sys.stderr)
    if not problems:
        n = len(bench_paths) + int(profile.exists()) + int(serve.exists())
        print(f"bench_table: check OK ({n} records)")
    return 1 if problems else 0


def check_profile(path: Path):
    """Schema + self-consistency checks for a PROFILE_pta.json document."""
    problems = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"{path.name}: unreadable: {e}"]
    for key in ("exp", "scale", "threads", "main_analysis_secs",
                "pts_peak_words", "profile"):
        if key not in doc:
            problems.append(f"{path.name}: missing key {key}")
    prof = doc.get("profile") or {}
    records = prof.get("records")
    if not records:
        problems.append(f"{path.name}: profile.records is empty")
        return problems
    for i, rec in enumerate(records):
        missing = [k for k in PROFILE_RECORD_KEYS if k not in rec]
        if missing:
            problems.append(
                f"{path.name}: records[{i}] missing {','.join(missing)}")
            break  # one schema report is enough
    # Attribution: the per-record timings must cover >=90% of the
    # main_analysis wall clock — but only when the run is long enough
    # to measure and the ring did not overflow (dropped records mean
    # dropped nanoseconds).
    wall = doc.get("main_analysis_secs", 0.0)
    if wall > 0.05 and prof.get("records_dropped", 0) == 0:
        covered = sum(
            r.get("resolve_ns", 0) + r.get("propagate_ns", 0) + r.get("merge_ns", 0)
            for r in records) / 1e9
        if covered < 0.9 * wall:
            problems.append(
                f"{path.name}: timeline covers {covered:.2f}s of "
                f"{wall:.2f}s main_analysis wall (<90%)")
    # Memory attribution: samples are taken right after the solver's
    # seal sweeps deduplicate the rows, and the timeline retains the
    # largest one, so the breakdown's physical `rep_words` must anchor
    # to the recorded (physical) points-to peak; the logical footprint
    # can only be larger — it counts shared allocations once per row.
    mem = prof.get("memory")
    peak = doc.get("pts_peak_words", 0)
    if mem and peak:
        rep = mem.get("rep_words", 0)
        if abs(rep - peak) > 0.05 * peak:
            problems.append(
                f"{path.name}: memory breakdown rep_words {rep} vs "
                f"pts_peak_words {peak} (off by >5%)")
        logical = mem.get("logical_words")
        if logical is None:
            problems.append(f"{path.name}: memory breakdown lacks logical_words")
        elif logical < rep:
            problems.append(
                f"{path.name}: logical_words {logical} < rep_words {rep} "
                f"(dedup cannot add memory)")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help=f"rewrite the block between `{BEGIN}` and `{END}` in README.md",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate BENCH_*.json / PROFILE_pta.json schemas and exit",
    )
    parser.add_argument(
        "--dir",
        type=Path,
        default=ROOT,
        help="directory holding the records (default: repo root)",
    )
    args = parser.parse_args()
    if args.check:
        return check(args.dir)
    table = render(args.dir)
    serve_table = render_serve(args.dir)
    if not args.update:
        print(table)
        if serve_table:
            print()
            print(serve_table)
        return 0
    readme = ROOT / "README.md"
    text = readme.read_text()
    if BEGIN not in text or END not in text:
        print(f"bench_table: README.md lacks {BEGIN}/{END} markers", file=sys.stderr)
        return 1
    head, rest = text.split(BEGIN, 1)
    _, tail = rest.split(END, 1)
    text = f"{head}{BEGIN}\n{table}\n{END}{tail}"
    if serve_table and SERVE_BEGIN in text and SERVE_END in text:
        head, rest = text.split(SERVE_BEGIN, 1)
        _, tail = rest.split(SERVE_END, 1)
        text = f"{head}{SERVE_BEGIN}\n{serve_table}\n{SERVE_END}{tail}"
    readme.write_text(text)
    print(f"bench_table: updated {readme}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
