#!/usr/bin/env python3
"""Render the committed BENCH_*.json records as a markdown table.

Each PR that changes solver performance commits a `BENCH_*.json`
snapshot (written by `repro --metrics-json` / `--bench-json`; schema
documented in README "Observability"). This script turns the set of
committed snapshots into the "Performance trajectory" table in
README.md, so the perf story is reproducible from checked-in data
instead of hand-edited numbers.

    scripts/bench_table.py              # print the table to stdout
    scripts/bench_table.py --update     # rewrite the marked README block

The schema has grown across PRs (cycle-collapse counters arrived in
PR 3, thread counters in PR 4); missing keys render as `-` so old
records stay first-class rows.

Since the canonical-signature merge path, `repro` also writes a
sibling Mahjong record next to each solver record: `BENCH_pta.json`
pairs with `BENCH_mahjong.json`, and `BENCH_<label>.json` pairs with
`BENCH_mahjong_<label>.json`. The sibling feeds the trailing Mahjong
columns (DFAs built, signature buckets, HK runs, canonicalization
time); rows without a sibling render `-` there.
"""

import argparse
import json
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
BEGIN = "<!-- bench-table:begin -->"
END = "<!-- bench-table:end -->"

# (column header, json key, formatter)
COLUMNS = [
    ("main analysis (s)", ("phase_secs", "main_analysis"), lambda v: f"{v:.1f}"),
    ("pre-analysis (s)", ("phase_secs", "pre_analysis"), lambda v: f"{v:.2f}"),
    ("mahjong (s)", ("phase_secs", "mahjong"), lambda v: f"{v:.2f}"),
    ("worklist pops", ("worklist_pops",), "{:,}".format),
    ("delta objects", ("delta_objects",), "{:,}".format),
    ("pts peak (words)", ("pts_peak_words",), "{:,}".format),
    ("SCC-collapsed ptrs", ("scc_collapsed_ptrs",), "{:,}".format),
    ("wave rounds", ("wave_rounds",), "{:,}".format),
    ("threads", ("threads",), str),
    ("par shards", ("par_shards",), "{:,}".format),
]

# Columns sourced from the paired BENCH_mahjong*.json sibling record.
MAHJONG_COLUMNS = [
    ("DFAs built", ("dfa_built",), "{:,}".format),
    ("sig buckets", ("sig_buckets",), "{:,}".format),
    ("HK runs", ("hk_runs",), "{:,}".format),
    ("canon (ms)", ("canon_ns",), lambda v: f"{v / 1e6:.1f}"),
]


def mahjong_sibling(path: Path) -> Path:
    # BENCH_pta.json -> BENCH_mahjong.json,
    # BENCH_baseline_pr4.json -> BENCH_mahjong_baseline_pr4.json
    rest = path.stem.removeprefix("BENCH_")
    name = "BENCH_mahjong" if rest == "pta" else f"BENCH_mahjong_{rest}"
    return path.with_name(f"{name}{path.suffix}")


def lookup(record, path):
    for key in path:
        if not isinstance(record, dict) or key not in record:
            return None
        record = record[key]
    return record


def label(path: Path) -> str:
    # BENCH_baseline_pr2.json -> "baseline_pr2", BENCH_pta.json -> "pta (current)"
    stem = path.stem.removeprefix("BENCH_")
    return f"{stem} (current)" if stem == "pta" else stem


def sort_key(path: Path):
    # Baselines in PR order first, the live BENCH_pta.json record last.
    m = re.search(r"pr(\d+)", path.stem)
    return (0, int(m.group(1))) if m else (1, 0)


def render() -> str:
    records = []
    for path in sorted(ROOT.glob("BENCH_*.json"), key=sort_key):
        if path.stem.startswith("BENCH_mahjong"):
            continue  # siblings join their solver record below
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as e:
            print(f"bench_table: skipping {path.name}: {e}", file=sys.stderr)
            continue
        sibling = mahjong_sibling(path)
        mahjong = {}
        if sibling.exists():
            try:
                mahjong = json.loads(sibling.read_text())
            except (OSError, json.JSONDecodeError) as e:
                print(f"bench_table: skipping {sibling.name}: {e}", file=sys.stderr)
        records.append((label(path), record, mahjong))
    if not records:
        return "_no BENCH_*.json records committed_"

    lines = []
    meta = records[0][1]
    workload = "{exp}@{scale}, budget {budget}s".format(
        exp=meta.get("exp", "?"),
        scale=meta.get("scale", "?"),
        budget=meta.get("budget_secs", "?"),
    )
    lines.append(f"Workload: `{workload}` (all rows; lower is better).")
    lines.append("")
    headers = [h for h, _, _ in COLUMNS] + [h for h, _, _ in MAHJONG_COLUMNS]
    lines.append("| record | " + " | ".join(headers) + " |")
    lines.append("|---|" + "---:|" * len(headers))
    for name, record, mahjong in records:
        cells = []
        for _, path, fmt in COLUMNS:
            value = lookup(record, path)
            cells.append("-" if value is None else fmt(value))
        for _, path, fmt in MAHJONG_COLUMNS:
            value = lookup(mahjong, path)
            cells.append("-" if value is None else fmt(value))
        lines.append(f"| `{name}` | " + " | ".join(cells) + " |")
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help=f"rewrite the block between `{BEGIN}` and `{END}` in README.md",
    )
    args = parser.parse_args()
    table = render()
    if not args.update:
        print(table)
        return 0
    readme = ROOT / "README.md"
    text = readme.read_text()
    if BEGIN not in text or END not in text:
        print(f"bench_table: README.md lacks {BEGIN}/{END} markers", file=sys.stderr)
        return 1
    head, rest = text.split(BEGIN, 1)
    _, tail = rest.split(END, 1)
    readme.write_text(f"{head}{BEGIN}\n{table}\n{END}{tail}")
    print(f"bench_table: updated {readme}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
