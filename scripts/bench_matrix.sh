#!/usr/bin/env bash
# Threads-sweep bench matrix: run the fixed benchmark workload at
# several thread counts and collect one BENCH record per point, so the
# parallel-propagate scaling story is reproducible from checked-in
# tooling rather than ad-hoc runs.
#
#   scripts/bench_matrix.sh                   # threads 1 2 4 8 into bench_matrix/
#   scripts/bench_matrix.sh --threads "1 2"   # custom sweep (flag form)
#   THREADS="1 2" scripts/bench_matrix.sh     # custom sweep (env form)
#   EXP=table2 SCALE=4 BUDGET=600 OUT=bench_matrix scripts/bench_matrix.sh
#
# The --threads flag takes precedence over the THREADS env var.
#
# Each point writes BENCH_pta_tN.json (+ the BENCH_mahjong_pta_tN.json
# sibling) into $OUT; the final table renders via
# `scripts/bench_table.py --dir $OUT`. Results are bit-identical across
# thread counts (tests/thread_parity.rs), so only the timing columns
# move. The threads-4 point also writes PROFILE_pta.json there for
# per-wave inspection.
set -euo pipefail
cd "$(dirname "$0")/.."

EXP="${EXP:-table2}"
SCALE="${SCALE:-4}"
BUDGET="${BUDGET:-900}"
THREADS="${THREADS:-1 2 4 8}"
OUT="${OUT:-bench_matrix}"

while [ $# -gt 0 ]; do
    case "$1" in
        --threads)
            [ $# -ge 2 ] || { echo "bench_matrix: --threads needs a list (e.g. \"1 2 4\")" >&2; exit 2; }
            THREADS="$2"
            shift 2
            ;;
        --help|-h)
            sed -n '2,/^set -euo/p' "$0" | sed '$d' | sed 's/^# \{0,1\}//'
            exit 0
            ;;
        *)
            echo "bench_matrix: unknown argument \`$1\` (only --threads LIST)" >&2
            exit 2
            ;;
    esac
done

case "$THREADS" in
    *[!0-9\ ]*|"")
        echo "bench_matrix: threads list \`$THREADS\` must be space-separated numbers" >&2
        exit 2
        ;;
esac

cargo build --release -p bench >/dev/null
REPRO=target/release/repro
mkdir -p "$OUT"

for t in $THREADS; do
    echo "bench_matrix: $EXP@$SCALE threads=$t" >&2
    profile_args=()
    if [ "$t" -eq 4 ]; then
        profile_args=(--profile --profile-json "$OUT/PROFILE_pta.json")
    fi
    "$REPRO" --exp "$EXP" --scale "$SCALE" --budget "$BUDGET" \
        --threads "$t" --force \
        --bench-json "$OUT/BENCH_pta_t$t.json" \
        "${profile_args[@]}" >/dev/null
done

python3 scripts/bench_table.py --dir "$OUT"
