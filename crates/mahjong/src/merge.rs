//! The Mahjong main algorithm (paper Algorithm 1): merging
//! type-consistent objects with a disjoint-set forest, and the
//! synchronization-free parallel driver of Section 5.
//!
//! # Equivalence by canonical signature
//!
//! The paper tests type-consistency with one Hopcroft–Karp run per
//! same-type pair of candidate objects — near-linear per pair, but the
//! pair count is quadratic in the worst case and in practice dominates
//! the merge phase (~100k runs on the mid-size workloads). This
//! implementation instead canonicalizes each object's automaton once
//! ([`automata::Dfa::signature`]: Hopcroft minimization + BFS
//! renumbering + 128-bit fingerprint) and groups objects by signature;
//! two objects merge iff their signatures are equal. The minimal DFA is
//! unique up to isomorphism and the BFS renumbering is purely
//! structural, so signature grouping computes exactly the partition the
//! pairwise runs would — see DESIGN.md §11 for the soundness argument
//! and the collision policy.
//!
//! Hopcroft–Karp stays on three paths:
//!
//! - `debug_assertions` builds re-check every signature-directed merge
//!   (a collision would fire the assert instead of corrupting the map);
//! - [`MahjongConfig::paranoid`] re-verifies every merge *and* the
//!   pairwise distinctness of the class representatives at run time,
//!   counting the runs in `mahjong.hk_runs`;
//! - [`merge_equivalent_objects_pairwise`] is the full pairwise
//!   reference pipeline, kept as the oracle for property tests.
//!
//! On the default fast path `mahjong.hk_runs` is **zero**.

use std::time::{Duration, Instant};

use automata::{Dfa, DfaSignature};
use dsu::DisjointSets;
use fxhash::FxHashMap;
use jir::AllocId;
use pta::MergedObjectMap;

use crate::build::{RootAutomaton, SubsetCtx};
use crate::fpg::{FieldPointsToGraph, FpgNode, NodeType};

/// Which member of an equivalence class becomes its representative.
///
/// The paper notes (Example 3.2 / Figure 7) that under type-sensitivity
/// the representative choice can change precision; the engine picks
/// deterministically so experiments are reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Representative {
    /// The class member with the smallest allocation-site id (default).
    #[default]
    Smallest,
    /// The class member with the largest allocation-site id — used by
    /// the Figure 7 experiment to demonstrate representative-dependence
    /// of M-ktype.
    Largest,
}

/// Configuration of the Mahjong pipeline.
#[derive(Clone, Copy, Debug)]
pub struct MahjongConfig {
    /// Worker threads for automaton construction and canonicalization
    /// (1 = sequential).
    pub threads: usize,
    /// Enforce Condition 2 of Definition 2.1 (SINGLETYPE-CHECK). The
    /// `false` setting is the ablation of paper Figure 3 / Example 2.4.
    pub enforce_condition2: bool,
    /// Model never-assigned fields as pointing to the dummy null node.
    pub model_null: bool,
    /// Representative choice per equivalence class.
    pub representative: Representative,
    /// Re-verify every signature-directed merge (and the pairwise
    /// distinctness of class representatives) with Hopcroft–Karp,
    /// counting the runs in `mahjong.hk_runs`. Off by default: the
    /// fast path performs zero HK runs.
    pub paranoid: bool,
}

impl Default for MahjongConfig {
    fn default() -> Self {
        MahjongConfig {
            threads: 1,
            enforce_condition2: true,
            model_null: true,
            representative: Representative::Smallest,
            paranoid: false,
        }
    }
}

/// Statistics of one Mahjong run (the paper reports these in
/// Section 6.1).
///
/// This per-run view is the stable public API; at the end of every run
/// the same numbers are published into the process-global [`obs`]
/// registry under `mahjong.*` names (see [`MahjongStats::publish`]).
#[derive(Clone, Debug, Default)]
pub struct MahjongStats {
    /// Time spent building per-object DFAs (subset construction).
    pub dfa_time: Duration,
    /// Time spent canonicalizing DFAs (minimization + BFS renumbering
    /// + fingerprinting), summed across shards.
    pub canon_time: Duration,
    /// Time spent grouping by signature and building the merged map.
    pub merge_time: Duration,
    /// Objects (present allocation sites) examined.
    pub objects: usize,
    /// Abstract objects after merging (equivalence classes over present
    /// objects).
    pub merged_objects: usize,
    /// Objects failing SINGLETYPE-CHECK.
    pub not_single_type: usize,
    /// DFAs successfully constructed (objects passing SINGLETYPE-CHECK
    /// in candidate groups).
    pub dfa_built: usize,
    /// Distinct signature buckets across all type groups — the number
    /// of equivalence classes among the single-type candidates.
    pub sig_buckets: usize,
    /// Hopcroft–Karp runs performed (paranoid verification only; the
    /// default fast path performs none, and `debug_assertions`-only
    /// collision checks are not counted).
    pub hk_runs: u64,
    /// Equivalence tests performed. Since the signature rework this is
    /// an alias of [`MahjongStats::hk_runs`], kept for callers of the
    /// historical field.
    pub equivalence_checks: u64,
    /// Load imbalance of the build shards, in percent: how far the most
    /// loaded shard exceeds the mean (0 when sequential or balanced).
    pub shard_skew_pct: f64,
    /// Average NFA size (reachable FPG nodes per object).
    pub avg_nfa_states: f64,
    /// Largest NFA (reachable FPG nodes).
    pub max_nfa_states: usize,
}

impl MahjongStats {
    /// Publishes the run's counters into the global [`obs`] registry
    /// (no-op while recording is disabled). Counters are monotonic, so
    /// repeated runs aggregate; every counter is touched even when
    /// zero, so the metrics export always carries the full set.
    pub fn publish(&self) {
        if !obs::enabled() {
            return;
        }
        obs::counter("mahjong.objects").add(self.objects as u64);
        obs::counter("mahjong.merged_objects").add(self.merged_objects as u64);
        obs::counter("mahjong.not_single_type").add(self.not_single_type as u64);
        obs::counter("mahjong.equivalence_checks").add(self.equivalence_checks);
        obs::counter("mahjong.dfa_built").add(self.dfa_built as u64);
        obs::counter("mahjong.sig_buckets").add(self.sig_buckets as u64);
        obs::counter("mahjong.hk_runs").add(self.hk_runs);
        obs::counter("mahjong.canon_ns")
            .add(u64::try_from(self.canon_time.as_nanos()).unwrap_or(u64::MAX));
        obs::gauge("mahjong.max_nfa_states").set(self.max_nfa_states as i64);
        obs::gauge("mahjong.shard_skew").set(self.shard_skew_pct.round() as i64);
    }
}

/// The output of the Mahjong pipeline: the merged object map plus run
/// statistics.
#[derive(Clone, Debug)]
pub struct MahjongOutput {
    /// The new heap abstraction (paper Definition 2.2), ready to drive a
    /// [`pta::AnalysisConfig`].
    pub mom: MergedObjectMap,
    /// Run statistics.
    pub stats: MahjongStats,
}

/// Runs Algorithm 1 over an FPG: groups objects by type, builds and
/// canonicalizes their automata, and merges signature-equal ones.
pub fn merge_equivalent_objects(fpg: &FieldPointsToGraph, config: &MahjongConfig) -> MahjongOutput {
    let mut stats = MahjongStats::default();
    let groups = candidate_groups(fpg, &mut stats);

    // Phase 1: build all shared automata beforehand (Section 5) and
    // canonicalize each to its 128-bit signature, sharded across
    // threads when configured. Each shard owns a private SubsetCtx, so
    // interned state-sets are shared within a shard without locking.
    let dfa_start = Instant::now();
    let automata = {
        let _phase = obs::span("mahjong.automata_build");
        build_automata(fpg, &groups, config, &mut stats)
    };
    stats.dfa_time = dfa_start.elapsed().saturating_sub(stats.canon_time);
    collect_size_stats(&automata, &mut stats);

    // Phase 2: per-type signature grouping (zero HK runs on the fast
    // path), then the merged object map.
    let merge_start = Instant::now();
    let pairs = {
        let _phase = obs::span("mahjong.equivalence_check");
        merge_by_signature(&groups, &automata, config.paranoid, &mut stats)
    };
    stats.equivalence_checks = stats.hk_runs;
    let mom = build_mom(fpg, pairs, config, &mut stats);
    stats.merge_time = merge_start.elapsed();
    stats.publish();
    MahjongOutput { mom, stats }
}

/// The pairwise Hopcroft–Karp reference pipeline: the paper's original
/// merge loop, one HK run per (object, class representative) pair.
///
/// Kept as the independent oracle for the signature fast path — the
/// property tests assert both pipelines produce bit-identical merged
/// object maps. All equivalence tests are counted in
/// [`MahjongStats::hk_runs`]. Sequential; `config.threads` and
/// `config.paranoid` are ignored.
pub fn merge_equivalent_objects_pairwise(
    fpg: &FieldPointsToGraph,
    config: &MahjongConfig,
) -> MahjongOutput {
    let mut stats = MahjongStats::default();
    let groups = candidate_groups(fpg, &mut stats);

    let dfa_start = Instant::now();
    let mut ctx = SubsetCtx::new(fpg);
    let mut automata: FxHashMap<AllocId, RootInfo> = FxHashMap::default();
    for &alloc in groups.iter().flatten() {
        let (automaton, bstats) = ctx.dfa_for_root(alloc, config.enforce_condition2);
        automata.insert(
            alloc,
            RootInfo {
                automaton,
                signature: None,
                nfa_states: bstats.nfa_states,
                dfa_states: bstats.dfa_states,
            },
        );
    }
    stats.dfa_time = dfa_start.elapsed();
    collect_size_stats(&automata, &mut stats);

    let merge_start = Instant::now();
    let mut pairs = Vec::new();
    for group in &groups {
        let mut reps: Vec<(AllocId, &Dfa)> = Vec::new();
        for &alloc in group {
            let RootAutomaton::Dfa(dfa) = &automata[&alloc].automaton else {
                continue; // fails SINGLETYPE-CHECK: never mergeable
            };
            let mut merged = false;
            for &(rep, rep_dfa) in &reps {
                stats.hk_runs += 1;
                if dfa.equivalent(rep_dfa) {
                    pairs.push((rep, alloc));
                    merged = true;
                    break;
                }
            }
            if !merged {
                reps.push((alloc, dfa));
            }
        }
        stats.sig_buckets += reps.len();
    }
    stats.equivalence_checks = stats.hk_runs;
    let mom = build_mom(fpg, pairs, config, &mut stats);
    stats.merge_time = merge_start.elapsed();
    stats.publish();
    MahjongOutput { mom, stats }
}

/// Per-object automaton info.
struct RootInfo {
    automaton: RootAutomaton,
    /// Canonical signature; `None` for `NotSingleType` objects and on
    /// the pairwise oracle path (which never canonicalizes).
    signature: Option<DfaSignature>,
    nfa_states: usize,
    dfa_states: usize,
}

/// Groups present objects by exact type (TYPEOF guard, Algorithm 1
/// line 5) and drops singleton groups — they can never merge, so their
/// DFAs are never built. Groups are ordered by first member for
/// deterministic sharding.
fn candidate_groups(fpg: &FieldPointsToGraph, stats: &mut MahjongStats) -> Vec<Vec<AllocId>> {
    let mut by_type: FxHashMap<jir::TypeId, Vec<AllocId>> = FxHashMap::default();
    for alloc in fpg.present_allocs() {
        stats.objects += 1;
        if let NodeType::Type(ty) = fpg.node_type(FpgNode::Alloc(alloc)) {
            by_type.entry(ty).or_default().push(alloc);
        }
    }
    let mut groups: Vec<Vec<AllocId>> = by_type
        .into_values()
        .filter(|members| members.len() > 1)
        .collect();
    groups.sort_by_key(|g| g[0]);
    groups
}

/// Assigns type groups to `shards` bins, largest group first into the
/// least-loaded bin (LPT scheduling). Returns per-shard group indices.
fn assign_shards(groups: &[Vec<AllocId>], shards: usize) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(groups[i].len()), i));
    let mut load = vec![0usize; shards];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); shards];
    for g in order {
        let target = (0..shards).min_by_key(|&s| (load[s], s)).expect("shards > 0");
        load[target] += groups[g].len();
        out[target].push(g);
    }
    out
}

/// Percent by which the most loaded shard exceeds the mean load.
fn shard_skew_pct(loads: &[usize]) -> f64 {
    let total: usize = loads.iter().sum();
    if loads.is_empty() || total == 0 {
        return 0.0;
    }
    let mean = total as f64 / loads.len() as f64;
    let max = *loads.iter().max().expect("non-empty") as f64;
    (max / mean - 1.0) * 100.0
}

/// Builds the DFA and canonical signature of one candidate.
fn build_one(
    ctx: &mut SubsetCtx<'_>,
    alloc: AllocId,
    enforce_condition2: bool,
    canon: &mut Duration,
) -> RootInfo {
    let (automaton, bstats) = ctx.dfa_for_root(alloc, enforce_condition2);
    let signature = match &automaton {
        RootAutomaton::Dfa(dfa) => {
            let t = Instant::now();
            let sig = dfa.signature();
            *canon += t.elapsed();
            Some(sig)
        }
        RootAutomaton::NotSingleType => None,
    };
    RootInfo {
        automaton,
        signature,
        nfa_states: bstats.nfa_states,
        dfa_states: bstats.dfa_states,
    }
}

fn build_automata(
    fpg: &FieldPointsToGraph,
    groups: &[Vec<AllocId>],
    config: &MahjongConfig,
    stats: &mut MahjongStats,
) -> FxHashMap<AllocId, RootInfo> {
    let candidates: usize = groups.iter().map(Vec::len).sum();
    if config.threads <= 1 || candidates < 64 {
        let mut ctx = SubsetCtx::new(fpg);
        let mut canon = Duration::ZERO;
        let out = groups
            .iter()
            .flatten()
            .map(|&alloc| {
                (
                    alloc,
                    build_one(&mut ctx, alloc, config.enforce_condition2, &mut canon),
                )
            })
            .collect();
        stats.canon_time = canon;
        return out;
    }

    let assignment = assign_shards(groups, config.threads);
    let loads: Vec<usize> = assignment
        .iter()
        .map(|idxs| idxs.iter().map(|&g| groups[g].len()).sum())
        .collect();
    stats.shard_skew_pct = shard_skew_pct(&loads);

    let mut out = FxHashMap::default();
    let mut canon_total = Duration::ZERO;
    std::thread::scope(|scope| {
        let handles: Vec<_> = assignment
            .iter()
            .map(|idxs| {
                scope.spawn(move || {
                    let mut ctx = SubsetCtx::new(fpg);
                    let mut canon = Duration::ZERO;
                    let infos: Vec<(AllocId, RootInfo)> = idxs
                        .iter()
                        .flat_map(|&g| &groups[g])
                        .map(|&alloc| {
                            (
                                alloc,
                                build_one(&mut ctx, alloc, config.enforce_condition2, &mut canon),
                            )
                        })
                        .collect();
                    (infos, canon)
                })
            })
            .collect();
        for h in handles {
            let (infos, canon) = h.join().expect("automata worker panicked");
            out.extend(infos);
            canon_total += canon;
        }
    });
    stats.canon_time = canon_total;
    out
}

fn collect_size_stats(automata: &FxHashMap<AllocId, RootInfo>, stats: &mut MahjongStats) {
    let mut nfa_total = 0usize;
    let record_sizes = obs::enabled();
    let (nfa_hist, dfa_hist) = (
        obs::histogram("mahjong.nfa_states"),
        obs::histogram("mahjong.dfa_states"),
    );
    for info in automata.values() {
        nfa_total += info.nfa_states;
        stats.max_nfa_states = stats.max_nfa_states.max(info.nfa_states);
        if record_sizes {
            nfa_hist.record(info.nfa_states as u64);
            dfa_hist.record(info.dfa_states as u64);
        }
        match info.automaton {
            RootAutomaton::NotSingleType => stats.not_single_type += 1,
            RootAutomaton::Dfa(_) => stats.dfa_built += 1,
        }
    }
    if !automata.is_empty() {
        stats.avg_nfa_states = nfa_total as f64 / automata.len() as f64;
    }
}

/// Merges within each type group by canonical signature: objects with
/// equal signatures are equivalent (minimal-DFA uniqueness), so each
/// group reduces to one hash-bucket pass. Returns the union pairs.
///
/// In `paranoid` mode every signature-directed merge is re-verified
/// with Hopcroft–Karp and the group's class representatives are checked
/// pairwise distinct; the runs are counted in `stats.hk_runs`. A
/// detected collision (signatures equal, automata inequivalent) is
/// counted in `mahjong.sig_collisions` and the object is *not* merged —
/// precision is lost to a finer partition, never soundness.
fn merge_by_signature(
    groups: &[Vec<AllocId>],
    automata: &FxHashMap<AllocId, RootInfo>,
    paranoid: bool,
    stats: &mut MahjongStats,
) -> Vec<(AllocId, AllocId)> {
    let dfa_of = |alloc: AllocId| -> &Dfa {
        match &automata[&alloc].automaton {
            RootAutomaton::Dfa(d) => d,
            RootAutomaton::NotSingleType => unreachable!("reps are always DFAs"),
        }
    };
    let mut pairs = Vec::new();
    for group in groups {
        // Bucket -> class representatives (normally exactly one; more
        // only after a detected collision in paranoid mode).
        let mut buckets: FxHashMap<DfaSignature, Vec<AllocId>> = FxHashMap::default();
        let mut rep_order: Vec<AllocId> = Vec::new();
        for &alloc in group {
            let info = &automata[&alloc];
            let RootAutomaton::Dfa(dfa) = &info.automaton else {
                continue; // fails SINGLETYPE-CHECK: never mergeable
            };
            let sig = info.signature.expect("signature computed for every DFA");
            let reps = buckets.entry(sig).or_default();
            let mut merged = false;
            for &rep in reps.iter() {
                if paranoid {
                    stats.hk_runs += 1;
                    if dfa.equivalent(dfa_of(rep)) {
                        pairs.push((rep, alloc));
                        merged = true;
                        break;
                    }
                    obs::counter("mahjong.sig_collisions").inc();
                } else {
                    debug_assert!(
                        dfa.equivalent(dfa_of(rep)),
                        "signature collision: {alloc:?} vs {rep:?} share {sig:?} \
                         but are inequivalent"
                    );
                    pairs.push((rep, alloc));
                    merged = true;
                    break;
                }
            }
            if !merged {
                reps.push(alloc);
                rep_order.push(alloc);
            }
        }
        stats.sig_buckets += buckets.len();
        if paranoid {
            // Completeness direction: distinct signatures must mean
            // distinct behaviour, so representatives never merge.
            for (i, &a) in rep_order.iter().enumerate() {
                for &b in &rep_order[i + 1..] {
                    stats.hk_runs += 1;
                    assert!(
                        !dfa_of(a).equivalent(dfa_of(b)),
                        "canonicalization incomplete: {a:?} ≡ {b:?} \
                         but their signatures differ"
                    );
                }
            }
        }
    }
    pairs
}

/// Applies the union pairs and builds the merged object map with a
/// deterministic representative per class (Algorithm 1, lines 14–16).
fn build_mom(
    fpg: &FieldPointsToGraph,
    pairs: Vec<(AllocId, AllocId)>,
    config: &MahjongConfig,
    stats: &mut MahjongStats,
) -> MergedObjectMap {
    let n = fpg.alloc_count();
    let mut sets = DisjointSets::new(n);
    for (a, b) in pairs {
        sets.union(a.index(), b.index());
    }
    let mut repr = vec![AllocId::from_usize(0); n];
    for class in sets.classes() {
        let chosen = match config.representative {
            Representative::Smallest => *class.first().expect("non-empty class"),
            Representative::Largest => *class.last().expect("non-empty class"),
        };
        for member in class {
            repr[member] = AllocId::from_usize(chosen);
        }
    }
    let mom = MergedObjectMap::new(repr);
    stats.merged_objects = {
        let mut reprs: Vec<AllocId> = fpg
            .present_allocs()
            .map(|a| pta::HeapAbstraction::repr(&mom, a))
            .collect();
        reprs.sort_unstable();
        reprs.dedup();
        reprs.len()
    };
    mom
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpg::FpgBuilder;

    /// Figure 1's FPG: three A roots (one holding a B, two holding Cs),
    /// plus the stored B/C objects themselves.
    fn figure1_fpg() -> FieldPointsToGraph {
        let mut b = FpgBuilder::new();
        let a = b.ty("A");
        let bb = b.ty("B");
        let c = b.ty("C");
        let f = b.field("f");
        let o1 = b.alloc(a);
        let o2 = b.alloc(a);
        let o3 = b.alloc(a);
        let o4 = b.alloc(bb);
        let o5 = b.alloc(c);
        let o6 = b.alloc(c);
        b.edge(o1, f, o4);
        b.edge(o2, f, o5);
        b.edge(o3, f, o6);
        b.finish()
    }

    #[test]
    fn figure1_merges_two_classes() {
        let out = merge_equivalent_objects(&figure1_fpg(), &MahjongConfig::default());
        assert_eq!(out.stats.objects, 6);
        assert_eq!(out.stats.merged_objects, 4);
        let sizes: Vec<usize> = out
            .mom
            .classes()
            .iter()
            .map(Vec::len)
            .filter(|&s| s > 1)
            .collect();
        assert_eq!(sizes, vec![2, 2], "{{o2,o3}} and {{o5,o6}}");
    }

    #[test]
    fn fast_path_performs_zero_hk_runs() {
        let out = merge_equivalent_objects(&figure1_fpg(), &MahjongConfig::default());
        assert_eq!(out.stats.hk_runs, 0);
        assert_eq!(out.stats.equivalence_checks, 0);
        // Three mergeable groups contribute one bucket each: {o2,o3}
        // and {o5,o6} share theirs; o1 sits alone in the A group's
        // second bucket.
        assert_eq!(out.stats.sig_buckets, 3);
        assert_eq!(out.stats.dfa_built, 5, "o1,o2,o3 and o5,o6 (o4 is singleton-B)");
    }

    #[test]
    fn pairwise_oracle_matches_signature_path() {
        let fpg = figure1_fpg();
        let fast = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        let oracle = merge_equivalent_objects_pairwise(&fpg, &MahjongConfig::default());
        assert_eq!(fast.mom, oracle.mom, "bit-identical merged object maps");
        assert_eq!(fast.stats.merged_objects, oracle.stats.merged_objects);
        assert_eq!(fast.stats.sig_buckets, oracle.stats.sig_buckets);
        assert!(oracle.stats.hk_runs > 0, "the oracle really ran HK");
    }

    #[test]
    fn paranoid_mode_verifies_with_hk() {
        let fpg = figure1_fpg();
        let fast = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        let paranoid = merge_equivalent_objects(
            &fpg,
            &MahjongConfig {
                paranoid: true,
                ..MahjongConfig::default()
            },
        );
        assert_eq!(fast.mom, paranoid.mom);
        // Two merges re-verified + one representative-distinctness
        // check in the A group ({o2} rep vs o1 rep).
        assert_eq!(paranoid.stats.hk_runs, 3);
        assert_eq!(paranoid.stats.equivalence_checks, 3);
    }

    #[test]
    fn parallel_matches_sequential_on_figure1() {
        let fpg = figure1_fpg();
        let seq = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        let par = merge_equivalent_objects(
            &fpg,
            &MahjongConfig {
                threads: 4,
                ..MahjongConfig::default()
            },
        );
        assert_eq!(seq.mom, par.mom);
    }

    #[test]
    fn representative_choice_is_deterministic() {
        let fpg = figure1_fpg();
        let small = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        let large = merge_equivalent_objects(
            &fpg,
            &MahjongConfig {
                representative: Representative::Largest,
                ..MahjongConfig::default()
            },
        );
        use pta::HeapAbstraction;
        // {o2, o3}: smallest picks o2, largest picks o3.
        let o2 = AllocId::from_usize(1);
        let o3 = AllocId::from_usize(2);
        assert_eq!(small.mom.repr(o3), o2);
        assert_eq!(large.mom.repr(o2), o3);
    }

    #[test]
    fn singleton_type_groups_are_skipped_entirely() {
        // One object per type: nothing to compare, zero checks, zero
        // DFAs built.
        let mut b = FpgBuilder::new();
        let t1 = b.ty("T1");
        let t2 = b.ty("T2");
        b.alloc(t1);
        b.alloc(t2);
        let out = merge_equivalent_objects(&b.finish(), &MahjongConfig::default());
        assert_eq!(out.stats.equivalence_checks, 0);
        assert_eq!(out.stats.dfa_built, 0);
        assert_eq!(out.stats.sig_buckets, 0);
        assert_eq!(out.stats.merged_objects, 2);
    }

    #[test]
    fn transitive_merging_needs_no_pairwise_checks() {
        // Ten identical leaf objects: one signature bucket absorbs all
        // of them — no equivalence run ever executes (the pairwise
        // predecessor needed 9 here).
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        for _ in 0..10 {
            b.alloc(t);
        }
        let fpg = b.finish();
        let out = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        assert_eq!(out.stats.merged_objects, 1);
        assert_eq!(out.stats.hk_runs, 0);
        assert_eq!(out.stats.sig_buckets, 1);
        let oracle = merge_equivalent_objects_pairwise(&fpg, &MahjongConfig::default());
        assert_eq!(oracle.stats.hk_runs, 9, "one comparison per non-rep member");
        assert_eq!(out.mom, oracle.mom);
    }

    #[test]
    fn condition2_failures_are_counted_and_never_merge() {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let x = b.ty("X");
        let y = b.ty("Y");
        let f = b.field("f");
        // Two T objects, each with a mixed-type field; and one clean pair.
        let bad1 = b.alloc(t);
        let bad2 = b.alloc(t);
        let ox = b.alloc(x);
        let oy = b.alloc(y);
        for bad in [bad1, bad2] {
            b.edge(bad, f, ox);
            b.edge(bad, f, oy);
        }
        let out = merge_equivalent_objects(&b.finish(), &MahjongConfig::default());
        assert_eq!(out.stats.not_single_type, 2);
        use pta::HeapAbstraction;
        assert_ne!(out.mom.repr(bad1), out.mom.repr(bad2));
        // Without Condition 2 they do merge.
        let loose = merge_equivalent_objects(
            &figure3_like(),
            &MahjongConfig {
                enforce_condition2: false,
                ..MahjongConfig::default()
            },
        );
        assert!(loose.stats.merged_objects < loose.stats.objects);
    }

    fn figure3_like() -> FieldPointsToGraph {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let x = b.ty("X");
        let y = b.ty("Y");
        let f = b.field("f");
        let t1 = b.alloc(t);
        let t2 = b.alloc(t);
        let ox = b.alloc(x);
        let oy = b.alloc(y);
        for tt in [t1, t2] {
            b.edge(tt, f, ox);
            b.edge(tt, f, oy);
        }
        b.finish()
    }

    #[test]
    fn nfa_stats_are_collected() {
        let out = merge_equivalent_objects(&figure1_fpg(), &MahjongConfig::default());
        assert!(out.stats.avg_nfa_states >= 1.0);
        assert!(out.stats.max_nfa_states >= 2, "A roots reach their payload");
        assert!(out.stats.dfa_time <= out.stats.dfa_time + out.stats.merge_time);
    }

    #[test]
    fn lpt_shard_assignment_balances_load() {
        let mk = |n: usize| (0..n).map(AllocId::from_usize).collect::<Vec<_>>();
        let groups = vec![mk(5), mk(4), mk(3), mk(3), mk(1)];
        let shards = assign_shards(&groups, 2);
        let loads: Vec<usize> = shards
            .iter()
            .map(|idxs| idxs.iter().map(|&g| groups[g].len()).sum())
            .collect();
        // LPT: 5+3 vs 4+3+1 — perfectly balanced. Round-robin by
        // descending size gave 5+3+1=9 vs 4+3=7.
        assert_eq!(loads, vec![8, 8]);
        assert_eq!(shard_skew_pct(&loads), 0.0);
        // Every group assigned exactly once.
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
        // Skew reports imbalance when present.
        assert!(shard_skew_pct(&[9, 7]) > 12.0);
    }
}
