//! The Mahjong main algorithm (paper Algorithm 1): merging
//! type-consistent objects with a disjoint-set forest, and the
//! synchronization-free parallel driver of Section 5.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use automata::Dfa;
use dsu::DisjointSets;
use jir::AllocId;
use pta::MergedObjectMap;

use crate::build::{dfa_for_root, RootAutomaton};
use crate::fpg::{FieldPointsToGraph, FpgNode, NodeType};

/// Which member of an equivalence class becomes its representative.
///
/// The paper notes (Example 3.2 / Figure 7) that under type-sensitivity
/// the representative choice can change precision; the engine picks
/// deterministically so experiments are reproducible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Representative {
    /// The class member with the smallest allocation-site id (default).
    #[default]
    Smallest,
    /// The class member with the largest allocation-site id — used by
    /// the Figure 7 experiment to demonstrate representative-dependence
    /// of M-ktype.
    Largest,
}

/// Configuration of the Mahjong pipeline.
#[derive(Clone, Copy, Debug)]
pub struct MahjongConfig {
    /// Worker threads for the type-consistency checks (1 = sequential).
    pub threads: usize,
    /// Enforce Condition 2 of Definition 2.1 (SINGLETYPE-CHECK). The
    /// `false` setting is the ablation of paper Figure 3 / Example 2.4.
    pub enforce_condition2: bool,
    /// Model never-assigned fields as pointing to the dummy null node.
    pub model_null: bool,
    /// Representative choice per equivalence class.
    pub representative: Representative,
}

impl Default for MahjongConfig {
    fn default() -> Self {
        MahjongConfig {
            threads: 1,
            enforce_condition2: true,
            model_null: true,
            representative: Representative::Smallest,
        }
    }
}

/// Statistics of one Mahjong run (the paper reports these in
/// Section 6.1).
///
/// This per-run view is the stable public API; at the end of every run
/// the same numbers are published into the process-global [`obs`]
/// registry under `mahjong.*` names (see [`MahjongStats::publish`]).
#[derive(Clone, Debug, Default)]
pub struct MahjongStats {
    /// Time spent building per-object DFAs.
    pub dfa_time: Duration,
    /// Time spent on pairwise equivalence checks and unioning.
    pub merge_time: Duration,
    /// Objects (present allocation sites) examined.
    pub objects: usize,
    /// Abstract objects after merging (equivalence classes over present
    /// objects).
    pub merged_objects: usize,
    /// Objects failing SINGLETYPE-CHECK.
    pub not_single_type: usize,
    /// Equivalence tests performed.
    pub equivalence_checks: u64,
    /// Average NFA size (reachable FPG nodes per object).
    pub avg_nfa_states: f64,
    /// Largest NFA (reachable FPG nodes).
    pub max_nfa_states: usize,
}

impl MahjongStats {
    /// Publishes the run's counters into the global [`obs`] registry
    /// (no-op while recording is disabled). Counters are monotonic, so
    /// repeated runs aggregate.
    pub fn publish(&self) {
        if !obs::enabled() {
            return;
        }
        obs::counter("mahjong.objects").add(self.objects as u64);
        obs::counter("mahjong.merged_objects").add(self.merged_objects as u64);
        obs::counter("mahjong.not_single_type").add(self.not_single_type as u64);
        obs::counter("mahjong.equivalence_checks").add(self.equivalence_checks);
        obs::gauge("mahjong.max_nfa_states").set(self.max_nfa_states as i64);
    }
}

/// The output of the Mahjong pipeline: the merged object map plus run
/// statistics.
#[derive(Clone, Debug)]
pub struct MahjongOutput {
    /// The new heap abstraction (paper Definition 2.2), ready to drive a
    /// [`pta::AnalysisConfig`].
    pub mom: MergedObjectMap,
    /// Run statistics.
    pub stats: MahjongStats,
}

/// Runs Algorithm 1 over an FPG: groups objects by type, builds their
/// automata, and merges type-consistent ones.
pub fn merge_equivalent_objects(fpg: &FieldPointsToGraph, config: &MahjongConfig) -> MahjongOutput {
    let n = fpg.alloc_count();
    let mut stats = MahjongStats::default();

    // Group present objects by exact type (TYPEOF guard, Algorithm 1
    // line 5). Singleton groups can never merge, so skip their DFAs.
    let mut groups: HashMap<jir::TypeId, Vec<AllocId>> = HashMap::new();
    for alloc in fpg.present_allocs() {
        stats.objects += 1;
        if let NodeType::Type(ty) = fpg.node_type(FpgNode::Alloc(alloc)) {
            groups.entry(ty).or_default().push(alloc);
        }
    }
    let groups: Vec<Vec<AllocId>> = groups
        .into_values()
        .filter(|members| members.len() > 1)
        .collect();

    // Phase 1: build all shared automata beforehand (Section 5), in
    // parallel when configured.
    let dfa_start = Instant::now();
    let automata = {
        let _phase = obs::span("mahjong.automata_build");
        let candidates: Vec<AllocId> = groups.iter().flatten().copied().collect();
        build_automata(fpg, &candidates, config)
    };
    stats.dfa_time = dfa_start.elapsed();
    let mut nfa_total = 0usize;
    let record_sizes = obs::enabled();
    let (nfa_hist, dfa_hist) = (
        obs::histogram("mahjong.nfa_states"),
        obs::histogram("mahjong.dfa_states"),
    );
    for info in automata.values() {
        nfa_total += info.nfa_states;
        stats.max_nfa_states = stats.max_nfa_states.max(info.nfa_states);
        if record_sizes {
            nfa_hist.record(info.nfa_states as u64);
            dfa_hist.record(info.dfa_states as u64);
        }
        if matches!(info.automaton, RootAutomaton::NotSingleType) {
            stats.not_single_type += 1;
        }
    }
    if !automata.is_empty() {
        stats.avg_nfa_states = nfa_total as f64 / automata.len() as f64;
    }

    // Phase 2: per-type merging. Threads own disjoint type groups, so no
    // synchronization is needed; each emits union pairs applied below.
    let merge_start = Instant::now();
    let (pairs, checks) = {
        let _phase = obs::span("mahjong.equivalence_check");
        if config.threads > 1 {
            merge_parallel(&groups, &automata, config.threads)
        } else {
            merge_groups(&groups, &automata)
        }
    };
    stats.equivalence_checks = checks;

    // Phase 3: the merged object map (Algorithm 1, lines 14–16), with a
    // deterministic representative per class.
    let mut sets = DisjointSets::new(n);
    for (a, b) in pairs {
        sets.union(a.index(), b.index());
    }
    let mut repr = vec![AllocId::from_usize(0); n];
    for class in sets.classes() {
        let chosen = match config.representative {
            Representative::Smallest => *class.first().expect("non-empty class"),
            Representative::Largest => *class.last().expect("non-empty class"),
        };
        for member in class {
            repr[member] = AllocId::from_usize(chosen);
        }
    }
    let mom = MergedObjectMap::new(repr);
    stats.merge_time = merge_start.elapsed();
    stats.merged_objects = {
        let mut reprs: Vec<AllocId> = fpg
            .present_allocs()
            .map(|a| pta::HeapAbstraction::repr(&mom, a))
            .collect();
        reprs.sort_unstable();
        reprs.dedup();
        reprs.len()
    };
    stats.publish();
    MahjongOutput { mom, stats }
}

/// Per-object automaton info.
struct RootInfo {
    automaton: RootAutomaton,
    nfa_states: usize,
    dfa_states: usize,
}

fn build_automata(
    fpg: &FieldPointsToGraph,
    candidates: &[AllocId],
    config: &MahjongConfig,
) -> HashMap<AllocId, RootInfo> {
    let build_one = |&alloc: &AllocId| {
        let (automaton, bstats) = dfa_for_root(fpg, alloc, config.enforce_condition2);
        (
            alloc,
            RootInfo {
                automaton,
                nfa_states: bstats.nfa_states,
                dfa_states: bstats.dfa_states,
            },
        )
    };
    if config.threads <= 1 || candidates.len() < 64 {
        return candidates.iter().map(build_one).collect();
    }
    let chunk = candidates.len().div_ceil(config.threads);
    let mut out = HashMap::with_capacity(candidates.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(build_one).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("automata worker panicked"));
        }
    });
    out
}

/// Merges within each type group: every object is compared against the
/// current class representatives of its group; transitivity of ≡ makes
/// one match sufficient.
fn merge_groups(
    groups: &[Vec<AllocId>],
    automata: &HashMap<AllocId, RootInfo>,
) -> (Vec<(AllocId, AllocId)>, u64) {
    let mut pairs = Vec::new();
    let mut checks = 0u64;
    for group in groups {
        let mut reps: Vec<(AllocId, &Dfa)> = Vec::new();
        for &alloc in group {
            let RootAutomaton::Dfa(dfa) = &automata[&alloc].automaton else {
                continue; // fails SINGLETYPE-CHECK: never mergeable
            };
            let mut merged = false;
            for &(rep, rep_dfa) in &reps {
                checks += 1;
                if dfa.equivalent(rep_dfa) {
                    pairs.push((rep, alloc));
                    merged = true;
                    break;
                }
            }
            if !merged {
                reps.push((alloc, dfa));
            }
        }
    }
    (pairs, checks)
}

/// The synchronization-free parallel scheme of Section 5: different
/// threads merge objects of different types, reading the pre-built
/// automata concurrently and writing only thread-local union lists.
fn merge_parallel(
    groups: &[Vec<AllocId>],
    automata: &HashMap<AllocId, RootInfo>,
    threads: usize,
) -> (Vec<(AllocId, AllocId)>, u64) {
    // Round-robin groups by descending size for rough load balance.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(groups[i].len()));
    let mut assignment: Vec<Vec<&Vec<AllocId>>> = vec![Vec::new(); threads];
    for (i, &g) in order.iter().enumerate() {
        assignment[i % threads].push(&groups[g]);
    }

    let mut pairs = Vec::new();
    let mut checks = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = assignment
            .into_iter()
            .map(|my_groups| {
                scope.spawn(move || {
                    let owned: Vec<Vec<AllocId>> =
                        my_groups.into_iter().cloned().collect();
                    merge_groups(&owned, automata)
                })
            })
            .collect();
        for h in handles {
            let (p, c) = h.join().expect("merge worker panicked");
            pairs.extend(p);
            checks += c;
        }
    });
    (pairs, checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpg::FpgBuilder;

    /// Figure 1's FPG: three A roots (one holding a B, two holding Cs),
    /// plus the stored B/C objects themselves.
    fn figure1_fpg() -> FieldPointsToGraph {
        let mut b = FpgBuilder::new();
        let a = b.ty("A");
        let bb = b.ty("B");
        let c = b.ty("C");
        let f = b.field("f");
        let o1 = b.alloc(a);
        let o2 = b.alloc(a);
        let o3 = b.alloc(a);
        let o4 = b.alloc(bb);
        let o5 = b.alloc(c);
        let o6 = b.alloc(c);
        b.edge(o1, f, o4);
        b.edge(o2, f, o5);
        b.edge(o3, f, o6);
        b.finish()
    }

    #[test]
    fn figure1_merges_two_classes() {
        let out = merge_equivalent_objects(&figure1_fpg(), &MahjongConfig::default());
        assert_eq!(out.stats.objects, 6);
        assert_eq!(out.stats.merged_objects, 4);
        let sizes: Vec<usize> = out
            .mom
            .classes()
            .iter()
            .map(Vec::len)
            .filter(|&s| s > 1)
            .collect();
        assert_eq!(sizes, vec![2, 2], "{{o2,o3}} and {{o5,o6}}");
    }

    #[test]
    fn parallel_matches_sequential_on_figure1() {
        let fpg = figure1_fpg();
        let seq = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        let par = merge_equivalent_objects(
            &fpg,
            &MahjongConfig {
                threads: 4,
                ..MahjongConfig::default()
            },
        );
        assert_eq!(seq.mom, par.mom);
    }

    #[test]
    fn representative_choice_is_deterministic() {
        let fpg = figure1_fpg();
        let small = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        let large = merge_equivalent_objects(
            &fpg,
            &MahjongConfig {
                representative: Representative::Largest,
                ..MahjongConfig::default()
            },
        );
        use pta::HeapAbstraction;
        // {o2, o3}: smallest picks o2, largest picks o3.
        let o2 = AllocId::from_usize(1);
        let o3 = AllocId::from_usize(2);
        assert_eq!(small.mom.repr(o3), o2);
        assert_eq!(large.mom.repr(o2), o3);
    }

    #[test]
    fn singleton_type_groups_are_skipped_entirely() {
        // One object per type: nothing to compare, zero checks.
        let mut b = FpgBuilder::new();
        let t1 = b.ty("T1");
        let t2 = b.ty("T2");
        b.alloc(t1);
        b.alloc(t2);
        let out = merge_equivalent_objects(&b.finish(), &MahjongConfig::default());
        assert_eq!(out.stats.equivalence_checks, 0);
        assert_eq!(out.stats.merged_objects, 2);
    }

    #[test]
    fn transitive_merging_uses_one_representative_comparison() {
        // Ten identical leaf objects: each new object is compared only
        // against the single existing representative — 9 checks, not 45.
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        for _ in 0..10 {
            b.alloc(t);
        }
        let out = merge_equivalent_objects(&b.finish(), &MahjongConfig::default());
        assert_eq!(out.stats.merged_objects, 1);
        assert_eq!(out.stats.equivalence_checks, 9);
    }

    #[test]
    fn condition2_failures_are_counted_and_never_merge() {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let x = b.ty("X");
        let y = b.ty("Y");
        let f = b.field("f");
        // Two T objects, each with a mixed-type field; and one clean pair.
        let bad1 = b.alloc(t);
        let bad2 = b.alloc(t);
        let ox = b.alloc(x);
        let oy = b.alloc(y);
        for bad in [bad1, bad2] {
            b.edge(bad, f, ox);
            b.edge(bad, f, oy);
        }
        let out = merge_equivalent_objects(&b.finish(), &MahjongConfig::default());
        assert_eq!(out.stats.not_single_type, 2);
        use pta::HeapAbstraction;
        assert_ne!(out.mom.repr(bad1), out.mom.repr(bad2));
        // Without Condition 2 they do merge.
        let loose = merge_equivalent_objects(
            &figure3_like(),
            &MahjongConfig {
                enforce_condition2: false,
                ..MahjongConfig::default()
            },
        );
        assert!(loose.stats.merged_objects < loose.stats.objects);
    }

    fn figure3_like() -> FieldPointsToGraph {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let x = b.ty("X");
        let y = b.ty("Y");
        let f = b.field("f");
        let t1 = b.alloc(t);
        let t2 = b.alloc(t);
        let ox = b.alloc(x);
        let oy = b.alloc(y);
        for tt in [t1, t2] {
            b.edge(tt, f, ox);
            b.edge(tt, f, oy);
        }
        b.finish()
    }

    #[test]
    fn nfa_stats_are_collected() {
        let out = merge_equivalent_objects(&figure1_fpg(), &MahjongConfig::default());
        assert!(out.stats.avg_nfa_states >= 1.0);
        assert!(out.stats.max_nfa_states >= 2, "A roots reach their payload");
        assert!(out.stats.dfa_time <= out.stats.dfa_time + out.stats.merge_time);
    }
}
