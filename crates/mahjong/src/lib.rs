//! # mahjong — a heap abstraction that merges equivalent automata
//!
//! A from-scratch reproduction of the system in *Efficient and Precise
//! Points-to Analysis: Modeling the Heap by Merging Equivalent Automata*
//! (Tan, Li, Xue — PLDI 2017).
//!
//! Mahjong replaces the allocation-site heap abstraction with a coarser
//! one tailored to *type-dependent* clients (call-graph construction,
//! devirtualization, may-fail casting): two objects of the same type are
//! merged when they are **type-consistent** — every sequence of field
//! accesses from either reaches objects of one common type
//! (Definition 2.1). Checking this naively is exponential; the paper's
//! key move is to view each object's field points-to graph as a
//! sequential automaton (Figure 4) and test *automata equivalence* in
//! near-linear time with Hopcroft–Karp.
//!
//! The pipeline (paper Figure 5):
//!
//! 1. a fast context-insensitive pre-analysis ([`pta::pre_analysis`])
//!    produces the field points-to graph ([`FieldPointsToGraph`]);
//! 2. per object, the NFA builder + DFA converter (Algorithms 2–3,
//!    [`build`] module) produce a deterministic automaton, bailing out on
//!    objects that fail SINGLETYPE-CHECK (Condition 2);
//! 3. each automaton is canonicalized once
//!    ([`automata::Dfa::signature`]: minimization + BFS renumbering +
//!    128-bit fingerprint), so type-consistency is decided by signature
//!    equality instead of the paper's per-pair Hopcroft–Karp runs (the
//!    pairwise pipeline survives as
//!    [`merge_equivalent_objects_pairwise`], the verification oracle,
//!    and as the [`MahjongConfig::paranoid`] runtime check);
//! 4. the heap modeler (Algorithm 1, [`merge_equivalent_objects`])
//!    produces the merged object map ([`pta::MergedObjectMap`]) that any
//!    allocation-site-based points-to analysis can drop in.
//!
//! # Examples
//!
//! End-to-end on the paper's Figure 1 program:
//!
//! ```
//! use mahjong::{build_heap_abstraction, MahjongConfig};
//! use pta::{AnalysisConfig, ObjectSensitive, HeapAbstraction};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = jir::parse(
//!     "class A {
//!        field f: A;
//!        method foo(this) { return; }
//!      }
//!      class B extends A { method foo(this) { return; } }
//!      class C extends A {
//!        method foo(this) { return; }
//!        entry static method main() {
//!          x = new A; y = new A; z = new A;
//!          b = new B; c5 = new C; c6 = new C;
//!          x.f = b; y.f = c5; z.f = c6;
//!          a = z.f;
//!          virt a.foo();
//!          c = (C) a;
//!          return;
//!        }
//!      }",
//! )?;
//! let pre = pta::pre_analysis(&program)?;
//! let out = build_heap_abstraction(&program, &pre, &MahjongConfig::default());
//! // o2 and o3 merge; o1 stays separate (its f holds a B); the two C
//! // objects merge; so 6 sites become 4 abstract objects.
//! assert_eq!(out.stats.merged_objects, 4);
//!
//! // The map drops into any allocation-site-based analysis:
//! let m2obj = AnalysisConfig::new(ObjectSensitive::new(2), out.mom).run(&program)?;
//! assert!(m2obj.object_count() <= 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod build;
mod fpg;
mod merge;
pub mod oracle;
pub mod partition;

pub use fpg::{FieldPointsToGraph, FpgBuilder, FpgNode, NodeType};
pub use merge::{
    merge_equivalent_objects, merge_equivalent_objects_pairwise, MahjongConfig, MahjongOutput,
    MahjongStats, Representative,
};
pub use partition::HeapPartition;

use jir::Program;
use pta::AnalysisResult;

/// Runs the full Mahjong pipeline: FPG construction from a pre-analysis
/// result, then object merging (Algorithm 1).
///
/// `pre` should be the result of a context-insensitive allocation-site
/// analysis ([`pta::pre_analysis`]); using a context-sensitive result is
/// allowed (objects collapse to their allocation sites) but wastes work.
pub fn build_heap_abstraction(
    program: &Program,
    pre: &AnalysisResult,
    config: &MahjongConfig,
) -> MahjongOutput {
    let fpg = FieldPointsToGraph::from_analysis(program, pre, config.model_null);
    merge_equivalent_objects(&fpg, config)
}

/// Builds the FPG and reports its size alongside the merge output —
/// convenience for the benchmark harness, which reports FPG statistics
/// (paper Section 6.1.1) without building the graph twice.
pub fn build_with_fpg(
    program: &Program,
    pre: &AnalysisResult,
    config: &MahjongConfig,
) -> (FieldPointsToGraph, MahjongOutput) {
    let fpg = FieldPointsToGraph::from_analysis(program, pre, config.model_null);
    let out = merge_equivalent_objects(&fpg, config);
    (fpg, out)
}
