//! `mahjong-cli` — the standalone tool: read a `.jir` program, run the
//! pre-analysis, and print the merged-object map.
//!
//! ```text
//! mahjong-cli program.jir [--no-condition2] [--no-null] [--threads N] [--largest-repr]
//!             [--paranoid] [--budget SECS] [--metrics-json PATH] [--trace PATH]
//! ```
//!
//! `--threads` shards both pipeline stages: the pre-analysis solver's
//! parallel wave propagation and Mahjong's automaton construction
//! (results are bit-identical for any count). `--paranoid` re-verifies
//! every signature-directed merge with Hopcroft–Karp (the runs appear
//! in the `mahjong.hk_runs` counter, which is 0 on the default fast
//! path). `--metrics-json` writes
//! the telemetry registry as JSON-Lines and `--trace` writes a Chrome
//! `trace_event` file (open in `about:tracing` / Perfetto). Set
//! `OBS_DISABLE=1` to turn all recording into no-ops.
//!
//! The paper ships Mahjong as a standalone tool that any
//! allocation-site-based points-to framework can call; this binary is
//! that interface for JIR programs.

use mahjong::{build_with_fpg, MahjongConfig, Representative};
use pta::{AllocSiteAbstraction, AnalysisConfig, ContextInsensitive};

fn main() {
    let mut path: Option<String> = None;
    let mut config = MahjongConfig::default();
    let mut budget_secs: Option<u64> = None;
    let mut metrics_json: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-condition2" => config.enforce_condition2 = false,
            "--no-null" => config.model_null = false,
            "--largest-repr" => config.representative = Representative::Largest,
            "--paranoid" => config.paranoid = true,
            "--threads" => {
                config.threads = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a number"));
            }
            "--budget" => {
                budget_secs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--budget needs a number of seconds")),
                );
            }
            "--metrics-json" => {
                metrics_json =
                    Some(args.next().unwrap_or_else(|| die("--metrics-json needs a path")));
            }
            "--trace" => {
                trace = Some(args.next().unwrap_or_else(|| die("--trace needs a path")));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mahjong-cli <program.jir> [--no-condition2] [--no-null] \
                     [--threads N] [--largest-repr] [--paranoid] [--budget SECS] \
                     [--metrics-json PATH] [--trace PATH]"
                );
                return;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let path = path.unwrap_or_else(|| die("missing input program"));
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let program = jir::parse(&source).unwrap_or_else(|e| die(&format!("parse error: {e}")));

    // The pre-analysis is a plain context-insensitive run; `--budget`
    // routes through the same `AnalysisConfig` builder every other
    // entry point uses, and `--threads` shards its wave propagation
    // exactly like the merge phase (results stay bit-identical).
    let mut pre_cfg = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .threads(config.threads);
    if let Some(secs) = budget_secs {
        pre_cfg = pre_cfg.time_limit_secs(secs);
    }
    let pre = {
        let _phase = obs::span("pre_analysis");
        pre_cfg
            .run(&program)
            .unwrap_or_else(|e| die(&format!("pre-analysis exceeded its budget: {e}")))
    };
    let (fpg, out) = build_with_fpg(&program, &pre, &config);

    println!(
        "# mahjong: {} reachable objects -> {} abstract objects ({:.0}% reduction)",
        out.stats.objects,
        out.stats.merged_objects,
        100.0 * (1.0 - out.stats.merged_objects as f64 / out.stats.objects.max(1) as f64)
    );
    println!(
        "# fpg: {} edges; nfa avg {:.0} states, max {}; {} objects fail SINGLETYPE-CHECK",
        fpg.edge_count(),
        out.stats.avg_nfa_states,
        out.stats.max_nfa_states,
        out.stats.not_single_type
    );
    println!("# merged classes (size > 1):");
    for class in out.mom.classes() {
        if class.len() < 2 {
            continue;
        }
        let labels: Vec<String> = class.iter().map(|&a| program.alloc_label(a)).collect();
        println!("{}", labels.join(" ≡ "));
    }

    if let Some(p) = metrics_json {
        std::fs::write(&p, obs::export_jsonl())
            .unwrap_or_else(|e| die(&format!("cannot write {p}: {e}")));
    }
    if let Some(p) = trace {
        std::fs::write(&p, obs::export_chrome_trace())
            .unwrap_or_else(|e| die(&format!("cannot write {p}: {e}")));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mahjong-cli: {msg}");
    std::process::exit(1);
}
