//! A direct, bounded-depth implementation of Definition 2.1 — used as an
//! independent test oracle for the automata-based fast path.
//!
//! The paper notes that enumerating field access paths is exponential in
//! the presence of cycles; this module does exactly that (with a depth
//! bound), which is why the production pipeline uses automata instead.
//! For acyclic graphs a depth bound of the longest path makes the oracle
//! exact; for cyclic graphs agreement at increasing depths provides
//! strong cross-validation.

use std::collections::BTreeSet;

use jir::AllocId;

use crate::fpg::{FieldPointsToGraph, FpgNode, NodeType};

/// Checks Definition 2.1 on `a` and `b` for every field-name sequence of
/// length at most `depth`:
///
/// 1. the type sets reached from `a` and `b` along the sequence are
///    equal, and
/// 2. each such type set has exactly one element (when
///    `enforce_condition2`).
///
/// Returns `false` as soon as any sequence violates a condition.
pub fn type_consistent_bounded(
    fpg: &FieldPointsToGraph,
    a: AllocId,
    b: AllocId,
    depth: usize,
    enforce_condition2: bool,
) -> bool {
    if fpg.node_type(FpgNode::Alloc(a)) != fpg.node_type(FpgNode::Alloc(b)) {
        return false;
    }
    // Breadth-first over field sequences: maintain the frontier node
    // sets reached from each root by the same sequence.
    let mut frontier: Vec<(BTreeSet<FpgNode>, BTreeSet<FpgNode>)> = vec![(
        BTreeSet::from([FpgNode::Alloc(a)]),
        BTreeSet::from([FpgNode::Alloc(b)]),
    )];
    for _ in 0..depth {
        let mut next_frontier = Vec::new();
        for (sa, sb) in frontier {
            // Extend by every field either side defines.
            let mut fields: BTreeSet<jir::FieldId> = BTreeSet::new();
            for &n in sa.iter().chain(sb.iter()) {
                fields.extend(fpg.fields_of(n));
            }
            for field in fields {
                let na: BTreeSet<FpgNode> = sa
                    .iter()
                    .flat_map(|&n| fpg.successors(n, field))
                    .collect();
                let nb: BTreeSet<FpgNode> = sb
                    .iter()
                    .flat_map(|&n| fpg.successors(n, field))
                    .collect();
                let ta = type_set(fpg, &na);
                let tb = type_set(fpg, &nb);
                if ta != tb {
                    return false;
                }
                if enforce_condition2 && !ta.is_empty() && ta.len() != 1 {
                    return false;
                }
                if !na.is_empty() || !nb.is_empty() {
                    next_frontier.push((na, nb));
                }
            }
        }
        if next_frontier.is_empty() {
            return true;
        }
        frontier = next_frontier;
        // Deduplicate pairs to keep cyclic graphs from exploding.
        frontier.sort();
        frontier.dedup();
    }
    true
}

fn type_set(fpg: &FieldPointsToGraph, nodes: &BTreeSet<FpgNode>) -> BTreeSet<NodeType> {
    nodes.iter().map(|&n| fpg.node_type(n)).collect()
}

/// Convenience: an oracle depth that is exact for acyclic FPGs — one
/// more than the number of present nodes bounds every simple path.
pub fn exact_depth_for_acyclic(fpg: &FieldPointsToGraph) -> usize {
    fpg.present_allocs().count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpg::FpgBuilder;

    #[test]
    fn oracle_accepts_figure1_pair() {
        // Figure 1: o2 ≡ o3 (both A objects whose f holds a C), o1 not
        // (its f holds a B).
        let mut b = FpgBuilder::new();
        let a = b.ty("A");
        let bb = b.ty("B");
        let c = b.ty("C");
        let f = b.field("f");
        let o1 = b.alloc(a);
        let o2 = b.alloc(a);
        let o3 = b.alloc(a);
        let ob = b.alloc(bb);
        let oc5 = b.alloc(c);
        let oc6 = b.alloc(c);
        b.edge(o1, f, ob);
        b.edge(o2, f, oc5);
        b.edge(o3, f, oc6);
        let fpg = b.finish();
        assert!(type_consistent_bounded(&fpg, o2, o3, 5, true));
        assert!(!type_consistent_bounded(&fpg, o1, o2, 5, true));
        assert!(!type_consistent_bounded(&fpg, o1, o3, 5, true));
    }

    #[test]
    fn oracle_rejects_on_condition2() {
        // Figure 3: o_i.f -> {X, Y} on both sides — Condition 1 holds but
        // Condition 2 fails.
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let x = b.ty("X");
        let y = b.ty("Y");
        let f = b.field("f");
        let oi = b.alloc(t);
        let oj = b.alloc(t);
        let ox = b.alloc(x);
        let oy = b.alloc(y);
        b.edge(oi, f, ox);
        b.edge(oi, f, oy);
        b.edge(oj, f, ox);
        b.edge(oj, f, oy);
        let fpg = b.finish();
        assert!(!type_consistent_bounded(&fpg, oi, oj, 5, true));
        assert!(
            type_consistent_bounded(&fpg, oi, oj, 5, false),
            "without Condition 2 they look consistent"
        );
    }

    #[test]
    fn oracle_distinguishes_different_types_at_root() {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let u = b.ty("U");
        let o1 = b.alloc(t);
        let o2 = b.alloc(u);
        let fpg = b.finish();
        assert!(!type_consistent_bounded(&fpg, o1, o2, 3, true));
    }

    #[test]
    fn oracle_handles_cycles() {
        let mut b = FpgBuilder::new();
        let t = b.ty("Node");
        let f = b.field("next");
        let o1 = b.alloc(t);
        let o2 = b.alloc(t);
        let o3 = b.alloc(t);
        b.edge(o1, f, o2);
        b.edge(o2, f, o1);
        b.edge(o3, f, o3);
        let fpg = b.finish();
        // A 2-cycle of Nodes and a self-loop Node are type-consistent.
        assert!(type_consistent_bounded(&fpg, o1, o3, 16, true));
    }
}
