//! The field points-to graph (FPG) — the input to Mahjong.
//!
//! Nodes are (reachable) allocation sites plus a dummy `null` node;
//! an edge `(o, f, o')` records that `o.f` may point to `o'` according
//! to the context-insensitive pre-analysis (paper Section 2.2.1 and the
//! input conventions of Algorithm 1: `o.f = null` contributes an edge to
//! the null node, and the null node has a self-loop on every field).

use jir::{AllocId, FieldId, Program, TypeId};
use pta::AnalysisResult;

/// A node of the FPG: an allocation site or the dummy `null` node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FpgNode {
    /// A heap object identified by its allocation site.
    Alloc(AllocId),
    /// The dummy node standing for `null`.
    Null,
}

impl std::fmt::Debug for FpgNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpgNode::Alloc(a) => write!(f, "{a:?}"),
            FpgNode::Null => write!(f, "null"),
        }
    }
}

/// The output symbol of a node: its type, or the special `null` type
/// (`TYPEOF` returns "a special type for o_null", Algorithm 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeType {
    /// A real program type.
    Type(TypeId),
    /// The special type of the null node.
    Null,
}

/// The field points-to graph over a program's allocation sites.
///
/// Built from a pre-analysis with [`FieldPointsToGraph::from_analysis`],
/// or assembled directly with [`FpgBuilder`] (used heavily by tests to
/// express the paper's figures as literal graphs).
#[derive(Clone, Debug)]
pub struct FieldPointsToGraph {
    alloc_count: usize,
    /// Per allocation site: present in the graph (reachable)?
    present: Vec<bool>,
    /// Per allocation site: its type.
    types: Vec<Option<TypeId>>,
    /// Per allocation site: outgoing edges, sorted by field then target.
    edges: Vec<Vec<(FieldId, FpgNode)>>,
    /// Whether the null node carries self-loops on every field
    /// (semantically; the loops are implicit).
    null_modeled: bool,
}

impl FieldPointsToGraph {
    /// Builds the FPG from a (context-insensitive) pre-analysis result.
    ///
    /// Only objects the pre-analysis reached become present nodes. When
    /// `model_null` is set, every reference-typed instance field of a
    /// present object with an empty points-to set contributes an edge to
    /// the null node (the paper's null-field convention, which lets
    /// Mahjong distinguish never-initialized objects — Table 1, row 6).
    pub fn from_analysis(program: &Program, result: &AnalysisResult, model_null: bool) -> Self {
        let _phase = obs::span("mahjong.fpg_build");
        let n = program.alloc_count();
        let mut g = FieldPointsToGraph {
            alloc_count: n,
            present: vec![false; n],
            types: (0..n)
                .map(|i| Some(program.alloc(AllocId::from_usize(i)).ty()))
                .collect(),
            edges: vec![Vec::new(); n],
            null_modeled: model_null,
        };
        for obj in result.objects() {
            g.present[result.obj_alloc(obj).index()] = true;
        }
        for (obj, field, pts) in result.field_pointers() {
            let from = result.obj_alloc(obj).index();
            for target in pts {
                let to = FpgNode::Alloc(result.obj_alloc(target));
                g.push_edge(from, field, to);
            }
        }
        if model_null {
            for i in 0..n {
                if !g.present[i] {
                    continue;
                }
                let ty = g.types[i].expect("alloc has a type");
                for field in program.instance_fields_of_type(ty) {
                    let has_edge = g.edges[i].iter().any(|&(f, _)| f == field);
                    if !has_edge {
                        g.push_edge(i, field, FpgNode::Null);
                    }
                }
            }
        }
        for row in &mut g.edges {
            row.sort_unstable();
            row.dedup();
        }
        if obs::enabled() {
            obs::gauge("mahjong.fpg_nodes").set(g.present.iter().filter(|&&p| p).count() as i64);
            obs::gauge("mahjong.fpg_edges").set(g.edge_count() as i64);
        }
        g
    }

    fn push_edge(&mut self, from: usize, field: FieldId, to: FpgNode) {
        self.edges[from].push((field, to));
    }

    /// Returns the number of allocation sites the graph covers
    /// (present or not).
    pub fn alloc_count(&self) -> usize {
        self.alloc_count
    }

    /// Returns `true` if the allocation site is a (reachable) node.
    pub fn is_present(&self, alloc: AllocId) -> bool {
        self.present[alloc.index()]
    }

    /// Returns the type of a node.
    ///
    /// # Panics
    ///
    /// Panics if an `Alloc` node was never given a type (builder misuse).
    pub fn node_type(&self, node: FpgNode) -> NodeType {
        match node {
            FpgNode::Alloc(a) => NodeType::Type(self.types[a.index()].expect("node has a type")),
            FpgNode::Null => NodeType::Null,
        }
    }

    /// Returns the outgoing edges of a node, sorted by field.
    ///
    /// The null node's self-loops are implicit; callers that traverse
    /// from `Null` should treat every field as looping back to `Null`
    /// (see [`FieldPointsToGraph::successors`]).
    pub fn edges_of(&self, node: FpgNode) -> &[(FieldId, FpgNode)] {
        match node {
            FpgNode::Alloc(a) => &self.edges[a.index()],
            FpgNode::Null => &[],
        }
    }

    /// Returns the successors of `node` on `field`, honouring the null
    /// node's implicit self-loops.
    pub fn successors(&self, node: FpgNode, field: FieldId) -> Vec<FpgNode> {
        match node {
            FpgNode::Null => {
                if self.null_modeled {
                    vec![FpgNode::Null]
                } else {
                    Vec::new()
                }
            }
            FpgNode::Alloc(a) => self.edges[a.index()]
                .iter()
                .filter(|&&(f, _)| f == field)
                .map(|&(_, t)| t)
                .collect(),
        }
    }

    /// Returns the distinct fields with outgoing edges from `node`
    /// (the paper's `FIELDSOF`).
    pub fn fields_of(&self, node: FpgNode) -> Vec<FieldId> {
        let mut fields: Vec<FieldId> = self.edges_of(node).iter().map(|&(f, _)| f).collect();
        fields.dedup();
        fields
    }

    /// Returns every node reachable from `root` (including `root`), in
    /// BFS order.
    pub fn reachable_from(&self, root: FpgNode) -> Vec<FpgNode> {
        let mut seen = std::collections::BTreeSet::new();
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        seen.insert(root);
        queue.push_back(root);
        while let Some(node) = queue.pop_front() {
            order.push(node);
            for &(_, to) in self.edges_of(node) {
                if seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        order
    }

    /// Iterates over all present allocation nodes.
    pub fn present_allocs(&self) -> impl Iterator<Item = AllocId> + '_ {
        (0..self.alloc_count)
            .filter(|&i| self.present[i])
            .map(AllocId::from_usize)
    }

    /// Total number of edges among allocation nodes (the FPG size metric
    /// reported in paper Section 6.1.1).
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }
}

/// Assembles an FPG directly — used by tests to encode the paper's
/// figures without going through a program and a pre-analysis.
///
/// # Examples
///
/// ```
/// use mahjong::FpgBuilder;
///
/// let mut b = FpgBuilder::new();
/// let t = b.ty("T");
/// let u = b.ty("U");
/// let o1 = b.alloc(t);
/// let o2 = b.alloc(u);
/// let f = b.field("f");
/// b.edge(o1, f, o2);
/// let fpg = b.finish();
/// assert_eq!(fpg.alloc_count(), 2);
/// ```
#[derive(Debug, Default)]
pub struct FpgBuilder {
    types: Vec<TypeId>,
    edges: Vec<(usize, FieldId, Option<usize>)>,
    ty_names: std::collections::HashMap<String, TypeId>,
    field_names: std::collections::HashMap<String, FieldId>,
    model_null: bool,
}

impl FpgBuilder {
    /// Creates an empty builder (null self-loops enabled).
    pub fn new() -> Self {
        FpgBuilder {
            model_null: true,
            ..Default::default()
        }
    }

    /// Interns a type by name.
    pub fn ty(&mut self, name: &str) -> TypeId {
        let next = TypeId::from_usize(self.ty_names.len());
        *self.ty_names.entry(name.to_owned()).or_insert(next)
    }

    /// Interns a field by name.
    pub fn field(&mut self, name: &str) -> FieldId {
        let next = FieldId::from_usize(self.field_names.len());
        *self.field_names.entry(name.to_owned()).or_insert(next)
    }

    /// Adds an allocation node of the given type.
    pub fn alloc(&mut self, ty: TypeId) -> AllocId {
        let id = AllocId::from_usize(self.types.len());
        self.types.push(ty);
        id
    }

    /// Adds the edge `from.field -> to`.
    pub fn edge(&mut self, from: AllocId, field: FieldId, to: AllocId) {
        self.edges.push((from.index(), field, Some(to.index())));
    }

    /// Adds the edge `from.field -> null`.
    pub fn null_edge(&mut self, from: AllocId, field: FieldId) {
        self.edges.push((from.index(), field, None));
    }

    /// Finalizes the graph; every allocation node is present.
    pub fn finish(self) -> FieldPointsToGraph {
        let n = self.types.len();
        let mut g = FieldPointsToGraph {
            alloc_count: n,
            present: vec![true; n],
            types: self.types.into_iter().map(Some).collect(),
            edges: vec![Vec::new(); n],
            null_modeled: self.model_null,
        };
        for (from, field, to) in self.edges {
            let node = match to {
                Some(i) => FpgNode::Alloc(AllocId::from_usize(i)),
                None => FpgNode::Null,
            };
            g.edges[from].push((field, node));
        }
        for row in &mut g.edges {
            row.sort_unstable();
            row.dedup();
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let f = b.field("f");
        let o1 = b.alloc(t);
        let o2 = b.alloc(t);
        b.edge(o1, f, o2);
        b.null_edge(o2, f);
        let g = b.finish();
        assert_eq!(g.successors(FpgNode::Alloc(o1), f), vec![FpgNode::Alloc(o2)]);
        assert_eq!(g.successors(FpgNode::Alloc(o2), f), vec![FpgNode::Null]);
        assert_eq!(g.successors(FpgNode::Null, f), vec![FpgNode::Null]);
        assert_eq!(g.node_type(FpgNode::Null), NodeType::Null);
    }

    #[test]
    fn reachable_from_is_bfs_closed() {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let f = b.field("f");
        let o1 = b.alloc(t);
        let o2 = b.alloc(t);
        let o3 = b.alloc(t);
        b.edge(o1, f, o2);
        b.edge(o2, f, o1); // cycle
        let _ = o3; // disconnected
        let g = b.finish();
        let r = g.reachable_from(FpgNode::Alloc(o1));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&FpgNode::Alloc(o2)));
        assert!(!r.contains(&FpgNode::Alloc(o3)));
    }

    #[test]
    fn from_analysis_builds_edges_and_null() {
        let p = jir::parse(
            "class A { field f: A; field g: A;
               entry static method main() {
                 x = new A; y = new A;
                 x.f = y;
                 return;
               } }",
        )
        .unwrap();
        let r = pta::pre_analysis(&p).unwrap();
        let g = FieldPointsToGraph::from_analysis(&p, &r, true);
        assert_eq!(g.present_allocs().count(), 2);
        let allocs: Vec<AllocId> = g.present_allocs().collect();
        let f = p.class_by_name("A").and_then(|c| p.field_by_name(c, "f")).unwrap();
        let gfield = p.class_by_name("A").and_then(|c| p.field_by_name(c, "g")).unwrap();
        // x's object: f -> y's object, g -> null. y's object: f,g -> null.
        let x_obj = FpgNode::Alloc(allocs[0]);
        assert_eq!(g.successors(x_obj, f), vec![FpgNode::Alloc(allocs[1])]);
        assert_eq!(g.successors(x_obj, gfield), vec![FpgNode::Null]);
        let y_obj = FpgNode::Alloc(allocs[1]);
        assert_eq!(g.successors(y_obj, f), vec![FpgNode::Null]);
    }

    #[test]
    fn null_modeling_can_be_disabled() {
        let p = jir::parse(
            "class A { field f: A;
               entry static method main() { x = new A; return; } }",
        )
        .unwrap();
        let r = pta::pre_analysis(&p).unwrap();
        let g = FieldPointsToGraph::from_analysis(&p, &r, false);
        let alloc: Vec<AllocId> = g.present_allocs().collect();
        assert!(g.edges_of(FpgNode::Alloc(alloc[0])).is_empty());
        assert!(g.successors(FpgNode::Null, jir::FieldId::from_usize(0)).is_empty());
    }
}
