//! NFA construction (Algorithm 2) and DFA conversion with the
//! single-type check (Algorithm 3 + the SINGLETYPE-CHECK of
//! Algorithm 1), computed directly over the shared FPG.
//!
//! The paper's "Shared Sequential Automata" optimization (Section 5)
//! observes that the per-object NFAs are all fragments of one structure:
//! the FPG itself. We therefore never materialize per-object NFAs in the
//! hot path — subset construction runs straight over FPG adjacency — and
//! keep [`nfa_for_root`] only as an explicit-materialization reference
//! used by tests to cross-validate the construction.
//!
//! Sharing goes one level further than the paper spells out: the subset
//! construction itself is memoized in a [`SubsetCtx`]. DFA states are
//! *sets of FPG nodes*, and same-type objects overwhelmingly reach the
//! same node sets (that is exactly why they merge). The context interns
//! every state-set once, caches its output set, and caches its
//! transition row — the `(field, successor-set)` list — so when the
//! hundredth `HashMap` object walks the same entry/value sub-automaton,
//! the successor sets and their outputs come from the cache instead of
//! being recomputed from FPG adjacency.

use automata::{Dfa, DfaPartsBuilder, Nfa, NfaBuilder, Output, StateId, Symbol};
use fxhash::FxHashMap;
use jir::{AllocId, FieldId};

use crate::fpg::{FieldPointsToGraph, FpgNode, NodeType};

/// The output symbol used for the dummy null node (`TYPEOF` returns a
/// special type for `o_null`, Algorithm 1).
pub const NULL_OUTPUT: Output = Output(u32::MAX);

/// Maps a node's type to an automaton output symbol.
pub fn output_of(fpg: &FieldPointsToGraph, node: FpgNode) -> Output {
    match fpg.node_type(node) {
        NodeType::Type(t) => Output(t.as_u32()),
        NodeType::Null => NULL_OUTPUT,
    }
}

/// Materializes the 6-tuple NFA rooted at `root` (paper Algorithm 2,
/// Figure 4): states are the FPG nodes reachable from `root`, input
/// symbols are field ids, outputs are types.
///
/// Reference implementation — the pipeline uses [`dfa_for_root`], which
/// skips this materialization.
pub fn nfa_for_root(fpg: &FieldPointsToGraph, root: AllocId) -> Nfa {
    let nodes = fpg.reachable_from(FpgNode::Alloc(root));
    let mut builder = NfaBuilder::new();
    let mut state_of: FxHashMap<FpgNode, StateId> = FxHashMap::default();
    for &node in &nodes {
        let s = builder.add_state(output_of(fpg, node));
        state_of.insert(node, s);
    }
    for &node in &nodes {
        let from = state_of[&node];
        for &(field, to) in fpg.edges_of(node) {
            builder.add_transition(from, Symbol(field.as_u32()), state_of[&to]);
        }
        // The null node is a terminal sink here. The paper gives it a
        // self-loop on every field; under the single-type invariant the
        // two conventions induce the same equivalence relation, because
        // a state containing the null node is exactly {null} in both
        // compared automata, so words extending past it are treated
        // identically (both loop, or both reject).
    }
    builder.finish(state_of[&FpgNode::Alloc(root)])
}

/// The result of building the DFA for one object.
#[derive(Clone, Debug)]
pub enum RootAutomaton {
    /// The object fails SINGLETYPE-CHECK (some field path reaches
    /// objects of two or more types — Condition 2 of Definition 2.1);
    /// it can never merge.
    NotSingleType,
    /// The object's deterministic automaton; every state is
    /// type-homogeneous.
    Dfa(Dfa),
}

/// Statistics of one DFA construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// NFA states (reachable FPG nodes).
    pub nfa_states: usize,
    /// DFA states constructed before finishing or bailing.
    pub dfa_states: usize,
}

/// An interned NFA state-set, identified by insertion order.
type SetId = u32;

/// A memoized subset-construction context over one FPG.
///
/// Interns the NFA state-sets (sorted, deduplicated `FpgNode` slices)
/// that subset construction discovers, together with two per-set caches:
///
/// - the set's **output set** (the types of its members), and
/// - the set's **transition row**: the `(field, successor-set)` pairs,
///   computed lazily on first visit and shared by every later root that
///   reaches the same set.
///
/// Structurally identical sub-automata — ubiquitous within a type group,
/// since that is precisely what makes objects equivalent — are thereby
/// built once per context rather than once per object. One context is
/// used per merge shard; contexts are cheap (a few maps) and never
/// shared across threads.
#[derive(Debug)]
pub struct SubsetCtx<'g> {
    fpg: &'g FieldPointsToGraph,
    index_of: FxHashMap<Box<[FpgNode]>, SetId>,
    sets: Vec<Box<[FpgNode]>>,
    outputs: Vec<Vec<Output>>,
    rows: Vec<Option<TransitionRow>>,
    row_hits: u64,
    row_misses: u64,
}

/// A cached transition row: the `(field, successor-set)` pairs of one
/// interned state-set, in ascending field order.
type TransitionRow = Box<[(FieldId, SetId)]>;

impl<'g> SubsetCtx<'g> {
    /// Creates an empty context over `fpg`.
    pub fn new(fpg: &'g FieldPointsToGraph) -> Self {
        SubsetCtx {
            fpg,
            index_of: FxHashMap::default(),
            sets: Vec::new(),
            outputs: Vec::new(),
            rows: Vec::new(),
            row_hits: 0,
            row_misses: 0,
        }
    }

    /// Interns a sorted, deduplicated state-set, returning its id.
    fn intern(&mut self, set: Vec<FpgNode>) -> SetId {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set not sorted");
        if let Some(&id) = self.index_of.get(set.as_slice()) {
            return id;
        }
        let id = SetId::try_from(self.sets.len()).expect("too many interned sets");
        let boxed: Box<[FpgNode]> = set.into_boxed_slice();
        let mut outs: Vec<Output> =
            boxed.iter().map(|&n| output_of(self.fpg, n)).collect();
        outs.sort_unstable();
        outs.dedup();
        self.index_of.insert(boxed.clone(), id);
        self.sets.push(boxed);
        self.outputs.push(outs);
        self.rows.push(None);
        id
    }

    /// Returns the cached output set γ'(set).
    fn outputs(&self, id: SetId) -> &[Output] {
        &self.outputs[id as usize]
    }

    /// Ensures the transition row of `id` is computed, returning it.
    ///
    /// The row lists `(field, successor-set)` in ascending field order,
    /// skipping fields with no successors (they lead to `q_error`).
    fn row(&mut self, id: SetId) -> &[(FieldId, SetId)] {
        if self.rows[id as usize].is_some() {
            self.row_hits += 1;
        } else {
            self.row_misses += 1;
            let members = self.sets[id as usize].clone();
            let mut fields: Vec<FieldId> = Vec::new();
            for &node in members.iter() {
                fields.extend(self.fpg.fields_of(node));
            }
            // Null self-loops: if null is a member, it follows every
            // field the other members follow (a field no member defines
            // leads to q_error anyway; a set whose only member is null
            // keeps looping on the fields that got us there — we
            // conservatively use the union of fields present).
            fields.sort_unstable();
            fields.dedup();
            let mut row = Vec::with_capacity(fields.len());
            for field in fields {
                let mut next: Vec<FpgNode> = Vec::new();
                for &node in members.iter() {
                    next.extend(self.fpg.successors(node, field));
                }
                next.sort_unstable();
                next.dedup();
                if next.is_empty() {
                    continue;
                }
                row.push((field, self.intern(next)));
            }
            self.rows[id as usize] = Some(row.into_boxed_slice());
        }
        self.rows[id as usize].as_deref().expect("row just ensured")
    }

    /// Number of distinct state-sets interned so far.
    pub fn interned_sets(&self) -> usize {
        self.sets.len()
    }

    /// `(hits, misses)` of the transition-row cache: a hit means a whole
    /// successor computation was reused from an earlier root.
    pub fn row_cache(&self) -> (u64, u64) {
        (self.row_hits, self.row_misses)
    }

    /// Subset construction from `root` over the shared FPG
    /// (Algorithm 3) fused with SINGLETYPE-CHECK (Algorithm 1,
    /// lines 6–7): bails out as soon as a constructed state mixes two
    /// output types.
    ///
    /// When `enforce_single_type` is `false` (the Condition-2 ablation),
    /// construction always completes and states may carry output sets.
    pub fn dfa_for_root(
        &mut self,
        root: AllocId,
        enforce_single_type: bool,
    ) -> (RootAutomaton, BuildStats) {
        let mut stats = BuildStats {
            nfa_states: self.fpg.reachable_from(FpgNode::Alloc(root)).len(),
            ..BuildStats::default()
        };

        let mut builder = DfaPartsBuilder::default();
        let start_id = self.intern(vec![FpgNode::Alloc(root)]);
        let mut state_of: FxHashMap<SetId, StateId> = FxHashMap::default();
        let start = builder.add_state(self.outputs(start_id).to_vec());
        state_of.insert(start_id, start);
        stats.dfa_states = 1;
        let mut worklist = vec![(start, start_id)];

        while let Some((dq, sid)) = worklist.pop() {
            // Small copy to release the borrow on the row cache; rows
            // are a handful of entries (one per field of the set).
            let row: Vec<(FieldId, SetId)> = self.row(sid).to_vec();
            for (field, succ) in row {
                let target = match state_of.get(&succ) {
                    Some(&t) => t,
                    None => {
                        let outputs = self.outputs(succ);
                        if enforce_single_type && outputs.len() > 1 {
                            return (RootAutomaton::NotSingleType, stats);
                        }
                        let t = builder.add_state(outputs.to_vec());
                        stats.dfa_states += 1;
                        state_of.insert(succ, t);
                        worklist.push((t, succ));
                        t
                    }
                };
                builder.add_transition(dq, Symbol(field.as_u32()), target);
            }
        }
        (RootAutomaton::Dfa(builder.finish(start)), stats)
    }
}

/// One-shot subset construction: [`SubsetCtx::dfa_for_root`] with a
/// fresh, throwaway context. The pipeline batches many roots through a
/// shared context instead; this entry point serves tests and callers
/// that build a single automaton.
pub fn dfa_for_root(
    fpg: &FieldPointsToGraph,
    root: AllocId,
    enforce_single_type: bool,
) -> (RootAutomaton, BuildStats) {
    SubsetCtx::new(fpg).dfa_for_root(root, enforce_single_type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpg::FpgBuilder;

    /// The paper's Figure 2: two T-rooted graphs that are
    /// type-consistent.
    fn figure2() -> (FieldPointsToGraph, AllocId, AllocId) {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let u = b.ty("U");
        let x = b.ty("X");
        let y = b.ty("Y");
        let (f, g, h, k) = (b.field("f"), b.field("g"), b.field("h"), b.field("k"));

        // o1: T with f->U{h->Y,h->Y'}, g->X{k->Y}
        let o1 = b.alloc(t);
        let o3 = b.alloc(u);
        let o5 = b.alloc(x);
        let o7 = b.alloc(y);
        let o9 = b.alloc(y);
        let o11 = b.alloc(y);
        b.edge(o1, f, o3);
        b.edge(o1, g, o5);
        b.edge(o3, h, o7);
        b.edge(o3, h, o9);
        b.edge(o5, k, o11);

        // o2: T with f->U{h->Y}, g->X{k->Y}
        let o2 = b.alloc(t);
        let o4 = b.alloc(u);
        let o6 = b.alloc(x);
        let o8 = b.alloc(y);
        b.edge(o2, f, o4);
        b.edge(o2, g, o6);
        b.edge(o4, h, o8);
        b.edge(o6, k, o8);

        (b.finish(), o1, o2)
    }

    #[test]
    fn figure2_roots_have_equivalent_dfas() {
        let (fpg, o1, o2) = figure2();
        let (a1, s1) = dfa_for_root(&fpg, o1, true);
        let (a2, s2) = dfa_for_root(&fpg, o2, true);
        let (RootAutomaton::Dfa(d1), RootAutomaton::Dfa(d2)) = (a1, a2) else {
            panic!("both roots are single-type");
        };
        assert!(d1.equivalent(&d2), "o1 ≡ o2 (paper Example 2.6)");
        assert_eq!(d1.signature(), d2.signature(), "signatures agree too");
        assert_eq!(s1.nfa_states, 6); // o1, o3, o5, o7, o9, o11
        assert_eq!(s2.nfa_states, 4); // o2, o4, o6, o8
    }

    #[test]
    fn dfa_matches_materialized_nfa() {
        let (fpg, o1, o2) = figure2();
        for root in [o1, o2] {
            let (auto, _) = dfa_for_root(&fpg, root, true);
            let RootAutomaton::Dfa(direct) = auto else {
                panic!("single-type")
            };
            let via_nfa = nfa_for_root(&fpg, root).to_dfa();
            assert!(direct.equivalent(&via_nfa), "shared-FPG construction agrees");
        }
    }

    #[test]
    fn shared_ctx_matches_fresh_ctx_and_reuses_rows() {
        let (fpg, o1, o2) = figure2();
        let mut ctx = SubsetCtx::new(&fpg);
        let (a1, s1) = ctx.dfa_for_root(o1, true);
        let (a2, s2) = ctx.dfa_for_root(o2, true);
        let (f1, t1) = dfa_for_root(&fpg, o1, true);
        let (f2, t2) = dfa_for_root(&fpg, o2, true);
        let (
            RootAutomaton::Dfa(a1),
            RootAutomaton::Dfa(a2),
            RootAutomaton::Dfa(f1),
            RootAutomaton::Dfa(f2),
        ) = (a1, a2, f1, f2)
        else {
            panic!("all single-type");
        };
        assert_eq!(a1, f1, "shared context is invisible to the result");
        assert_eq!(a2, f2);
        assert_eq!(s1.dfa_states, t1.dfa_states);
        assert_eq!(s2.dfa_states, t2.dfa_states);
        assert!(ctx.interned_sets() >= 4);
    }

    #[test]
    fn shared_substructure_hits_the_row_cache() {
        // Two roots storing the *same* payload object: the second build
        // reuses the payload's interned set and its transition row.
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let u = b.ty("U");
        let v = b.ty("V");
        let f = b.field("f");
        let g = b.field("g");
        let r1 = b.alloc(t);
        let r2 = b.alloc(t);
        let shared = b.alloc(u);
        let leaf = b.alloc(v);
        b.edge(r1, f, shared);
        b.edge(r2, f, shared);
        b.edge(shared, g, leaf);
        let fpg = b.finish();
        let mut ctx = SubsetCtx::new(&fpg);
        let (a1, _) = ctx.dfa_for_root(r1, true);
        let (hits_before, _) = ctx.row_cache();
        let (a2, _) = ctx.dfa_for_root(r2, true);
        let (hits_after, misses) = ctx.row_cache();
        assert!(
            hits_after > hits_before,
            "second root must reuse the shared payload's transition row"
        );
        assert!(misses > 0);
        let (RootAutomaton::Dfa(a1), RootAutomaton::Dfa(a2)) = (a1, a2) else {
            panic!("single-type");
        };
        assert!(a1.equivalent(&a2));
        assert_eq!(a1.signature(), a2.signature());
    }

    #[test]
    fn mixed_type_field_fails_single_type_check() {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let x = b.ty("X");
        let y = b.ty("Y");
        let f = b.field("f");
        let o = b.alloc(t);
        let ox = b.alloc(x);
        let oy = b.alloc(y);
        b.edge(o, f, ox);
        b.edge(o, f, oy);
        let fpg = b.finish();
        let (auto, _) = dfa_for_root(&fpg, o, true);
        assert!(matches!(auto, RootAutomaton::NotSingleType));
        // Without Condition 2 the DFA completes with an output set.
        let (auto, _) = dfa_for_root(&fpg, o, false);
        let RootAutomaton::Dfa(d) = auto else { panic!() };
        assert!(!d.is_single_output());
    }

    #[test]
    fn null_edges_distinguish_uninitialized_objects() {
        // Table 1 rows 3/6: same type, one with a real field target, one
        // with a null field.
        let mut b = FpgBuilder::new();
        let t = b.ty("ASTPair");
        let d = b.ty("DetailAST");
        let f = b.field("child");
        let o1 = b.alloc(t);
        let o2 = b.alloc(t);
        let od = b.alloc(d);
        b.edge(o1, f, od);
        b.null_edge(o2, f);
        let fpg = b.finish();
        let (a1, _) = dfa_for_root(&fpg, o1, true);
        let (a2, _) = dfa_for_root(&fpg, o2, true);
        let (RootAutomaton::Dfa(d1), RootAutomaton::Dfa(d2)) = (a1, a2) else {
            panic!()
        };
        assert!(!d1.equivalent(&d2), "null-field object must stay separate");
        assert_ne!(d1.signature(), d2.signature());
    }

    #[test]
    fn cyclic_fpg_builds_finite_dfa() {
        let mut b = FpgBuilder::new();
        let t = b.ty("Node");
        let f = b.field("next");
        let o1 = b.alloc(t);
        let o2 = b.alloc(t);
        b.edge(o1, f, o2);
        b.edge(o2, f, o1);
        let fpg = b.finish();
        let (auto, stats) = dfa_for_root(&fpg, o1, true);
        let RootAutomaton::Dfa(d) = auto else { panic!() };
        assert!(stats.dfa_states <= 3);
        // A self-loop-equivalent list: o1 ≡ o2.
        let (RootAutomaton::Dfa(d2), _) = dfa_for_root(&fpg, o2, true) else {
            panic!()
        };
        assert!(d.equivalent(&d2));
        assert_eq!(d.signature(), d2.signature());
    }
}
