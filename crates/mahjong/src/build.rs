//! NFA construction (Algorithm 2) and DFA conversion with the
//! single-type check (Algorithm 3 + the SINGLETYPE-CHECK of
//! Algorithm 1), computed directly over the shared FPG.
//!
//! The paper's "Shared Sequential Automata" optimization (Section 5)
//! observes that the per-object NFAs are all fragments of one structure:
//! the FPG itself. We therefore never materialize per-object NFAs in the
//! hot path — subset construction runs straight over FPG adjacency — and
//! keep [`nfa_for_root`] only as an explicit-materialization reference
//! used by tests to cross-validate [`dfa_for_root`].

use std::collections::HashMap;

use automata::{Dfa, DfaPartsBuilder, Nfa, NfaBuilder, Output, Symbol};
use jir::AllocId;

use crate::fpg::{FieldPointsToGraph, FpgNode, NodeType};

/// The output symbol used for the dummy null node (`TYPEOF` returns a
/// special type for `o_null`, Algorithm 1).
pub const NULL_OUTPUT: Output = Output(u32::MAX);

/// Maps a node's type to an automaton output symbol.
pub fn output_of(fpg: &FieldPointsToGraph, node: FpgNode) -> Output {
    match fpg.node_type(node) {
        NodeType::Type(t) => Output(t.as_u32()),
        NodeType::Null => NULL_OUTPUT,
    }
}

/// Materializes the 6-tuple NFA rooted at `root` (paper Algorithm 2,
/// Figure 4): states are the FPG nodes reachable from `root`, input
/// symbols are field ids, outputs are types.
///
/// Reference implementation — the pipeline uses [`dfa_for_root`], which
/// skips this materialization.
pub fn nfa_for_root(fpg: &FieldPointsToGraph, root: AllocId) -> Nfa {
    let nodes = fpg.reachable_from(FpgNode::Alloc(root));
    let mut builder = NfaBuilder::new();
    let mut state_of: HashMap<FpgNode, automata::StateId> = HashMap::new();
    for &node in &nodes {
        let s = builder.add_state(output_of(fpg, node));
        state_of.insert(node, s);
    }
    for &node in &nodes {
        let from = state_of[&node];
        for &(field, to) in fpg.edges_of(node) {
            builder.add_transition(from, Symbol(field.as_u32()), state_of[&to]);
        }
        // The null node is a terminal sink here. The paper gives it a
        // self-loop on every field; under the single-type invariant the
        // two conventions induce the same equivalence relation, because
        // a state containing the null node is exactly {null} in both
        // compared automata, so words extending past it are treated
        // identically (both loop, or both reject).
    }
    builder.finish(state_of[&FpgNode::Alloc(root)])
}

/// The result of building the DFA for one object.
#[derive(Clone, Debug)]
pub enum RootAutomaton {
    /// The object fails SINGLETYPE-CHECK (some field path reaches
    /// objects of two or more types — Condition 2 of Definition 2.1);
    /// it can never merge.
    NotSingleType,
    /// The object's deterministic automaton; every state is
    /// type-homogeneous.
    Dfa(Dfa),
}

/// Statistics of one DFA construction.
#[derive(Clone, Copy, Debug, Default)]
pub struct BuildStats {
    /// NFA states (reachable FPG nodes).
    pub nfa_states: usize,
    /// DFA states constructed before finishing or bailing.
    pub dfa_states: usize,
}

/// Subset construction from `root` over the shared FPG (Algorithm 3)
/// fused with SINGLETYPE-CHECK (Algorithm 1, lines 6–7): bails out as
/// soon as a constructed state mixes two output types.
///
/// When `enforce_single_type` is `false` (the Condition-2 ablation),
/// construction always completes and states may carry output sets.
pub fn dfa_for_root(
    fpg: &FieldPointsToGraph,
    root: AllocId,
    enforce_single_type: bool,
) -> (RootAutomaton, BuildStats) {
    let mut stats = BuildStats {
        nfa_states: fpg.reachable_from(FpgNode::Alloc(root)).len(),
        ..BuildStats::default()
    };

    let mut builder = DfaPartsBuilder::default();
    let mut index_of: HashMap<Vec<FpgNode>, automata::StateId> = HashMap::new();

    let start_set = vec![FpgNode::Alloc(root)];
    let start_outputs = outputs_of_set(fpg, &start_set);
    let start = builder.add_state(start_outputs);
    index_of.insert(start_set.clone(), start);
    let mut worklist = vec![(start, start_set)];
    stats.dfa_states = 1;

    while let Some((dq, set)) = worklist.pop() {
        // Union of the member nodes' outgoing fields. Under the
        // single-type invariant this matches the paper's "pick any
        // object and use its fields" specialization.
        let mut fields: Vec<jir::FieldId> = Vec::new();
        for &node in &set {
            fields.extend(fpg.fields_of(node));
        }
        // Null self-loops: if null is a member, it follows every field
        // the other members follow (and nothing more matters, because a
        // field no member defines leads to q_error anyway — a set whose
        // only member is null keeps looping on the fields that got us
        // there; we conservatively use the union of fields present).
        fields.sort_unstable();
        fields.dedup();
        for field in fields {
            let mut next: Vec<FpgNode> = Vec::new();
            for &node in &set {
                next.extend(fpg.successors(node, field));
            }
            next.sort_unstable();
            next.dedup();
            if next.is_empty() {
                continue;
            }
            let target = match index_of.get(&next) {
                Some(&t) => t,
                None => {
                    let outputs = outputs_of_set(fpg, &next);
                    if enforce_single_type && outputs.len() > 1 {
                        return (RootAutomaton::NotSingleType, stats);
                    }
                    let t = builder.add_state(outputs);
                    stats.dfa_states += 1;
                    index_of.insert(next.clone(), t);
                    worklist.push((t, next));
                    t
                }
            };
            builder.add_transition(dq, Symbol(field.as_u32()), target);
        }
    }
    (RootAutomaton::Dfa(builder.finish(start)), stats)
}

fn outputs_of_set(fpg: &FieldPointsToGraph, set: &[FpgNode]) -> Vec<Output> {
    let mut outs: Vec<Output> = set.iter().map(|&n| output_of(fpg, n)).collect();
    outs.sort_unstable();
    outs.dedup();
    outs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpg::FpgBuilder;

    /// The paper's Figure 2: two T-rooted graphs that are
    /// type-consistent.
    fn figure2() -> (FieldPointsToGraph, AllocId, AllocId) {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let u = b.ty("U");
        let x = b.ty("X");
        let y = b.ty("Y");
        let (f, g, h, k) = (b.field("f"), b.field("g"), b.field("h"), b.field("k"));

        // o1: T with f->U{h->Y,h->Y'}, g->X{k->Y}
        let o1 = b.alloc(t);
        let o3 = b.alloc(u);
        let o5 = b.alloc(x);
        let o7 = b.alloc(y);
        let o9 = b.alloc(y);
        let o11 = b.alloc(y);
        b.edge(o1, f, o3);
        b.edge(o1, g, o5);
        b.edge(o3, h, o7);
        b.edge(o3, h, o9);
        b.edge(o5, k, o11);

        // o2: T with f->U{h->Y}, g->X{k->Y}
        let o2 = b.alloc(t);
        let o4 = b.alloc(u);
        let o6 = b.alloc(x);
        let o8 = b.alloc(y);
        b.edge(o2, f, o4);
        b.edge(o2, g, o6);
        b.edge(o4, h, o8);
        b.edge(o6, k, o8);

        (b.finish(), o1, o2)
    }

    #[test]
    fn figure2_roots_have_equivalent_dfas() {
        let (fpg, o1, o2) = figure2();
        let (a1, s1) = dfa_for_root(&fpg, o1, true);
        let (a2, s2) = dfa_for_root(&fpg, o2, true);
        let (RootAutomaton::Dfa(d1), RootAutomaton::Dfa(d2)) = (a1, a2) else {
            panic!("both roots are single-type");
        };
        assert!(d1.equivalent(&d2), "o1 ≡ o2 (paper Example 2.6)");
        assert_eq!(s1.nfa_states, 6); // o1, o3, o5, o7, o9, o11
        assert_eq!(s2.nfa_states, 4); // o2, o4, o6, o8
    }

    #[test]
    fn dfa_matches_materialized_nfa() {
        let (fpg, o1, o2) = figure2();
        for root in [o1, o2] {
            let (auto, _) = dfa_for_root(&fpg, root, true);
            let RootAutomaton::Dfa(direct) = auto else {
                panic!("single-type")
            };
            let via_nfa = nfa_for_root(&fpg, root).to_dfa();
            assert!(direct.equivalent(&via_nfa), "shared-FPG construction agrees");
        }
    }

    #[test]
    fn mixed_type_field_fails_single_type_check() {
        let mut b = FpgBuilder::new();
        let t = b.ty("T");
        let x = b.ty("X");
        let y = b.ty("Y");
        let f = b.field("f");
        let o = b.alloc(t);
        let ox = b.alloc(x);
        let oy = b.alloc(y);
        b.edge(o, f, ox);
        b.edge(o, f, oy);
        let fpg = b.finish();
        let (auto, _) = dfa_for_root(&fpg, o, true);
        assert!(matches!(auto, RootAutomaton::NotSingleType));
        // Without Condition 2 the DFA completes with an output set.
        let (auto, _) = dfa_for_root(&fpg, o, false);
        let RootAutomaton::Dfa(d) = auto else { panic!() };
        assert!(!d.is_single_output());
    }

    #[test]
    fn null_edges_distinguish_uninitialized_objects() {
        // Table 1 rows 3/6: same type, one with a real field target, one
        // with a null field.
        let mut b = FpgBuilder::new();
        let t = b.ty("ASTPair");
        let d = b.ty("DetailAST");
        let f = b.field("child");
        let o1 = b.alloc(t);
        let o2 = b.alloc(t);
        let od = b.alloc(d);
        b.edge(o1, f, od);
        b.null_edge(o2, f);
        let fpg = b.finish();
        let (a1, _) = dfa_for_root(&fpg, o1, true);
        let (a2, _) = dfa_for_root(&fpg, o2, true);
        let (RootAutomaton::Dfa(d1), RootAutomaton::Dfa(d2)) = (a1, a2) else {
            panic!()
        };
        assert!(!d1.equivalent(&d2), "null-field object must stay separate");
    }

    #[test]
    fn cyclic_fpg_builds_finite_dfa() {
        let mut b = FpgBuilder::new();
        let t = b.ty("Node");
        let f = b.field("next");
        let o1 = b.alloc(t);
        let o2 = b.alloc(t);
        b.edge(o1, f, o2);
        b.edge(o2, f, o1);
        let fpg = b.finish();
        let (auto, stats) = dfa_for_root(&fpg, o1, true);
        let RootAutomaton::Dfa(d) = auto else { panic!() };
        assert!(stats.dfa_states <= 3);
        // A self-loop-equivalent list: o1 ≡ o2.
        let (RootAutomaton::Dfa(d2), _) = dfa_for_root(&fpg, o2, true) else {
            panic!()
        };
        assert!(d.equivalent(&d2));
    }
}
