//! Heap-partition analytics over a merged-object map: the
//! equivalence-class size distribution (paper Figure 9) and per-class
//! content summaries (paper Table 1).

use std::collections::{BTreeMap, HashMap};

use jir::{AllocId, Program, TypeId};
use pta::{HeapAbstraction, MergedObjectMap};

use crate::fpg::{FieldPointsToGraph, FpgNode, NodeType};

/// A point of the class-size distribution: `count` equivalence classes
/// have exactly `size` members (paper Figure 9's axes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeDistributionPoint {
    /// Equivalence-class size.
    pub size: usize,
    /// Number of classes with that size.
    pub count: usize,
}

/// A summarized equivalence class (paper Table 1's rows).
#[derive(Clone, Debug)]
pub struct ClassSummary {
    /// Rank by decreasing size (1 = largest).
    pub rank: usize,
    /// The representative allocation site.
    pub representative: AllocId,
    /// The class's object type.
    pub ty: TypeId,
    /// Members of the class.
    pub members: Vec<AllocId>,
    /// Total reachable objects of the same type.
    pub total_of_type: usize,
    /// Types reached one field step from the representative (the
    /// "contents" column of Table 1); `None` entries stand for null.
    pub contents: Vec<Option<TypeId>>,
}

/// Analytics over one merge result.
#[derive(Clone, Debug)]
pub struct HeapPartition {
    classes: Vec<(AllocId, Vec<AllocId>)>,
    total_of_type: HashMap<TypeId, usize>,
}

impl HeapPartition {
    /// Builds the partition of `fpg`'s present objects induced by `mom`.
    pub fn new(program: &Program, fpg: &FieldPointsToGraph, mom: &MergedObjectMap) -> Self {
        let mut members: HashMap<AllocId, Vec<AllocId>> = HashMap::new();
        let mut total_of_type: HashMap<TypeId, usize> = HashMap::new();
        for alloc in fpg.present_allocs() {
            members.entry(mom.repr(alloc)).or_default().push(alloc);
            *total_of_type.entry(program.alloc(alloc).ty()).or_insert(0) += 1;
        }
        let mut classes: Vec<(AllocId, Vec<AllocId>)> = members.into_iter().collect();
        classes.sort_by_key(|(rep, m)| (std::cmp::Reverse(m.len()), rep.index()));
        HeapPartition {
            classes,
            total_of_type,
        }
    }

    /// Number of equivalence classes (abstract objects).
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of singleton classes (objects merged with nothing).
    pub fn singleton_count(&self) -> usize {
        self.classes.iter().filter(|(_, m)| m.len() == 1).count()
    }

    /// Size of the largest class.
    pub fn largest_class_size(&self) -> usize {
        self.classes.first().map_or(0, |(_, m)| m.len())
    }

    /// The Figure 9 distribution, ordered by class size.
    pub fn size_distribution(&self) -> Vec<SizeDistributionPoint> {
        let mut count_by_size: BTreeMap<usize, usize> = BTreeMap::new();
        for (_, m) in &self.classes {
            *count_by_size.entry(m.len()).or_insert(0) += 1;
        }
        count_by_size
            .into_iter()
            .map(|(size, count)| SizeDistributionPoint { size, count })
            .collect()
    }

    /// The Table 1 summaries for the `top` largest classes.
    pub fn summaries(
        &self,
        program: &Program,
        fpg: &FieldPointsToGraph,
        top: usize,
    ) -> Vec<ClassSummary> {
        self.classes
            .iter()
            .take(top)
            .enumerate()
            .map(|(i, (rep, members))| {
                let ty = program.alloc(*rep).ty();
                let mut contents: Vec<Option<TypeId>> = fpg
                    .edges_of(FpgNode::Alloc(*rep))
                    .iter()
                    .map(|&(_, to)| match fpg.node_type(to) {
                        NodeType::Type(t) => Some(t),
                        NodeType::Null => None,
                    })
                    .collect();
                contents.sort();
                contents.dedup();
                ClassSummary {
                    rank: i + 1,
                    representative: *rep,
                    ty,
                    members: members.clone(),
                    total_of_type: self.total_of_type[&ty],
                    contents,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpg::FpgBuilder;
    use crate::merge::{merge_equivalent_objects, MahjongConfig};

    /// Four identical leaves plus two distinct roots.
    fn sample() -> (FieldPointsToGraph, MergedObjectMap) {
        let mut b = FpgBuilder::new();
        let leaf = b.ty("Leaf");
        let root = b.ty("Root");
        let other = b.ty("Other");
        let f = b.field("f");
        let leaves: Vec<AllocId> = (0..4).map(|_| b.alloc(leaf)).collect();
        let r1 = b.alloc(root);
        let r2 = b.alloc(root);
        let o = b.alloc(other);
        b.edge(r1, f, leaves[0]);
        b.edge(r2, f, o); // r2 differs from r1
        let fpg = b.finish();
        let out = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        (fpg, out.mom)
    }

    #[test]
    fn distribution_counts_classes_by_size() {
        // Building through an FPG alone needs a Program for type names;
        // exercise the distribution directly over the partition pieces.
        let (fpg, mom) = sample();
        let mut size_of: HashMap<AllocId, usize> = HashMap::new();
        for a in fpg.present_allocs() {
            *size_of.entry(mom.repr(a)).or_insert(0) += 1;
        }
        let mut sizes: Vec<usize> = size_of.values().copied().collect();
        sizes.sort_unstable();
        // 4 leaves merge; r1, r2, o stay singletons.
        assert_eq!(sizes, vec![1, 1, 1, 4]);
    }
}
