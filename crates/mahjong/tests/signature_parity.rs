//! Property test: on randomized field points-to graphs, the canonical
//! signature fast path produces **exactly** the merged-object map the
//! pairwise Hopcroft–Karp oracle produces.
//!
//! This is the end-to-end check of the canonicalization argument
//! (DESIGN.md §11): minimal-DFA uniqueness makes the BFS-canonical
//! signature a complete invariant for behavioural equivalence, so
//! bucket-by-signature and compare-all-pairs compute the same partition
//! of every type group — on adversarial shapes (cycles, nulls,
//! single-type failures, shared substructure), not just the paper's
//! figures.

use jir::AllocId;
use mahjong::{
    merge_equivalent_objects, merge_equivalent_objects_pairwise, FpgBuilder, MahjongConfig,
};

/// SplitMix64 — tiny, deterministic, and statistically fine for test
/// generation (Steele et al., OOPSLA 2014).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// True with probability `num/den`.
    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

/// Builds a random FPG: a handful of types and fields, dozens of
/// objects, random edges (including occasional null edges). Types and
/// fields are kept few so same-type groups and genuine equivalences are
/// common; edge randomness still produces single-type failures, cycles,
/// and shared substructure.
fn random_fpg(seed: u64) -> mahjong::FieldPointsToGraph {
    random_fpg_sized(seed, 8)
}

fn random_fpg_sized(seed: u64, base_allocs: usize) -> mahjong::FieldPointsToGraph {
    let mut rng = SplitMix64(seed);
    let mut b = FpgBuilder::new();

    let n_types = 2 + rng.below(4); // 2..=5
    let n_fields = 1 + rng.below(3); // 1..=3
    let n_allocs = base_allocs + rng.below(25);

    let types: Vec<_> = (0..n_types).map(|i| b.ty(&format!("T{i}"))).collect();
    let fields: Vec<_> = (0..n_fields).map(|i| b.field(&format!("f{i}"))).collect();
    let allocs: Vec<AllocId> = (0..n_allocs)
        .map(|_| b.alloc(types[rng.below(n_types)]))
        .collect();

    for &from in &allocs {
        for &field in &fields {
            // ~55% of (object, field) slots are populated; of those, a
            // few are null edges and a few fan out to two targets
            // (creating subset-construction work and SINGLETYPE
            // failures when the targets' types differ).
            if !rng.chance(11, 20) {
                continue;
            }
            if rng.chance(1, 8) {
                b.null_edge(from, field);
            } else {
                b.edge(from, field, allocs[rng.below(n_allocs)]);
                if rng.chance(1, 5) {
                    b.edge(from, field, allocs[rng.below(n_allocs)]);
                }
            }
        }
    }
    b.finish()
}

#[test]
fn signature_grouping_matches_pairwise_oracle_on_random_fpgs() {
    let mut total_merged = 0usize;
    let mut total_hk = 0u64;
    for seed in 0..60u64 {
        let fpg = random_fpg(seed.wrapping_mul(0x5851_f42d_4c95_7f2d) + 1);
        let cfg = MahjongConfig::default();
        let fast = merge_equivalent_objects(&fpg, &cfg);
        let oracle = merge_equivalent_objects_pairwise(&fpg, &cfg);
        assert_eq!(
            fast.mom, oracle.mom,
            "seed {seed}: signature path diverged from the pairwise oracle"
        );
        assert_eq!(fast.stats.merged_objects, oracle.stats.merged_objects);
        assert_eq!(fast.stats.not_single_type, oracle.stats.not_single_type);
        assert_eq!(
            fast.stats.sig_buckets, oracle.stats.sig_buckets,
            "seed {seed}: bucket count must equal the oracle's class count"
        );
        assert_eq!(fast.stats.hk_runs, 0, "seed {seed}: fast path ran HK");
        total_merged += fast.stats.objects - fast.stats.merged_objects;
        total_hk += oracle.stats.hk_runs;
    }
    // The generator must actually exercise merging, or the test proves
    // nothing.
    assert!(total_merged > 50, "generator produced too few merges: {total_merged}");
    assert!(total_hk > 200, "oracle barely ran: {total_hk} HK checks");
}

#[test]
fn paranoid_mode_agrees_on_random_fpgs() {
    for seed in 0..20u64 {
        let fpg = random_fpg(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) + 7);
        let fast = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        let paranoid = merge_equivalent_objects(
            &fpg,
            &MahjongConfig {
                paranoid: true,
                ..MahjongConfig::default()
            },
        );
        assert_eq!(fast.mom, paranoid.mom, "seed {seed}");
        // Paranoid re-verifies each merge, so runs == merges absorbed,
        // plus the representative-distinctness sweep.
        let merges = (fast.stats.objects - fast.stats.merged_objects) as u64;
        assert!(paranoid.stats.hk_runs >= merges, "seed {seed}");
    }
}

#[test]
fn sharded_build_matches_sequential_on_random_fpgs() {
    for seed in 0..20u64 {
        // Large enough (≥ 64 candidates) that the sharded build path
        // actually engages instead of falling back to sequential.
        let fpg = random_fpg_sized(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) + 3, 80);
        let seq = merge_equivalent_objects(&fpg, &MahjongConfig::default());
        for threads in [2, 3, 8] {
            let par = merge_equivalent_objects(
                &fpg,
                &MahjongConfig {
                    threads,
                    ..MahjongConfig::default()
                },
            );
            assert_eq!(seq.mom, par.mom, "seed {seed}, {threads} threads");
        }
    }
}
