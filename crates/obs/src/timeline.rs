//! Solver introspection timeline: fixed-capacity ring buffers of
//! per-wave propagation records and thread-attributed shard spans.
//!
//! The counter/gauge layer answers *how much* — pops, words, peak
//! footprint. This module answers *where*: which topological levels,
//! shards, and pointer populations the fixpoint spends its time and
//! memory on. The solver pushes one [`WaveRecord`] per level batch
//! (small batches coalesce, see below), one [`ShardSpan`] per parallel
//! propagate shard, at most one retained [`MemoryBreakdown`] (the
//! peak run's), and one retained top-K [`HotPointer`] table.
//!
//! # Ring-buffer semantics
//!
//! Both rings have a fixed capacity chosen at construction
//! ([`Timeline::new`]; the process-global instance uses
//! [`DEFAULT_RECORD_CAP`] / [`DEFAULT_SPAN_CAP`]). Pushing into a full
//! ring overwrites the oldest entry and increments a `dropped`
//! counter, so a runaway run degrades to "most recent window" instead
//! of unbounded memory. Recording is one short mutex hold per push —
//! no allocation beyond the record itself — and is fully inert while
//! [`crate::enabled`] is `false`.
//!
//! # Level sentinels
//!
//! `WaveRecord::level` is a topological level of the condensed copy
//! graph, or one of four sentinels for work that has no single level:
//! [`LEVEL_SEED`] (statement processing / call-graph discovery),
//! [`LEVEL_MIXED`] (coalesced small batches), [`LEVEL_OVERHEAD`]
//! (cycle collapse, wave scheduling, solver init/finalize), and
//! [`LEVEL_UNRANKED`] (pointers interned after the last SCC sweep).
//! The JSON export maps them to `-1`, `-2`, `-3`, and `-4`.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

use crate::json::escape;

/// `WaveRecord::level` sentinel: statement processing (seeding new
/// objects, edges, and call-graph reachability), not propagation at
/// any one level. Exported to JSON as `-1`.
pub const LEVEL_SEED: u32 = u32::MAX;

/// `WaveRecord::level` sentinel: a coalesced run of batches too small
/// to warrant standalone records. Exported to JSON as `-2`.
pub const LEVEL_MIXED: u32 = u32::MAX - 1;

/// `WaveRecord::level` sentinel: solver bookkeeping — cycle collapse,
/// wave heap construction, init and finalize. Exported as `-3`.
pub const LEVEL_OVERHEAD: u32 = u32::MAX - 2;

/// `WaveRecord::level` sentinel: pointers interned after the last SCC
/// sweep, which have no topological rank yet and are processed after
/// every ranked level. Exported to JSON as `-4`.
pub const LEVEL_UNRANKED: u32 = u32::MAX - 3;

/// Chrome-trace `tid` base for parallel propagate shards: shard `k`
/// renders on track `SHARD_TID_BASE + k`, clear of the small tids the
/// span layer hands out to real threads.
pub const SHARD_TID_BASE: u64 = 1000;

/// Ring capacity of the global wave-record ring (~6 MiB worst case).
pub const DEFAULT_RECORD_CAP: usize = 65_536;

/// Ring capacity of the global shard-span ring.
pub const DEFAULT_SPAN_CAP: usize = 16_384;

/// One timeline entry: the cost and volume of one level batch (or one
/// coalesced run of small batches) of the solver's fixpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WaveRecord {
    /// 1-based solver-run id within the process (several runs share
    /// the global timeline; 0 only in hand-built records).
    pub run: u32,
    /// 1-based wave number within the run.
    pub wave: u32,
    /// Topological level of the batch, or a `LEVEL_*` sentinel.
    pub level: u32,
    /// Worklist pops consumed (= representatives resolved; one
    /// coalesced delta per representative).
    pub pops: u32,
    /// Total objects across the popped deltas.
    pub objects: u64,
    /// Total 64-bit words of the popped deltas — the "words
    /// propagated" volume the top-K table ranks by.
    pub words: u64,
    /// Sequential resolve phase (DSU row normalization, cast-mask
    /// materialization) — also carries init/finalize/bookkeeping time
    /// on `LEVEL_OVERHEAD` records.
    pub resolve_ns: u64,
    /// Propagate phase: copy-edge difference computation (the parallel
    /// section when `shards > 1`).
    pub propagate_ns: u64,
    /// Merge phase: deterministic contribution application plus field
    /// loads/stores, call dispatch, and triggered statement processing.
    pub merge_ns: u64,
    /// Propagate-phase shards (1 = inline/sequential).
    pub shards: u32,
    /// Sum over shards of time spent computing contributions.
    pub busy_ns: u64,
    /// Sum over shards of propagate-phase wall not spent computing
    /// (scheduling skew and the level barrier).
    pub idle_ns: u64,
}

impl WaveRecord {
    /// Total attributed solver time of this record.
    pub fn total_ns(&self) -> u64 {
        self.resolve_ns + self.propagate_ns + self.merge_ns
    }

    /// Folds `other` into `self` (used when coalescing small batches):
    /// volumes and times add, `shards` keeps the max.
    pub fn absorb(&mut self, other: &WaveRecord) {
        self.pops += other.pops;
        self.objects += other.objects;
        self.words += other.words;
        self.resolve_ns += other.resolve_ns;
        self.propagate_ns += other.propagate_ns;
        self.merge_ns += other.merge_ns;
        self.shards = self.shards.max(other.shards);
        self.busy_ns += other.busy_ns;
        self.idle_ns += other.idle_ns;
    }
}

/// One parallel propagate shard's execution window, rendered as a
/// Chrome-trace `X` event on track `SHARD_TID_BASE + shard`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardSpan {
    /// Solver-run id (matches [`WaveRecord::run`]).
    pub run: u32,
    /// Wave the batch belonged to.
    pub wave: u32,
    /// Topological level of the batch.
    pub level: u32,
    /// Shard index within the batch (0 = the coordinating thread).
    pub shard: u32,
    /// Start offset from the process trace epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
}

/// A point-in-time attribution of points-to memory by population. The
/// timeline retains the sample with the largest `rep_words` — samples
/// are always taken right after a seal sweep deduplicates the rows, so
/// the retained sample's `rep_words` equals the peak run's
/// `pts_peak_words` exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Solver-run id the sample came from.
    pub run: u32,
    /// Wave at which the sample was taken (0 = finalize).
    pub wave: u32,
    /// **Physical** words held by representative points-to sets: rows
    /// sharing one interned allocation count it once (the population
    /// `pts_peak_words` measures).
    pub rep_words: u64,
    /// **Logical** words across representative rows: every row counts
    /// its full set, shared or not. `logical_words - rep_words` is the
    /// footprint hash-consing saved; always `>= rep_words`.
    pub logical_words: u64,
    /// Words held by pending (coalesced, not yet popped) delta sets.
    pub pending_words: u64,
    /// Words held by per-type cast masks (not part of
    /// `pts_peak_words`; reported as an extra category).
    pub mask_words: u64,
}

/// One row of the hottest-pointer table: a representative pointer (or
/// collapsed SCC) ranked by total delta words popped through it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotPointer {
    /// 1-based rank (1 = hottest).
    pub rank: u32,
    /// Human-readable pointer identity (solver `PtrKey` debug form).
    pub key: String,
    /// Total 64-bit words of deltas popped at this representative.
    pub words: u64,
    /// Worklist pops consumed by this representative.
    pub pops: u64,
    /// Final points-to set size (objects).
    pub set_len: u64,
    /// Pointers collapsed into this representative (1 = no cycle).
    pub scc_size: u32,
}

/// Fixed-capacity overwrite-oldest ring.
#[derive(Debug)]
struct Ring<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index the next push lands at once the ring is full.
    next: usize,
    dropped: u64,
}

impl<T: Clone> Ring<T> {
    fn new(cap: usize) -> Self {
        Ring { buf: Vec::new(), cap: cap.max(1), next: 0, dropped: 0 }
    }

    fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Entries in chronological order (oldest surviving entry first).
    fn snapshot(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.dropped = 0;
    }
}

/// The timeline store. One process-global instance lives behind
/// [`crate::timeline()`]; tests may create private instances with
/// [`Timeline::new`]. Every recording entry point is a no-op while
/// [`crate::enabled`] is `false`.
#[derive(Debug)]
pub struct Timeline {
    records: Mutex<Ring<WaveRecord>>,
    spans: Mutex<Ring<ShardSpan>>,
    /// Retained breakdown (largest `rep_words` wins).
    memory: Mutex<Option<MemoryBreakdown>>,
    /// Retained top-K table and the score (total words popped by its
    /// run) that won it the slot.
    top: Mutex<(u64, Vec<HotPointer>)>,
    next_run: AtomicU32,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new(DEFAULT_RECORD_CAP, DEFAULT_SPAN_CAP)
    }
}

impl Timeline {
    /// Creates an empty timeline with the given ring capacities (both
    /// clamped to at least 1).
    pub fn new(record_cap: usize, span_cap: usize) -> Self {
        Timeline {
            records: Mutex::new(Ring::new(record_cap)),
            spans: Mutex::new(Ring::new(span_cap)),
            memory: Mutex::new(None),
            top: Mutex::new((0, Vec::new())),
            next_run: AtomicU32::new(0),
        }
    }

    /// Allocates the next 1-based solver-run id (0 while recording is
    /// disabled, so disabled runs leave no trace of having happened).
    pub fn begin_run(&self) -> u32 {
        if !crate::enabled() {
            return 0;
        }
        self.next_run.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Appends one wave record (no-op while recording is disabled).
    pub fn record_wave(&self, rec: WaveRecord) {
        if !crate::enabled() {
            return;
        }
        self.records.lock().unwrap().push(rec);
    }

    /// Appends one shard span (no-op while recording is disabled).
    pub fn record_shard(&self, span: ShardSpan) {
        if !crate::enabled() {
            return;
        }
        self.spans.lock().unwrap().push(span);
    }

    /// Offers a memory sample; the timeline keeps the one with the
    /// largest `rep_words`. Returns `true` when the offered sample was
    /// retained (callers mirror retained samples into gauges).
    pub fn offer_memory(&self, sample: MemoryBreakdown) -> bool {
        if !crate::enabled() {
            return false;
        }
        let mut slot = self.memory.lock().unwrap();
        let retain = slot.as_ref().is_none_or(|cur| sample.rep_words >= cur.rep_words);
        if retain {
            *slot = Some(sample);
        }
        retain
    }

    /// Offers a hottest-pointer table scored by its run's total popped
    /// words; the highest-scoring table is retained. Returns `true`
    /// when the offered table was retained.
    pub fn offer_top_pointers(&self, score: u64, rows: Vec<HotPointer>) -> bool {
        if !crate::enabled() {
            return false;
        }
        let mut slot = self.top.lock().unwrap();
        let retain = slot.1.is_empty() || score >= slot.0;
        if retain {
            *slot = (score, rows);
        }
        retain
    }

    /// Wave records in chronological order (oldest surviving first).
    pub fn records(&self) -> Vec<WaveRecord> {
        self.records.lock().unwrap().snapshot()
    }

    /// Wave records overwritten because the ring was full.
    pub fn records_dropped(&self) -> u64 {
        self.records.lock().unwrap().dropped
    }

    /// Shard spans in chronological order.
    pub fn shard_spans(&self) -> Vec<ShardSpan> {
        self.spans.lock().unwrap().snapshot()
    }

    /// Shard spans overwritten because the ring was full.
    pub fn shard_spans_dropped(&self) -> u64 {
        self.spans.lock().unwrap().dropped
    }

    /// The retained memory breakdown, if any run sampled one.
    pub fn memory(&self) -> Option<MemoryBreakdown> {
        self.memory.lock().unwrap().clone()
    }

    /// The retained hottest-pointer table (empty if never offered).
    pub fn top_pointers(&self) -> Vec<HotPointer> {
        self.top.lock().unwrap().1.clone()
    }

    /// Clears everything: both rings, the retained memory sample and
    /// top-K table, and the run-id counter.
    pub fn reset(&self) {
        self.records.lock().unwrap().clear();
        self.spans.lock().unwrap().clear();
        *self.memory.lock().unwrap() = None;
        *self.top.lock().unwrap() = (0, Vec::new());
        self.next_run.store(0, Ordering::Relaxed);
    }

    /// Renders the timeline as one JSON object:
    /// `{"records": [...], "records_dropped": N, "shard_span_count": N,
    /// "shard_spans_dropped": N, "memory": {...}|null,
    /// "top_pointers": [...]}`. Level sentinels export as negative
    /// numbers (seed `-1`, mixed `-2`, overhead `-3`, unranked `-4`).
    pub fn export_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"records\":[");
        for (i, r) in self.records().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"run\":{},\"wave\":{},\"level\":{},\"pops\":{},\"objects\":{},\
                 \"words\":{},\"resolve_ns\":{},\"propagate_ns\":{},\"merge_ns\":{},\
                 \"shards\":{},\"busy_ns\":{},\"idle_ns\":{}}}",
                r.run,
                r.wave,
                level_json(r.level),
                r.pops,
                r.objects,
                r.words,
                r.resolve_ns,
                r.propagate_ns,
                r.merge_ns,
                r.shards,
                r.busy_ns,
                r.idle_ns,
            );
        }
        // One guard per ring: a second `spans` lock inside the same
        // statement would deadlock on the still-live first guard.
        let (span_count, spans_dropped) = {
            let spans = self.spans.lock().unwrap();
            (spans.buf.len(), spans.dropped)
        };
        let _ = write!(
            out,
            "],\"records_dropped\":{},\"shard_span_count\":{},\"shard_spans_dropped\":{},",
            self.records_dropped(),
            span_count,
            spans_dropped,
        );
        match self.memory() {
            Some(m) => {
                let _ = write!(
                    out,
                    "\"memory\":{{\"run\":{},\"wave\":{},\"rep_words\":{},\
                     \"logical_words\":{},\"pending_words\":{},\"mask_words\":{}}},",
                    m.run, m.wave, m.rep_words, m.logical_words, m.pending_words, m.mask_words,
                );
            }
            None => out.push_str("\"memory\":null,"),
        }
        out.push_str("\"top_pointers\":[");
        for (i, p) in self.top_pointers().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rank\":{},\"key\":\"{}\",\"words\":{},\"pops\":{},\
                 \"set_len\":{},\"scc_size\":{}}}",
                p.rank,
                escape(&p.key),
                p.words,
                p.pops,
                p.set_len,
                p.scc_size,
            );
        }
        out.push_str("]}");
        out
    }
}

/// Maps a level (or sentinel) to its JSON representation.
fn level_json(level: u32) -> i64 {
    match level {
        LEVEL_SEED => -1,
        LEVEL_MIXED => -2,
        LEVEL_OVERHEAD => -3,
        LEVEL_UNRANKED => -4,
        l => l as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(wave: u32) -> WaveRecord {
        WaveRecord { run: 1, wave, level: 3, pops: 1, ..WaveRecord::default() }
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        crate::set_enabled(true);
        let t = Timeline::new(4, 4);
        for w in 0..10 {
            t.record_wave(rec(w));
        }
        let got = t.records();
        assert_eq!(got.len(), 4);
        assert_eq!(got.iter().map(|r| r.wave).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
        assert_eq!(t.records_dropped(), 6);
        t.reset();
        assert!(t.records().is_empty());
        assert_eq!(t.records_dropped(), 0);
    }

    #[test]
    fn disabled_timeline_is_inert() {
        crate::set_enabled(false);
        let t = Timeline::new(4, 4);
        t.record_wave(rec(1));
        t.record_shard(ShardSpan { run: 1, wave: 1, level: 0, shard: 0, start_us: 0, dur_us: 1 });
        assert!(!t.offer_memory(MemoryBreakdown { rep_words: 10, ..Default::default() }));
        assert!(!t.offer_top_pointers(5, vec![]));
        assert_eq!(t.begin_run(), 0);
        crate::set_enabled(true);
        assert!(t.records().is_empty());
        assert!(t.shard_spans().is_empty());
        assert!(t.memory().is_none());
        assert!(t.top_pointers().is_empty());
    }

    #[test]
    fn memory_retains_largest_rep_words() {
        crate::set_enabled(true);
        let t = Timeline::new(4, 4);
        assert!(t.offer_memory(MemoryBreakdown { run: 1, rep_words: 100, ..Default::default() }));
        assert!(!t.offer_memory(MemoryBreakdown { run: 2, rep_words: 50, ..Default::default() }));
        assert!(t.offer_memory(MemoryBreakdown {
            run: 3,
            rep_words: 100,
            logical_words: 240,
            ..Default::default()
        }));
        let kept = t.memory().unwrap();
        assert_eq!(kept.run, 3);
        assert_eq!(kept.logical_words, 240);
        let doc = crate::json::parse(&t.export_json()).expect("export parses");
        let mem = doc.get("memory").unwrap();
        assert_eq!(mem.get("rep_words").unwrap().as_f64(), Some(100.0));
        assert_eq!(mem.get("logical_words").unwrap().as_f64(), Some(240.0));
    }

    #[test]
    fn export_json_parses_and_maps_sentinels() {
        crate::set_enabled(true);
        let t = Timeline::new(8, 8);
        t.record_wave(WaveRecord { run: 1, wave: 1, level: LEVEL_SEED, ..Default::default() });
        t.record_wave(WaveRecord { run: 1, wave: 1, level: 7, pops: 2, ..Default::default() });
        t.offer_top_pointers(
            9,
            vec![HotPointer {
                rank: 1,
                key: "Var(\"quoted\")".to_owned(),
                words: 9,
                pops: 2,
                set_len: 4,
                scc_size: 1,
            }],
        );
        let doc = crate::json::parse(&t.export_json()).expect("export parses");
        let records = doc.get("records").unwrap().as_array().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].get("level").unwrap().as_f64(), Some(-1.0));
        assert_eq!(records[1].get("level").unwrap().as_f64(), Some(7.0));
        let top = doc.get("top_pointers").unwrap().as_array().unwrap();
        assert_eq!(top[0].get("key").unwrap().as_str(), Some("Var(\"quoted\")"));
    }
}
