//! Minimal JSON reader, used to validate this crate's own exports in
//! tests and by downstream integration tests. Not a general-purpose
//! parser: numbers become `f64`, objects keep insertion order, and the
//! error type is a position-tagged message.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number, stored as `f64`.
    Number(f64),
    /// A string, with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as key→value pairs in document order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object (`None` for other variants or a
    /// missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Parses one JSON document, requiring it to span the whole input.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let len = if b >= 0xF0 {
                            4
                        } else if b >= 0xE0 {
                            3
                        } else {
                            2
                        };
                        let end = start + len;
                        if end > self.bytes.len() {
                            return Err(self.err("truncated UTF-8 sequence"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = (d as char).to_digit(16).ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + digit;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Value::Number(-125.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn parses_unicode_escapes_and_utf8() {
        assert_eq!(parse(r#""\u00e9""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"naïve ≡\"").unwrap().as_str(), Some("naïve ≡"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let s = "quote \" slash \\ newline \n tab \t control \u{1} unicode ≡";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(s));
    }
}
