//! Exporters: human-readable summary, Chrome `trace_event` JSON, and
//! JSON-Lines metrics.

use std::fmt::Write as _;

use crate::json::escape;
use crate::registry::Registry;
use crate::span::SpanEvent;
use crate::timeline::{ShardSpan, SHARD_TID_BASE};

impl Registry {
    /// Renders a human-readable summary table: phases first, then
    /// counters, gauges, and histograms.
    pub fn export_summary(&self) -> String {
        let mut out = String::new();
        let phases = self.phase_totals();
        if !phases.is_empty() {
            out.push_str("phase                                   count      total\n");
            for p in &phases {
                let _ = writeln!(
                    out,
                    "{:<38} {:>6} {:>10.3}s",
                    p.name,
                    p.count,
                    p.total.as_secs_f64()
                );
            }
        }
        let counters = self.counters();
        if !counters.is_empty() {
            out.push_str("counter                                      value\n");
            for (name, v) in &counters {
                let _ = writeln!(out, "{:<38} {:>12}", name, v);
            }
        }
        let gauges = self.gauges();
        if !gauges.is_empty() {
            out.push_str("gauge                                        value\n");
            for (name, v) in &gauges {
                let _ = writeln!(out, "{:<38} {:>12}", name, v);
            }
        }
        let histograms = self.histograms();
        if !histograms.is_empty() {
            out.push_str(
                "histogram                                    count         mean     p50     p99     max\n",
            );
            for (name, s) in &histograms {
                let _ = writeln!(
                    out,
                    "{:<38} {:>12} {:>12.1} {:>7} {:>7} {:>7}",
                    name,
                    s.count,
                    s.mean(),
                    s.quantile(0.5),
                    s.quantile(0.99),
                    s.max
                );
            }
        }
        out
    }

    /// Renders the span log as a Chrome `trace_event` document using
    /// complete (`"ph": "X"`) events — loadable in `about:tracing` and
    /// Perfetto. Counters are attached as process-level metadata on a
    /// final summary event. The process-global exporter
    /// ([`crate::export_chrome_trace`]) additionally merges in the
    /// timeline's parallel-propagate shard spans.
    pub fn export_chrome_trace(&self) -> String {
        render_chrome_trace(&self.spans(), &[], &self.counters())
    }

    /// Renders every instrument as one JSON object per line:
    /// `{"type":"counter"|"gauge"|"histogram"|"phase"|"span", ...}`.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                escape(&name),
                v
            );
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape(&name),
                v
            );
        }
        for (name, s) in self.histograms() {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape(&name),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.mean(),
                s.quantile(0.5),
                s.quantile(0.9),
                s.quantile(0.99)
            );
        }
        for p in self.phase_totals() {
            let _ = writeln!(
                out,
                "{{\"type\":\"phase\",\"name\":\"{}\",\"count\":{},\"total_us\":{}}}",
                escape(&p.name),
                p.count,
                p.total.as_micros()
            );
        }
        for ev in self.spans() {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":\"{}\",\"tid\":{},\"depth\":{},\"start_us\":{},\"dur_us\":{}}}",
                escape(&ev.name),
                ev.tid,
                ev.depth,
                ev.start_us,
                ev.dur_us
            );
        }
        out
    }
}

/// Renders spans, parallel-propagate shard spans, and counters as one
/// Chrome `trace_event` document. Every distinct `tid` gets an `"M"`
/// `thread_name` metadata event so trace viewers label the tracks:
/// `tid` 1 is `"main"`, other span tids are `"thread {tid}"`, and shard
/// tids (`SHARD_TID_BASE + k`) are `"propagate shard {k}"`.
pub(crate) fn render_chrome_trace(
    spans: &[SpanEvent],
    shard_spans: &[ShardSpan],
    counters: &[(String, u64)],
) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push_event = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };
    // Thread-name metadata first: one "M" event per distinct track.
    let mut tids: Vec<u64> = spans.iter().map(|ev| ev.tid).collect();
    tids.extend(shard_spans.iter().map(|s| SHARD_TID_BASE + u64::from(s.shard)));
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let name = if tid == 1 {
            "main".to_owned()
        } else if tid >= SHARD_TID_BASE {
            format!("propagate shard {}", tid - SHARD_TID_BASE)
        } else {
            format!("thread {tid}")
        };
        push_event(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            tid,
            escape(&name)
        );
    }
    for ev in spans {
        push_event(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
            escape(&ev.name),
            ev.start_us,
            ev.dur_us,
            ev.tid,
            ev.depth
        );
    }
    for s in shard_spans {
        push_event(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"name\":\"wave {} L{}\",\"cat\":\"pta.shard\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"run\":{},\"wave\":{},\"level\":{},\"shard\":{}}}}}",
            s.wave,
            s.level,
            s.start_us,
            s.dur_us,
            SHARD_TID_BASE + u64::from(s.shard),
            s.run,
            s.wave,
            s.level,
            s.shard
        );
    }
    // A zero-duration instant event carrying the final counter values,
    // so the numbers travel with the trace.
    push_event(&mut out, &mut first);
    out.push_str("{\"name\":\"obs.counters\",\"cat\":\"obs\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{");
    let mut first_arg = true;
    for (name, v) in counters {
        if !first_arg {
            out.push(',');
        }
        first_arg = false;
        let _ = write!(out, "\"{}\":{}", escape(name), v);
    }
    out.push_str("}}]}");
    out
}

#[cfg(test)]
mod tests {
    use crate::json;
    use crate::registry::Registry;

    #[test]
    fn chrome_trace_of_empty_registry_is_valid() {
        let r = Registry::new();
        let doc = json::parse(&r.export_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Only the counters metadata event.
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn chrome_trace_renders_shard_tracks_and_thread_names() {
        use crate::timeline::{ShardSpan, SHARD_TID_BASE};
        let spans = [crate::SpanEvent {
            name: "main_analysis".to_owned(),
            tid: 1,
            depth: 0,
            start_us: 0,
            dur_us: 100,
        }];
        let shards = [ShardSpan { run: 1, wave: 2, level: 5, shard: 1, start_us: 10, dur_us: 20 }];
        let doc = json::parse(&super::render_chrome_trace(
            &spans,
            &shards,
            &[("c.one".to_owned(), 3)],
        ))
        .unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Two M (main + shard track), one span X, one shard X, one i.
        assert_eq!(events.len(), 5);
        let metas: Vec<_> =
            events.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("M")).collect();
        assert_eq!(metas.len(), 2);
        assert!(metas.iter().any(|e| {
            e.get("args").unwrap().get("name").unwrap().as_str() == Some("propagate shard 1")
                && e.get("tid").unwrap().as_u64() == Some(SHARD_TID_BASE + 1)
        }));
        let shard_x = events
            .iter()
            .find(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("pta.shard")))
            .unwrap();
        assert_eq!(shard_x.get("tid").unwrap().as_u64(), Some(SHARD_TID_BASE + 1));
        assert_eq!(shard_x.get("name").unwrap().as_str(), Some("wave 2 L5"));
    }

    #[test]
    fn summary_lists_all_instrument_kinds() {
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("c.one").add(5);
        r.gauge("g.one").set(-2);
        r.histogram("h.one").record(8);
        let s = r.export_summary();
        assert!(s.contains("c.one"));
        assert!(s.contains("g.one"));
        assert!(s.contains("h.one"));
        assert!(s.contains("-2"));
    }

    #[test]
    fn jsonl_lines_parse_and_name_needs_escaping() {
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("weird \"name\"\n").add(1);
        let dump = r.export_jsonl();
        for line in dump.lines() {
            let v = json::parse(line).unwrap();
            assert!(v.get("type").is_some());
        }
        assert!(dump.contains("\\\"name\\\""));
    }
}
