//! Exporters: human-readable summary, Chrome `trace_event` JSON, and
//! JSON-Lines metrics.

use std::fmt::Write as _;

use crate::json::escape;
use crate::registry::Registry;

impl Registry {
    /// Renders a human-readable summary table: phases first, then
    /// counters, gauges, and histograms.
    pub fn export_summary(&self) -> String {
        let mut out = String::new();
        let phases = self.phase_totals();
        if !phases.is_empty() {
            out.push_str("phase                                   count      total\n");
            for p in &phases {
                let _ = writeln!(
                    out,
                    "{:<38} {:>6} {:>10.3}s",
                    p.name,
                    p.count,
                    p.total.as_secs_f64()
                );
            }
        }
        let counters = self.counters();
        if !counters.is_empty() {
            out.push_str("counter                                      value\n");
            for (name, v) in &counters {
                let _ = writeln!(out, "{:<38} {:>12}", name, v);
            }
        }
        let gauges = self.gauges();
        if !gauges.is_empty() {
            out.push_str("gauge                                        value\n");
            for (name, v) in &gauges {
                let _ = writeln!(out, "{:<38} {:>12}", name, v);
            }
        }
        let histograms = self.histograms();
        if !histograms.is_empty() {
            out.push_str(
                "histogram                                    count         mean     p50     p99     max\n",
            );
            for (name, s) in &histograms {
                let _ = writeln!(
                    out,
                    "{:<38} {:>12} {:>12.1} {:>7} {:>7} {:>7}",
                    name,
                    s.count,
                    s.mean(),
                    s.quantile(0.5),
                    s.quantile(0.99),
                    s.max
                );
            }
        }
        out
    }

    /// Renders the span log as a Chrome `trace_event` document using
    /// complete (`"ph": "X"`) events — loadable in `about:tracing` and
    /// Perfetto. Counters are attached as process-level metadata on a
    /// final summary event.
    pub fn export_chrome_trace(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for ev in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"depth\":{}}}}}",
                escape(&ev.name),
                ev.start_us,
                ev.dur_us,
                ev.tid,
                ev.depth
            );
        }
        // A zero-duration instant event carrying the final counter
        // values, so the numbers travel with the trace.
        if !first {
            out.push(',');
        }
        out.push_str("{\"name\":\"obs.counters\",\"cat\":\"obs\",\"ph\":\"i\",\"ts\":0,\"pid\":1,\"tid\":1,\"s\":\"g\",\"args\":{");
        let mut first_arg = true;
        for (name, v) in self.counters() {
            if !first_arg {
                out.push(',');
            }
            first_arg = false;
            let _ = write!(out, "\"{}\":{}", escape(&name), v);
        }
        out.push_str("}}]}");
        out
    }

    /// Renders every instrument as one JSON object per line:
    /// `{"type":"counter"|"gauge"|"histogram"|"phase"|"span", ...}`.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(
                out,
                "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
                escape(&name),
                v
            );
        }
        for (name, v) in self.gauges() {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
                escape(&name),
                v
            );
        }
        for (name, s) in self.histograms() {
            let _ = writeln!(
                out,
                "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape(&name),
                s.count,
                s.sum,
                s.min,
                s.max,
                s.mean(),
                s.quantile(0.5),
                s.quantile(0.9),
                s.quantile(0.99)
            );
        }
        for p in self.phase_totals() {
            let _ = writeln!(
                out,
                "{{\"type\":\"phase\",\"name\":\"{}\",\"count\":{},\"total_us\":{}}}",
                escape(&p.name),
                p.count,
                p.total.as_micros()
            );
        }
        for ev in self.spans() {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"name\":\"{}\",\"tid\":{},\"depth\":{},\"start_us\":{},\"dur_us\":{}}}",
                escape(&ev.name),
                ev.tid,
                ev.depth,
                ev.start_us,
                ev.dur_us
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::json;
    use crate::registry::Registry;

    #[test]
    fn chrome_trace_of_empty_registry_is_valid() {
        let r = Registry::new();
        let doc = json::parse(&r.export_chrome_trace()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Only the counters metadata event.
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn summary_lists_all_instrument_kinds() {
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("c.one").add(5);
        r.gauge("g.one").set(-2);
        r.histogram("h.one").record(8);
        let s = r.export_summary();
        assert!(s.contains("c.one"));
        assert!(s.contains("g.one"));
        assert!(s.contains("h.one"));
        assert!(s.contains("-2"));
    }

    #[test]
    fn jsonl_lines_parse_and_name_needs_escaping() {
        crate::set_enabled(true);
        let r = Registry::new();
        r.counter("weird \"name\"\n").add(1);
        let dump = r.export_jsonl();
        for line in dump.lines() {
            let v = json::parse(line).unwrap();
            assert!(v.get("type").is_some());
        }
        assert!(dump.contains("\\\"name\\\""));
    }
}
