//! RAII wall-clock phase spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop and records the result in the global registry's span log. Spans
//! opened on the same thread nest: each event carries the nesting depth
//! at which it ran, and timestamps are offsets from a process-wide
//! epoch so the Chrome-trace exporter can lay events out on a shared
//! timeline.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-wide zero point for span timestamps.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic source of per-thread trace ids (Chrome traces want small
/// integer `tid`s, not opaque `ThreadId`s).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the process trace epoch, pinning the epoch on
/// first use (backs [`crate::epoch_us`]).
pub(crate) fn epoch_offset_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn current_tid() -> u64 {
    TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// A completed span as stored in the registry's log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name as passed to [`crate::span`].
    pub name: String,
    /// Small integer id of the thread the span ran on.
    pub tid: u64,
    /// Nesting depth at which the span ran (0 = outermost).
    pub depth: usize,
    /// Start offset from the process epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
}

/// RAII guard measuring one phase; created by [`crate::span`].
///
/// If recording was disabled when the span was opened, the guard is
/// inert: dropping it records nothing and nesting depth is untouched.
#[derive(Debug)]
pub struct Span {
    name: Option<String>,
    start: Instant,
    depth: usize,
}

impl Span {
    pub(crate) fn enter(name: String) -> Span {
        if !crate::enabled() {
            return Span { name: None, start: Instant::now(), depth: 0 };
        }
        epoch(); // pin the epoch no later than the first span start
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        Span { name: Some(name), start: Instant::now(), depth }
    }

    /// Nesting depth this span runs at (0 = outermost). Inert spans
    /// report 0.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else { return };
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let start_us = self.start.duration_since(epoch()).as_micros() as u64;
        let dur_us = self.start.elapsed().as_micros() as u64;
        crate::registry().record_span(SpanEvent {
            name,
            tid: current_tid(),
            depth: self.depth,
            start_us,
            dur_us,
        });
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spans_nest_and_record_depth() {
        crate::set_enabled(true);
        let outer = crate::span("test.span.outer");
        let outer_depth = outer.depth();
        {
            let inner = crate::span("test.span.inner");
            assert_eq!(inner.depth(), outer_depth + 1);
        }
        drop(outer);
        let spans = crate::registry().spans();
        let inner = spans.iter().rev().find(|s| s.name == "test.span.inner").unwrap();
        let outer = spans.iter().rev().find(|s| s.name == "test.span.outer").unwrap();
        // Inner closes first, nests one deeper, and is contained in the
        // outer span's interval.
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us + 1);
    }

    #[test]
    fn disabled_spans_leave_no_trace_and_no_depth() {
        crate::set_enabled(false);
        let before = crate::registry().spans().len();
        {
            let s = crate::span("test.span.disabled");
            assert_eq!(s.depth(), 0);
        }
        crate::set_enabled(true);
        // No event with our name was appended (other tests may append
        // their own concurrently, so only check our name).
        assert!(crate::registry().spans()[before..]
            .iter()
            .all(|s| s.name != "test.span.disabled"));
    }
}
