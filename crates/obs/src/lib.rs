//! # obs — zero-dependency telemetry for the Mahjong reproduction
//!
//! The paper's evaluation (Tables 1–2, Figures 8–9) is entirely about
//! *where time and objects go*: pre-analysis vs. automata construction
//! vs. Hopcroft–Karp equivalence vs. the main context-sensitive
//! fixpoint. This crate is the substrate that makes those hot paths
//! visible and regression-checkable without pulling in any crates.io
//! dependency (the build environment is offline).
//!
//! ## Model
//!
//! One process-global [`Registry`] holds four kinds of instruments, all
//! addressed by dotted string names (`"pta.worklist_pops"`):
//!
//! - **counters** — monotonic `u64`s ([`counter`]);
//! - **gauges** — last-write-wins `i64`s ([`gauge`]);
//! - **histograms** — lock-free log₂-bucketed distributions
//!   ([`histogram`]) for points-to-set sizes, DFA state counts,
//!   worklist delta sizes;
//! - **spans** — RAII wall-clock phase scopes ([`span`]) that nest and
//!   aggregate into per-phase totals.
//!
//! Three exporters read the registry:
//!
//! - [`export_summary`] — a human-readable table;
//! - [`export_chrome_trace`] — a Chrome `trace_event` JSON document,
//!   loadable in `about:tracing` / Perfetto (complete `"X"` events);
//! - [`export_jsonl`] — a flat JSON-Lines dump for machine diffing.
//!
//! ## Disabling
//!
//! Setting the environment variable `OBS_DISABLE=1` (any non-empty
//! value other than `0`) turns every recording call into a cheap no-op:
//! a relaxed atomic load plus a predictable branch. [`set_enabled`]
//! overrides the environment at runtime (used by tests).
//!
//! ## Examples
//!
//! ```
//! obs::set_enabled(true);
//! {
//!     let _phase = obs::span("demo.outer");
//!     obs::counter("demo.widgets").add(3);
//!     obs::histogram("demo.sizes").record(17);
//! }
//! let jsonl = obs::export_jsonl();
//! assert!(jsonl.lines().any(|l| l.contains("demo.widgets")));
//! let trace = obs::export_chrome_trace();
//! obs::json::parse(&trace).expect("trace is valid JSON");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod rng;
pub mod timeline;

mod export;
mod histogram;
mod registry;
mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, PhaseTotal, Registry};
pub use span::{Span, SpanEvent};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static TIMELINE: OnceLock<timeline::Timeline> = OnceLock::new();
static ENABLED: OnceLock<AtomicBool> = OnceLock::new();

fn enabled_flag() -> &'static AtomicBool {
    ENABLED.get_or_init(|| {
        let disabled = std::env::var_os("OBS_DISABLE")
            .is_some_and(|v| !v.is_empty() && v != "0");
        AtomicBool::new(!disabled)
    })
}

/// Returns `true` when recording is enabled (the default unless
/// `OBS_DISABLE` is set in the environment, or [`set_enabled`] said
/// otherwise).
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Overrides the `OBS_DISABLE` environment decision at runtime.
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Returns the process-global registry.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

/// Returns the process-global solver-introspection timeline (see
/// [`mod@timeline`]).
pub fn timeline() -> &'static timeline::Timeline {
    TIMELINE.get_or_init(timeline::Timeline::default)
}

/// Microseconds elapsed since the process trace epoch (the zero point
/// of every span and shard-span timestamp). Pins the epoch on first
/// use, exactly like opening a span does.
pub fn epoch_us() -> u64 {
    span::epoch_offset_us()
}

/// Returns (creating on first use) the named monotonic counter.
pub fn counter(name: &str) -> Counter {
    registry().counter(name)
}

/// Returns (creating on first use) the named gauge.
pub fn gauge(name: &str) -> Gauge {
    registry().gauge(name)
}

/// Returns (creating on first use) the named log-scale histogram.
pub fn histogram(name: &str) -> Histogram {
    registry().histogram(name)
}

/// Opens a named RAII phase span; the scope is recorded when the
/// returned guard drops. Spans on one thread nest.
pub fn span(name: impl Into<String>) -> Span {
    Span::enter(name.into())
}

/// Zeroes every instrument in place, clears the span log, and clears
/// the solver-introspection [`timeline()`].
///
/// Existing [`Counter`]/[`Gauge`]/[`Histogram`] handles stay valid:
/// they point at the same cells, which are reset to zero.
pub fn reset() {
    registry().reset();
    timeline().reset();
}

/// Renders the human-readable summary table.
pub fn export_summary() -> String {
    registry().export_summary()
}

/// Renders the Chrome `trace_event` JSON document: registry spans on
/// their originating threads' tracks, parallel propagate shard spans
/// from the [`timeline()`] on per-shard tracks, thread-name metadata,
/// and the counter summary.
pub fn export_chrome_trace() -> String {
    export::render_chrome_trace(
        &registry().spans(),
        &timeline().shard_spans(),
        &registry().counters(),
    )
}

/// Renders the flat JSON-Lines metrics dump.
pub fn export_jsonl() -> String {
    registry().export_jsonl()
}

#[cfg(test)]
mod tests {
    // The global registry is shared by every test in this binary, so
    // the tests here either use instance-local state or tolerate
    // concurrent increments from sibling tests.

    #[test]
    fn counters_accumulate() {
        let c = super::counter("test.lib.counter");
        super::set_enabled(true);
        let before = c.get();
        c.add(5);
        c.inc();
        assert!(c.get() >= before + 6);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let r = super::Registry::new();
        // Instance registries honour the global flag; flip it briefly.
        let c = r.counter("test.disabled.counter");
        let h = r.histogram("test.disabled.hist");
        super::set_enabled(false);
        c.add(10);
        h.record(10);
        super::set_enabled(true);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        super::set_enabled(true);
        let g = super::gauge("test.lib.gauge");
        g.set(3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn exports_are_valid_json() {
        super::set_enabled(true);
        super::counter("test.export.counter").inc();
        {
            let _s = super::span("test.export.span");
        }
        let trace = super::export_chrome_trace();
        let doc = super::json::parse(&trace).expect("valid trace JSON");
        assert!(doc.get("traceEvents").and_then(|v| v.as_array()).is_some());
        for line in super::export_jsonl().lines() {
            super::json::parse(line).expect("every JSONL line parses");
        }
    }
}
