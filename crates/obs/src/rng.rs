//! Tiny deterministic PRNG, replacing the `rand` crate for offline
//! builds.
//!
//! SplitMix64 (Steele, Lea & Flood; the same mixer `java.util
//! .SplittableRandom` uses) — one 64-bit state word, full 2⁶⁴ period,
//! passes BigCrush when used as a plain stream. Not cryptographic;
//! it seeds workload generators and property tests, nothing else.

/// SplitMix64 generator. Construct with a seed; identical seeds yield
/// identical streams on every platform.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)`. Panics if `n == 0`.
    ///
    /// Uses Lemire's multiply-shift reduction with rejection, so the
    /// result is exactly uniform.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        // Reject draws whose low product word falls in the biased
        // fringe [0, 2^64 mod n); everything else maps uniformly.
        let threshold = n.wrapping_neg() % n;
        loop {
            let m = (self.next_u64() as u128) * (n as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_answer_for_seed_zero() {
        // Reference values from the canonical C implementation
        // (Vigna, prng.di.unimi.it/splitmix64.c), seed = 0.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn below_is_in_range_and_hits_everything() {
        let mut r = SplitMix64::new(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn chance_tracks_probability_roughly() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2700..3300).contains(&hits), "got {hits}");
    }
}
