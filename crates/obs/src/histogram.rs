//! Lock-free log₂-bucketed histograms.
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
//! `[2^(b-1), 2^b)`, so bucket `b = 64 − leading_zeros(v)`. 65 buckets
//! cover the whole `u64` range. Recording is one `fetch_add` per cell
//! plus min/max maintenance — no locks on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BUCKETS: usize = 65;

#[derive(Debug)]
struct Inner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A named log-scale histogram. Cheap to clone; all clones share the
/// same cells. Recording respects the global enable flag.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<Inner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(Inner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, used for quantile estimates.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Records one observation (no-op while recording is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let inner = &*self.inner;
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.min.fetch_min(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes a consistent-enough point-in-time copy of the cells.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.inner;
        let count = inner.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: inner.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { inner.min.load(Ordering::Relaxed) },
            max: inner.max.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        let inner = &*self.inner;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.count.store(0, Ordering::Relaxed);
        inner.sum.store(0, Ordering::Relaxed);
        inner.min.store(u64::MAX, Ordering::Relaxed);
        inner.max.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one histogram's cells.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`buckets[0]` = value 0,
    /// `buckets[b]` = values in `[2^(b-1), 2^b)`).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the observations (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of
    /// the bucket containing the `ceil(q·count)`-th observation —
    /// accurate to within one power of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..64 {
            assert_eq!(bucket_of(bucket_upper(b)), b);
            assert_eq!(bucket_of(bucket_upper(b) + 1), b + 1);
        }
    }

    #[test]
    fn snapshot_reflects_recordings() {
        crate::set_enabled(true);
        let h = Histogram::default();
        for v in [0, 1, 1, 7, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 109);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets[0], 1); // the single 0
        assert_eq!(s.buckets[1], 2); // the two 1s
        assert_eq!(s.buckets[3], 1); // 7 ∈ [4, 8)
        assert_eq!(s.buckets[7], 1); // 100 ∈ [64, 128)
        assert!((s.mean() - 21.8).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        crate::set_enabled(true);
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        // The 500th observation lives in [256, 512); the estimate is
        // the bucket's upper bound.
        assert_eq!(p50, 511);
        assert_eq!(s.quantile(1.0), 1000); // clamped to the observed max
        assert_eq!(s.quantile(0.0), 1); // rank clamps to the 1st value
    }
}
