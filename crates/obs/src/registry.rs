//! Instrument storage: named counters, gauges, histograms, and the
//! span log, behind one [`Registry`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::histogram::Histogram;
use crate::span::SpanEvent;

/// A named monotonic counter. Cheap to clone; all clones share the
/// same cell. Recording respects the global enable flag.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n` to the counter (no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A named last-write-wins gauge. Cheap to clone; all clones share the
/// same cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge (no-op while recording is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Returns the current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Aggregated wall-clock for one span name: how many times the phase
/// ran and the total time spent inside it (self-inclusive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseTotal {
    /// Span name as passed to [`crate::span`].
    pub name: String,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of the spans' wall-clock durations.
    pub total: Duration,
}

/// Holder of every instrument. One process-global instance lives
/// behind [`crate::registry`]; tests may create private instances.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<Vec<SpanEvent>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Returns the named counter, creating it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| Counter { cell: Arc::new(AtomicU64::new(0)) })
            .clone()
    }

    /// Returns the named gauge, creating it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().unwrap();
        map.entry(name.to_owned())
            .or_insert_with(|| Gauge { cell: Arc::new(AtomicI64::new(0)) })
            .clone()
    }

    /// Returns the named histogram, creating it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_owned()).or_default().clone()
    }

    /// Appends a completed span to the log. Called from `Span::drop`.
    pub(crate) fn record_span(&self, event: SpanEvent) {
        self.spans.lock().unwrap().push(event);
    }

    /// Snapshot of all counters as `(name, value)` pairs, name-sorted.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)` pairs, name-sorted.
    pub fn gauges(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of all histograms, name-sorted.
    pub fn histograms(&self) -> Vec<(String, crate::HistogramSnapshot)> {
        self.histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Snapshot of the span log in completion order.
    pub fn spans(&self) -> Vec<SpanEvent> {
        self.spans.lock().unwrap().clone()
    }

    /// Aggregates the span log into per-name totals, name-sorted.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        let mut totals: BTreeMap<String, (u64, Duration)> = BTreeMap::new();
        for ev in self.spans.lock().unwrap().iter() {
            let slot = totals.entry(ev.name.clone()).or_insert((0, Duration::ZERO));
            slot.0 += 1;
            slot.1 += Duration::from_micros(ev.dur_us);
        }
        totals
            .into_iter()
            .map(|(name, (count, total))| PhaseTotal { name, count, total })
            .collect()
    }

    /// Total recorded wall-clock for one span name ([`Duration::ZERO`]
    /// if the phase never ran).
    pub fn phase_time(&self, name: &str) -> Duration {
        self.spans
            .lock()
            .unwrap()
            .iter()
            .filter(|ev| ev.name == name)
            .map(|ev| Duration::from_micros(ev.dur_us))
            .sum()
    }

    /// Zeroes every instrument in place and clears the span log.
    /// Handles returned earlier stay connected to their cells.
    pub fn reset(&self) {
        for c in self.counters.lock().unwrap().values() {
            c.cell.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.lock().unwrap().values() {
            g.cell.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.lock().unwrap().values() {
            h.reset();
        }
        self.spans.lock().unwrap().clear();
    }
}
