//! Call-graph-consuming analyses: dead-method detection and strongly
//! connected components — the kind of downstream analysis the paper
//! motivates Mahjong with ("significant benefits for many program
//! analyses where call graphs are required").

use jir::{MethodId, Program};
use pta::AnalysisResult;

use crate::CallGraph;

/// Methods with bodies that the analysis proves unreachable from the
/// entry point — dead-code candidates.
pub fn dead_methods(program: &Program, result: &AnalysisResult) -> Vec<MethodId> {
    program
        .method_ids()
        .filter(|&m| !program.method(m).is_abstract() && !result.is_reachable(m))
        .collect()
}

/// Strongly connected components of the method-level call graph, in
/// reverse topological order (callees before callers); recursion shows
/// up as components with more than one member or a self-loop.
///
/// Tarjan's algorithm, iterative to keep stack depth bounded.
pub fn call_graph_sccs(program: &Program, cg: &CallGraph) -> Vec<Vec<MethodId>> {
    // Method-level adjacency.
    let n = program.method_count();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(site, target) in cg.edges() {
        let from = program.call_site(site).method().index();
        succs[from].push(target.index());
    }
    for row in &mut succs {
        row.sort_unstable();
        row.dedup();
    }

    // Iterative Tarjan.
    const UNVISITED: usize = usize::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<MethodId>> = Vec::new();

    for start in 0..n {
        if index[start] != UNVISITED {
            continue;
        }
        // Each frame: (node, next successor position).
        let mut frames: Vec<(usize, usize)> = vec![(start, 0)];
        index[start] = next_index;
        lowlink[start] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start] = true;

        while let Some(frame) = frames.last_mut() {
            let (v, i) = (frame.0, frame.1);
            if i < succs[v].len() {
                frame.1 += 1;
                let w = succs[v][i];
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    let p = parent.0;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("scc member on stack");
                        on_stack[w] = false;
                        component.push(MethodId::from_usize(w));
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    sccs.push(component);
                }
            }
        }
    }
    sccs
}

/// Returns the recursive components: SCCs that contain a cycle (more
/// than one member, or a self-calling method).
pub fn recursive_components(program: &Program, cg: &CallGraph) -> Vec<Vec<MethodId>> {
    call_graph_sccs(program, cg)
        .into_iter()
        .filter(|scc| {
            scc.len() > 1 || {
                let m = scc[0];
                cg.edges()
                    .iter()
                    .any(|&(site, target)| target == m && program.call_site(site).method() == m)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::{AllocSiteAbstraction, AnalysisConfig, ContextInsensitive};

    fn analyze(src: &str) -> (Program, AnalysisResult) {
        let p = jir::parse(src).unwrap();
        let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .run(&p)
            .unwrap();
        (p, r)
    }

    #[test]
    fn dead_methods_found() {
        let (p, r) = analyze(
            "class A {
               static method used() { return; }
               static method unused() { return; }
               entry static method main() { call A::used(); return; } }",
        );
        let dead = dead_methods(&p, &r);
        assert_eq!(dead.len(), 1);
        assert_eq!(p.method(dead[0]).name(), "unused");
    }

    #[test]
    fn sccs_expose_mutual_recursion() {
        let (p, r) = analyze(
            "class A {
               static method even(v) { call A::odd(v); return; }
               static method odd(v) { call A::even(v); return; }
               static method leaf() { return; }
               entry static method main() {
                 x = new A;
                 call A::even(x);
                 call A::leaf();
                 return;
               } }",
        );
        let cg = CallGraph::from_result(&r);
        let sccs = call_graph_sccs(&p, &cg);
        let rec = recursive_components(&p, &cg);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].len(), 2, "even/odd form one component");
        // Reverse topological: the even/odd component appears before main.
        let main_pos = sccs.iter().position(|s| s.contains(&p.entry())).unwrap();
        let rec_pos = sccs.iter().position(|s| s.len() == 2).unwrap();
        assert!(rec_pos < main_pos);
    }

    #[test]
    fn self_recursion_is_a_recursive_component() {
        let (p, r) = analyze(
            "class A {
               static method f(v) { call A::f(v); return; }
               entry static method main() { x = new A; call A::f(x); return; } }",
        );
        let cg = CallGraph::from_result(&r);
        let rec = recursive_components(&p, &cg);
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].len(), 1);
        assert_eq!(p.method(rec[0][0]).name(), "f");
    }

    #[test]
    fn acyclic_graph_has_no_recursive_components() {
        let (p, r) = analyze(
            "class A {
               static method g() { return; }
               static method f() { call A::g(); return; }
               entry static method main() { call A::f(); return; } }",
        );
        let cg = CallGraph::from_result(&r);
        assert!(recursive_components(&p, &cg).is_empty());
        // Every reachable method appears in exactly one SCC.
        let sccs = call_graph_sccs(&p, &cg);
        let all: Vec<MethodId> = sccs.into_iter().flatten().collect();
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(all.len(), unique.len());
    }
}
