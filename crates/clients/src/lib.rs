//! # clients — type-dependent clients of points-to analysis
//!
//! The three clients the paper evaluates (Section 6): call-graph
//! construction, devirtualization, and may-fail casting. All three
//! depend only on the *types* of pointed-to objects, which is exactly
//! why the Mahjong heap abstraction preserves their precision while
//! merging type-consistent objects.
//!
//! Metrics reported (smaller is better, except call-graph edges where
//! fewer spurious edges means smaller too):
//!
//! - **#call graph edges** — context-insensitive call-graph edges
//!   discovered by the analysis;
//! - **#poly call sites** — virtual call sites that resolve to two or
//!   more targets (not devirtualizable);
//! - **#may-fail casts** — cast sites where some pointed-to object is
//!   not a subtype of the cast's target type.
//!
//! # Examples
//!
//! ```
//! use pta::{AnalysisConfig, ContextInsensitive, AllocSiteAbstraction};
//! use clients::ClientMetrics;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = jir::parse(
//!     "class A { method foo(this) { return; } }
//!      class B extends A {
//!        method foo(this) { return; }
//!        entry static method main() {
//!          x = new A; x = new B;
//!          virt x.foo();
//!          b = (B) x;
//!          return;
//!        }
//!      }",
//! )?;
//! let result = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction).run(&program)?;
//! let metrics = ClientMetrics::compute(&program, &result);
//! assert_eq!(metrics.poly_call_sites, 1);   // dispatches to A::foo and B::foo
//! assert_eq!(metrics.may_fail_casts, 1);    // the A object fails (B) x
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alias;
pub mod reachability;

use jir::{CallKind, CallSiteId, CastId, MethodId, Program, Stmt};
use pta::AnalysisResult;

/// The paper's three type-dependent client metrics, plus supporting
/// counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientMetrics {
    /// Context-insensitive call-graph edges (`#call graph edges`).
    pub call_graph_edges: usize,
    /// Reachable methods.
    pub reachable_methods: usize,
    /// Virtual call sites with two or more resolved targets
    /// (`#poly call sites`).
    pub poly_call_sites: usize,
    /// Reachable virtual call sites with at least one target.
    pub resolved_virtual_sites: usize,
    /// Cast sites that may fail (`#may-fail casts`).
    pub may_fail_casts: usize,
    /// Reachable cast sites considered.
    pub reachable_casts: usize,
}

impl ClientMetrics {
    /// Runs all three clients over an analysis result.
    pub fn compute(program: &Program, result: &AnalysisResult) -> Self {
        let devirt = devirtualization(program, result);
        let casts = may_fail_casts(program, result);
        ClientMetrics {
            call_graph_edges: result.call_graph_edge_count(),
            reachable_methods: result.reachable_method_count(),
            poly_call_sites: devirt.poly_sites.len(),
            resolved_virtual_sites: devirt.resolved_sites,
            may_fail_casts: casts.may_fail.len(),
            reachable_casts: casts.considered,
        }
    }
}

/// Result of the devirtualization client.
#[derive(Clone, Debug)]
pub struct Devirtualization {
    /// Virtual call sites with two or more targets.
    pub poly_sites: Vec<CallSiteId>,
    /// Virtual call sites with exactly one target (devirtualizable).
    pub mono_sites: Vec<CallSiteId>,
    /// Virtual call sites with at least one resolved target.
    pub resolved_sites: usize,
}

/// Classifies every resolved virtual call site as mono (devirtualizable)
/// or poly.
pub fn devirtualization(program: &Program, result: &AnalysisResult) -> Devirtualization {
    let mut poly_sites = Vec::new();
    let mut mono_sites = Vec::new();
    let mut resolved = 0;
    for site in program.call_site_ids() {
        if !matches!(program.call_site(site).kind(), CallKind::Virtual { .. }) {
            continue;
        }
        let targets = result.call_targets(site);
        match targets.len() {
            0 => {}
            1 => {
                resolved += 1;
                mono_sites.push(site);
            }
            _ => {
                resolved += 1;
                poly_sites.push(site);
            }
        }
    }
    Devirtualization {
        poly_sites,
        mono_sites,
        resolved_sites: resolved,
    }
}

/// Result of the may-fail casting client.
#[derive(Clone, Debug)]
pub struct MayFailCasts {
    /// Cast sites where some incoming object is not a subtype of the
    /// target type.
    pub may_fail: Vec<CastId>,
    /// Reachable cast sites examined.
    pub considered: usize,
}

/// Finds cast sites that may fail: a cast `x = (T) y` may fail if the
/// points-to set of `y` (under any context the enclosing method is
/// analyzed in) contains an object whose type is not a subtype of `T`.
pub fn may_fail_casts(program: &Program, result: &AnalysisResult) -> MayFailCasts {
    let mut may_fail = Vec::new();
    let mut considered = 0;
    for m in program.method_ids() {
        if !result.is_reachable(m) {
            continue;
        }
        for stmt in program.method(m).body() {
            let Stmt::Cast { rhs, site, .. } = *stmt else {
                continue;
            };
            considered += 1;
            let target = program.cast(site).target_ty();
            let fails = result
                .points_to_collapsed(rhs)
                .iter()
                .any(|obj| !program.is_subtype(result.obj_type(obj), target));
            if fails {
                may_fail.push(site);
            }
        }
    }
    MayFailCasts {
        may_fail,
        considered,
    }
}

/// A context-insensitive call-graph view with reverse edges, for
/// downstream analyses that consume call graphs (the paper motivates
/// Mahjong by the breadth of such analyses).
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    edges: Vec<(CallSiteId, MethodId)>,
}

impl CallGraph {
    /// Extracts the call graph from an analysis result.
    pub fn from_result(result: &AnalysisResult) -> Self {
        let mut edges: Vec<(CallSiteId, MethodId)> = result.call_graph_edges().collect();
        edges.sort_unstable();
        CallGraph { edges }
    }

    /// Returns all edges, sorted by call site.
    pub fn edges(&self) -> &[(CallSiteId, MethodId)] {
        &self.edges
    }

    /// Returns the number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the targets of a call site.
    pub fn targets(&self, site: CallSiteId) -> impl Iterator<Item = MethodId> + '_ {
        self.edges
            .iter()
            .filter(move |&&(s, _)| s == site)
            .map(|&(_, m)| m)
    }

    /// Returns the call sites that may invoke `method`.
    pub fn callers(&self, method: MethodId) -> impl Iterator<Item = CallSiteId> + '_ {
        self.edges
            .iter()
            .filter(move |&&(_, m)| m == method)
            .map(|&(s, _)| s)
    }

    /// Checks whether `target` is invoked from within `from` (directly).
    pub fn calls(&self, program: &Program, from: MethodId, target: MethodId) -> bool {
        self.edges
            .iter()
            .any(|&(s, m)| m == target && program.call_site(s).method() == from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::{AllocSiteAbstraction, AnalysisConfig, ContextInsensitive};

    fn analyze(src: &str) -> (Program, AnalysisResult) {
        let p = jir::parse(src).expect("parses");
        let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .run(&p)
            .expect("fits budget");
        (p, r)
    }

    #[test]
    fn mono_call_is_devirtualizable() {
        let (p, r) = analyze(
            "class A { method foo(this) { return; }
               entry static method main() { x = new A; virt x.foo(); return; } }",
        );
        let d = devirtualization(&p, &r);
        assert_eq!(d.mono_sites.len(), 1);
        assert!(d.poly_sites.is_empty());
    }

    #[test]
    fn safe_cast_not_flagged() {
        let (p, r) = analyze(
            "class A { }
             class B extends A {
               entry static method main() { x = new B; y = (A) x; z = (B) x; return; } }",
        );
        let c = may_fail_casts(&p, &r);
        assert_eq!(c.considered, 2);
        assert!(c.may_fail.is_empty(), "upcast and exact cast are safe");
    }

    #[test]
    fn failing_cast_flagged() {
        let (p, r) = analyze(
            "class A { }
             class B extends A {
               entry static method main() { x = new A; y = (B) x; return; } }",
        );
        let c = may_fail_casts(&p, &r);
        assert_eq!(c.may_fail.len(), 1);
    }

    #[test]
    fn casts_in_unreachable_methods_ignored() {
        let (p, r) = analyze(
            "class A { }
             class B extends A {
               static method dead() { x = new A; y = (B) x; return; }
               entry static method main() { return; } }",
        );
        let c = may_fail_casts(&p, &r);
        assert_eq!(c.considered, 0);
    }

    #[test]
    fn call_graph_queries() {
        let (p, r) = analyze(
            "class A { method foo(this) { virt this.bar(); return; }
               method bar(this) { return; }
               entry static method main() { x = new A; virt x.foo(); return; } }",
        );
        let cg = CallGraph::from_result(&r);
        assert_eq!(cg.edge_count(), 2);
        let a = p.class_by_name("A").unwrap();
        let foo = p.method_by_name(a, "foo", 0).unwrap();
        let bar = p.method_by_name(a, "bar", 0).unwrap();
        let main = p.entry();
        assert!(cg.calls(&p, main, foo));
        assert!(cg.calls(&p, foo, bar));
        assert!(!cg.calls(&p, main, bar));
        assert_eq!(cg.callers(bar).count(), 1);
    }

    #[test]
    fn metrics_aggregate() {
        let (p, r) = analyze(
            "class A { method foo(this) { return; } }
             class B extends A { method foo(this) { return; }
               entry static method main() {
                 x = new A; x = new B;
                 virt x.foo();
                 b = (B) x;
                 return;
               } }",
        );
        let m = ClientMetrics::compute(&p, &r);
        assert_eq!(m.poly_call_sites, 1);
        assert_eq!(m.may_fail_casts, 1);
        assert_eq!(m.reachable_casts, 1);
        assert!(m.call_graph_edges >= 2);
    }
}
