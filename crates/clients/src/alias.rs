//! The may-alias client — the client Mahjong deliberately does *not*
//! serve.
//!
//! The paper's introduction is explicit: the allocation-site abstraction
//! "maximizes the precision for may-alias", and Mahjong trades exactly
//! that away for type-dependent clients. This module makes the tradeoff
//! measurable: under a merging abstraction, variables that held
//! *different* objects of the same shape become aliases, so the alias
//! pair count grows even while call-graph/devirtualization/cast metrics
//! stay identical. The integration test `tests/alias_tradeoff.rs`
//! demonstrates both directions.

use jir::{MethodId, Program, VarId};
use pta::{AnalysisResult, ObjId, PtsSet};

/// Whether two variables may point to a common abstract object
/// (context-insensitively collapsed).
pub fn may_alias(result: &AnalysisResult, a: VarId, b: VarId) -> bool {
    result
        .points_to_collapsed(a)
        .intersects(result.points_to_collapsed(b))
}

/// Summary statistics of the may-alias client over a method's local
/// variables.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AliasStats {
    /// Variable pairs examined (both non-empty).
    pub pairs: usize,
    /// Pairs reported as may-alias.
    pub aliased: usize,
}

/// Counts may-alias pairs among the local variables of one method.
pub fn method_alias_stats(program: &Program, result: &AnalysisResult, m: MethodId) -> AliasStats {
    let vars: Vec<VarId> = (0..program.var_count())
        .map(VarId::from_usize)
        .filter(|&v| program.var(v).method() == m)
        .collect();
    let pts: Vec<(VarId, &PtsSet<ObjId>)> = vars
        .iter()
        .map(|&v| (v, result.points_to_collapsed(v)))
        .filter(|(_, p)| !p.is_empty())
        .collect();
    let mut stats = AliasStats::default();
    for i in 0..pts.len() {
        for j in (i + 1)..pts.len() {
            stats.pairs += 1;
            if pts[i].1.intersects(pts[j].1) {
                stats.aliased += 1;
            }
        }
    }
    stats
}

/// Counts may-alias pairs across all reachable methods.
pub fn program_alias_stats(program: &Program, result: &AnalysisResult) -> AliasStats {
    let mut total = AliasStats::default();
    for m in program.method_ids() {
        if !result.is_reachable(m) {
            continue;
        }
        let s = method_alias_stats(program, result, m);
        total.pairs += s.pairs;
        total.aliased += s.aliased;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::{AllocSiteAbstraction, AnalysisConfig, ContextInsensitive};

    #[test]
    fn distinct_objects_do_not_alias() {
        let p = jir::parse(
            "class A {
               entry static method main() { x = new A; y = new A; return; } }",
        )
        .unwrap();
        let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .run(&p)
            .unwrap();
        let find = |n: &str| {
            (0..p.var_count())
                .map(jir::VarId::from_usize)
                .find(|&v| p.var(v).name() == n)
                .unwrap()
        };
        assert!(!may_alias(&r, find("x"), find("y")));
        let stats = program_alias_stats(&p, &r);
        assert_eq!(stats, AliasStats { pairs: 1, aliased: 0 });
    }

    #[test]
    fn copied_variables_alias() {
        let p = jir::parse(
            "class A {
               entry static method main() { x = new A; y = x; return; } }",
        )
        .unwrap();
        let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .run(&p)
            .unwrap();
        let find = |n: &str| {
            (0..p.var_count())
                .map(jir::VarId::from_usize)
                .find(|&v| p.var(v).name() == n)
                .unwrap()
        };
        assert!(may_alias(&r, find("x"), find("y")));
    }

    #[test]
    fn merging_introduces_spurious_aliases() {
        // Under a merged-object map joining the two sites, x and y alias.
        let p = jir::parse(
            "class A {
               entry static method main() { x = new A; y = new A; return; } }",
        )
        .unwrap();
        let mom = pta::MergedObjectMap::new(vec![
            jir::AllocId::from_usize(0),
            jir::AllocId::from_usize(0),
        ]);
        let r = AnalysisConfig::new(ContextInsensitive, mom).run(&p).unwrap();
        let stats = program_alias_stats(&p, &r);
        assert_eq!(stats.aliased, 1, "merging makes x and y alias");
    }
}
