//! # fxhash — the workspace's shared fast hasher
//!
//! A hand-rolled, zero-dependency reimplementation of the FxHash
//! algorithm (the multiplicative word hasher used by rustc): each input
//! word is folded into the state with a rotate, an xor, and a multiply
//! by a single odd constant. Not DoS-resistant — every map in this
//! workspace is keyed by our own interned indices and arena ids, so
//! speed and determinism are what matter, not adversarial resistance.
//!
//! The hot maps of `pta` (context interning, pointer keys), `automata`
//! (subset-construction tables, minimization signatures), and `mahjong`
//! (type groups, state-set interning) all use [`FxHashMap`] /
//! [`FxHashSet`] instead of the standard SipHash tables; on the
//! interning-heavy pre-analysis pipeline the difference is measurable
//! because keys are tiny (one or two words) and the tables are hit
//! millions of times.
//!
//! Also provided: [`hash64`] / [`Fingerprint128`], a two-lane variant
//! used where a *stable value* (not a bucket index) is needed — e.g.
//! the canonical DFA signatures of the `automata` crate. The 128-bit
//! fingerprint runs two independently-seeded lanes with cross-mixing,
//! so a collision requires defeating both lanes at once.
//!
//! # Examples
//!
//! ```
//! use fxhash::FxHashMap;
//!
//! let mut m: FxHashMap<u32, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;
/// The [`BuildHasher`](std::hash::BuildHasher) for [`FxHasher`] —
/// handy for `with_capacity_and_hasher`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The FxHash multiplier: a 64-bit odd constant with well-mixed bits
/// (derived from the golden ratio, as in rustc's implementation).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher for small integer-like keys.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.mix(v as u64);
        self.mix((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Hashes any `Hash` value to a `u64` with [`FxHasher`] — a convenience
/// for signature-style uses where only the value (not a table lookup)
/// is needed.
pub fn hash64<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// A streaming 128-bit fingerprint: two 64-bit lanes seeded
/// differently, each fed every input word, cross-mixed on finish.
///
/// Used where hash equality is treated as value equality (e.g. the
/// canonical DFA signatures in `automata`): a false merge needs a
/// simultaneous collision in both lanes, and callers keep an exact
/// equivalence check behind a debug assertion as the safety net.
#[derive(Debug, Clone)]
pub struct Fingerprint128 {
    a: u64,
    b: u64,
}

/// Second-lane multiplier: another odd constant, independent of [`K`]
/// (from the fractional bits of sqrt 2), so the lanes decorrelate.
const K2: u64 = 0x6a_09_e6_67_f3_bc_c9_09;

impl Default for Fingerprint128 {
    fn default() -> Self {
        Fingerprint128 {
            a: 0x9e_37_79_b9_7f_4a_7c_15,
            b: 0x3c_6e_f3_72_fe_94_f8_2a,
        }
    }
}

impl Fingerprint128 {
    /// Creates a fingerprint with the default lane seeds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one word into both lanes.
    #[inline]
    pub fn write_u64(&mut self, word: u64) {
        self.a = (self.a.rotate_left(5) ^ word).wrapping_mul(K);
        self.b = (self.b.rotate_left(23) ^ word).wrapping_mul(K2);
    }

    /// Folds one 32-bit word into both lanes.
    #[inline]
    pub fn write_u32(&mut self, word: u32) {
        self.write_u64(word as u64);
    }

    /// Finalizes with avalanche mixing and cross-lane diffusion.
    pub fn finish(&self) -> u128 {
        let x = finalize(self.a ^ self.b.rotate_left(32));
        let y = finalize(self.b.wrapping_add(self.a.rotate_left(17)));
        ((x as u128) << 64) | y as u128
    }
}

/// Fingerprints a stream of 32-bit words with a trailing length word,
/// so streams that are prefixes of each other cannot collide. This is
/// the canonical content identity for *element sets*: callers feed the
/// elements in ascending order and two sets fingerprint identically
/// exactly when they hold the same elements — independent of how the
/// set is represented in memory. The `pts` interner keys its shards
/// with this.
pub fn fingerprint_u32s<I: IntoIterator<Item = u32>>(words: I) -> u128 {
    let mut f = Fingerprint128::new();
    let mut n: u64 = 0;
    for w in words {
        f.write_u32(w);
        n += 1;
    }
    f.write_u64(n);
    f.finish()
}

/// A murmur3-style 64-bit finalizer (xor-shift / multiply avalanche).
#[inline]
fn finalize(mut v: u64) -> u64 {
    v ^= v >> 33;
    v = v.wrapping_mul(0xff_51_af_d7_ed_55_8c_cd);
    v ^= v >> 33;
    v = v.wrapping_mul(0xc4_ce_b9_fe_1a_85_ec_53);
    v ^ (v >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_buckets_mostly() {
        let mut set = FxHashSet::default();
        for i in 0u32..10_000 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
        assert!(set.contains(&42));
        assert!(!set.contains(&10_000));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(123);
        b.write_u64(123);
        assert_eq!(a.finish(), b.finish());
        assert_eq!(hash64(&(1u32, 2u32)), hash64(&(1u32, 2u32)));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), None);
    }

    #[test]
    fn byte_writes_match_word_writes_in_determinism() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn fingerprint_is_order_sensitive_and_deterministic() {
        let mut f1 = Fingerprint128::new();
        f1.write_u64(1);
        f1.write_u64(2);
        let mut f2 = Fingerprint128::new();
        f2.write_u64(2);
        f2.write_u64(1);
        assert_ne!(f1.finish(), f2.finish());

        let mut f3 = Fingerprint128::new();
        f3.write_u64(1);
        f3.write_u64(2);
        assert_eq!(f1.finish(), f3.finish());
    }

    #[test]
    fn fingerprint_lanes_decorrelate() {
        // No collisions among small structured inputs: 1000 two-word
        // streams differing in one bit each.
        let mut seen = FxHashSet::default();
        for i in 0u64..1000 {
            let mut f = Fingerprint128::new();
            f.write_u64(i);
            f.write_u64(i.rotate_left(13));
            assert!(seen.insert(f.finish()), "collision at {i}");
        }
        // Zero-word and one-zero-word streams are distinct.
        let empty = Fingerprint128::new().finish();
        let mut zero = Fingerprint128::new();
        zero.write_u64(0);
        assert_ne!(empty, zero.finish());
    }

    #[test]
    fn fingerprint_u32s_is_length_disambiguated() {
        // A set and a strict prefix of it must not collide, and the
        // fingerprint is a pure function of the element stream.
        assert_ne!(fingerprint_u32s([1, 2, 3]), fingerprint_u32s([1, 2]));
        assert_ne!(fingerprint_u32s([]), fingerprint_u32s([0]));
        assert_eq!(fingerprint_u32s([5, 9]), fingerprint_u32s(vec![5, 9]));
        assert_ne!(fingerprint_u32s([5, 9]), fingerprint_u32s([9, 5]));
    }
}
