//! Named profiles mimicking the paper's 12 evaluation programs.
//!
//! The paper evaluates on the standard DaCapo benchmarks (minus jython
//! and hsqldb) plus findbugs, checkstyle, and JPC, all against
//! JDK 1.6. We cannot ship those jars, so each name maps to a seeded
//! profile whose *relative* size and heap character follow the paper's
//! reported statistics (Figure 8: eclipse largest at 19,529 objects,
//! luindex smallest at 6,190; Section 6.1.1: average NFA sizes from 356
//! in luindex to 3,789 in eclipse). Absolute sizes are scaled down to
//! laptop budgets; the cross-program ordering is preserved.

use crate::generator::{generate, Profile, Workload};

/// The 12 benchmark names, in the paper's reporting order.
pub const PROGRAMS: [&str; 12] = [
    "antlr",
    "bloat",
    "chart",
    "eclipse",
    "fop",
    "luindex",
    "lusearch",
    "pmd",
    "xalan",
    "checkstyle",
    "findbugs",
    "jpc",
];

/// Returns the profile for one of the 12 benchmark names, scaled by
/// `scale` (1 = the default laptop-sized configuration; larger values
/// grow module and method counts roughly linearly).
///
/// # Panics
///
/// Panics if `name` is not one of [`PROGRAMS`].
pub fn profile(name: &str, scale: usize) -> Profile {
    let scale = scale.max(1);
    // (seed, modules, methods/module, blocks/method, hierarchies,
    //  subclasses, hetero, helper_frac, helper_depth, wrap_sites, wrap_chain)
    let (seed, modules, mpm, bpm, hier, subs, hetero, helpf, helpd, wsites, wchain) = match name {
        "antlr" => (11, 6, 5, 4, 4, 3, 0.15, 0.35, 3, 14, 24),
        "bloat" => (13, 7, 6, 4, 5, 3, 0.25, 0.40, 3, 20, 32),
        "chart" => (17, 8, 6, 4, 5, 4, 0.20, 0.30, 2, 16, 28),
        "eclipse" => (19, 12, 7, 5, 7, 4, 0.25, 0.40, 4, 30, 48),
        "fop" => (23, 7, 6, 4, 5, 3, 0.20, 0.35, 3, 18, 28),
        "luindex" => (29, 4, 4, 3, 3, 3, 0.10, 0.25, 2, 8, 10),
        "lusearch" => (31, 4, 5, 3, 3, 3, 0.12, 0.25, 2, 9, 12),
        "pmd" => (37, 8, 6, 5, 6, 4, 0.22, 0.40, 3, 24, 40),
        "xalan" => (41, 7, 6, 4, 5, 3, 0.18, 0.35, 3, 20, 30),
        "checkstyle" => (43, 8, 6, 4, 6, 4, 0.20, 0.35, 3, 18, 26),
        "findbugs" => (47, 9, 6, 5, 6, 4, 0.25, 0.40, 3, 26, 42),
        "jpc" => (53, 10, 6, 5, 6, 4, 0.22, 0.40, 3, 28, 44),
        other => panic!("unknown benchmark `{other}`"),
    };
    Profile {
        name: name.to_owned(),
        seed,
        hierarchies: hier,
        subclasses_per_hierarchy: subs,
        modules: modules * scale,
        methods_per_module: mpm,
        blocks_per_method: bpm,
        hetero_fraction: hetero,
        helper_fraction: helpf,
        helper_depth: helpd,
        wrapper_sites: wsites,
        wrapper_chain: wchain,
    }
}

/// Generates the named benchmark at the given scale.
///
/// # Panics
///
/// Panics if `name` is not one of [`PROGRAMS`].
pub fn workload(name: &str, scale: usize) -> Workload {
    generate(&profile(name, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_generate_valid() {
        for name in PROGRAMS {
            let w = workload(name, 1);
            assert!(w.program.alloc_count() > 50, "{name} too small");
            assert!(w.program.cast_count() > 5, "{name} needs casts");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = workload("pmd", 1);
        let b = workload("pmd", 1);
        assert_eq!(a.program.alloc_count(), b.program.alloc_count());
        assert_eq!(a.program.to_string(), b.program.to_string());
    }

    #[test]
    fn scale_grows_the_program() {
        let s1 = workload("luindex", 1);
        let s2 = workload("luindex", 2);
        assert!(s2.program.alloc_count() > s1.program.alloc_count());
    }

    #[test]
    fn eclipse_is_largest_luindex_smallest() {
        let sizes: Vec<(String, usize)> = PROGRAMS
            .iter()
            .map(|&n| (n.to_owned(), workload(n, 1).program.alloc_count()))
            .collect();
        let eclipse = sizes.iter().find(|(n, _)| n == "eclipse").unwrap().1;
        let luindex = sizes.iter().find(|(n, _)| n == "luindex").unwrap().1;
        for (name, s) in &sizes {
            assert!(eclipse >= *s, "eclipse should be largest, {name} has {s}");
            assert!(luindex <= *s, "luindex should be smallest, {name} has {s}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_name_panics() {
        let _ = profile("notaprogram", 1);
    }
}
