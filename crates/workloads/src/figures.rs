//! The paper's worked examples as literal JIR programs.
//!
//! Each function returns the program from the corresponding figure or
//! example in the paper, with allocation sites named as in the text.
//! The integration-test suite and the `repro` harness use these to check
//! that the reproduction makes exactly the merging and precision
//! decisions the paper describes.

use jir::Program;

fn must_parse(src: &str) -> Program {
    jir::parse(src).expect("figure program parses")
}

/// Figure 1: the motivating example. `x`, `y`, `z` hold three `A`
/// objects; `x.f` stores a `B`, `y.f` and `z.f` store `C`s; `a = z.f`
/// flows into a virtual call and a `(C)` cast.
///
/// Expected behaviour (Examples 2.1, 2.3): under the allocation-site
/// abstraction `a.foo()` is a mono-call and `(C) a` is safe; the
/// allocation-type abstraction breaks both; Mahjong merges only
/// `{o2, o3}` (and `{o5, o6}`), preserving both client results.
pub fn figure1() -> Program {
    must_parse(
        "class A {
           field f: A;
           method foo(this) { return; }
         }
         class B extends A {
           method foo(this) { return; }
         }
         class C extends A {
           method foo(this) { return; }
           entry static method main() {
             x = new A;      // o1
             y = new A;      // o2
             z = new A;      // o3
             b = new B;      // o4
             c5 = new C;     // o5
             c6 = new C;     // o6
             x.f = b;
             y.f = c5;
             z.f = c6;
             a = z.f;
             virt a.foo();
             c = (C) a;
             return;
           }
         }",
    )
}

/// Figure 3 / Example 2.4: why Condition 2 is necessary. A shared
/// helper makes the pre-analysis see `ti.f` and `tj.f` both pointing to
/// `{X, Y}`, while a call-site-sensitive analysis separates them
/// (`ti.f -> X`, `tj.f -> Y`). Without Condition 2 Mahjong would merge
/// `ti`/`tj` and leak `Y` into `ti.f` under M-1cs.
pub fn figure3() -> Program {
    must_parse(
        "class T { field f: Object; }
         class X { }
         class Y { }
         class Main {
           static method store(t, v) { t.f = v; return; }
           entry static method main() {
             ti = new T;
             tj = new T;
             x = new X;
             y = new Y;
             call Main::store(ti, x);
             call Main::store(tj, y);
             gi = ti.f;
             gj = tj.f;
             cx = (X) gi;
             cy = (Y) gj;
             return;
           }
         }",
    )
}

/// Figure 6 / Example 3.1: the null-field problem. The pre-analysis
/// conflates the two `wrap` calls, so `tj.f` appears to point to the `X`
/// object even though a context-sensitive analysis sees it as null (the
/// second call passes a never-assigned variable). Merging `ti`/`tj` is
/// therefore allowed by Definition 2.1 but loses a sliver of precision —
/// the rare case the paper accepts.
pub fn figure6() -> Program {
    must_parse(
        "class T { field f: Object; }
         class X { }
         class Y { }
         class W {
           method wrap(this, t, v) { t.f = v; return; }
         }
         class Main {
           entry static method main() {
             w = new W;
             ti = new T;
             tj = new T;
             x = new X;
             virt w.wrap(ti, x);
             virt w.wrap(tj, nothing);
             gj = tj.f;
             cy = (Y) gj;
             return;
           }
         }",
    )
}

/// Figure 7 / Example 3.2: representative choice under type-sensitivity.
/// Allocation sites 1 and 2 (class `T`) and site 3 (class `U`) create
/// `A` objects; sites 1 and 3 are type-consistent (`f` holds an `X`),
/// site 2 is not (`f` holds a `Y`). Each `A` object then receives
/// `put` calls storing a distinct payload, and site-1/site-2 consumers
/// cast what they read back:
///
/// - plain `ktype` contexts sites 1 and 2 both as `T` → payloads mix →
///   both casts may fail;
/// - `M-ktype` with the *largest* representative maps site 1 to `U` and
///   site 2 to `T` → separate → both casts safe (slightly better than
///   `ktype`);
/// - `M-ktype` with the *smallest* representative maps sites 1–3 all to
///   `T` → coarser than `ktype`.
pub fn figure7() -> Program {
    must_parse(
        "class A {
           field f: Object;
           method mkbox(this) { h = new Box7; return h; }
         }
         class Box7 { field hslot: Object; }
         class X { }
         class Y { }
         class P1 { }
         class P2 { }
         class T {
           static method make() {
             a1 = new A;           // site 1: f holds an X
             x1 = new X;
             a1.f = x1;
             return a1;
           }
           static method make2() {
             a2 = new A;           // site 2: f holds a Y
             y2 = new Y;
             a2.f = y2;
             return a2;
           }
         }
         class U {
           static method make3() {
             a3 = new A;           // site 3: f holds an X
             x3 = new X;
             a3.f = x3;
             return a3;
           }
         }
         class Main {
           entry static method main() {
             a1 = call T::make();
             a2 = call T::make2();
             a3 = call U::make3();
             p1 = new P1;
             p2 = new P2;
             // Boxes allocated inside A::mkbox: their heap context is
             // the receiver's type context, which is where the
             // representative choice becomes observable.
             h1 = virt a1.mkbox();
             h1.hslot = p1;
             h2 = virt a2.mkbox();
             h2.hslot = p2;
             h3 = virt a3.mkbox();
             h3.hslot = p1;
             g1 = h1.hslot;
             g2 = h2.hslot;
             c1 = (P1) g1;
             c2 = (P2) g2;
             return;
           }
         }",
    )
}

/// The Example 2.1 poly-call variant: under the allocation-type
/// abstraction `a.foo()` must become a poly call and `(C) a` must-fail
/// analysis must flag it; this is just [`figure1`] viewed through the
/// naive abstraction, split out for readability at call sites.
pub fn figure1_expectations() -> Figure1Expectations {
    Figure1Expectations {
        allocs: 6,
        merged_abstract_objects: 4,
        mono_call_under_alloc_site: true,
        safe_cast_under_alloc_site: true,
    }
}

/// Expected outcomes on [`figure1`], as stated in the paper.
#[derive(Clone, Copy, Debug)]
pub struct Figure1Expectations {
    /// Allocation sites in the program.
    pub allocs: usize,
    /// Abstract objects after Mahjong merging ({o2,o3} and {o5,o6} merge).
    pub merged_abstract_objects: usize,
    /// `a.foo()` devirtualizes under the allocation-site abstraction.
    pub mono_call_under_alloc_site: bool,
    /// `(C) a` is safe under the allocation-site abstraction.
    pub safe_cast_under_alloc_site: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_parse_and_have_expected_shape() {
        assert_eq!(figure1().alloc_count(), 6);
        assert_eq!(figure3().alloc_count(), 4);
        assert_eq!(figure6().alloc_count(), 4);
        assert_eq!(figure7().alloc_count(), 9);
    }

    #[test]
    fn figure1_has_one_virtual_call_and_one_cast() {
        let p = figure1();
        assert_eq!(p.cast_count(), 1);
        let virts = p
            .call_site_ids()
            .filter(|&s| matches!(p.call_site(s).kind(), jir::CallKind::Virtual { .. }))
            .count();
        assert_eq!(virts, 1);
    }
}
