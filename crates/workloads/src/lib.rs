//! # workloads — benchmark programs for the Mahjong reproduction
//!
//! Two families of programs:
//!
//! - [`figures`] — the paper's worked examples (Figures 1, 3, 6, 7) as
//!   literal JIR programs, used by the integration tests to check the
//!   reproduction makes exactly the paper's merging and precision
//!   decisions;
//! - [`dacapo`] — seeded synthetic analogues of the 12 evaluation
//!   programs (DaCapo subset + findbugs/checkstyle/JPC), standing in
//!   for the real jars we cannot ship (see DESIGN.md, substitution 1),
//!   built on a mini standard library ([`stdlib`]) with
//!   `StringBuilder`/`ArrayList`/`HashMap` shapes.
//!
//! # Examples
//!
//! ```
//! let w = workloads::dacapo::workload("pmd", 1);
//! assert!(w.program.alloc_count() > 100);
//!
//! let fig1 = workloads::figures::figure1();
//! assert_eq!(fig1.alloc_count(), 6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dacapo;
pub mod figures;
pub mod generator;
pub mod samples;
pub mod stdlib;

pub use generator::{generate, Profile, Workload};
