//! A mini standard library emitted into every synthetic workload.
//!
//! The paper's benchmarks spend most of their heap on JDK container
//! machinery — `StringBuilder`s whose nested contents are always
//! `char[]`, `Object[]`-backed collections, iterators, and boxed values
//! (see Table 1). This module recreates those shapes with *deep internal
//! call chains and internal allocation*, because that is what makes
//! context-sensitive analysis expensive under the allocation-site
//! abstraction: every distinct container receiver multiplies through the
//! container's internal methods and the objects they allocate.
//!
//! Merging behaviour mirrors the real JDK:
//!
//! - `StrBuilder`/`Str`/`Chars`/`IntBox` machinery is type-homogeneous
//!   all the way down, so Mahjong merges every instance (cf. Table 1's
//!   1303 mergeable `StringBuilder`s);
//! - `ArrayList`/`HashMap` share their backing-store allocation sites
//!   across all instances, so the context-insensitive pre-analysis
//!   conflates their contents and heterogeneously-used instances stay
//!   unmerged — exactly like `Object[]` in the paper's Table 1.

use jir::{ClassId, FieldId, JirError, MethodId, ProgramBuilder, TypeId};

/// Handles to every mini-stdlib entity the generator needs.
#[derive(Clone, Debug)]
pub struct Std {
    /// `Chars` — the `char[]` payload stand-in.
    pub chars: ClassId,
    /// `Str` — a string: `value: Chars`, `len()`.
    pub string: ClassId,
    /// `Str.value`.
    pub str_value: FieldId,
    /// `StrBuilder` — `sbValue: Chars`; `append`, `ensure`, `to_str`.
    pub string_builder: ClassId,
    /// `StrBuilder::append(c)` returns `this`.
    pub sb_append: MethodId,
    /// `StrBuilder::to_str()` allocates a fresh `Str`.
    pub sb_to_str: MethodId,
    /// `ArrayList` — `elems: Object[]`; `init`, `add`, `get`, `iterator`.
    pub array_list: ClassId,
    /// `ArrayList::init()`.
    pub list_init: MethodId,
    /// `ArrayList::add(e)`.
    pub list_add: MethodId,
    /// `ArrayList::get()`.
    pub list_get: MethodId,
    /// `ArrayList::iterator()`.
    pub list_iterator: MethodId,
    /// `ListIter` — `owner: ArrayList`; `next`.
    pub list_iter: ClassId,
    /// `ListIter::next()`.
    pub iter_next: MethodId,
    /// `HashMap` — `table: Entry[]`; `init`, `put`, `get`.
    pub hash_map: ClassId,
    /// `HashMap::init()`.
    pub map_init: MethodId,
    /// `HashMap::put(k, v)`.
    pub map_put: MethodId,
    /// `HashMap::get(k)`.
    pub map_get: MethodId,
    /// `Entry` — `key`, `value`, `nextEntry`.
    pub entry: ClassId,
    /// `IntBox` — a boxed value: `raw: Chars`, `val()`.
    pub int_box: ClassId,
    /// `IntBox.raw`.
    pub box_raw: FieldId,
    /// `Holder` — a one-slot box allocated by `Factory::make`.
    pub holder: ClassId,
    /// `Holder.slot`.
    pub holder_slot: FieldId,
    /// `Factory` — per-module factory: `make()` allocates a `Holder`.
    pub factory: ClassId,
    /// `Factory.cfg` — the configuration payload that keeps
    /// differently-used factories type-inconsistent.
    pub factory_cfg: FieldId,
    /// `Node` — a per-use linked node: `item: Object`, `nextNode: Node`.
    pub node: ClassId,
    /// `Node.item`.
    pub node_item: FieldId,
    /// `Node.nextNode`.
    pub node_next: FieldId,
    /// The `Object` root type.
    pub object_ty: TypeId,
}

/// Emits the mini standard library into `b`.
///
/// # Errors
///
/// Propagates builder errors (duplicate declarations) — only possible if
/// the caller already declared clashing names.
pub fn emit(b: &mut ProgramBuilder) -> Result<Std, JirError> {
    let object = b.object_class();
    let object_ty = b.class_type(object);

    // --- Chars --------------------------------------------------------------
    // `dup()` gives Chars receivers their own context-bearing method.
    let chars = b.declare_class("Chars", None)?;
    let chars_dup = b.declare_method(chars, "dup", 0)?;
    {
        let mut body = b.body(chars_dup);
        let c = body.var("c");
        body.new_object(c, chars);
        body.ret(Some(c));
    }

    // --- IntBox -------------------------------------------------------------
    let int_box = b.declare_class("IntBox", None)?;
    let raw = b.declare_field(int_box, "raw", b.class_type(chars))?;
    let box_val = b.declare_method(int_box, "val", 0)?;
    {
        let mut body = b.body(box_val);
        let this = body.this().expect("instance method");
        let x = body.var("x");
        body.load(x, this, raw);
        let d = body.var("d");
        body.virtual_call(Some(d), x, "dup", &[]);
        body.ret(Some(x));
    }

    // --- Str ----------------------------------------------------------------
    // `len()` allocates an IntBox and drives it — a second nesting level
    // below every StrBuilder receiver.
    let string = b.declare_class("Str", None)?;
    let str_value = b.declare_field(string, "value", b.class_type(chars))?;
    let str_len = b.declare_method(string, "len", 0)?;
    {
        let mut body = b.body(str_len);
        let this = body.this().expect("instance method");
        let v = body.var("v");
        body.load(v, this, str_value);
        let n = body.var("n");
        body.new_object(n, int_box);
        body.store(n, raw, v);
        let r = body.var("r");
        body.virtual_call(Some(r), n, "val", &[]);
        body.ret(Some(n));
    }

    // --- StrBuilder ----------------------------------------------------------
    let string_builder = b.declare_class("StrBuilder", None)?;
    let sb_value = b.declare_field(string_builder, "sbValue", b.class_type(chars))?;
    let sb_ensure = b.declare_method(string_builder, "ensure", 0)?;
    {
        // Growing the buffer allocates a fresh Chars internally — the
        // `Arrays.copyOf` analogue. Contents stay type-homogeneous.
        let mut body = b.body(sb_ensure);
        let this = body.this().expect("instance method");
        let g = body.var("g");
        body.new_object(g, chars);
        let old = body.var("old");
        body.load(old, this, sb_value);
        let d = body.var("d");
        body.virtual_call(Some(d), old, "dup", &[]);
        body.store(this, sb_value, g);
        body.ret(None);
    }
    let sb_append = b.declare_method(string_builder, "append", 1)?;
    {
        let mut body = b.body(sb_append);
        let this = body.this().expect("instance method");
        let c = body.param(0);
        body.virtual_call(None, this, "ensure", &[]);
        body.store(this, sb_value, c);
        body.ret(Some(this));
    }
    let sb_to_str = b.declare_method(string_builder, "to_str", 0)?;
    {
        let mut body = b.body(sb_to_str);
        let this = body.this().expect("instance method");
        let s = body.var("s");
        let v = body.var("v");
        body.new_object(s, string);
        body.load(v, this, sb_value);
        body.store(s, str_value, v);
        body.ret(Some(s));
    }
    let _ = str_len;

    // --- ArrayList / ListIter --------------------------------------------------
    let array_list = b.declare_class("ArrayList", None)?;
    let list_iter = b.declare_class("ListIter", None)?;
    let object_array_ty = b.array_type(object_ty);
    let elems = b.declare_field(array_list, "elems", object_array_ty)?;
    let owner = b.declare_field(list_iter, "owner", b.class_type(array_list))?;

    let list_init = b.declare_method(array_list, "init", 0)?;
    {
        let mut body = b.body(list_init);
        let this = body.this().expect("instance method");
        let a = body.var("a");
        body.new_array(a, object_ty);
        body.store(this, elems, a);
        body.ret(None);
    }
    // `ensure()` — the shared grow path: a new backing array allocated
    // inside the library, copying the old contents. This single site is
    // shared by every ArrayList, conflating their contents under the
    // pre-analysis (so heterogeneously-used lists never merge), exactly
    // like `ArrayList.grow` in the JDK.
    let list_ensure = b.declare_method(array_list, "ensure", 0)?;
    {
        let mut body = b.body(list_ensure);
        let this = body.this().expect("instance method");
        let g = body.var("g");
        body.new_array(g, object_ty);
        let old = body.var("old");
        body.load(old, this, elems);
        let x = body.var("x");
        body.array_load(x, old);
        body.array_store(g, x);
        body.store(this, elems, g);
        body.ret(None);
    }
    let list_add = b.declare_method(array_list, "add", 1)?;
    {
        let mut body = b.body(list_add);
        let this = body.this().expect("instance method");
        let e = body.param(0);
        body.virtual_call(None, this, "ensure", &[]);
        let a = body.var("a");
        body.load(a, this, elems);
        body.array_store(a, e);
        body.ret(None);
    }
    let list_get = b.declare_method(array_list, "get", 0)?;
    {
        let mut body = b.body(list_get);
        let this = body.this().expect("instance method");
        let a = body.var("a");
        let r = body.var("r");
        body.load(a, this, elems);
        body.array_load(r, a);
        body.ret(Some(r));
    }
    let list_iterator = b.declare_method(array_list, "iterator", 0)?;
    {
        let mut body = b.body(list_iterator);
        let this = body.this().expect("instance method");
        let it = body.var("it");
        body.new_object(it, list_iter);
        body.store(it, owner, this);
        body.ret(Some(it));
    }
    let iter_next = b.declare_method(list_iter, "next", 0)?;
    {
        let mut body = b.body(iter_next);
        let this = body.this().expect("instance method");
        let o = body.var("o");
        let r = body.var("r");
        body.load(o, this, owner);
        body.virtual_call(Some(r), o, "get", &[]);
        body.ret(Some(r));
    }

    // --- HashMap / Entry ----------------------------------------------------------
    let hash_map = b.declare_class("HashMap", None)?;
    let entry = b.declare_class("Entry", None)?;
    let entry_ty = b.class_type(entry);
    let entry_array_ty = b.array_type(entry_ty);
    let table = b.declare_field(hash_map, "table", entry_array_ty)?;
    let key = b.declare_field(entry, "key", object_ty)?;
    let value = b.declare_field(entry, "value", object_ty)?;
    let next = b.declare_field(entry, "nextEntry", entry_ty)?;

    let map_init = b.declare_method(hash_map, "init", 0)?;
    {
        let et = b.class_type(entry);
        let mut body = b.body(map_init);
        let this = body.this().expect("instance method");
        let t = body.var("t");
        body.new_array(t, et);
        body.store(this, table, t);
        body.ret(None);
    }
    let map_put = b.declare_method(hash_map, "put", 2)?;
    {
        let mut body = b.body(map_put);
        let this = body.this().expect("instance method");
        let (k, v) = (body.param(0), body.param(1));
        let e = body.var("e");
        let t = body.var("t");
        let old = body.var("old");
        body.new_object(e, entry);
        body.store(e, key, k);
        body.store(e, value, v);
        body.load(t, this, table);
        body.array_load(old, t);
        body.store(e, next, old);
        body.array_store(t, e);
        body.ret(None);
    }
    let map_get = b.declare_method(hash_map, "get", 1)?;
    {
        let mut body = b.body(map_get);
        let this = body.this().expect("instance method");
        let _k = body.param(0);
        let t = body.var("t");
        let e = body.var("e");
        let e2 = body.var("e2");
        let r = body.var("r");
        body.load(t, this, table);
        body.array_load(e, t);
        body.load(e2, e, next);
        body.load(r, e2, value);
        let r2 = body.var("r2");
        body.load(r2, e, value);
        body.assign(r, r2);
        body.ret(Some(r));
    }

    // --- Holder / Factory ------------------------------------------------------------
    // The one allocation site of `Holder` lives inside an *instance*
    // method of `Factory`; analyses whose heap contexts separate factory
    // receivers (k-obj via the factory's allocation site, k-type via its
    // containing class) keep per-client holders apart, while the
    // context-insensitive pre-analysis conflates them all — the pattern
    // that gives type-sensitivity its precision edge over `ci`.
    let holder = b.declare_class("Holder", None)?;
    let holder_slot = b.declare_field(holder, "slot", object_ty)?;
    // The factory carries its configuration. Factories configured with
    // the same payload type are type-consistent and may merge (harmless:
    // their holders carry the same type anyway); differently-configured
    // factories stay apart, so Mahjong preserves k-obj's precision here.
    let factory = b.declare_class("Factory", None)?;
    let factory_cfg = b.declare_field(factory, "cfg", object_ty)?;
    let make = b.declare_method(factory, "make", 0)?;
    {
        let mut body = b.body(make);
        let h = body.var("h");
        body.new_object(h, holder);
        body.ret(Some(h));
    }

    // --- Node (per-use linked node) -------------------------------------------------
    let node = b.declare_class("Node", None)?;
    let node_item = b.declare_field(node, "item", object_ty)?;
    let node_next = b.declare_field(node, "nextNode", b.class_type(node))?;

    Ok(Std {
        chars,
        box_raw: raw,
        holder,
        holder_slot,
        factory,
        factory_cfg,
        string,
        str_value,
        string_builder,
        sb_append,
        sb_to_str,
        array_list,
        list_init,
        list_add,
        list_get,
        list_iterator,
        list_iter,
        iter_next,
        hash_map,
        map_init,
        map_put,
        map_get,
        entry,
        int_box,
        node,
        node_item,
        node_next,
        object_ty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stdlib_emits_into_fresh_builder() {
        let mut b = ProgramBuilder::new();
        let std = emit(&mut b).expect("stdlib emits");
        // Add an entry so finish() validates.
        let main_cls = b.declare_class("Main", None).unwrap();
        let main = b.declare_static_method(main_cls, "main", 0).unwrap();
        b.set_entry(main);
        {
            let mut body = b.body(main);
            let l = body.var("l");
            body.new_object(l, std.array_list);
            body.special_call(None, l, std.list_init, &[]);
            let e = body.var("e");
            body.new_object(e, std.int_box);
            body.virtual_call(None, l, "add", &[e]);
            let r = body.var("r");
            body.virtual_call(Some(r), l, "get", &[]);
            body.ret(None);
        }
        let p = b.finish().expect("valid program");
        assert!(p.class_by_name("ArrayList").is_some());
        assert!(p.class_by_name("StrBuilder").is_some());
        assert!(p.class_by_name("HashMap").is_some());
        assert!(p.class_by_name("Node").is_some());
    }

    #[test]
    fn stringbuilder_chain_is_type_homogeneous() {
        // Everything reachable from a StrBuilder through fields is Chars.
        let mut b = ProgramBuilder::new();
        let std = emit(&mut b).unwrap();
        let main_cls = b.declare_class("Main", None).unwrap();
        let main = b.declare_static_method(main_cls, "main", 0).unwrap();
        b.set_entry(main);
        {
            let mut body = b.body(main);
            let sb = body.var("sb");
            body.new_object(sb, std.string_builder);
            let c = body.var("c");
            body.new_object(c, std.chars);
            let sb2 = body.var("sb2");
            body.virtual_call(Some(sb2), sb, "append", &[c]);
            let s = body.var("s");
            body.virtual_call(Some(s), sb2, "to_str", &[]);
            let n = body.var("n");
            body.virtual_call(Some(n), s, "len", &[]);
            body.ret(None);
        }
        let p = b.finish().unwrap();
        let sb_cls = p.class_by_name("StrBuilder").unwrap();
        let f = p.field_by_name(sb_cls, "sbValue").unwrap();
        assert_eq!(p.type_name(p.field(f).ty()), "Chars");
    }
}
