//! Curated small programs: classic object-oriented patterns expressed
//! in JIR, used by documentation, examples, and tests that want
//! realistic shapes smaller than the synthetic benchmarks.
//!
//! Each sample documents what a points-to analysis should conclude
//! about it and what Mahjong does to its heap.

use jir::Program;

fn must_parse(src: &str) -> Program {
    jir::parse(src).expect("sample parses")
}

/// A singly linked list built by a loop-free unrolling: three nodes of
/// one class, each holding a payload of one type. All nodes are
/// type-consistent, so Mahjong merges the entire spine.
pub fn linked_list() -> Program {
    must_parse(
        "class Node { field next: Node; field item: Item; }
         class Item { }
         class Main {
           entry static method main() {
             i1 = new Item; i2 = new Item; i3 = new Item;
             n1 = new Node; n2 = new Node; n3 = new Node;
             n1.item = i1; n2.item = i2; n3.item = i3;
             n1.next = n2; n2.next = n3; n3.next = n3;
             cur = n1.next;
             it = cur.item;
             c = (Item) it;
             return;
           }
         }",
    )
}

/// The visitor pattern: two node kinds accept a visitor, double
/// dispatch resolves per node class. The accept/visit call sites are
/// the devirtualization targets of interest.
pub fn visitor() -> Program {
    must_parse(
        "interface Shape { abstract method accept(this, v); }
         class Circle implements Shape {
           method accept(this, v) { virt v.visitCircle(this); return; }
         }
         class Square implements Shape {
           method accept(this, v) { virt v.visitSquare(this); return; }
         }
         class AreaVisitor {
           method visitCircle(this, c) { return; }
           method visitSquare(this, s) { return; }
         }
         class Main {
           entry static method main() {
             v = new AreaVisitor;
             s = new Circle;
             virt s.accept(v);
             t = new Square;
             virt t.accept(v);
             return;
           }
         }",
    )
}

/// The observer pattern: a subject notifies registered observers
/// through an interface; the notify site is polymorphic iff observers
/// of several classes are registered.
pub fn observer() -> Program {
    must_parse(
        "interface Observer { abstract method update(this, e); }
         class Logger implements Observer {
           method update(this, e) { return; }
         }
         class Mailer implements Observer {
           method update(this, e) { return; }
         }
         class Event { }
         class Subject {
           field obs: Observer;
           method register(this, o) { this.obs = o; return; }
           method emit(this) {
             e = new Event;
             o = this.obs;
             virt o.update(e);
             return;
           }
         }
         class Main {
           entry static method main() {
             s1 = new Subject;
             l = new Logger;
             virt s1.register(l);
             virt s1.emit();
             s2 = new Subject;
             m = new Mailer;
             virt s2.register(m);
             virt s2.emit();
             return;
           }
         }",
    )
}

/// The decorator pattern: stream wrappers around a base source — the
/// shape whose receiver chains make k-object-sensitivity expensive and
/// which Mahjong collapses (all decorators are type-consistent when
/// they wrap the same interface).
pub fn decorator() -> Program {
    must_parse(
        "interface Source { abstract method read(this); }
         class FileSource implements Source {
           method read(this) { b = new Buf; return b; }
         }
         class Buf { }
         class Buffered implements Source {
           field innerSrc: Source;
           method read(this) { s = this.innerSrc; r = virt s.read(); return r; }
         }
         class Gzip implements Source {
           field wrapped: Source;
           method read(this) { s = this.wrapped; r = virt s.read(); return r; }
         }
         class Main {
           entry static method main() {
             f = new FileSource;
             b = new Buffered;
             b.innerSrc = f;
             g = new Gzip;
             g.wrapped = b;
             data = virt g.read();
             c = (Buf) data;
             return;
           }
         }",
    )
}

/// A registry of all samples by name.
pub fn all() -> Vec<(&'static str, Program)> {
    vec![
        ("linked_list", linked_list()),
        ("visitor", visitor()),
        ("observer", observer()),
        ("decorator", decorator()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_samples_parse_and_have_entries() {
        for (name, p) in all() {
            assert!(p.alloc_count() > 0, "{name}");
            assert!(!p.method(p.entry()).body().is_empty(), "{name}");
        }
    }
}
