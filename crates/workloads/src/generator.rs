//! Profile-driven synthetic program generation.
//!
//! The generator stands in for the paper's 12 real Java programs (see
//! DESIGN.md, substitution 1). It emits programs with the structural
//! properties that drive the paper's results:
//!
//! - many allocation sites of few container types whose nested contents
//!   are type-homogeneous (merge candidates — cf. Table 1's 1303
//!   `StringBuilder`s all reaching only `char[]`);
//! - a controlled fraction of heterogeneous containers and per-use
//!   arrays/nodes that must *not* merge (cf. Table 1's `Object[]`
//!   classes split by content type);
//! - class hierarchies with polymorphic virtual calls (devirtualization
//!   work) and downcasts after container reads (may-fail-cast work);
//! - **wrapper chains**: a `Wrap` class with many factory methods that
//!   allocate new wrappers around their receivers. Receiver-chain
//!   contexts under k-object-sensitivity then grow like `S^k` in the
//!   number of factory sites `S` — the decorator/stream-pipeline shape
//!   that makes `3obj` explode on real programs — while Mahjong merges
//!   every wrapper (their only field holds wrappers) and collapses the
//!   whole subtree to a handful of contexts.
//!
//! Generation is deterministic per profile (seeded [`SplitMix64`]).

use jir::{ClassId, JirError, MethodId, Program, ProgramBuilder};
use obs::rng::SplitMix64;

use crate::stdlib::{emit, Std};

/// Size and shape parameters for one synthetic program.
#[derive(Clone, Debug)]
pub struct Profile {
    /// Program name (e.g. `"pmd"`).
    pub name: String,
    /// RNG seed; every build with the same profile is identical.
    pub seed: u64,
    /// Number of data-class hierarchies.
    pub hierarchies: usize,
    /// Concrete subclasses per hierarchy.
    pub subclasses_per_hierarchy: usize,
    /// Number of module classes.
    pub modules: usize,
    /// Worker methods per module.
    pub methods_per_module: usize,
    /// Container-usage blocks emitted per worker method.
    pub blocks_per_method: usize,
    /// Probability that a container block stores two unrelated element
    /// types (preventing merging and seeding may-fail casts).
    pub hetero_fraction: f64,
    /// Probability that a block routes its container through a chain of
    /// shared helper methods before reading it back.
    pub helper_fraction: f64,
    /// Length of the shared helper chain.
    pub helper_depth: usize,
    /// Wrapper factory methods on the `Wrap` class (`S`); k-obj contexts
    /// in the wrapper subtree grow like `S^k`.
    pub wrapper_sites: usize,
    /// Wrapper-chain steps emitted per worker method.
    pub wrapper_chain: usize,
}

impl Profile {
    /// A small profile for tests: a few hundred allocation sites.
    pub fn small(name: &str, seed: u64) -> Self {
        Profile {
            name: name.to_owned(),
            seed,
            hierarchies: 3,
            subclasses_per_hierarchy: 3,
            modules: 4,
            methods_per_module: 4,
            blocks_per_method: 3,
            hetero_fraction: 0.2,
            helper_fraction: 0.3,
            helper_depth: 2,
            wrapper_sites: 6,
            wrapper_chain: 4,
        }
    }
}

/// A generated program plus its profile.
#[derive(Debug)]
pub struct Workload {
    /// The profile used.
    pub profile: Profile,
    /// The generated program.
    pub program: Program,
}

/// Generates the program for a profile.
///
/// # Panics
///
/// Panics only on internal generator bugs (the emitted program always
/// validates).
pub fn generate(profile: &Profile) -> Workload {
    let program = Generator::new(profile).emit().expect("generated program is valid");
    Workload {
        profile: profile.clone(),
        program,
    }
}

struct Hierarchy {
    subs: Vec<ClassId>,
}

struct Generator<'p> {
    profile: &'p Profile,
    rng: SplitMix64,
    b: ProgramBuilder,
    std: Std,
    hierarchies: Vec<Hierarchy>,
    /// Shared helper methods: each takes an `ArrayList` and returns it.
    helpers: Vec<MethodId>,
    /// The wrapper class, if `wrapper_sites > 0`.
    wrap: Option<ClassId>,
    wrap_inner: Option<jir::FieldId>,
    wrap_factory_count: usize,
}

impl<'p> Generator<'p> {
    fn new(profile: &'p Profile) -> Self {
        let mut b = ProgramBuilder::new();
        let std = emit(&mut b).expect("fresh builder accepts the stdlib");
        Generator {
            profile,
            rng: SplitMix64::new(profile.seed),
            b,
            std,
            hierarchies: Vec::new(),
            helpers: Vec::new(),
            wrap: None,
            wrap_inner: None,
            wrap_factory_count: 0,
        }
    }

    fn emit(mut self) -> Result<Program, JirError> {
        self.emit_hierarchies()?;
        self.emit_helpers()?;
        self.emit_wrappers()?;
        let module_runs = self.emit_modules()?;
        self.emit_main(&module_runs)?;
        self.b.finish()
    }

    /// Data hierarchies: `abstract Dat{i}` with a virtual `op` and a
    /// payload field, plus concrete subclasses overriding `op`.
    fn emit_hierarchies(&mut self) -> Result<(), JirError> {
        for i in 0..self.profile.hierarchies {
            let base = self
                .b
                .declare_abstract_class(&format!("Dat{i}"), None)?;
            let payload =
                self.b
                    .declare_field(base, &format!("payload{i}"), self.std.object_ty)?;
            self.b.declare_abstract_method(base, "op", 0)?;
            let mut subs = Vec::new();
            for j in 0..self.profile.subclasses_per_hierarchy {
                let sub = self
                    .b
                    .declare_class(&format!("Dat{i}S{j}"), Some(base))?;
                let op = self.b.declare_method(sub, "op", 0)?;
                {
                    // op() touches the payload and returns a fresh boxed
                    // value — a small amount of per-dispatch heap work.
                    let int_box = self.std.int_box;
                    let mut body = self.b.body(op);
                    let this = body.this().expect("instance");
                    let p = body.var("p");
                    body.load(p, this, payload);
                    let r = body.var("r");
                    body.new_object(r, int_box);
                    body.ret(Some(r));
                }
                subs.push(sub);
            }
            self.hierarchies.push(Hierarchy { subs });
        }
        Ok(())
    }

    /// Shared helper chain: `Help::h0(list) -> h1(list) -> ...` — each
    /// stage reads an element (keeping the list's contents flowing) and
    /// passes the list on. Shared across all call sites, these are the
    /// pre-analysis conflation points of the workload.
    fn emit_helpers(&mut self) -> Result<(), JirError> {
        if self.profile.helper_depth == 0 {
            return Ok(());
        }
        let help = self.b.declare_class("Help", None)?;
        let mut ids = Vec::new();
        for d in 0..self.profile.helper_depth {
            ids.push(self.b.declare_static_method(help, &format!("h{d}"), 1)?);
        }
        for (d, &mid) in ids.iter().enumerate() {
            let next = ids.get(d + 1).copied();
            let mut body = self.b.body(mid);
            let list = body.param(0);
            let peek = body.var("peek");
            body.virtual_call(Some(peek), list, "get", &[]);
            match next {
                Some(n) => {
                    let r = body.var("r");
                    body.static_call(Some(r), n, &[list]);
                    body.ret(Some(r));
                }
                None => body.ret(Some(list)),
            }
        }
        self.helpers = ids;
        Ok(())
    }

    /// The `Wrap` class: `inner: Wrap` plus `S` factory methods
    /// `mk{i}()`, each allocating a new wrapper around `this`, and a
    /// `peel()` accessor. All wrappers are type-consistent (their only
    /// field holds wrappers or null), so Mahjong merges them all.
    fn emit_wrappers(&mut self) -> Result<(), JirError> {
        if self.profile.wrapper_sites == 0 {
            return Ok(());
        }
        let wrap = self.b.declare_class("Wrap", None)?;
        let wrap_ty = self.b.class_type(wrap);
        let inner = self.b.declare_field(wrap, "inner", wrap_ty)?;
        let chars = self.std.chars;
        let int_box = self.std.int_box;
        let raw_field = self.std.box_raw;
        for i in 0..self.profile.wrapper_sites {
            let m = self.b.declare_method(wrap, &format!("mk{i}"), 0)?;
            let mut body = self.b.body(m);
            let this = body.this().expect("instance");
            let w = body.var("w");
            body.new_object(w, wrap);
            body.store(w, inner, this);
            // Per-wrap bookkeeping: the decorator boilerplate. All of
            // it is context-local (fresh objects, calls on fresh
            // receivers), so the cost of the wrapper subtree tracks the
            // number of contexts `mk{i}` is analyzed under — which is
            // what k-obj multiplies and Mahjong collapses.
            let p0 = body.var("p0");
            body.load(p0, this, inner);
            let p3 = body.var("p3");
            body.virtual_call(Some(p3), w, "peel", &[]);
            let c0 = body.var("c0");
            body.new_object(c0, chars);
            let c1 = body.var("c1");
            body.virtual_call(Some(c1), c0, "dup", &[]);
            let c2 = body.var("c2");
            body.virtual_call(Some(c2), c1, "dup", &[]);
            let bx = body.var("bx");
            body.new_object(bx, int_box);
            body.store(bx, raw_field, c2);
            let bv = body.var("bv");
            body.virtual_call(Some(bv), bx, "val", &[]);
            body.ret(Some(w));
        }
        let peel = self.b.declare_method(wrap, "peel", 0)?;
        {
            let mut body = self.b.body(peel);
            let this = body.this().expect("instance");
            let r = body.var("r");
            body.load(r, this, inner);
            body.ret(Some(r));
        }
        // `walk()` recurses down the inner chain — every wrapper object
        // becomes a receiver context of `walk`, so its cost tracks the
        // abstract-object count: large under the allocation-site
        // abstraction, tiny once Mahjong merges the wrappers.
        let walk = self.b.declare_method(wrap, "walk", 0)?;
        {
            let mut body = self.b.body(walk);
            let this = body.this().expect("instance");
            let i = body.var("i");
            body.load(i, this, inner);
            let r = body.var("r");
            body.virtual_call(Some(r), i, "walk", &[]);
            let p = body.var("p");
            body.virtual_call(Some(p), i, "peel", &[]);
            let p2 = body.var("p2");
            body.virtual_call(Some(p2), p, "peel", &[]);
            body.ret(Some(this));
        }
        self.wrap = Some(wrap);
        self.wrap_inner = Some(inner);
        self.wrap_factory_count = self.profile.wrapper_sites;
        Ok(())
    }

    /// Modules: instance classes whose `run` invokes each worker method.
    fn emit_modules(&mut self) -> Result<Vec<(ClassId, MethodId)>, JirError> {
        let mut runs = Vec::new();
        for m in 0..self.profile.modules {
            let class = self.b.declare_class(&format!("Mod{m}"), None)?;
            let mut workers = Vec::new();
            for k in 0..self.profile.methods_per_module {
                let w = self.b.declare_method(class, &format!("w{k}"), 0)?;
                workers.push(w);
            }
            for &w in &workers {
                self.emit_worker_body(w, m)?;
            }
            let run = self.b.declare_method(class, "run", 0)?;
            {
                let mut body = self.b.body(run);
                let this = body.this().expect("instance");
                for k in 0..self.profile.methods_per_module {
                    body.virtual_call(None, this, &format!("w{k}"), &[]);
                }
                body.ret(None);
            }
            runs.push((class, run));
        }
        Ok(runs)
    }

    fn emit_worker_body(&mut self, w: MethodId, module_index: usize) -> Result<(), JirError> {
        for block in 0..self.profile.blocks_per_method {
            match self.rng.below(7) {
                0 => self.emit_string_block(w, block)?,
                1 => self.emit_map_block(w, block)?,
                2 => self.emit_local_array_block(w, block)?,
                3 => self.emit_poly_block(w, block)?,
                4 => self.emit_factory_block(w, block, module_index)?,
                _ => self.emit_list_block(w, block)?,
            }
        }
        if self.wrap.is_some() && self.profile.wrapper_chain > 0 {
            self.emit_wrapper_chain(w)?;
        }
        let mut body = self.b.body(w);
        body.ret(None);
        Ok(())
    }

    /// `StrBuilder` usage: always type-consistent (contents are `Chars`),
    /// driving the nested receiver levels below it (`Str`, `IntBox`).
    fn emit_string_block(&mut self, w: MethodId, block: usize) -> Result<(), JirError> {
        let (sb_cls, chars) = (self.std.string_builder, self.std.chars);
        let mut body = self.b.body(w);
        let sb = body.var(&format!("sb{block}"));
        body.new_object(sb, sb_cls);
        let c = body.var(&format!("ch{block}"));
        body.new_object(c, chars);
        let sb2 = body.var(&format!("sb2_{block}"));
        body.virtual_call(Some(sb2), sb, "append", &[c]);
        let s = body.var(&format!("s{block}"));
        body.virtual_call(Some(s), sb2, "to_str", &[]);
        let n = body.var(&format!("n{block}"));
        body.virtual_call(Some(n), s, "len", &[]);
        body.virtual_call(None, n, "val", &[]);
        Ok(())
    }

    /// `HashMap` usage: keys are `Str`s, values come from one hierarchy
    /// subclass (homogeneous per map use).
    fn emit_map_block(&mut self, w: MethodId, block: usize) -> Result<(), JirError> {
        let hmap = self.std.hash_map;
        let map_init = self.std.map_init;
        let string = self.std.string;
        let h = self.rng.below_usize(self.hierarchies.len());
        let s = self.rng.below_usize(self.hierarchies[h].subs.len());
        let val_cls = self.hierarchies[h].subs[s];
        let val_ty = self.b.class_type(val_cls);

        let mut body = self.b.body(w);
        let m = body.var(&format!("m{block}"));
        body.new_object(m, hmap);
        body.special_call(None, m, map_init, &[]);
        let k = body.var(&format!("k{block}"));
        body.new_object(k, string);
        let v = body.var(&format!("v{block}"));
        body.new_object(v, val_cls);
        body.virtual_call(None, m, "put", &[k, v]);
        let got = body.var(&format!("g{block}"));
        body.virtual_call(Some(got), m, "get", &[k]);
        let cast = body.var(&format!("mc{block}"));
        body.cast(cast, val_ty, got);
        body.virtual_call(None, cast, "op", &[]);
        Ok(())
    }

    /// A per-use `Object[]` and `Node`: the backing store is allocated
    /// at the use site (unlike `ArrayList`), so homogeneous uses merge
    /// per content type — the paper's Table 1 `Object[]` pattern.
    fn emit_local_array_block(&mut self, w: MethodId, block: usize) -> Result<(), JirError> {
        let object_ty = self.std.object_ty;
        let (node_cls, node_item, node_next) =
            (self.std.node, self.std.node_item, self.std.node_next);
        let hetero = self.rng.chance(self.profile.hetero_fraction);
        let h = self.rng.below_usize(self.hierarchies.len());
        let nsubs = self.hierarchies[h].subs.len();
        let s1 = self.rng.below_usize(nsubs);
        let s2 = if hetero && nsubs > 1 { (s1 + 1) % nsubs } else { s1 };
        let cls1 = self.hierarchies[h].subs[s1];
        let cls2 = self.hierarchies[h].subs[s2];
        let cast_ty = self.b.class_type(cls1);

        let mut body = self.b.body(w);
        let arr = body.var(&format!("arr{block}"));
        body.new_array(arr, object_ty);
        let d1 = body.var(&format!("ad1_{block}"));
        body.new_object(d1, cls1);
        body.array_store(arr, d1);
        let d2 = body.var(&format!("ad2_{block}"));
        body.new_object(d2, cls2);
        body.array_store(arr, d2);
        let got = body.var(&format!("ag{block}"));
        body.array_load(got, arr);
        let cast = body.var(&format!("ac{block}"));
        body.cast(cast, cast_ty, got);
        body.virtual_call(None, cast, "op", &[]);

        // A linked Node pair over the same elements.
        let n1 = body.var(&format!("nd1_{block}"));
        body.new_object(n1, node_cls);
        body.store(n1, node_item, d1);
        let n2 = body.var(&format!("nd2_{block}"));
        body.new_object(n2, node_cls);
        body.store(n2, node_item, d2);
        body.store(n1, node_next, n2);
        let walked = body.var(&format!("nw{block}"));
        body.load(walked, n1, node_next);
        let item = body.var(&format!("ni{block}"));
        body.load(item, walked, node_item);
        Ok(())
    }

    /// A direct polymorphic dispatch: a base-typed variable fed from two
    /// subclasses, then a virtual call — a genuine poly site under every
    /// analysis (devirtualization work).
    fn emit_poly_block(&mut self, w: MethodId, block: usize) -> Result<(), JirError> {
        let h = self.rng.below_usize(self.hierarchies.len());
        let nsubs = self.hierarchies[h].subs.len();
        let s1 = self.rng.below_usize(nsubs);
        let s2 = (s1 + 1) % nsubs;
        let cls1 = self.hierarchies[h].subs[s1];
        let cls2 = self.hierarchies[h].subs[s2];
        let mut body = self.b.body(w);
        let v = body.var(&format!("pv{block}"));
        body.new_object(v, cls1);
        let v2 = body.var(&format!("pv2_{block}"));
        body.new_object(v2, cls2);
        if nsubs > 1 {
            body.assign(v, v2);
        }
        body.virtual_call(None, v, "op", &[]);
        Ok(())
    }

    /// A factory/holder block: the holder is allocated inside
    /// `Factory::make`, whose receiver is allocated *here* (inside this
    /// module class). Each module stores one fixed payload type, so
    /// heap contexts that separate factory receivers — object- and
    /// type-sensitivity — prove the cast safe, while context-insensitive
    /// analysis conflates all holders and flags it.
    fn emit_factory_block(
        &mut self,
        w: MethodId,
        block: usize,
        module_index: usize,
    ) -> Result<(), JirError> {
        let factory = self.std.factory;
        let cfg = self.std.factory_cfg;
        let slot = self.std.holder_slot;
        let h = module_index % self.hierarchies.len();
        let si = module_index % self.hierarchies[h].subs.len();
        let cls = self.hierarchies[h].subs[si];
        let cast_ty = self.b.class_type(cls);
        let mut body = self.b.body(w);
        let fac = body.var(&format!("fac{block}"));
        body.new_object(fac, factory);
        let d = body.var(&format!("fd{block}"));
        body.new_object(d, cls);
        body.store(fac, cfg, d);
        let holder = body.var(&format!("hold{block}"));
        body.virtual_call(Some(holder), fac, "make", &[]);
        body.store(holder, slot, d);
        let got = body.var(&format!("fg{block}"));
        body.load(got, holder, slot);
        let cast = body.var(&format!("fc{block}"));
        body.cast(cast, cast_ty, got);
        body.virtual_call(None, cast, "op", &[]);
        Ok(())
    }

    /// `ArrayList` usage: homogeneous or heterogeneous, optionally
    /// routed through the shared helper chain. The shared grow path
    /// inside `ArrayList` conflates all lists under the pre-analysis, so
    /// lists never merge — the realistic generic-container behaviour.
    fn emit_list_block(&mut self, w: MethodId, block: usize) -> Result<(), JirError> {
        let list_cls = self.std.array_list;
        let list_init = self.std.list_init;
        let hetero = self.rng.chance(self.profile.hetero_fraction);
        let via_helper =
            !self.helpers.is_empty() && self.rng.chance(self.profile.helper_fraction);
        let h = self.rng.below_usize(self.hierarchies.len());
        let nsubs = self.hierarchies[h].subs.len();
        let s1 = self.rng.below_usize(nsubs);
        let s2 = if hetero && nsubs > 1 {
            (s1 + 1 + self.rng.below_usize(nsubs - 1)) % nsubs
        } else {
            s1
        };
        let cls1 = self.hierarchies[h].subs[s1];
        let cls2 = self.hierarchies[h].subs[s2];
        let cast_ty = self.b.class_type(cls1);
        let list_ty = self.b.class_type(list_cls);
        let helper0 = self.helpers.first().copied();

        let mut body = self.b.body(w);
        let l = body.var(&format!("l{block}"));
        body.new_object(l, list_cls);
        body.special_call(None, l, list_init, &[]);
        let d1 = body.var(&format!("d1_{block}"));
        body.new_object(d1, cls1);
        body.virtual_call(None, l, "add", &[d1]);
        let d2 = body.var(&format!("d2_{block}"));
        body.new_object(d2, cls2);
        body.virtual_call(None, l, "add", &[d2]);

        let source = if via_helper {
            // Route the list through the shared helper chain (which
            // returns it Object-typed) and cast it back.
            let routed = body.var(&format!("routed{block}"));
            body.static_call(Some(routed), helper0.expect("helpers exist"), &[l]);
            let back = body.var(&format!("back{block}"));
            body.cast(back, list_ty, routed);
            back
        } else {
            l
        };
        let it = body.var(&format!("it{block}"));
        body.virtual_call(Some(it), source, "iterator", &[]);
        let x = body.var(&format!("x{block}"));
        body.virtual_call(Some(x), it, "next", &[]);
        let c = body.var(&format!("c{block}"));
        body.cast(c, cast_ty, x);
        body.virtual_call(None, c, "op", &[]);
        Ok(())
    }

    /// A wrapper chain: `wp0 = new Wrap; wp1 = wp0.mk3(); wp2 =
    /// wp1.mk7(); ...; wpN.peel()`. Under k-obj with the
    /// allocation-site abstraction, each `mk{i}` is analyzed once per
    /// k-suffix of factory sites seen on receiver chains; Mahjong merges
    /// all wrappers and the whole subtree collapses.
    fn emit_wrapper_chain(&mut self, w: MethodId) -> Result<(), JirError> {
        let wrap = self.wrap.expect("wrapper class exists");
        let steps = self.profile.wrapper_chain;
        let picks: Vec<usize> = (0..steps)
            .map(|_| self.rng.below_usize(self.wrap_factory_count))
            .collect();
        let inner = self.wrap_inner.expect("wrapper field exists");
        let mut body = self.b.body(w);
        let mut cur = body.var("wp0");
        body.new_object(cur, wrap);
        // Tie the chain off with a self-loop sentinel (the LinkedList
        // header idiom) so every wrapper's `inner` path stays
        // type-homogeneous — a null-ended chain would mix the null type
        // into the same depth and correctly defeat merging.
        body.store(cur, inner, cur);
        for (i, &pick) in picks.iter().enumerate() {
            let next = body.var(&format!("wp{}", i + 1));
            body.virtual_call(Some(next), cur, &format!("mk{pick}"), &[]);
            // Periodically traverse the chain built so far; every
            // traversal receiver is another wrapper context.
            if i % 4 == 3 {
                body.virtual_call(None, next, "walk", &[]);
            }
            cur = next;
        }
        let peeled = body.var("wpeel");
        body.virtual_call(Some(peeled), cur, "peel", &[]);
        body.virtual_call(None, cur, "walk", &[]);
        Ok(())
    }

    fn emit_main(&mut self, module_runs: &[(ClassId, MethodId)]) -> Result<(), JirError> {
        let main_cls = self.b.declare_class("Main", None)?;
        let main = self.b.declare_static_method(main_cls, "main", 0)?;
        self.b.set_entry(main);
        let mut body = self.b.body(main);
        for (i, &(class, _run)) in module_runs.iter().enumerate() {
            let m = body.var(&format!("mod{i}"));
            body.new_object(m, class);
            body.virtual_call(None, m, "run", &[]);
        }
        body.ret(None);
        Ok(())
    }
}
