//! # snapshot — versioned binary persistence for analysis results
//!
//! Serializes a solved [`pta::AnalysisResult`] (via its raw table view,
//! [`pta::snapshot::RawResult`]) plus the Mahjong merged-object map into
//! a single self-describing binary artifact, so a long-lived query
//! server can warm-start in milliseconds instead of re-running the
//! analysis. The format is:
//!
//! - **versioned** — a magic/version header ([`MAGIC`], [`VERSION`]);
//!   readers reject snapshots from a different major version with a
//!   typed error instead of misinterpreting bytes;
//! - **checksummed** — the header and every section carry a CRC-32
//!   (IEEE, the zlib polynomial — see [`crc32`]), so any single-bit
//!   corruption is detected before the payload is interpreted;
//! - **dedup-aware** — each unique points-to set is encoded exactly
//!   once in the `SETS` section and pointer rows reference sets by
//!   index, mirroring the in-memory hash-consing interner; on real
//!   workloads this is the difference between megabytes and tens of
//!   megabytes;
//! - **explicitly little-endian** — every integer is written LE
//!   regardless of host byte order, with fixed-width fields throughout
//!   (`u8` tags, `u32` ids/counts, `u64` lengths/counters).
//!
//! The byte-level layout is specified field by field in the repository's
//! `SERVING.md`.
//!
//! # Robustness
//!
//! [`decode`] never panics on malformed input: every read is
//! bounds-checked against the remaining buffer ([`SnapshotError::Truncated`]),
//! element counts are validated against the bytes that must back them
//! before anything is allocated (a forged "4 billion sets" header fails
//! fast instead of attempting the allocation), and checksums are
//! verified before payloads are parsed. Structural validation beyond
//! the byte level — id bounds, set ordering, context-table invariants —
//! happens in [`pta::snapshot::restore`], which is equally total.
//!
//! # Round-trip guarantees
//!
//! Encoding is canonical: `encode` is deterministic and
//! `encode(decode(bytes)) == bytes` for any `bytes` that decode at all.
//! Together with the canonical extraction order of
//! [`pta::snapshot::extract`], saving a restored result reproduces the
//! original file bit for bit, and restored results answer every query
//! identically to the fresh analysis (the repository's golden
//! fingerprint tests pin this across the whole corpus).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::path::Path;

use pta::snapshot::{RawCtxElem, RawObj, RawPtrKey, RawResult};
use pta::{AnalysisStats, MergedObjectMap};

/// File magic: the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"MJSN";

/// Format version written by this library. Readers reject any other
/// version — the format makes no cross-version compatibility promise
/// (see `SERVING.md` for the policy).
pub const VERSION: u32 = 1;

/// Section ids, in the order sections must appear in the file.
const SECTION_IDS: [(u32, &str); 9] = [
    (1, "META"),
    (2, "CTX"),
    (3, "OBJ"),
    (4, "SETS"),
    (5, "PTRS"),
    (6, "CG"),
    (7, "REACH"),
    (8, "MOM"),
    (9, "STATS"),
];

/// Why a snapshot could not be read. Every failure mode of [`decode`]
/// and [`load`] is represented here — the load path returns these
/// instead of panicking, whatever the input bytes are.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The buffer ended before a field it promised (`what` names the
    /// field being read).
    Truncated {
        /// The field or structure whose bytes ran out.
        what: &'static str,
    },
    /// The first four bytes are not [`MAGIC`] — not a snapshot file.
    BadMagic,
    /// The header names a version this library does not read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A CRC-32 check failed: the named section's bytes were altered
    /// after writing.
    ChecksumMismatch {
        /// The section (or `"header"`) whose checksum failed.
        section: &'static str,
    },
    /// The bytes passed integrity checks but violate the format's
    /// structural rules (wrong section order, unknown tag, an id table
    /// that is not a fixed point, …).
    Malformed(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Truncated { what } => {
                write!(f, "snapshot truncated while reading {what}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found} (this reader is v{VERSION})")
            }
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "snapshot checksum mismatch in {section} section")
            }
            SnapshotError::Malformed(detail) => write!(f, "malformed snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Provenance recorded alongside the tables: which run produced this
/// snapshot. The serving layer uses it to re-load the matching program
/// and label benchmark artifacts; none of it affects query answers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Meta {
    /// Workload/program name (e.g. `"luindex"`, `"figure1"`).
    pub program: String,
    /// Workload scale factor the program was generated at.
    pub scale: u32,
    /// Context-sensitivity name (e.g. `"2obj"`, `"ci"`).
    pub analysis: String,
    /// Heap-abstraction name (e.g. `"mahjong"`, `"alloc-site"`).
    pub heap: String,
    /// Worker threads the producing run used.
    pub threads: u32,
}

/// A decoded snapshot: provenance, the raw result tables, and the
/// merged-object map of the run (identity-map absent for non-merging
/// heap abstractions).
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// Provenance of the producing run.
    pub meta: Meta,
    /// The flattened analysis result (see [`pta::snapshot`]).
    pub raw: RawResult,
    /// Per-allocation-site representative table of the merged-object
    /// map, or `None` when the run used a non-merging abstraction.
    /// Always idempotent after a successful [`decode`].
    pub mom: Option<Vec<u32>>,
}

impl Snapshot {
    /// Rebuilds the merged-object map, if one was persisted. Safe after
    /// [`decode`]: the representative table was already validated to be
    /// an idempotent self-map.
    pub fn merged_object_map(&self) -> Option<MergedObjectMap> {
        self.mom.as_ref().map(|repr| {
            MergedObjectMap::new(repr.iter().map(|&r| jir::AllocId::from_u32(r)).collect())
        })
    }
}

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial, reflected form) — the
/// checksum every header and section carries.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Nibble-driven table: 16 entries is enough to stay fast without a
    // build-time table, and this runs once per section, not per query.
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 16];
    for (i, entry) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..4 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
        }
        *entry = c;
    }
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xF) as usize] ^ (crc >> 4);
        crc = table[((crc ^ (b >> 4) as u32) & 0xF) as usize] ^ (crc >> 4);
    }
    !crc
}

// --- Encoding ---------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(u32::try_from(s.len()).expect("string fits u32"));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

fn stats_words(s: &AnalysisStats) -> [u64; 25] {
    [
        s.elapsed.as_nanos() as u64,
        s.init_time.as_nanos() as u64,
        s.fixpoint_time.as_nanos() as u64,
        s.finalize_time.as_nanos() as u64,
        s.worklist_pops,
        s.propagated_objects,
        s.delta_objects,
        s.copy_edges,
        s.call_graph_edges,
        s.reachable_method_contexts,
        s.context_count as u64,
        s.pts_peak_words,
        s.pts_interned,
        s.pts_dedup_hits,
        s.intern_probe_ns,
        s.scc_collapsed_ptrs,
        s.collapse_sweeps,
        s.wave_rounds,
        s.dsu_ops,
        s.par_shards,
        s.par_steal_none,
        s.wave_barrier_ns,
        s.par_merge_shards,
        s.mask_ranges,
        s.range_union_hits,
    ]
}

fn stats_from_words(w: &[u64; 25]) -> Result<AnalysisStats, SnapshotError> {
    use std::time::Duration;
    Ok(AnalysisStats {
        elapsed: Duration::from_nanos(w[0]),
        init_time: Duration::from_nanos(w[1]),
        fixpoint_time: Duration::from_nanos(w[2]),
        finalize_time: Duration::from_nanos(w[3]),
        worklist_pops: w[4],
        propagated_objects: w[5],
        delta_objects: w[6],
        copy_edges: w[7],
        call_graph_edges: w[8],
        reachable_method_contexts: w[9],
        context_count: usize::try_from(w[10])
            .map_err(|_| SnapshotError::Malformed("context count overflows usize".into()))?,
        pts_peak_words: w[11],
        pts_interned: w[12],
        pts_dedup_hits: w[13],
        intern_probe_ns: w[14],
        scc_collapsed_ptrs: w[15],
        collapse_sweeps: w[16],
        wave_rounds: w[17],
        dsu_ops: w[18],
        par_shards: w[19],
        par_steal_none: w[20],
        wave_barrier_ns: w[21],
        par_merge_shards: w[22],
        mask_ranges: w[23],
        range_union_hits: w[24],
    })
}

/// Serializes a snapshot to its canonical byte representation.
pub fn encode(snap: &Snapshot) -> Vec<u8> {
    let mut sections: Vec<Vec<u8>> = Vec::with_capacity(SECTION_IDS.len());

    // META
    let mut w = Writer { buf: Vec::new() };
    w.u32(snap.meta.scale);
    w.u32(snap.meta.threads);
    w.str(&snap.meta.program);
    w.str(&snap.meta.analysis);
    w.str(&snap.meta.heap);
    sections.push(w.buf);

    // CTX
    let mut w = Writer { buf: Vec::new() };
    w.u32(snap.raw.ctxs.len() as u32);
    for elems in &snap.raw.ctxs {
        w.u32(elems.len() as u32);
        for e in elems {
            w.u8(e.tag);
            w.u32(e.value);
        }
    }
    sections.push(w.buf);

    // OBJ
    let mut w = Writer { buf: Vec::new() };
    w.u32(snap.raw.obj_id_space);
    w.u32(snap.raw.objs.len() as u32);
    for o in &snap.raw.objs {
        w.u32(o.id);
        w.u32(o.hctx);
        w.u32(o.alloc);
        w.u32(o.ty);
    }
    sections.push(w.buf);

    // SETS
    let mut w = Writer { buf: Vec::new() };
    w.u32(snap.raw.sets.len() as u32);
    for set in &snap.raw.sets {
        w.u32(set.len() as u32);
        for &e in set {
            w.u32(e);
        }
    }
    sections.push(w.buf);

    // PTRS
    let mut w = Writer { buf: Vec::new() };
    w.u32(snap.raw.ptr_keys.len() as u32);
    for k in &snap.raw.ptr_keys {
        w.u8(k.tag);
        w.u32(k.a);
        w.u32(k.b);
    }
    for &r in &snap.raw.redirect {
        w.u32(r);
    }
    for &s in &snap.raw.row_set {
        w.u32(s);
    }
    sections.push(w.buf);

    // CG
    let mut w = Writer { buf: Vec::new() };
    w.u64(snap.raw.cs_cg_edge_count);
    w.u32(snap.raw.cg_edges.len() as u32);
    for &(s, m) in &snap.raw.cg_edges {
        w.u32(s);
        w.u32(m);
    }
    sections.push(w.buf);

    // REACH
    let mut w = Writer { buf: Vec::new() };
    w.u32(snap.raw.reachable.len() as u32);
    for &(c, m) in &snap.raw.reachable {
        w.u32(c);
        w.u32(m);
    }
    w.u32(snap.raw.reachable_methods.len() as u32);
    for &m in &snap.raw.reachable_methods {
        w.u32(m);
    }
    sections.push(w.buf);

    // MOM
    let mut w = Writer { buf: Vec::new() };
    match &snap.mom {
        None => w.u8(0),
        Some(repr) => {
            w.u8(1);
            w.u32(repr.len() as u32);
            for &r in repr {
                w.u32(r);
            }
        }
    }
    sections.push(w.buf);

    // STATS
    let mut w = Writer { buf: Vec::new() };
    for word in stats_words(&snap.raw.stats) {
        w.u64(word);
    }
    sections.push(w.buf);

    // Assemble: header (magic, version, section count, header CRC),
    // then each section as (id, payload length, payload CRC, payload).
    let mut out = Writer { buf: Vec::new() };
    out.buf.extend_from_slice(&MAGIC);
    out.u32(VERSION);
    out.u32(sections.len() as u32);
    let header_crc = crc32(&out.buf);
    out.u32(header_crc);
    for ((id, _), payload) in SECTION_IDS.iter().zip(&sections) {
        out.u32(*id);
        out.u64(payload.len() as u64);
        out.u32(crc32(payload));
        out.buf.extend_from_slice(payload);
    }
    out.buf
}

// --- Decoding ---------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated { what });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.bytes(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.bytes(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.bytes(8, what)?.try_into().unwrap()))
    }

    /// Reads a `u32` count that promises `count * elem_bytes` more
    /// payload, rejecting counts the buffer cannot back — so a forged
    /// header cannot trigger a huge allocation.
    fn count(&mut self, elem_bytes: usize, what: &'static str) -> Result<usize, SnapshotError> {
        let n = self.u32(what)? as usize;
        if (n as u64) * (elem_bytes as u64) > self.remaining() as u64 {
            return Err(SnapshotError::Truncated { what });
        }
        Ok(n)
    }

    fn str(&mut self, what: &'static str) -> Result<String, SnapshotError> {
        let n = self.count(1, what)?;
        let bytes = self.bytes(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed(format!("{what}: invalid UTF-8")))
    }

    fn done(&self, section: &'static str) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(SnapshotError::Malformed(format!(
                "{section} section has {} trailing bytes",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Parses a snapshot from bytes, verifying the magic, version, and all
/// checksums. Total: any input either decodes or returns a
/// [`SnapshotError`] — no panics, no unbounded allocations.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    let magic = r.bytes(4, "magic")?;
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32("version")?;
    let section_count = r.u32("section count")?;
    let header_crc = r.u32("header checksum")?;
    if crc32(&bytes[..12]) != header_crc {
        return Err(SnapshotError::ChecksumMismatch { section: "header" });
    }
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    if section_count as usize != SECTION_IDS.len() {
        return Err(SnapshotError::Malformed(format!(
            "expected {} sections, header says {section_count}",
            SECTION_IDS.len()
        )));
    }

    let mut payloads: Vec<&[u8]> = Vec::with_capacity(SECTION_IDS.len());
    for &(id, name) in &SECTION_IDS {
        let found = r.u32("section id")?;
        if found != id {
            return Err(SnapshotError::Malformed(format!(
                "expected section {name} (id {id}), found id {found}"
            )));
        }
        let len = r.u64("section length")?;
        let crc = r.u32("section checksum")?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= r.remaining())
            .ok_or(SnapshotError::Truncated { what: name })?;
        let payload = r.bytes(len, name)?;
        if crc32(payload) != crc {
            return Err(SnapshotError::ChecksumMismatch { section: name });
        }
        payloads.push(payload);
    }
    r.done("file")?;

    // META
    let mut r = Reader { buf: payloads[0], pos: 0 };
    let scale = r.u32("meta.scale")?;
    let threads = r.u32("meta.threads")?;
    let program = r.str("meta.program")?;
    let analysis = r.str("meta.analysis")?;
    let heap = r.str("meta.heap")?;
    r.done("META")?;
    let meta = Meta { program, scale, analysis, heap, threads };

    // CTX — each context costs at least 4 bytes (its element count).
    let mut r = Reader { buf: payloads[1], pos: 0 };
    let n = r.count(4, "context count")?;
    let mut ctxs = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.count(5, "context element count")?;
        let mut elems = Vec::with_capacity(k);
        for _ in 0..k {
            let tag = r.u8("context element tag")?;
            let value = r.u32("context element value")?;
            elems.push(RawCtxElem { tag, value });
        }
        ctxs.push(elems);
    }
    r.done("CTX")?;

    // OBJ
    let mut r = Reader { buf: payloads[2], pos: 0 };
    let obj_id_space = r.u32("object id space")?;
    let n = r.count(16, "object count")?;
    let mut objs = Vec::with_capacity(n);
    for _ in 0..n {
        objs.push(RawObj {
            id: r.u32("object id")?,
            hctx: r.u32("object heap context")?,
            alloc: r.u32("object alloc site")?,
            ty: r.u32("object type")?,
        });
    }
    r.done("OBJ")?;

    // SETS
    let mut r = Reader { buf: payloads[3], pos: 0 };
    let n = r.count(4, "set count")?;
    let mut sets = Vec::with_capacity(n);
    for _ in 0..n {
        let k = r.count(4, "set length")?;
        let mut elems = Vec::with_capacity(k);
        for _ in 0..k {
            elems.push(r.u32("set element")?);
        }
        sets.push(elems);
    }
    r.done("SETS")?;

    // PTRS
    let mut r = Reader { buf: payloads[4], pos: 0 };
    let n = r.count(17, "pointer count")?;
    let mut ptr_keys = Vec::with_capacity(n);
    for _ in 0..n {
        ptr_keys.push(RawPtrKey {
            tag: r.u8("pointer tag")?,
            a: r.u32("pointer id a")?,
            b: r.u32("pointer id b")?,
        });
    }
    let mut redirect = Vec::with_capacity(n);
    for _ in 0..n {
        redirect.push(r.u32("redirect entry")?);
    }
    let mut row_set = Vec::with_capacity(n);
    for _ in 0..n {
        row_set.push(r.u32("row set index")?);
    }
    r.done("PTRS")?;

    // CG
    let mut r = Reader { buf: payloads[5], pos: 0 };
    let cs_cg_edge_count = r.u64("cs edge count")?;
    let n = r.count(8, "call-graph edge count")?;
    let mut cg_edges = Vec::with_capacity(n);
    for _ in 0..n {
        cg_edges.push((r.u32("edge site")?, r.u32("edge target")?));
    }
    r.done("CG")?;

    // REACH
    let mut r = Reader { buf: payloads[6], pos: 0 };
    let n = r.count(8, "reachable pair count")?;
    let mut reachable = Vec::with_capacity(n);
    for _ in 0..n {
        reachable.push((r.u32("reachable context")?, r.u32("reachable method")?));
    }
    let n = r.count(4, "reachable method count")?;
    let mut reachable_methods = Vec::with_capacity(n);
    for _ in 0..n {
        reachable_methods.push(r.u32("reachable method id")?);
    }
    r.done("REACH")?;

    // MOM
    let mut r = Reader { buf: payloads[7], pos: 0 };
    let mom = match r.u8("mom presence flag")? {
        0 => None,
        1 => {
            let n = r.count(4, "mom length")?;
            let mut repr = Vec::with_capacity(n);
            for _ in 0..n {
                repr.push(r.u32("mom representative")?);
            }
            // Validate the self-map here so merged_object_map() can
            // construct MergedObjectMap (whose constructor asserts)
            // without risk of panicking on hostile input.
            for (i, &rep) in repr.iter().enumerate() {
                let in_bounds = (rep as usize) < repr.len();
                if !in_bounds || repr[rep as usize] != rep {
                    return Err(SnapshotError::Malformed(format!(
                        "mom entry {i} -> {rep} is not an idempotent representative"
                    )));
                }
            }
            Some(repr)
        }
        f => {
            return Err(SnapshotError::Malformed(format!("unknown mom presence flag {f}")));
        }
    };
    r.done("MOM")?;

    // STATS
    let mut r = Reader { buf: payloads[8], pos: 0 };
    let mut words = [0u64; 25];
    for w in &mut words {
        *w = r.u64("stats counter")?;
    }
    r.done("STATS")?;
    let stats = stats_from_words(&words)?;

    Ok(Snapshot {
        meta,
        raw: RawResult {
            ctxs,
            objs,
            obj_id_space,
            ptr_keys,
            redirect,
            row_set,
            sets,
            reachable,
            reachable_methods,
            cg_edges,
            cs_cg_edge_count,
            stats,
        },
        mom,
    })
}

/// Encodes `snap` and writes it to `path` atomically (write to a
/// sibling temp file, then rename). Returns the byte count written.
pub fn save(path: &Path, snap: &Snapshot) -> Result<u64, SnapshotError> {
    let bytes = encode(snap);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(bytes.len() as u64)
}

/// Reads and decodes the snapshot at `path`.
pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_snapshot() -> Snapshot {
        let program = jir::parse(
            "class A {
               field f: A;
               method id(this, v) { w = v; return w; }
               entry static method main() {
                 a = new A; b = new A;
                 a.f = b;
                 r = virt a.id(b);
                 return;
               }
             }",
        )
        .expect("parses");
        let result =
            pta::AnalysisConfig::new(pta::ObjectSensitive::new(2), pta::AllocSiteAbstraction)
                .run(&program)
                .expect("fits budget");
        Snapshot {
            meta: Meta {
                program: "tiny".into(),
                scale: 1,
                analysis: "2obj".into(),
                heap: "alloc-site".into(),
                threads: 1,
            },
            raw: pta::snapshot::extract(&result),
            mom: Some((0..program.alloc_count() as u32).collect()),
        }
    }

    #[test]
    fn byte_roundtrip_is_identity() {
        let snap = tiny_snapshot();
        let bytes = encode(&snap);
        let decoded = decode(&bytes).expect("decodes");
        assert_eq!(snap, decoded);
        assert_eq!(bytes, encode(&decoded), "encode ∘ decode is the identity on bytes");
    }

    #[test]
    fn restore_after_decode_succeeds() {
        let snap = tiny_snapshot();
        let decoded = decode(&encode(&snap)).expect("decodes");
        let result = pta::snapshot::restore(decoded.raw).expect("restores");
        assert!(result.pointer_count() > 0);
        // The persisted map was the identity, so every site is its own class.
        let mom = snap.merged_object_map().expect("mom present");
        assert_eq!(mom.class_count(), mom.len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&tiny_snapshot());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut bytes = encode(&tiny_snapshot());
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // Re-sign the header so the version check (not the checksum) fires.
        let crc = crc32(&bytes[..12]);
        bytes[12..16].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            decode(&bytes),
            Err(SnapshotError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn every_truncation_is_rejected_without_panicking() {
        let bytes = encode(&tiny_snapshot());
        for len in 0..bytes.len() {
            assert!(
                decode(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn bit_flips_are_rejected_without_panicking() {
        let bytes = encode(&tiny_snapshot());
        let mut rng = obs::rng::SplitMix64::new(0x5eed);
        for _ in 0..500 {
            let mut corrupt = bytes.clone();
            let byte = rng.below_usize(corrupt.len());
            let bit = rng.below(8) as u8;
            corrupt[byte] ^= 1 << bit;
            // Any single-bit flip lands in a checksummed region or the
            // checksum itself; either way decode must return an error.
            assert!(
                decode(&corrupt).is_err(),
                "bit {bit} of byte {byte} flipped and still decoded"
            );
        }
    }

    #[test]
    fn garbage_is_rejected_without_panicking() {
        let mut rng = obs::rng::SplitMix64::new(0x0bad_5eed);
        for round in 0..200 {
            let len = rng.below_usize(4096);
            let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            assert!(decode(&garbage).is_err(), "garbage round {round} decoded");
        }
    }

    #[test]
    fn non_idempotent_mom_rejected() {
        let mut snap = tiny_snapshot();
        let n = snap.mom.as_ref().unwrap().len() as u32;
        snap.mom = Some((0..n).map(|i| (i + 1) % n.max(1)).collect());
        if n < 2 {
            return; // 0 -> 0 is idempotent; nothing to test
        }
        let bytes = encode(&snap);
        assert!(matches!(decode(&bytes), Err(SnapshotError::Malformed(_))));
    }
}
