//! Randomized property tests for `PtsSet` against a `BTreeSet` oracle.
//!
//! Driven by the in-tree SplitMix64 PRNG (`obs::rng`) so runs are
//! deterministic and reproducible from the printed seed. Each trial
//! mirrors a random operation sequence onto both a `PtsSet<u32>` and a
//! `BTreeSet<u32>` and asserts they agree on membership, cardinality,
//! iteration order, union deltas, masked unions, and intersection —
//! deliberately crossing the small→dense promotion boundary.

use obs::rng::SplitMix64;
use pts::{IdRanges, PtsSet, SMALL_MAX};
use std::collections::BTreeSet;

/// Universe large enough to exercise multi-word bitmaps, small enough
/// for collisions (re-inserts, overlapping unions) to be common.
const UNIVERSE: u64 = 700;

fn assert_matches(set: &PtsSet<u32>, oracle: &BTreeSet<u32>, ctx: &str) {
    assert_eq!(set.len(), oracle.len(), "len mismatch: {ctx}");
    assert_eq!(set.is_empty(), oracle.is_empty(), "is_empty mismatch: {ctx}");
    // Iteration must be ascending and exactly the oracle's contents.
    let got: Vec<u32> = set.iter().collect();
    let want: Vec<u32> = oracle.iter().copied().collect();
    assert_eq!(got, want, "iter/order mismatch: {ctx}");
    assert_eq!(set.to_vec(), want, "to_vec mismatch: {ctx}");
}

fn random_set(rng: &mut SplitMix64, max_len: u64) -> (PtsSet<u32>, BTreeSet<u32>) {
    let n = rng.below(max_len);
    let mut set = PtsSet::new();
    let mut oracle = BTreeSet::new();
    for _ in 0..n {
        let v = rng.below(UNIVERSE) as u32;
        assert_eq!(set.insert(v), oracle.insert(v), "insert return value");
    }
    (set, oracle)
}

#[test]
fn insert_contains_iter_match_oracle() {
    let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
    for trial in 0..200 {
        let (set, oracle) = random_set(&mut rng, 3 * SMALL_MAX as u64);
        assert_matches(&set, &oracle, &format!("trial {trial}"));
        for _ in 0..32 {
            let probe = rng.below(UNIVERSE) as u32;
            assert_eq!(
                set.contains(probe),
                oracle.contains(&probe),
                "contains({probe}) mismatch, trial {trial}"
            );
        }
    }
}

#[test]
fn union_into_delta_matches_oracle() {
    let mut rng = SplitMix64::new(0xdeadbeefcafef00d);
    for trial in 0..200 {
        let (src, src_o) = random_set(&mut rng, 4 * SMALL_MAX as u64);
        let (mut dst, mut dst_o) = random_set(&mut rng, 4 * SMALL_MAX as u64);

        let delta = src.union_into(&mut dst);
        let delta_o: BTreeSet<u32> = src_o.difference(&dst_o).copied().collect();
        dst_o.extend(src_o.iter().copied());

        assert_matches(&delta, &delta_o, &format!("delta, trial {trial}"));
        assert_matches(&dst, &dst_o, &format!("union target, trial {trial}"));
        // Unioning again must be quiescent: empty delta, unchanged target.
        assert!(src.union_into(&mut dst).is_empty(), "requiescence, trial {trial}");
        assert_matches(&dst, &dst_o, &format!("post-requiescence, trial {trial}"));
    }
}

#[test]
fn masked_union_matches_oracle() {
    let mut rng = SplitMix64::new(0x1234567812345678);
    for trial in 0..200 {
        let (src, src_o) = random_set(&mut rng, 4 * SMALL_MAX as u64);
        let (mask, mask_o) = random_set(&mut rng, 6 * SMALL_MAX as u64);
        let (mut dst, mut dst_o) = random_set(&mut rng, 2 * SMALL_MAX as u64);

        let delta = src.union_into_masked(&mask, &mut dst);
        let masked: BTreeSet<u32> = src_o.intersection(&mask_o).copied().collect();
        let delta_o: BTreeSet<u32> = masked.difference(&dst_o).copied().collect();
        dst_o.extend(masked.iter().copied());

        assert_matches(&delta, &delta_o, &format!("masked delta, trial {trial}"));
        assert_matches(&dst, &dst_o, &format!("masked target, trial {trial}"));
    }
}

#[test]
fn intersects_matches_oracle() {
    let mut rng = SplitMix64::new(0x0123456789abcdef);
    for trial in 0..300 {
        let (a, a_o) = random_set(&mut rng, 4 * SMALL_MAX as u64);
        let (b, b_o) = random_set(&mut rng, 4 * SMALL_MAX as u64);
        let want = !a_o.is_disjoint(&b_o);
        assert_eq!(a.intersects(&b), want, "a∩b, trial {trial}");
        assert_eq!(b.intersects(&a), want, "b∩a (symmetry), trial {trial}");
    }
}

#[test]
fn equality_is_representation_independent() {
    let mut rng = SplitMix64::new(0xfeedface00000001);
    for trial in 0..100 {
        let (set, oracle) = random_set(&mut rng, 3 * SMALL_MAX as u64);
        // Rebuild through a forced-dense detour: over-fill, then compare
        // a straight FromIterator rebuild against the original.
        let rebuilt: PtsSet<u32> = oracle.iter().copied().collect();
        assert_eq!(set, rebuilt, "rebuild equality, trial {trial}");
        let mut detour: PtsSet<u32> = (0u32..(SMALL_MAX as u32 + 8)).collect();
        detour.clear();
        for &v in &oracle {
            detour.insert(v);
        }
        // `detour` went through a dense promotion; contents decide.
        assert_eq!(detour.to_vec(), set.to_vec(), "dense detour, trial {trial}");
    }
}

/// A random coalesced run list plus the equivalent materialized mask
/// set and oracle — so every range op can be checked against the
/// masked-set operation it replaces.
fn random_ranges(rng: &mut SplitMix64) -> (IdRanges, PtsSet<u32>, BTreeSet<u32>) {
    let mut ids: BTreeSet<u32> = BTreeSet::new();
    for _ in 0..rng.below(6) {
        let lo = rng.below(UNIVERSE) as u32;
        let len = 1 + rng.below(96) as u32;
        ids.extend(lo..(lo + len).min(UNIVERSE as u32));
    }
    let ranges = IdRanges::from_sorted_ids(ids.iter().copied());
    let mask: PtsSet<u32> = ids.iter().copied().collect();
    (ranges, mask, ids)
}

#[test]
fn id_ranges_coalesce_and_answer_membership() {
    let mut rng = SplitMix64::new(0x5eed5eed5eed5eed);
    for trial in 0..200 {
        let (ranges, _, ids) = random_ranges(&mut rng);
        // Runs must be ascending, disjoint, non-adjacent, and cover
        // exactly the oracle ids.
        for w in ranges.runs().windows(2) {
            assert!(w[0].1 < w[1].0, "runs not coalesced/sorted, trial {trial}");
        }
        assert_eq!(ranges.covered(), ids.len() as u64, "coverage, trial {trial}");
        for _ in 0..64 {
            let probe = rng.below(UNIVERSE) as u32;
            assert_eq!(
                ranges.contains(probe),
                ids.contains(&probe),
                "contains({probe}), trial {trial}"
            );
        }
        // Incremental insertion reaches the same runs as bulk build.
        let mut incremental = IdRanges::new();
        let mut shuffled: Vec<u32> = ids.iter().copied().collect();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, rng.below(i as u64 + 1) as usize);
        }
        for id in shuffled {
            incremental.insert_id(id);
        }
        assert_eq!(incremental, ranges, "incremental vs bulk, trial {trial}");
    }
}

#[test]
fn difference_in_ranges_matches_masked_set_oracle() {
    let mut rng = SplitMix64::new(0xc0ffee00c0ffee00);
    for trial in 0..300 {
        let (src, src_o) = random_set(&mut rng, 5 * SMALL_MAX as u64);
        let (ranges, mask, mask_o) = random_ranges(&mut rng);
        let (other, other_o) = random_set(&mut rng, 3 * SMALL_MAX as u64);

        let got = src.difference_in_ranges(&ranges, &other);
        let want = src.difference_masked(&mask, &other);
        assert_eq!(got, want, "range vs mask difference, trial {trial}");
        let want_o: BTreeSet<u32> = src_o
            .iter()
            .filter(|e| mask_o.contains(e) && !other_o.contains(e))
            .copied()
            .collect();
        assert_matches(&got, &want_o, &format!("range difference, trial {trial}"));
    }
}

#[test]
fn union_masked_ranges_matches_masked_union_oracle() {
    let mut rng = SplitMix64::new(0xbadc0de5badc0de5);
    for trial in 0..300 {
        let (src, src_o) = random_set(&mut rng, 5 * SMALL_MAX as u64);
        let (ranges, mask, mask_o) = random_ranges(&mut rng);
        let (mut dst_r, dst_o0) = random_set(&mut rng, 3 * SMALL_MAX as u64);
        let mut dst_m = dst_r.clone();

        let got = src.union_masked_ranges(&ranges, &mut dst_r);
        let want = src.union_into_masked(&mask, &mut dst_m);
        assert_eq!(got, want, "range vs mask union delta, trial {trial}");
        assert_eq!(dst_r, dst_m, "range vs mask union target, trial {trial}");
        let masked: BTreeSet<u32> = src_o.intersection(&mask_o).copied().collect();
        let mut dst_o = dst_o0.clone();
        dst_o.extend(masked.iter().copied());
        assert_matches(&dst_r, &dst_o, &format!("range union target, trial {trial}"));
    }
}

#[test]
fn iter_in_ranges_matches_filtered_iteration() {
    let mut rng = SplitMix64::new(0x1ce1ce1ce1ce1ce1);
    for trial in 0..200 {
        let (set, set_o) = random_set(&mut rng, 5 * SMALL_MAX as u64);
        let (ranges, _, mask_o) = random_ranges(&mut rng);
        let got: Vec<u32> = set.iter_in_ranges(&ranges).collect();
        let want: Vec<u32> = set_o.iter().filter(|e| mask_o.contains(e)).copied().collect();
        assert_eq!(got, want, "range-bounded iteration, trial {trial}");
    }
}

#[test]
fn union_with_matches_extend() {
    let mut rng = SplitMix64::new(0xabcdef0123456789);
    for trial in 0..100 {
        let (a, a_o) = random_set(&mut rng, 5 * SMALL_MAX as u64);
        let (mut b, b_o) = random_set(&mut rng, 5 * SMALL_MAX as u64);
        b.union_with(&a);
        let union_o: BTreeSet<u32> = a_o.union(&b_o).copied().collect();
        assert_matches(&b, &union_o, &format!("union_with, trial {trial}"));
    }
}
