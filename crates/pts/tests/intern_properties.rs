//! Randomized property tests for interned, copy-on-write [`PtsHandle`]s
//! against two oracles: a plain (never-interned) `PtsSet` mirroring
//! every mutation, and a `BTreeSet` mirroring contents.
//!
//! Driven by the in-tree SplitMix64 PRNG (`obs::rng`) so runs are
//! deterministic and reproducible. Each trial interleaves inserts,
//! unions, and masked unions through `make_mut` with seal sweeps at a
//! random cadence — the same mutate-a-while-then-seal lifecycle the
//! solver's rows live through — and asserts that sealing never changes
//! content, that handle equality coincides with content equality, and
//! that the handle fast paths (`intersects`, `is_subset`) agree with
//! the structural answers.

use obs::rng::SplitMix64;
use pts::{PtsHandle, PtsSet, SetInterner, SMALL_MAX};
use std::collections::BTreeSet;

const UNIVERSE: u64 = 700;

fn assert_matches(set: &PtsSet<u32>, oracle: &BTreeSet<u32>, ctx: &str) {
    assert_eq!(set.len(), oracle.len(), "len mismatch: {ctx}");
    let got: Vec<u32> = set.iter().collect();
    let want: Vec<u32> = oracle.iter().copied().collect();
    assert_eq!(got, want, "iter/order mismatch: {ctx}");
}

fn random_set(rng: &mut SplitMix64, max_len: u64) -> (PtsSet<u32>, BTreeSet<u32>) {
    let n = rng.below(max_len);
    let mut set = PtsSet::new();
    let mut oracle = BTreeSet::new();
    for _ in 0..n {
        let v = rng.below(UNIVERSE) as u32;
        set.insert(v);
        oracle.insert(v);
    }
    (set, oracle)
}

/// A solver-row stand-in: the interned handle under test plus its two
/// oracles.
struct Row {
    handle: PtsHandle<u32>,
    plain: PtsSet<u32>,
    oracle: BTreeSet<u32>,
}

#[test]
fn interned_rows_match_plain_sets_under_mutation_and_sealing() {
    let mut rng = SplitMix64::new(0x517cc1b727220a95);
    let interner = SetInterner::new();
    for trial in 0..60 {
        let mut rows: Vec<Row> = (0..8)
            .map(|_| Row {
                handle: interner.empty_handle(),
                plain: PtsSet::new(),
                oracle: BTreeSet::new(),
            })
            .collect();
        let ops = 40 + rng.below(80);
        for op in 0..ops {
            let i = rng.below(rows.len() as u64) as usize;
            match rng.below(4) {
                0 => {
                    let v = rng.below(UNIVERSE) as u32;
                    rows[i].handle.make_mut().insert(v);
                    rows[i].plain.insert(v);
                    rows[i].oracle.insert(v);
                }
                1 => {
                    let (src, src_o) = random_set(&mut rng, 4 * SMALL_MAX as u64);
                    rows[i].handle.make_mut().union_with(&src);
                    rows[i].plain.union_with(&src);
                    rows[i].oracle.extend(src_o);
                }
                2 => {
                    let (src, src_o) = random_set(&mut rng, 4 * SMALL_MAX as u64);
                    let (mask, mask_o) = random_set(&mut rng, 6 * SMALL_MAX as u64);
                    src.union_into_masked(&mask, rows[i].handle.make_mut());
                    src.union_into_masked(&mask, &mut rows[i].plain);
                    rows[i]
                        .oracle
                        .extend(src_o.intersection(&mask_o).copied());
                }
                // Copy another row wholesale — the solver's
                // handle-sharing move (collapsed-cache fast path).
                _ => {
                    let j = rng.below(rows.len() as u64) as usize;
                    let (handle, plain, oracle) =
                        (rows[j].handle.clone(), rows[j].plain.clone(), rows[j].oracle.clone());
                    rows[i] = Row { handle, plain, oracle };
                }
            }
            // Seal sweeps at a random cadence, mid-mutation: sealing
            // must never change content, only allocation identity.
            if rng.below(7) == 0 {
                for row in &mut rows {
                    row.handle.seal(&interner);
                    assert!(row.handle.is_sealed());
                }
                interner.evict_dead();
            }
            let ctx = format!("trial {trial}, op {op}");
            for (k, row) in rows.iter().enumerate() {
                assert_matches(&row.handle, &row.oracle, &format!("row {k}, {ctx}"));
                assert_eq!(*row.handle.as_set(), row.plain, "plain oracle, row {k}, {ctx}");
            }
        }
        // Final sweep, then the global invariants over all row pairs.
        for row in &mut rows {
            row.handle.seal(&interner);
        }
        for a in 0..rows.len() {
            for b in 0..rows.len() {
                let ctx = format!("rows {a}/{b}, trial {trial}");
                // Handle equality ⇔ content equality, sealed or not.
                assert_eq!(
                    rows[a].handle == rows[b].handle,
                    rows[a].oracle == rows[b].oracle,
                    "handle equality: {ctx}"
                );
                // Fast-pathed queries agree with the oracles.
                assert_eq!(
                    rows[a].handle.intersects(&rows[b].handle),
                    !rows[a].oracle.is_disjoint(&rows[b].oracle),
                    "intersects: {ctx}"
                );
                assert_eq!(
                    rows[a].handle.is_subset(&rows[b].handle),
                    rows[a].oracle.is_subset(&rows[b].oracle),
                    "is_subset: {ctx}"
                );
            }
        }
    }
    assert!(interner.dedup_hits() > 0, "trials never shared a sealed allocation");
}

/// Content-equal sets sealed against one interner share one allocation;
/// diverging a shared handle through `make_mut` never disturbs the
/// other owners (copy-on-write).
#[test]
fn sealing_shares_and_make_mut_unshares() {
    let mut rng = SplitMix64::new(0x6a09e667f3bcc909);
    let interner = SetInterner::new();
    for trial in 0..100 {
        let (set, oracle) = random_set(&mut rng, 5 * SMALL_MAX as u64);
        let mut a = PtsHandle::from_set(set.clone());
        // Rebuild b independently (different allocation, same content).
        let mut b = PtsHandle::from_set(oracle.iter().copied().collect::<PtsSet<u32>>());
        assert_ne!(a.addr(), b.addr(), "pre-seal sharing is impossible, trial {trial}");
        a.seal(&interner);
        b.seal(&interner);
        assert_eq!(a.addr(), b.addr(), "seal did not dedup, trial {trial}");
        assert_eq!(a, b, "handles disagree after seal, trial {trial}");

        let probe = rng.below(UNIVERSE) as u32;
        let b_before = b.as_set().clone();
        let changed = a.make_mut().insert(probe);
        assert!(!a.is_sealed(), "make_mut must mark the handle dirty, trial {trial}");
        assert_eq!(*b.as_set(), b_before, "CoW leaked into the shared owner, trial {trial}");
        assert_eq!(a == b, !changed, "equality after divergence, trial {trial}");
    }
}
