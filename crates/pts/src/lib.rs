//! # pts — hybrid points-to sets
//!
//! The set representation under the `pta` solver's fixpoint: a points-to
//! set is a set of small dense integer ids (abstract objects). Profiles
//! of the worklist solver show two regimes: the overwhelming majority of
//! sets hold a handful of objects (the median delta is a single object),
//! while a few hub pointers accumulate thousands. [`PtsSet`] serves both
//! with one type:
//!
//! - **small**: a sorted, deduplicated `Vec<u32>` — cache-friendly,
//!   four ids per cache word, cheap to scan;
//! - **dense**: a `u64`-word bitmap once the set outgrows
//!   [`SMALL_MAX`] elements — membership, union, and intersection
//!   become word-wise operations, O(universe / 64) regardless of how
//!   many objects the set holds.
//!
//! The two operations the solver lives on:
//!
//! - [`PtsSet::union_into`] — unions `self` into a target and returns
//!   the **delta** (the elements genuinely new to the target) as a
//!   fresh set. Difference propagation falls out: the returned delta is
//!   exactly what must be forwarded to the target's consumers, and an
//!   empty delta means the edge is quiescent.
//! - [`PtsSet::union_into_masked`] — the same, but elements must also
//!   be present in a *mask* set. Type-filtered (cast) edges AND the
//!   mask word-wise instead of walking objects and querying a type
//!   hierarchy per element.
//!
//! Iteration ([`PtsSet::iter`]) is always in ascending id order, borrows
//! the set, and allocates nothing; [`PtsSet::to_vec`] is the escape
//! hatch for callers that need an owned `Vec`.
//!
//! The element type is anything implementing [`Elem`] — an infallible
//! bijection with `usize`. The `pta` crate implements it for `ObjId`;
//! tests use `u32`.
//!
//! Sets that live long enough to repeat — the solver's representative
//! rows, per-type masks, and result storage — go behind the
//! hash-consing layer in [`intern`]: a sharded [`intern::SetInterner`]
//! deduplicates identical contents and hands out copy-on-write
//! [`intern::PtsHandle`]s whose equality fast-paths on the interned
//! id.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod intern;

pub use intern::{PtsHandle, SetInterner};

use std::marker::PhantomData;

/// A set element: a cheap bijection with a dense `usize` index.
///
/// Implementations must be consistent (`from_index(into_index(x)) ==
/// x`) and dense-ish: memory for dense sets scales with the largest
/// index ever inserted, not with the element count.
pub trait Elem: Copy + Eq + Ord {
    /// Returns this element's dense index.
    fn into_index(self) -> usize;
    /// Reconstructs an element from its dense index.
    fn from_index(i: usize) -> Self;
}

impl Elem for u32 {
    fn into_index(self) -> usize {
        self as usize
    }
    fn from_index(i: usize) -> Self {
        u32::try_from(i).expect("index fits u32")
    }
}

impl Elem for usize {
    fn into_index(self) -> usize {
        self
    }
    fn from_index(i: usize) -> Self {
        i
    }
}

/// Sets with at most this many elements stay in the sorted-vec
/// representation; the next insertion promotes them to a bitmap.
pub const SMALL_MAX: usize = 16;

const WORD_BITS: usize = 64;

/// A sorted, disjoint, coalesced list of half-open index ranges
/// `[lo, hi)` — the compiled form of a membership mask whose members
/// cluster into contiguous id runs.
///
/// The `pta` solver numbers heap objects in class-hierarchy preorder,
/// so the subtype cone behind each cast filter is a handful of runs;
/// storing the runs instead of a materialized mask set turns cast
/// filtering into range-bounded word arithmetic
/// ([`PtsSet::difference_in_ranges`], [`PtsSet::union_masked_ranges`])
/// and shrinks the mask footprint from bitmap words to one word per
/// run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IdRanges {
    /// Ascending, pairwise-disjoint, non-adjacent (coalesced) runs.
    runs: Vec<(u32, u32)>,
}

impl IdRanges {
    /// Creates an empty range list.
    pub const fn new() -> Self {
        IdRanges { runs: Vec::new() }
    }

    /// Builds the coalesced runs covering exactly `ids`, which must be
    /// sorted ascending and deduplicated.
    pub fn from_sorted_ids(ids: impl IntoIterator<Item = u32>) -> Self {
        let mut runs: Vec<(u32, u32)> = Vec::new();
        for id in ids {
            match runs.last_mut() {
                Some(last) if last.1 == id => last.1 = id + 1,
                _ => {
                    debug_assert!(runs.last().is_none_or(|&(_, hi)| hi < id), "ids not sorted");
                    runs.push((id, id + 1));
                }
            }
        }
        IdRanges { runs }
    }

    /// Inserts a single id, coalescing with adjacent runs. O(log runs)
    /// to locate, O(runs) worst case to splice — runs lists stay short
    /// by construction.
    pub fn insert_id(&mut self, id: u32) {
        let pos = self.runs.partition_point(|&(_, hi)| hi <= id);
        if self.runs.get(pos).is_some_and(|&(lo, _)| lo <= id) {
            return; // already covered
        }
        let touches_prev = pos > 0 && self.runs[pos - 1].1 == id;
        let touches_next = self.runs.get(pos).is_some_and(|&(lo, _)| lo == id + 1);
        match (touches_prev, touches_next) {
            (true, true) => {
                self.runs[pos - 1].1 = self.runs[pos].1;
                self.runs.remove(pos);
            }
            (true, false) => self.runs[pos - 1].1 = id + 1,
            (false, true) => self.runs[pos].0 = id,
            (false, false) => self.runs.insert(pos, (id, id + 1)),
        }
    }

    /// Returns `true` if some run covers `id`.
    pub fn contains(&self, id: u32) -> bool {
        let pos = self.runs.partition_point(|&(_, hi)| hi <= id);
        self.runs.get(pos).is_some_and(|&(lo, _)| lo <= id)
    }

    /// The coalesced runs, ascending and disjoint.
    pub fn runs(&self) -> &[(u32, u32)] {
        &self.runs
    }

    /// Number of runs (the `pta.mask_ranges` unit).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` if no run exists.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Total ids covered across all runs.
    pub fn covered(&self) -> u64 {
        self.runs.iter().map(|&(lo, hi)| u64::from(hi - lo)).sum()
    }

    /// Memory footprint in 64-bit words: one word per `(lo, hi)` run.
    pub fn mem_words(&self) -> usize {
        self.runs.len()
    }
}

impl FromIterator<u32> for IdRanges {
    /// Collects from an iterator of **sorted ascending, deduplicated**
    /// ids (see [`IdRanges::from_sorted_ids`]).
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        IdRanges::from_sorted_ids(iter)
    }
}

#[derive(Clone)]
enum Repr {
    /// Sorted ascending, deduplicated element indices.
    Small(Vec<u32>),
    /// Dense bitmap; `len` caches the population count.
    Dense { words: Vec<u64>, len: u32 },
}

/// A points-to set: hybrid sorted-vec / dense-bitmap over the indices
/// of an [`Elem`] type.
///
/// # Examples
///
/// ```
/// let mut a: pts::PtsSet<u32> = [1u32, 5, 3].into_iter().collect();
/// let mut target = pts::PtsSet::new();
/// target.insert(3u32);
/// let delta = a.union_into(&mut target);
/// assert_eq!(delta.to_vec(), vec![1, 5]); // 3 was already present
/// assert_eq!(target.len(), 3);
/// ```
#[derive(Clone)]
pub struct PtsSet<T> {
    repr: Repr,
    _elem: PhantomData<T>,
}

impl<T: Elem> Default for PtsSet<T> {
    fn default() -> Self {
        PtsSet::new()
    }
}

impl<T: Elem> PtsSet<T> {
    /// Creates an empty set (no allocation until the first insert).
    pub const fn new() -> Self {
        PtsSet {
            repr: Repr::Small(Vec::new()),
            _elem: PhantomData,
        }
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.len(),
            Repr::Dense { len, .. } => *len as usize,
        }
    }

    /// Returns `true` if the set holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `elem` is a member.
    pub fn contains(&self, elem: T) -> bool {
        let i = elem.into_index();
        match &self.repr {
            Repr::Small(v) => v.binary_search(&(i as u32)).is_ok(),
            Repr::Dense { words, .. } => words
                .get(i / WORD_BITS)
                .is_some_and(|w| w & (1u64 << (i % WORD_BITS)) != 0),
        }
    }

    /// Inserts `elem`; returns `true` if it was not already present.
    pub fn insert(&mut self, elem: T) -> bool {
        let i = elem.into_index();
        match &mut self.repr {
            Repr::Small(v) => {
                let key = u32::try_from(i).expect("element index fits u32");
                match v.binary_search(&key) {
                    Ok(_) => false,
                    Err(pos) => {
                        if v.len() < SMALL_MAX {
                            v.insert(pos, key);
                        } else {
                            self.promote();
                            return self.insert(elem);
                        }
                        true
                    }
                }
            }
            Repr::Dense { words, len } => {
                let (w, b) = (i / WORD_BITS, 1u64 << (i % WORD_BITS));
                if words.len() <= w {
                    words.resize(w + 1, 0);
                }
                if words[w] & b != 0 {
                    false
                } else {
                    words[w] |= b;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// Converts the small representation to a bitmap.
    fn promote(&mut self) {
        if let Repr::Small(v) = &self.repr {
            let top = v.last().copied().unwrap_or(0) as usize;
            let mut words = vec![0u64; top / WORD_BITS + 1];
            for &i in v {
                words[i as usize / WORD_BITS] |= 1u64 << (i as usize % WORD_BITS);
            }
            self.repr = Repr::Dense {
                len: v.len() as u32,
                words,
            };
        }
    }

    /// Removes every element (keeps the representation's capacity).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Small(v) => v.clear(),
            Repr::Dense { words, len } => {
                words.clear();
                *len = 0;
            }
        }
    }

    /// Iterates over the elements in ascending index order. Borrows the
    /// set; allocates nothing.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            inner: match &self.repr {
                Repr::Small(v) => IterRepr::Small(v.iter()),
                Repr::Dense { words, .. } => IterRepr::Dense {
                    words,
                    word_ix: 0,
                    cur: words.first().copied().unwrap_or(0),
                },
            },
            _elem: PhantomData,
        }
    }

    /// Collects the elements into a sorted `Vec` — the escape hatch for
    /// callers that need owned data.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }

    /// Unions `self` into `target`; returns the delta (elements of
    /// `self` that were new to `target`). O(words) when both sides are
    /// dense.
    pub fn union_into(&self, target: &mut PtsSet<T>) -> PtsSet<T> {
        self.union_impl(None, target)
    }

    /// Unions `self ∩ mask` into `target`; returns the delta. The mask
    /// intersection is a word-wise AND when the representations allow.
    pub fn union_into_masked(&self, mask: &PtsSet<T>, target: &mut PtsSet<T>) -> PtsSet<T> {
        self.union_impl(Some(mask), target)
    }

    fn union_impl(&self, mask: Option<&PtsSet<T>>, target: &mut PtsSet<T>) -> PtsSet<T> {
        let mut delta = PtsSet::new();
        match (&self.repr, mask) {
            // Word-wise path: self dense, mask (if any) dense, and the
            // target promoted to dense (an unmasked union makes it a
            // superset of self, so promotion is not premature; a masked
            // union from a dense source promotes too — the source being
            // dense means heavy traffic flows through this pointer).
            (Repr::Dense { words, .. }, None) => {
                target.promote();
                let Repr::Dense {
                    words: tw,
                    len: tlen,
                } = &mut target.repr
                else {
                    unreachable!("just promoted")
                };
                if tw.len() < words.len() {
                    tw.resize(words.len(), 0);
                }
                for (w, (t, &s)) in tw.iter_mut().zip(words.iter()).enumerate() {
                    let add = s & !*t;
                    if add != 0 {
                        *t |= add;
                        *tlen += add.count_ones();
                        delta.push_word(w, add);
                    }
                }
            }
            (
                Repr::Dense { words, .. },
                Some(PtsSet {
                    repr: Repr::Dense { words: mw, .. },
                    ..
                }),
            ) => {
                target.promote();
                let Repr::Dense {
                    words: tw,
                    len: tlen,
                } = &mut target.repr
                else {
                    unreachable!("just promoted")
                };
                let n = words.len().min(mw.len());
                if tw.len() < n {
                    tw.resize(n, 0);
                }
                for (w, ((t, &s), &m)) in tw.iter_mut().zip(words.iter()).zip(mw.iter()).enumerate()
                {
                    let add = s & m & !*t;
                    if add != 0 {
                        *t |= add;
                        *tlen += add.count_ones();
                        delta.push_word(w, add);
                    }
                }
            }
            // Element-wise path: some participant is small, so walking
            // the (short) source is cheaper than promoting anyone.
            _ => {
                for e in self.iter() {
                    if mask.is_some_and(|m| !m.contains(e)) {
                        continue;
                    }
                    if target.insert(e) {
                        delta.insert(e);
                    }
                }
            }
        }
        delta
    }

    /// Appends the set bits of `add` at word position `w`. Internal to
    /// the word-wise union paths: words arrive in ascending order.
    fn push_word(&mut self, w: usize, add: u64) {
        let base = w * WORD_BITS;
        let mut bits = add;
        while bits != 0 {
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            // Ascending arrival order makes small inserts O(1) pushes.
            self.insert(T::from_index(base + b));
        }
    }

    /// Returns `(self ∩ mask) \ other` as a fresh set, without touching
    /// `other`. Fully word-wise when all three sets are dense.
    ///
    /// This is the read-only probe of the solver's **parallel wave
    /// shards**: worker threads compute each copy edge's contribution
    /// against a frozen view of the target sets (no `&mut` anywhere),
    /// and the sequential merge applies the contributions afterwards
    /// with [`PtsSet::union_into_from_shards`].
    pub fn difference_masked(&self, mask: &PtsSet<T>, other: &PtsSet<T>) -> PtsSet<T> {
        let mut out = PtsSet::new();
        match (&self.repr, &mask.repr, &other.repr) {
            (
                Repr::Dense { words, .. },
                Repr::Dense { words: mw, .. },
                Repr::Dense { words: ow, .. },
            ) => {
                for (w, &s) in words.iter().enumerate() {
                    let keep = s
                        & mw.get(w).copied().unwrap_or(0)
                        & !ow.get(w).copied().unwrap_or(0);
                    if keep != 0 {
                        out.push_word(w, keep);
                    }
                }
            }
            _ => {
                for e in self.iter() {
                    if mask.contains(e) && !other.contains(e) {
                        out.insert(e);
                    }
                }
            }
        }
        out
    }

    /// Returns `(self ∩ ranges) \ other` as a fresh set — the
    /// range-compiled twin of [`PtsSet::difference_masked`], reading
    /// the mask as coalesced id runs instead of a materialized set.
    ///
    /// Dense/dense pairs do range-bounded word arithmetic: only the
    /// words each run overlaps are touched, with partial boundary
    /// words masked off. Anything else walks `self`'s elements through
    /// a run cursor ([`PtsSet::iter_in_ranges`]).
    pub fn difference_in_ranges(&self, ranges: &IdRanges, other: &PtsSet<T>) -> PtsSet<T> {
        let mut out = PtsSet::new();
        match (&self.repr, &other.repr) {
            (Repr::Dense { words, .. }, Repr::Dense { words: ow, .. }) => {
                for_range_words(ranges, words.len(), |w, m| {
                    let keep = words[w] & m & !ow.get(w).copied().unwrap_or(0);
                    if keep != 0 {
                        out.push_word(w, keep);
                    }
                });
            }
            _ => {
                for e in self.iter_in_ranges(ranges) {
                    if !other.contains(e) {
                        out.insert(e);
                    }
                }
            }
        }
        out
    }

    /// Unions `self ∩ ranges` into `target`; returns the delta — the
    /// range-compiled twin of [`PtsSet::union_into_masked`].
    pub fn union_masked_ranges(&self, ranges: &IdRanges, target: &mut PtsSet<T>) -> PtsSet<T> {
        let mut delta = PtsSet::new();
        match &self.repr {
            Repr::Dense { words, .. } => {
                target.promote();
                let Repr::Dense {
                    words: tw,
                    len: tlen,
                } = &mut target.repr
                else {
                    unreachable!("just promoted")
                };
                if tw.len() < words.len() {
                    tw.resize(words.len(), 0);
                }
                for_range_words(ranges, words.len(), |w, m| {
                    let add = words[w] & m & !tw[w];
                    if add != 0 {
                        tw[w] |= add;
                        *tlen += add.count_ones();
                        delta.push_word(w, add);
                    }
                });
            }
            Repr::Small(_) => {
                for e in self.iter_in_ranges(ranges) {
                    if target.insert(e) {
                        delta.insert(e);
                    }
                }
            }
        }
        delta
    }

    /// Range-bounded iteration: the elements of `self ∩ ranges` in
    /// ascending index order. Both the set and the runs are ascending,
    /// so one monotone run cursor filters the stream without any
    /// per-element search.
    pub fn iter_in_ranges<'a>(&'a self, ranges: &'a IdRanges) -> impl Iterator<Item = T> + 'a {
        let runs = ranges.runs();
        let mut ri = 0usize;
        self.iter().filter(move |e| {
            let i = e.into_index() as u32;
            while ri < runs.len() && runs[ri].1 <= i {
                ri += 1;
            }
            ri < runs.len() && runs[ri].0 <= i
        })
    }

    /// Unions every shard set into `target`, returning the combined
    /// delta (elements genuinely new to `target`) as one fresh set.
    ///
    /// This is the deterministic merge half of the solver's parallel
    /// wave propagation: per-thread scratch contributions for one target
    /// pointer are applied *in slice order*, so the result — and the
    /// returned delta — depends only on the order of `shards`, never on
    /// how many threads produced them.
    pub fn union_into_from_shards<'a>(
        shards: impl IntoIterator<Item = &'a PtsSet<T>>,
        target: &mut PtsSet<T>,
    ) -> PtsSet<T>
    where
        T: 'a,
    {
        let mut delta = PtsSet::new();
        for shard in shards {
            let d = shard.union_into(target);
            if delta.is_empty() {
                delta = d;
            } else {
                delta.union_with(&d);
            }
        }
        delta
    }

    /// Returns `self \ other` as a fresh set. Word-wise when both sides
    /// are dense; otherwise walks `self`.
    ///
    /// This is the collapse-time primitive of the solver's cycle
    /// elimination: when a strongly connected component's members are
    /// merged ("take and merge"), the representative's pending delta
    /// must cover everything some member's consumers have not seen yet —
    /// exactly `merged \ member` for each member.
    pub fn difference(&self, other: &PtsSet<T>) -> PtsSet<T> {
        let mut out = PtsSet::new();
        match (&self.repr, &other.repr) {
            (Repr::Dense { words, .. }, Repr::Dense { words: ow, .. }) => {
                for (w, &s) in words.iter().enumerate() {
                    let keep = s & !ow.get(w).copied().unwrap_or(0);
                    if keep != 0 {
                        out.push_word(w, keep);
                    }
                }
            }
            _ => {
                for e in self.iter() {
                    if !other.contains(e) {
                        out.insert(e);
                    }
                }
            }
        }
        out
    }

    /// Unions `other` into `self` without computing a delta.
    pub fn union_with(&mut self, other: &PtsSet<T>) {
        match &other.repr {
            Repr::Dense { .. } => {
                let _ = other.union_into(self);
            }
            Repr::Small(v) => {
                for &i in v {
                    self.insert(T::from_index(i as usize));
                }
            }
        }
    }

    /// Returns `true` if the sets share an element. Word-wise AND when
    /// both are dense; otherwise scans the smaller side.
    pub fn intersects(&self, other: &PtsSet<T>) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => {
                a.iter().zip(b.iter()).any(|(&x, &y)| x & y != 0)
            }
            _ => {
                let (probe, scan) = if self.len() <= other.len() {
                    (other, self)
                } else {
                    (self, other)
                };
                scan.iter().any(|e| probe.contains(e))
            }
        }
    }

    /// Whether every element of `self` is also in `other`. Dense
    /// pairs compare word-wise; mixed pairs walk the (smaller) left
    /// side.
    pub fn is_subset(&self, other: &PtsSet<T>) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Dense { words: a, .. }, Repr::Dense { words: b, .. }) => a
                .iter()
                .enumerate()
                .all(|(i, &x)| x & !b.get(i).copied().unwrap_or(0) == 0),
            _ => self.iter().all(|e| other.contains(e)),
        }
    }

    /// Memory footprint in 64-bit words (the `peak set words` metric):
    /// bitmap words, or the small vec's occupancy at two ids per word.
    pub fn mem_words(&self) -> usize {
        match &self.repr {
            Repr::Small(v) => v.len().div_ceil(2),
            Repr::Dense { words, .. } => words.len(),
        }
    }
}

/// Visits every bitmap word a run list overlaps, at most once per
/// `(run, word)` pair, as `(word index, member-bit mask)`. Words arrive
/// in ascending order overall (runs are sorted and disjoint; only a
/// boundary word shared by two runs repeats, with disjoint masks).
fn for_range_words(ranges: &IdRanges, n_words: usize, mut f: impl FnMut(usize, u64)) {
    let limit = n_words * WORD_BITS;
    for &(lo, hi) in ranges.runs() {
        let (lo, hi) = (lo as usize, (hi as usize).min(limit));
        if lo >= hi {
            continue;
        }
        let (w0, w1) = (lo / WORD_BITS, (hi - 1) / WORD_BITS);
        for w in w0..=w1 {
            let mut m = !0u64;
            if w == w0 {
                m &= !0u64 << (lo % WORD_BITS);
            }
            if w == w1 {
                let top = hi - w * WORD_BITS;
                if top < WORD_BITS {
                    m &= (1u64 << top) - 1;
                }
            }
            f(w, m);
        }
    }
}

impl<T: Elem> PartialEq for PtsSet<T> {
    /// Structural equality over the *elements*, independent of
    /// representation: a promoted set equals its small twin.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl<T: Elem> Eq for PtsSet<T> {}

impl<T: Elem + std::fmt::Debug> std::fmt::Debug for PtsSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: Elem> FromIterator<T> for PtsSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = PtsSet::new();
        s.extend(iter);
        s
    }
}

impl<T: Elem> Extend<T> for PtsSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl<'a, T: Elem> IntoIterator for &'a PtsSet<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Ascending-order borrowing iterator over a [`PtsSet`].
#[derive(Debug)]
pub struct Iter<'a, T> {
    inner: IterRepr<'a>,
    _elem: PhantomData<T>,
}

#[derive(Debug)]
enum IterRepr<'a> {
    Small(std::slice::Iter<'a, u32>),
    Dense {
        words: &'a [u64],
        word_ix: usize,
        cur: u64,
    },
}

impl<T: Elem> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            IterRepr::Small(it) => it.next().map(|&i| T::from_index(i as usize)),
            IterRepr::Dense {
                words,
                word_ix,
                cur,
            } => loop {
                if *cur != 0 {
                    let b = cur.trailing_zeros() as usize;
                    *cur &= *cur - 1;
                    return Some(T::from_index(*word_ix * WORD_BITS + b));
                }
                *word_ix += 1;
                if *word_ix >= words.len() {
                    return None;
                }
                *cur = words[*word_ix];
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_basics() {
        let s: PtsSet<u32> = PtsSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.mem_words(), 0);
    }

    #[test]
    fn insert_dedups_and_sorts() {
        let mut s: PtsSet<u32> = PtsSet::new();
        assert!(s.insert(5));
        assert!(s.insert(1));
        assert!(!s.insert(5));
        assert_eq!(s.to_vec(), vec![1, 5]);
    }

    #[test]
    fn promotion_preserves_contents() {
        let mut s: PtsSet<u32> = PtsSet::new();
        for i in 0..(SMALL_MAX as u32 + 10) {
            s.insert(i * 7);
        }
        let expected: Vec<u32> = (0..(SMALL_MAX as u32 + 10)).map(|i| i * 7).collect();
        assert_eq!(s.to_vec(), expected);
        assert!(s.contains(7));
        assert!(!s.contains(8));
    }

    #[test]
    fn union_into_returns_exact_delta() {
        let src: PtsSet<u32> = [1u32, 2, 3, 200].into_iter().collect();
        let mut target: PtsSet<u32> = [2u32, 100].into_iter().collect();
        let delta = src.union_into(&mut target);
        assert_eq!(delta.to_vec(), vec![1, 3, 200]);
        assert_eq!(target.to_vec(), vec![1, 2, 3, 100, 200]);
        // Second union is quiescent.
        assert!(src.union_into(&mut target).is_empty());
    }

    #[test]
    fn masked_union_filters() {
        let src: PtsSet<u32> = (0u32..40).collect();
        let mask: PtsSet<u32> = (0u32..40).filter(|i| i % 2 == 0).collect();
        let mut target = PtsSet::new();
        let delta = src.union_into_masked(&mask, &mut target);
        assert_eq!(delta.len(), 20);
        assert!(target.iter().all(|i: u32| i.is_multiple_of(2)));
    }

    #[test]
    fn equality_crosses_representations() {
        let small: PtsSet<u32> = [3u32, 9].into_iter().collect();
        let mut dense: PtsSet<u32> = (0u32..200).collect();
        dense.clear();
        // `dense` is an emptied bitmap; refill with the same elements.
        let mut dense: PtsSet<u32> = (0u32..200).collect();
        let small_copy: PtsSet<u32> = (0u32..200).collect();
        assert_eq!(dense, small_copy);
        dense.insert(1000);
        assert_ne!(dense, small_copy);
        assert_eq!(small, [9u32, 3].into_iter().collect::<PtsSet<u32>>());
    }

    #[test]
    fn difference_all_paths() {
        // small \ small
        let a: PtsSet<u32> = [1u32, 2, 3].into_iter().collect();
        let b: PtsSet<u32> = [2u32, 4].into_iter().collect();
        assert_eq!(a.difference(&b).to_vec(), vec![1, 3]);
        // dense \ dense, including words past the other's end
        let big_a: PtsSet<u32> = (0u32..200).collect();
        let big_b: PtsSet<u32> = (0u32..100).collect();
        assert_eq!(
            big_a.difference(&big_b).to_vec(),
            (100u32..200).collect::<Vec<_>>()
        );
        // dense \ small and small \ dense
        assert_eq!(big_b.difference(&a).len(), 97);
        assert_eq!(a.difference(&big_b), PtsSet::new());
        // difference against self / empty
        assert!(big_a.difference(&big_a).is_empty());
        assert_eq!(a.difference(&PtsSet::new()), a);
    }

    #[test]
    fn difference_masked_all_paths() {
        // Small everything.
        let src: PtsSet<u32> = [1u32, 2, 3, 4].into_iter().collect();
        let mask: PtsSet<u32> = [2u32, 3, 9].into_iter().collect();
        let other: PtsSet<u32> = [3u32].into_iter().collect();
        assert_eq!(src.difference_masked(&mask, &other).to_vec(), vec![2]);
        // Dense everything, including words past the shorter operands.
        let big_src: PtsSet<u32> = (0u32..300).collect();
        let big_mask: PtsSet<u32> = (0u32..300).filter(|i| i % 3 == 0).collect();
        let big_other: PtsSet<u32> = (0u32..150).collect();
        let got = big_src.difference_masked(&big_mask, &big_other);
        let want: Vec<u32> = (150u32..300).filter(|i| i % 3 == 0).collect();
        assert_eq!(got.to_vec(), want);
        // Mixed representations agree with the dense path.
        assert_eq!(
            big_src.difference_masked(&mask, &other).to_vec(),
            vec![2, 9]
        );
        // Empty mask yields an empty result.
        assert!(src
            .difference_masked(&PtsSet::new(), &PtsSet::new())
            .is_empty());
    }

    #[test]
    fn union_into_from_shards_merges_in_order() {
        let a: PtsSet<u32> = [1u32, 2].into_iter().collect();
        let b: PtsSet<u32> = [2u32, 3, 100].into_iter().collect();
        let c: PtsSet<u32> = (200u32..280).collect(); // dense shard
        let mut target: PtsSet<u32> = [1u32, 250].into_iter().collect();
        let delta = PtsSet::union_into_from_shards([&a, &b, &c], &mut target);
        let mut want: Vec<u32> = vec![2, 3, 100];
        want.extend((200u32..280).filter(|&i| i != 250));
        assert_eq!(delta.to_vec(), want);
        // {1, 2, 3, 100} plus the dense 200..280 run.
        assert_eq!(target.len(), 4 + 80);
        // Quiescent second application: every shard already applied.
        assert!(PtsSet::union_into_from_shards([&a, &b, &c], &mut target).is_empty());
        // No shards: no delta, target untouched.
        let before = target.to_vec();
        let no_shards: [&PtsSet<u32>; 0] = [];
        assert!(PtsSet::union_into_from_shards(no_shards, &mut target).is_empty());
        assert_eq!(target.to_vec(), before);
    }

    #[test]
    fn intersects_all_paths() {
        let a: PtsSet<u32> = [1u32, 2].into_iter().collect();
        let b: PtsSet<u32> = [2u32, 3].into_iter().collect();
        let c: PtsSet<u32> = [4u32].into_iter().collect();
        let big_a: PtsSet<u32> = (0u32..100).collect();
        let big_b: PtsSet<u32> = (99u32..200).collect();
        let big_c: PtsSet<u32> = (200u32..300).collect();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(big_a.intersects(&big_b));
        assert!(!big_a.intersects(&big_c));
        assert!(a.intersects(&big_a));
        assert!(!c.intersects(&big_b));
    }
}
