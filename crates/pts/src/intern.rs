//! Hash-consed points-to sets behind copy-on-write handles.
//!
//! Context-sensitive analysis produces massively repetitive sets: the
//! same receiver objects flow to the same variable under dozens of
//! calling contexts, so the solver's row store ends up holding many
//! bit-identical allocations. This module deduplicates them the same
//! way the `automata` crate deduplicates DFAs — by content fingerprint
//! — while keeping mutation cheap through copy-on-write:
//!
//! - [`SetInterner`] is a sharded content-addressed table mapping a
//!   128-bit element fingerprint ([`fxhash::fingerprint_u32s`]) to the
//!   canonical `Arc<PtsSet>` holding that content.
//! - [`PtsHandle`] is what callers hold: an `Arc` to the set plus the
//!   interned id the content was registered under. Reads go through
//!   `Deref`; mutation goes through an explicit [`PtsHandle::make_mut`]
//!   which marks the handle *dirty* (un-interned) and clones the
//!   allocation only if it is shared; [`PtsHandle::seal`] re-interns a
//!   dirty handle, adopting the canonical allocation when an identical
//!   set already exists.
//!
//! # Why handle equality is sound
//!
//! Fingerprints are computed over the *element stream* (ascending ids
//! plus a length word), never over the in-memory representation, so a
//! small-vec set and its promoted dense twin intern to the same entry —
//! mirroring `PtsSet`'s representation-independent `PartialEq`. A
//! fingerprint hit is additionally verified by exact element
//! comparison before two sets are merged (collisions park in a bucket
//! list), so adopting the canonical `Arc` never changes observable
//! contents: every solver result is bit-identical to the un-interned
//! run, which is what keeps the golden parity fingerprints stable.
//!
//! Within one interner generation, two *live sealed* handles are
//! content-equal if and only if their ids are equal: a table entry is
//! only evicted once no outside handle still references its `Arc`
//! ([`SetInterner::evict_dead`]), and ids are never reused. Handle
//! comparison therefore fast-paths — pointer equality, then
//! `(generation, id)` — before falling back to element comparison for
//! dirty handles.

use std::ops::Deref;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fxhash::FxHashMap;

use crate::{Elem, PtsSet};

/// Sentinel id for a handle whose content is not (or no longer)
/// registered in an interner.
const DIRTY: u32 = u32::MAX;

/// Number of lock shards; fingerprint low bits pick the shard. A small
/// power of two: sealing happens in batched sweeps from the solver's
/// sequential sections, so the shards bound worst-case contention from
/// concurrent analyses rather than chasing single-run parallelism.
const SHARDS: usize = 16;

/// Process-wide generation allocator: every interner gets a distinct
/// generation, so handles sealed by different interners (different
/// solver runs, different element types) can never alias by id.
static NEXT_GENERATION: AtomicU32 = AtomicU32::new(1);

/// One lock shard: fingerprint → bucket of `(id, canonical set)`.
/// Buckets are almost always singletons; a genuine 128-bit collision
/// parks the second set behind an exact-content check.
type Shard<T> = FxHashMap<u128, Vec<(u32, Arc<PtsSet<T>>)>>;

/// A sharded, content-addressed store of canonical points-to sets.
///
/// One interner serves one solver run (plus the [`AnalysisResult`]
/// built from it); its generation number is process-unique, so ids
/// from unrelated interners never compare equal through [`PtsHandle`].
///
/// [`AnalysisResult`]: ../pta/struct.AnalysisResult.html
#[derive(Debug)]
pub struct SetInterner<T: Elem> {
    generation: u32,
    shards: Vec<Mutex<Shard<T>>>,
    next_id: AtomicU32,
    interned: AtomicU64,
    dedup_hits: AtomicU64,
    empty: Arc<PtsSet<T>>,
}

impl<T: Elem> Default for SetInterner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Elem> SetInterner<T> {
    /// Creates an interner with a fresh process-unique generation. The
    /// empty set is pre-interned as id 0, so [`Self::empty_handle`]
    /// never allocates per call site.
    pub fn new() -> Self {
        let empty = Arc::new(PtsSet::new());
        let shards: Vec<Mutex<Shard<T>>> =
            (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect();
        let fp = fingerprint(&empty);
        shards[shard_of(fp)].lock().unwrap().insert(fp, vec![(0, empty.clone())]);
        SetInterner {
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
            shards,
            next_id: AtomicU32::new(1),
            interned: AtomicU64::new(1),
            dedup_hits: AtomicU64::new(0),
            empty,
        }
    }

    /// A sealed handle to the canonical empty set (id 0). Cloning the
    /// returned handle is the cheap way to materialize fresh rows.
    pub fn empty_handle(&self) -> PtsHandle<T> {
        PtsHandle {
            set: self.empty.clone(),
            id: 0,
            generation: self.generation,
            fp: Some(fingerprint(&self.empty)),
        }
    }

    /// Distinct set contents ever registered (the pre-interned empty
    /// set counts as one). Monotonic: eviction does not decrement it.
    pub fn interned(&self) -> u64 {
        self.interned.load(Ordering::Relaxed)
    }

    /// Seals that adopted an already-registered allocation instead of
    /// keeping their own — each hit is one duplicate allocation freed.
    pub fn dedup_hits(&self) -> u64 {
        self.dedup_hits.load(Ordering::Relaxed)
    }

    /// Registers `set`'s content, returning the canonical `(id, Arc)`.
    /// `fp` must be the element-stream fingerprint of `set` — passed in
    /// so a handle that already knows it (cached at a previous seal)
    /// skips the re-hash.
    fn intern(&self, set: &Arc<PtsSet<T>>, fp: u128) -> (u32, Arc<PtsSet<T>>) {
        let mut shard = self.shards[shard_of(fp)].lock().unwrap();
        let bucket = shard.entry(fp).or_default();
        for (id, canon) in bucket.iter() {
            if **canon == **set {
                if !Arc::ptr_eq(canon, set) {
                    self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                }
                return (*id, canon.clone());
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        assert!(id != DIRTY, "interner id space exhausted");
        bucket.push((id, set.clone()));
        self.interned.fetch_add(1, Ordering::Relaxed);
        (id, set.clone())
    }

    /// Drops table entries no live handle references anymore (their
    /// `Arc` strong count is 1 — ours). Ids are never reused, so a
    /// re-interned twin of an evicted content gets a fresh id and the
    /// live-handle id-equality invariant holds. Call between solver
    /// waves, after re-sealing mutated rows.
    pub fn evict_dead(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            shard.retain(|_, bucket| {
                bucket.retain(|(id, canon)| *id == 0 || Arc::strong_count(canon) > 1);
                !bucket.is_empty()
            });
        }
    }
}

/// Element-stream fingerprint: representation-independent content
/// identity (see the module docs).
fn fingerprint<T: Elem>(set: &PtsSet<T>) -> u128 {
    fxhash::fingerprint_u32s(set.iter().map(|e| e.into_index() as u32))
}

fn shard_of(fp: u128) -> usize {
    fp as usize & (SHARDS - 1)
}

/// A copy-on-write handle to a (possibly interned) [`PtsSet`].
///
/// Reads deref straight to the set. Mutation is explicit: call
/// [`PtsHandle::make_mut`], which un-interns the handle and clones the
/// underlying allocation only if someone else shares it. Handles start
/// *dirty* ([`PtsHandle::from_set`]) or *sealed*
/// ([`SetInterner::empty_handle`], [`PtsHandle::seal`]).
#[derive(Clone, Debug)]
pub struct PtsHandle<T: Elem> {
    set: Arc<PtsSet<T>>,
    /// Interned id, or [`DIRTY`] while unsealed.
    id: u32,
    /// Generation of the interner that assigned `id` (0 while dirty).
    generation: u32,
    /// Cached element-stream fingerprint of `set`, computed at most
    /// once per content: a seal stores it, [`PtsHandle::make_mut`]
    /// invalidates it, so re-sealing an unchanged row (e.g. into a
    /// different interner, or after a no-op mutation cycle ended in
    /// `seal`) never re-hashes the elements.
    fp: Option<u128>,
}

impl<T: Elem> PtsHandle<T> {
    /// Wraps an owned set in a dirty (unsealed) handle.
    pub fn from_set(set: PtsSet<T>) -> Self {
        PtsHandle { set: Arc::new(set), id: DIRTY, generation: 0, fp: None }
    }

    /// Whether this handle currently carries an interned id.
    pub fn is_sealed(&self) -> bool {
        self.id != DIRTY
    }

    /// Borrows the underlying set (same as `Deref`, spelled out for
    /// call sites that want the lifetime of `&self` to be explicit).
    pub fn as_set(&self) -> &PtsSet<T> {
        &self.set
    }

    /// Shares the underlying allocation: a cheap `Arc` clone, for
    /// callers that need to read the set while mutating other rows.
    pub fn share(&self) -> Arc<PtsSet<T>> {
        self.set.clone()
    }

    /// Unwraps into an owned set — without copying when this handle is
    /// the sole owner (the common case for pending deltas).
    pub fn into_set(self) -> PtsSet<T> {
        Arc::try_unwrap(self.set).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Stable address of the underlying allocation; physical-memory
    /// accounting dedups on it.
    pub fn addr(&self) -> usize {
        Arc::as_ptr(&self.set) as usize
    }

    /// Mutable access to the set. Marks the handle dirty and clones
    /// the allocation if it is shared (copy-on-write). Callers should
    /// check that they actually have something to write first —
    /// `difference` / `difference_masked` against the target — so
    /// quiescent edges never trigger the copy.
    pub fn make_mut(&mut self) -> &mut PtsSet<T> {
        self.id = DIRTY;
        self.generation = 0;
        self.fp = None;
        Arc::make_mut(&mut self.set)
    }

    /// Re-interns a dirty handle, adopting the canonical allocation if
    /// the content is already registered. Sealed handles are left
    /// untouched, so sweeping a mostly-clean row store is cheap; a
    /// handle whose fingerprint survived (cloned from a sealed handle,
    /// or sealed before into another interner) reuses it instead of
    /// re-hashing its elements.
    pub fn seal(&mut self, interner: &SetInterner<T>) {
        if self.is_sealed() {
            return;
        }
        let fp = *self.fp.get_or_insert_with(|| fingerprint(&self.set));
        let (id, canon) = interner.intern(&self.set, fp);
        self.set = canon;
        self.id = id;
        self.generation = interner.generation;
    }

    /// `self ∩ other ≠ ∅`, fast-pathing on handle identity: equal
    /// non-empty handles intersect without touching elements.
    pub fn intersects(&self, other: &PtsHandle<T>) -> bool {
        if self.same_content(other) {
            return !self.set.is_empty();
        }
        self.set.intersects(&other.set)
    }

    /// `self ⊆ other`, fast-pathing on handle identity.
    pub fn is_subset(&self, other: &PtsHandle<T>) -> bool {
        self.same_content(other) || self.set.is_subset(&other.set)
    }

    /// Identity fast path shared by the comparison operators: pointer
    /// equality, then same-generation id equality (sound per the
    /// module docs — within a generation, live sealed handles are
    /// content-equal iff their ids match).
    fn same_content(&self, other: &PtsHandle<T>) -> bool {
        Arc::ptr_eq(&self.set, &other.set)
            || (self.is_sealed() && self.generation == other.generation && self.id == other.id)
    }
}

impl<T: Elem> Deref for PtsHandle<T> {
    type Target = PtsSet<T>;

    fn deref(&self) -> &PtsSet<T> {
        &self.set
    }
}

impl<T: Elem> PartialEq for PtsHandle<T> {
    fn eq(&self, other: &Self) -> bool {
        if self.same_content(other) {
            return true;
        }
        // Same generation, both sealed, different ids: definitively
        // different contents — skip the element walk.
        if self.is_sealed() && other.is_sealed() && self.generation == other.generation {
            return false;
        }
        *self.set == *other.set
    }
}

impl<T: Elem> Eq for PtsHandle<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(elems: &[u32]) -> PtsHandle<u32> {
        PtsHandle::from_set(elems.iter().copied().collect())
    }

    #[test]
    fn seal_dedups_identical_content() {
        let interner = SetInterner::<u32>::new();
        let mut a = handle(&[1, 2, 3]);
        let mut b = handle(&[1, 2, 3]);
        assert_ne!(a.addr(), b.addr());
        a.seal(&interner);
        b.seal(&interner);
        assert_eq!(a.addr(), b.addr(), "sealing adopts the canonical allocation");
        assert_eq!(a, b);
        assert_eq!(interner.dedup_hits(), 1);
        assert_eq!(interner.interned(), 2, "empty plus one content");
    }

    #[test]
    fn representation_does_not_affect_identity() {
        // A small set and a promoted twin intern to the same entry.
        let interner = SetInterner::<u32>::new();
        let mut small = handle(&[4, 9]);
        // Forced-dense detour: over-fill to promote, clear (keeps the
        // dense representation), then insert the twin's content.
        let mut dense = handle(&(0..=crate::SMALL_MAX as u32).collect::<Vec<_>>());
        let set = dense.make_mut();
        set.clear();
        set.insert(4);
        set.insert(9);
        assert!(*small == *dense, "precondition: structural set equality");
        small.seal(&interner);
        dense.seal(&interner);
        assert_eq!(small.addr(), dense.addr());
    }

    #[test]
    fn make_mut_unseals_and_copies_only_when_shared() {
        let interner = SetInterner::<u32>::new();
        let mut a = handle(&[7]);
        a.seal(&interner);
        assert!(a.is_sealed());
        let before = a.addr();
        a.make_mut().insert(8);
        assert!(!a.is_sealed());
        assert_ne!(a.addr(), before, "interner still holds the old content");
        // Once unique, further mutation is in place.
        let solo = a.addr();
        a.make_mut().insert(9);
        assert_eq!(a.addr(), solo);
    }

    #[test]
    fn empty_handle_is_shared_and_sealed() {
        let interner = SetInterner::<u32>::new();
        let a = interner.empty_handle();
        let b = interner.empty_handle();
        assert!(a.is_sealed() && b.is_sealed());
        assert_eq!(a.addr(), b.addr());
        assert!(a.is_empty());
        assert_eq!(a, b);
    }

    #[test]
    fn eviction_drops_only_dead_entries() {
        let interner = SetInterner::<u32>::new();
        let mut live = handle(&[1]);
        live.seal(&interner);
        {
            let mut dead = handle(&[2]);
            dead.seal(&interner);
        }
        interner.evict_dead();
        assert_eq!(interner.interned(), 3, "interned count is monotonic");
        // Re-sealing the live content must still find the old entry.
        let mut twin = handle(&[1]);
        twin.seal(&interner);
        assert_eq!(twin.addr(), live.addr());
        assert_eq!(interner.dedup_hits(), 1);
    }

    #[test]
    fn cross_generation_ids_never_alias() {
        let i1 = SetInterner::<u32>::new();
        let i2 = SetInterner::<u32>::new();
        let mut a = handle(&[1]);
        let mut b = handle(&[2]);
        a.seal(&i1);
        b.seal(&i2);
        // Both got id 1 in their own interner; contents differ.
        assert_ne!(a, b);
    }

    #[test]
    fn handle_fast_paths_match_set_semantics() {
        let interner = SetInterner::<u32>::new();
        let mut a = handle(&[1, 2]);
        let mut b = handle(&[1, 2]);
        let mut c = handle(&[3]);
        a.seal(&interner);
        b.seal(&interner);
        c.seal(&interner);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.is_subset(&b));
        assert!(!c.is_subset(&a));
        let empty = interner.empty_handle();
        assert!(!empty.intersects(&empty));
        assert!(empty.is_subset(&a));
    }
}
