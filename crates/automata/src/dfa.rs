//! Deterministic 6-tuple sequential automata, Hopcroft–Karp equivalence
//! (paper Algorithm 4), and Moore-style minimization.

use std::collections::BTreeSet;

use dsu::DisjointSets;
use fxhash::{FxHashMap, FxHashSet};

use crate::types::{Behavior, Output, StateId, Symbol};

/// A deterministic sequential automaton produced by
/// [`Nfa::to_dfa`](crate::Nfa::to_dfa).
///
/// Each state's output is a *set* of [`Output`]s (the γ' map of the
/// paper's Algorithm 3 maps a DFA state — a set of NFA states — to the
/// set of their types). Missing transitions implicitly go to the error
/// sink `q_error` of Algorithm 4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dfa {
    start: StateId,
    /// Per state, transitions sorted by symbol.
    transitions: Vec<Vec<(Symbol, StateId)>>,
    /// Per state, the sorted set of outputs.
    outputs: Vec<Vec<Output>>,
}

impl Dfa {
    /// Returns the initial state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Returns the number of states (excluding the implicit error sink).
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// Returns the output set γ'(q) of a state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn output_set(&self, q: StateId) -> &[Output] {
        &self.outputs[q.index()]
    }

    /// Returns the successor of `q` on `symbol`, or `None` for the
    /// implicit error sink.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn successor(&self, q: StateId, symbol: Symbol) -> Option<StateId> {
        self.transitions[q.index()]
            .binary_search_by_key(&symbol, |&(s, _)| s)
            .ok()
            .map(|i| self.transitions[q.index()][i].1)
    }

    /// Returns the symbols with an explicit transition from `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn symbols_of(&self, q: StateId) -> impl Iterator<Item = Symbol> + '_ {
        self.transitions[q.index()].iter().map(|&(s, _)| s)
    }

    /// Returns the transition row of `q` as `(symbol, successor)` pairs
    /// in ascending symbol order.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn transitions_of(&self, q: StateId) -> impl ExactSizeIterator<Item = (Symbol, StateId)> + '_ {
        self.transitions[q.index()].iter().copied()
    }

    /// Returns the automaton's alphabet Σ.
    pub fn alphabet(&self) -> Vec<Symbol> {
        let mut set = BTreeSet::new();
        for row in &self.transitions {
            for &(s, _) in row {
                set.insert(s);
            }
        }
        set.into_iter().collect()
    }

    /// Returns `true` if every state's output set is a singleton — the
    /// automaton analogue of the paper's Condition 2 over all words
    /// (SINGLETYPE-CHECK).
    pub fn is_single_output(&self) -> bool {
        self.outputs.iter().all(|o| o.len() == 1)
    }

    /// Computes the behaviour β(word).
    pub fn behavior(&self, word: &[Symbol]) -> Behavior {
        let mut q = self.start;
        for &sym in word {
            match self.successor(q, sym) {
                Some(next) => q = next,
                None => return Behavior::Reject,
            }
        }
        Behavior::Outputs(self.outputs[q.index()].clone())
    }

    /// Tests behavioural equivalence with `other` using the
    /// Hopcroft–Karp union-find algorithm, adapted to sequential automata
    /// as in the paper's Algorithm 4.
    ///
    /// Two DFAs are equivalent iff for every word they produce the same
    /// output set (including rejection). Missing transitions are treated
    /// as edges to a shared error sink whose "output" differs from every
    /// real output set. Runs in near-linear time
    /// `O(|Σ| · |Q1 ∪ Q2| · α)`.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        obs::counter("automata.hk_queries").inc();
        // State numbering: self-states, then other-states, then q_error.
        let n1 = self.state_count();
        let n2 = other.state_count();
        let error = n1 + n2;
        let mut sets = DisjointSets::new(n1 + n2 + 1);

        // Σ = Σ1 ∪ Σ2.
        let mut alphabet = self.alphabet();
        alphabet.extend(other.alphabet());
        alphabet.sort_unstable();
        alphabet.dedup();

        let next = |state: usize, sym: Symbol| -> usize {
            if state == error {
                error
            } else if state < n1 {
                self.successor(StateId(state as u32), sym)
                    .map_or(error, |q| q.index())
            } else {
                other
                    .successor(StateId((state - n1) as u32), sym)
                    .map_or(error, |q| n1 + q.index())
            }
        };

        let start1 = self.start.index();
        let start2 = n1 + other.start.index();
        sets.union(start1, start2);
        let mut stack = vec![(start1, start2)];
        while let Some((p1, p2)) = stack.pop() {
            for &sym in &alphabet {
                let r1 = sets.find(next(p1, sym));
                let r2 = sets.find(next(p2, sym));
                if r1 != r2 {
                    sets.union(r1, r2);
                    stack.push((r1, r2));
                }
            }
        }

        // Equivalent iff every union class is output-homogeneous
        // (the error sink is homogeneous only with itself).
        let output_of = |state: usize| -> Option<&[Output]> {
            if state == error {
                None
            } else if state < n1 {
                Some(self.output_set(StateId(state as u32)))
            } else {
                Some(other.output_set(StateId((state - n1) as u32)))
            }
        };
        let homogeneous = sets.classes().iter().all(|class| {
            let first = output_of(class[0]);
            class.iter().all(|&s| output_of(s) == first)
        });
        obs::counter("automata.hk_unionfind_ops").add(sets.ops());
        homogeneous
    }

    /// Returns the minimal DFA with the same behaviour (Moore partition
    /// refinement over output sets). Not part of the paper's pipeline —
    /// provided for analysis tooling and used by tests as an independent
    /// equivalence oracle (`a.equivalent(b)` iff their reachable
    /// minimizations are isomorphic).
    pub fn minimize(&self) -> Dfa {
        let n = self.state_count();
        let alphabet = self.alphabet();

        // Initial partition: by output set, with an extra implicit block
        // for q_error (represented as block id usize::MAX).
        let mut block_of: Vec<usize> = vec![0; n];
        {
            let mut blocks: Vec<&[Output]> = Vec::new();
            for (q, slot) in block_of.iter_mut().enumerate() {
                let out = self.output_set(StateId(q as u32));
                match blocks.iter().position(|&b| b == out) {
                    Some(i) => *slot = i,
                    None => {
                        *slot = blocks.len();
                        blocks.push(out);
                    }
                }
            }
        }

        // Refine by successor-block signature until the block count is
        // stable. Each round either splits a block or terminates, so at
        // most `n` rounds run.
        let mut block_count = block_of.iter().copied().max().map_or(0, |m| m + 1);
        loop {
            let mut sig_to_block: FxHashMap<Vec<usize>, usize> = FxHashMap::default();
            let mut new_block_of = vec![0; n];
            for q in 0..n {
                // Signature: (current block, successor block per symbol).
                let mut sig = Vec::with_capacity(alphabet.len() + 1);
                sig.push(block_of[q]);
                for &sym in &alphabet {
                    sig.push(match self.successor(StateId(q as u32), sym) {
                        Some(s) => block_of[s.index()],
                        None => usize::MAX, // q_error block
                    });
                }
                let next_id = sig_to_block.len();
                new_block_of[q] = *sig_to_block.entry(sig).or_insert(next_id);
            }
            let new_count = sig_to_block.len();
            block_of = new_block_of;
            if new_count == block_count {
                break;
            }
            block_count = new_count;
        }

        // Build the quotient automaton over blocks reachable from start.
        let mut builder = DfaPartsBuilder::default();
        let mut block_state: FxHashMap<usize, StateId> = FxHashMap::default();
        let mut rep_of_block: FxHashMap<usize, usize> = FxHashMap::default();
        for (q, &block) in block_of.iter().enumerate() {
            rep_of_block.entry(block).or_insert(q);
        }
        let start_block = block_of[self.start.index()];
        let mut get_state = |builder: &mut DfaPartsBuilder, block: usize| -> StateId {
            if let Some(&s) = block_state.get(&block) {
                return s;
            }
            let rep = rep_of_block[&block];
            let s = builder.add_state(self.output_set(StateId(rep as u32)).to_vec());
            block_state.insert(block, s);
            s
        };
        let start_state = get_state(&mut builder, start_block);
        let mut worklist = vec![start_block];
        let mut seen = FxHashSet::default();
        seen.insert(start_block);
        while let Some(block) = worklist.pop() {
            let rep = rep_of_block[&block];
            let from = get_state(&mut builder, block);
            for &sym in &alphabet {
                if let Some(succ) = self.successor(StateId(rep as u32), sym) {
                    let sb = block_of[succ.index()];
                    let to = get_state(&mut builder, sb);
                    builder.add_transition(from, sym, to);
                    if seen.insert(sb) {
                        worklist.push(sb);
                    }
                }
            }
        }
        builder.finish(start_state)
    }
}

/// Low-level DFA assembly, used by subset construction and minimization.
#[derive(Clone, Debug, Default)]
pub struct DfaPartsBuilder {
    transitions: Vec<Vec<(Symbol, StateId)>>,
    outputs: Vec<Vec<Output>>,
}

impl DfaPartsBuilder {
    /// Adds a state with the given (sorted, deduplicated) output set.
    pub fn add_state(&mut self, outputs: Vec<Output>) -> StateId {
        let id = StateId(u32::try_from(self.outputs.len()).expect("too many states"));
        debug_assert!(outputs.windows(2).all(|w| w[0] < w[1]), "outputs not sorted");
        self.outputs.push(outputs);
        self.transitions.push(Vec::new());
        id
    }

    /// Adds the deterministic transition `from --symbol--> to`.
    ///
    /// # Panics
    ///
    /// Panics if a different transition on `symbol` already exists.
    pub fn add_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) {
        let row = &mut self.transitions[from.index()];
        match row.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => assert_eq!(row[i].1, to, "conflicting transition on {symbol:?}"),
            Err(i) => row.insert(i, (symbol, to)),
        }
    }

    /// Finalizes the DFA with the given start state.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of bounds.
    pub fn finish(self, start: StateId) -> Dfa {
        assert!(start.index() < self.outputs.len(), "start state out of bounds");
        Dfa {
            start,
            transitions: self.transitions,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `chain(outs)` builds q0 -0-> q1 -0-> ... with given output sets.
    fn chain(outs: &[&[u32]]) -> Dfa {
        let mut b = DfaPartsBuilder::default();
        let states: Vec<StateId> = outs
            .iter()
            .map(|o| b.add_state(o.iter().map(|&x| Output(x)).collect()))
            .collect();
        for w in states.windows(2) {
            b.add_transition(w[0], Symbol(0), w[1]);
        }
        b.finish(states[0])
    }

    #[test]
    fn identical_chains_equivalent() {
        let a = chain(&[&[0], &[1], &[2]]);
        let b = chain(&[&[0], &[1], &[2]]);
        assert!(a.equivalent(&b));
    }

    #[test]
    fn different_outputs_not_equivalent() {
        let a = chain(&[&[0], &[1]]);
        let b = chain(&[&[0], &[2]]);
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn different_lengths_not_equivalent() {
        // Same outputs, but `a` rejects after one step where `b` continues.
        let a = chain(&[&[0], &[1]]);
        let b = chain(&[&[0], &[1], &[1]]);
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn loop_vs_unrolled_loop_equivalent() {
        // q0 -0-> q0 (self loop) versus q0 -0-> q1 -0-> q0, same outputs.
        let mut b1 = DfaPartsBuilder::default();
        let p0 = b1.add_state(vec![Output(5)]);
        b1.add_transition(p0, Symbol(0), p0);
        let a = b1.finish(p0);

        let mut b2 = DfaPartsBuilder::default();
        let q0 = b2.add_state(vec![Output(5)]);
        let q1 = b2.add_state(vec![Output(5)]);
        b2.add_transition(q0, Symbol(0), q1);
        b2.add_transition(q1, Symbol(0), q0);
        let b = b2.finish(q0);

        assert!(a.equivalent(&b));
        assert_eq!(b.minimize().state_count(), 1);
    }

    #[test]
    fn output_sets_must_match_exactly() {
        let a = chain(&[&[0], &[1, 2]]);
        let b = chain(&[&[0], &[1]]);
        assert!(!a.equivalent(&b));
        let c = chain(&[&[0], &[1, 2]]);
        assert!(a.equivalent(&c));
    }

    #[test]
    fn single_output_check() {
        assert!(chain(&[&[0], &[1]]).is_single_output());
        assert!(!chain(&[&[0], &[1, 2]]).is_single_output());
    }

    #[test]
    fn equivalence_is_reflexive_on_cycles() {
        let mut b = DfaPartsBuilder::default();
        let q0 = b.add_state(vec![Output(0)]);
        let q1 = b.add_state(vec![Output(1)]);
        b.add_transition(q0, Symbol(0), q1);
        b.add_transition(q1, Symbol(1), q0);
        let dfa = b.finish(q0);
        assert!(dfa.equivalent(&dfa.clone()));
    }

    #[test]
    fn minimize_preserves_behavior() {
        let a = chain(&[&[0], &[1], &[1], &[2]]);
        let m = a.minimize();
        for len in 0..6 {
            let word: Vec<Symbol> = vec![Symbol(0); len];
            assert_eq!(a.behavior(&word), m.behavior(&word), "len {len}");
        }
        assert!(a.equivalent(&m));
    }

    #[test]
    #[should_panic(expected = "conflicting transition")]
    fn conflicting_transition_panics() {
        let mut b = DfaPartsBuilder::default();
        let q0 = b.add_state(vec![Output(0)]);
        let q1 = b.add_state(vec![Output(1)]);
        b.add_transition(q0, Symbol(0), q0);
        b.add_transition(q0, Symbol(0), q1);
    }
}
