//! # automata — six-tuple sequential automata
//!
//! The automata substrate of the Mahjong reproduction (Tan, Li, Xue,
//! PLDI 2017). The paper models each heap object's field points-to graph
//! as a *sequential automaton* `(Q, Σ, δ, q0, Γ, γ)` — an automaton
//! whose every state carries an output symbol (a Moore machine) — and
//! reduces type-consistency checking of two objects to behavioural
//! equivalence of two such automata (paper Section 2.2.2, Figure 4).
//!
//! This crate provides, independent of points-to analysis:
//!
//! - [`Nfa`]: nondeterministic sequential automata with per-state
//!   outputs and a builder;
//! - [`Nfa::to_dfa`]: subset construction (paper Algorithm 3);
//! - [`Dfa::equivalent`]: near-linear Hopcroft–Karp equivalence adapted
//!   to output maps (paper Algorithm 4), with the implicit `q_error`
//!   sink for missing transitions;
//! - [`Dfa::minimize`]: Moore partition-refinement minimization, used as
//!   an independent test oracle;
//! - [`Dfa::canonical_form`] / [`Dfa::signature`]: the canonical
//!   renumbering of the minimal DFA and its 128-bit fingerprint
//!   ([`DfaSignature`]) — equivalence testing by signature equality,
//!   the fast path of the Mahjong merge phase;
//! - [`Behavior`]: the β function — the output set an automaton
//!   produces on one input word.
//!
//! # Examples
//!
//! Two objects whose nested contents always have the same types yield
//! equivalent automata (the paper's Figure 2):
//!
//! ```
//! use automata::{NfaBuilder, Output, Symbol};
//!
//! // o1: T -f-> U -h-> Y (two parallel Y leaves merged by determinization)
//! let mut b = NfaBuilder::new();
//! let t = b.add_state(Output(0));
//! let u = b.add_state(Output(1));
//! let y1 = b.add_state(Output(2));
//! let y2 = b.add_state(Output(2));
//! b.add_transition(t, Symbol(0), u);
//! b.add_transition(u, Symbol(1), y1);
//! b.add_transition(u, Symbol(1), y2);
//! let a1 = b.finish(t).to_dfa();
//!
//! // o2: T -f-> U -h-> Y (single leaf)
//! let mut b = NfaBuilder::new();
//! let t = b.add_state(Output(0));
//! let u = b.add_state(Output(1));
//! let y = b.add_state(Output(2));
//! b.add_transition(t, Symbol(0), u);
//! b.add_transition(u, Symbol(1), y);
//! let a2 = b.finish(t).to_dfa();
//!
//! assert!(a1.equivalent(&a2));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod canon;
mod dfa;
mod nfa;
mod types;

pub use canon::DfaSignature;
pub use dfa::{Dfa, DfaPartsBuilder};
pub use nfa::{Nfa, NfaBuilder};
pub use types::{Behavior, Output, StateId, Symbol};
