//! Core value types shared by the NFA and DFA representations.

/// An input symbol (in the Mahjong pipeline: an interned field name).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl std::fmt::Debug for Symbol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An output symbol (in the Mahjong pipeline: an interned type).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Output(pub u32);

impl std::fmt::Debug for Output {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "out#{}", self.0)
    }
}

/// A state index within one automaton.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u32);

impl StateId {
    /// Returns the state index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for StateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The behaviour value of a sequential automaton on one input word:
/// the set of outputs of the states reached (paper Section 2.2.2, the
/// function β).
///
/// `Reject` is produced when the word leaves the automaton (no
/// transition); it corresponds to reaching the implicit error sink
/// `q_error` of Algorithm 4.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Behavior {
    /// The word left the automaton; γ(q_error).
    Reject,
    /// The sorted, deduplicated set of outputs of all reached states.
    Outputs(Vec<Output>),
}

impl Behavior {
    /// Builds a behaviour from an unsorted list of outputs.
    ///
    /// An empty list means no state was reached, i.e. [`Behavior::Reject`].
    pub fn from_outputs(mut outputs: Vec<Output>) -> Self {
        if outputs.is_empty() {
            return Behavior::Reject;
        }
        outputs.sort_unstable();
        outputs.dedup();
        Behavior::Outputs(outputs)
    }

    /// Returns `true` if exactly one output is produced (the paper's
    /// Condition 2 on one word).
    pub fn is_single(&self) -> bool {
        matches!(self, Behavior::Outputs(v) if v.len() == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_dedups_and_sorts() {
        let b = Behavior::from_outputs(vec![Output(3), Output(1), Output(3)]);
        assert_eq!(b, Behavior::Outputs(vec![Output(1), Output(3)]));
        assert!(!b.is_single());
    }

    #[test]
    fn empty_outputs_reject() {
        assert_eq!(Behavior::from_outputs(vec![]), Behavior::Reject);
        assert!(!Behavior::Reject.is_single());
    }

    #[test]
    fn single_output_is_single() {
        assert!(Behavior::from_outputs(vec![Output(5)]).is_single());
    }
}
