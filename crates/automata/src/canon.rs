//! Canonical forms and 128-bit signatures for deterministic sequential
//! automata.
//!
//! The minimal DFA for a behaviour is unique up to state renaming
//! (Myhill–Nerode, extended to output maps: states are distinguishable
//! iff some word separates their output sets or their rejection
//! behaviour). A *canonical renumbering* of the minimal automaton is
//! therefore a **complete invariant** for behavioural equivalence:
//!
//! > `a.equivalent(b)`  ⇔  `a.canonical_form() == b.canonical_form()`
//!
//! The renumbering is a BFS from the start state that explores each
//! state's transitions in ascending symbol order. Because the automaton
//! is deterministic and every minimal-DFA state is reachable, the visit
//! order — and hence the numbering — depends only on the automaton's
//! shape, never on the arbitrary state ids it was built with.
//!
//! [`Dfa::signature`] hashes the canonical form into a 128-bit
//! fingerprint ([`DfaSignature`]) with a two-lane mixer
//! ([`fxhash::Fingerprint128`]), so equivalence testing degenerates to
//! integer comparison and *grouping* degenerates to hash bucketing —
//! this replaces the per-pair Hopcroft–Karp runs in the Mahjong merge
//! phase (the callers keep Hopcroft–Karp as a debug-time collision
//! check and a `--paranoid` verification mode; see
//! `mahjong::merge`).

use fxhash::Fingerprint128;

use crate::dfa::{Dfa, DfaPartsBuilder};
use crate::types::StateId;

/// A 128-bit fingerprint of a DFA's canonical form.
///
/// Equal signatures mean behavioural equivalence up to hash collision;
/// with 128 well-mixed bits, a workload would need ~2⁶⁴ distinct
/// automata before a collision is likely (birthday bound), far beyond
/// any heap's object count. Collisions are nonetheless *detectable*:
/// callers grouping by signature re-check with
/// [`Dfa::equivalent`] under `debug_assertions` or in paranoid mode.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DfaSignature(pub u128);

impl std::fmt::Debug for DfaSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sig#{:032x}", self.0)
    }
}

/// The BFS numbering of the reachable states of `dfa`: returns
/// `(order, renumber)` where `order[new] = old` and
/// `renumber[old.index()] = new` (`u32::MAX` for unreachable states,
/// which cannot occur for minimized automata).
fn bfs_numbering(dfa: &Dfa) -> (Vec<StateId>, Vec<u32>) {
    let n = dfa.state_count();
    let mut renumber = vec![u32::MAX; n];
    let mut order = Vec::with_capacity(n);
    renumber[dfa.start().index()] = 0;
    order.push(dfa.start());
    let mut head = 0;
    while head < order.len() {
        let q = order[head];
        head += 1;
        // Transition rows are stored sorted by symbol, so the BFS
        // explores successors in ascending-symbol order — structural,
        // not id-dependent.
        for (_, to) in dfa.transitions_of(q) {
            if renumber[to.index()] == u32::MAX {
                renumber[to.index()] = order.len() as u32;
                order.push(to);
            }
        }
    }
    (order, renumber)
}

impl Dfa {
    /// Returns the canonical form: the minimal DFA with states
    /// renumbered in BFS order from the start state (transitions
    /// explored in ascending symbol order).
    ///
    /// Two DFAs are [`equivalent`](Dfa::equivalent) **iff** their
    /// canonical forms are structurally equal (`==`). Prefer
    /// [`Dfa::signature`] when only an equivalence key is needed.
    pub fn canonical_form(&self) -> Dfa {
        let m = self.minimize();
        let (order, renumber) = bfs_numbering(&m);
        let mut b = DfaPartsBuilder::default();
        for &old in &order {
            b.add_state(m.output_set(old).to_vec());
        }
        for (new, &old) in order.iter().enumerate() {
            for (sym, to) in m.transitions_of(old) {
                b.add_transition(
                    StateId(new as u32),
                    sym,
                    StateId(renumber[to.index()]),
                );
            }
        }
        b.finish(StateId(0))
    }

    /// Returns the 128-bit signature of the canonical form.
    ///
    /// Equal behaviour ⇒ equal signature (exactly); equal signature ⇒
    /// equal behaviour up to a 128-bit hash collision. The encoding is
    /// injective on canonical forms: every state contributes its
    /// length-prefixed output set and length-prefixed transition row
    /// (in ascending symbol order, targets renumbered), so distinct
    /// canonical automata produce distinct input streams to the hash.
    pub fn signature(&self) -> DfaSignature {
        let m = self.minimize();
        let (order, renumber) = bfs_numbering(&m);
        let mut fp = Fingerprint128::new();
        fp.write_u64(order.len() as u64);
        for &old in &order {
            let outs = m.output_set(old);
            fp.write_u64(outs.len() as u64);
            for &o in outs {
                fp.write_u32(o.0);
            }
            let row_len = m.transitions_of(old).count();
            fp.write_u64(row_len as u64);
            for (sym, to) in m.transitions_of(old) {
                fp.write_u32(sym.0);
                fp.write_u32(renumber[to.index()]);
            }
        }
        DfaSignature(fp.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Output, Symbol};
    use crate::NfaBuilder;

    fn chain(outs: &[&[u32]]) -> Dfa {
        let mut b = DfaPartsBuilder::default();
        let states: Vec<StateId> = outs
            .iter()
            .map(|o| b.add_state(o.iter().map(|&x| Output(x)).collect()))
            .collect();
        for w in states.windows(2) {
            b.add_transition(w[0], Symbol(0), w[1]);
        }
        b.finish(states[0])
    }

    #[test]
    fn equivalent_dfas_share_signature() {
        // A self loop and its two-state unrolling.
        let mut b1 = DfaPartsBuilder::default();
        let p0 = b1.add_state(vec![Output(5)]);
        b1.add_transition(p0, Symbol(0), p0);
        let a = b1.finish(p0);

        let mut b2 = DfaPartsBuilder::default();
        let q0 = b2.add_state(vec![Output(5)]);
        let q1 = b2.add_state(vec![Output(5)]);
        b2.add_transition(q0, Symbol(0), q1);
        b2.add_transition(q1, Symbol(0), q0);
        let b = b2.finish(q0);

        assert!(a.equivalent(&b));
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.canonical_form(), b.canonical_form());
    }

    #[test]
    fn inequivalent_dfas_differ() {
        let a = chain(&[&[0], &[1]]);
        let b = chain(&[&[0], &[2]]);
        let c = chain(&[&[0], &[1], &[1]]);
        assert_ne!(a.signature(), b.signature());
        assert_ne!(a.signature(), c.signature(), "length must matter");
        assert_ne!(a.canonical_form(), b.canonical_form());
    }

    #[test]
    fn state_id_permutation_is_invisible() {
        // The same automaton built with two different insertion orders.
        let mut b1 = DfaPartsBuilder::default();
        let x0 = b1.add_state(vec![Output(0)]);
        let x1 = b1.add_state(vec![Output(1)]);
        let x2 = b1.add_state(vec![Output(2)]);
        b1.add_transition(x0, Symbol(3), x1);
        b1.add_transition(x0, Symbol(7), x2);
        let a = b1.finish(x0);

        let mut b2 = DfaPartsBuilder::default();
        let y2 = b2.add_state(vec![Output(2)]);
        let y1 = b2.add_state(vec![Output(1)]);
        let y0 = b2.add_state(vec![Output(0)]);
        b2.add_transition(y0, Symbol(7), y2);
        b2.add_transition(y0, Symbol(3), y1);
        let b = b2.finish(y0);

        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.canonical_form(), b.canonical_form());
    }

    #[test]
    fn output_sets_feed_the_signature() {
        let a = chain(&[&[0], &[1, 2]]);
        let b = chain(&[&[0], &[1]]);
        assert_ne!(a.signature(), b.signature());
        let c = chain(&[&[0], &[1, 2]]);
        assert_eq!(a.signature(), c.signature());
    }

    #[test]
    fn canonical_form_is_idempotent_and_minimal() {
        let a = chain(&[&[0], &[1], &[1], &[2]]);
        let c = a.canonical_form();
        assert!(a.equivalent(&c));
        assert_eq!(c.canonical_form(), c, "canonical form is a fixpoint");
        assert_eq!(c.state_count(), a.minimize().state_count());
        assert_eq!(c.start(), StateId(0), "BFS numbering starts at 0");
    }

    #[test]
    fn determinized_nfas_canonicalize_consistently() {
        // Two nondeterministic presentations of the same behaviour.
        let mut b = NfaBuilder::new();
        let t = b.add_state(Output(0));
        let u = b.add_state(Output(1));
        let y1 = b.add_state(Output(2));
        let y2 = b.add_state(Output(2));
        b.add_transition(t, Symbol(0), u);
        b.add_transition(u, Symbol(1), y1);
        b.add_transition(u, Symbol(1), y2);
        let a1 = b.finish(t).to_dfa();

        let mut b = NfaBuilder::new();
        let t = b.add_state(Output(0));
        let u = b.add_state(Output(1));
        let y = b.add_state(Output(2));
        b.add_transition(t, Symbol(0), u);
        b.add_transition(u, Symbol(1), y);
        let a2 = b.finish(t).to_dfa();

        assert_eq!(a1.signature(), a2.signature());
    }
}
