//! Nondeterministic 6-tuple sequential automata.

use std::collections::BTreeSet;

use fxhash::FxHashMap;

use crate::types::{Behavior, Output, StateId, Symbol};

/// A nondeterministic sequential automaton `(Q, Σ, δ, q0, Γ, γ)`.
///
/// Every state carries an output (the map γ); the behaviour of the
/// automaton on a word is the set of outputs of all states reached
/// (paper, Section 2.2.2). There are no ε-transitions — the Mahjong
/// pipeline never produces them (Section 4.3).
///
/// # Examples
///
/// ```
/// use automata::{NfaBuilder, Output, Symbol, Behavior};
///
/// let mut b = NfaBuilder::new();
/// let q0 = b.add_state(Output(0));
/// let q1 = b.add_state(Output(1));
/// let q2 = b.add_state(Output(1));
/// b.add_transition(q0, Symbol(7), q1);
/// b.add_transition(q0, Symbol(7), q2);
/// let nfa = b.finish(q0);
/// assert_eq!(nfa.behavior(&[Symbol(7)]), Behavior::Outputs(vec![Output(1)]));
/// assert_eq!(nfa.behavior(&[Symbol(9)]), Behavior::Reject);
/// ```
#[derive(Clone, Debug)]
pub struct Nfa {
    start: StateId,
    /// Per state, transitions sorted by symbol; successor lists are sorted
    /// and deduplicated.
    transitions: Vec<Vec<(Symbol, Vec<StateId>)>>,
    outputs: Vec<Output>,
}

impl Nfa {
    /// Returns the initial state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Returns the number of states.
    pub fn state_count(&self) -> usize {
        self.outputs.len()
    }

    /// Returns the output γ(q) of a state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn output(&self, q: StateId) -> Output {
        self.outputs[q.index()]
    }

    /// Returns the successors of `q` on `symbol` (empty if none).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn successors(&self, q: StateId, symbol: Symbol) -> &[StateId] {
        match self.transitions[q.index()].binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => &self.transitions[q.index()][i].1,
            Err(_) => &[],
        }
    }

    /// Returns the symbols with at least one outgoing transition from `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn symbols_of(&self, q: StateId) -> impl Iterator<Item = Symbol> + '_ {
        self.transitions[q.index()].iter().map(|&(s, _)| s)
    }

    /// Returns the automaton's alphabet Σ (all symbols on any edge).
    pub fn alphabet(&self) -> Vec<Symbol> {
        let mut set = BTreeSet::new();
        for row in &self.transitions {
            for &(s, _) in row {
                set.insert(s);
            }
        }
        set.into_iter().collect()
    }

    /// Computes the behaviour β(word): the outputs of all states reached
    /// from the start state after reading `word`.
    pub fn behavior(&self, word: &[Symbol]) -> Behavior {
        let mut current = vec![self.start];
        for &sym in word {
            let mut next = BTreeSet::new();
            for &q in &current {
                next.extend(self.successors(q, sym).iter().copied());
            }
            current = next.into_iter().collect();
            if current.is_empty() {
                return Behavior::Reject;
            }
        }
        Behavior::from_outputs(current.iter().map(|&q| self.output(q)).collect())
    }

    /// Converts to an equivalent DFA by subset construction
    /// (paper Algorithm 3).
    ///
    /// Each DFA state is a set of NFA states; its output set is the set
    /// of their outputs. Like the paper's specialization, the successor
    /// symbols of a DFA state are the union of the member states' symbols
    /// (the paper iterates one member's fields, which is valid only under
    /// SINGLETYPE-CHECK; using the union is always correct and costs the
    /// same for single-type states).
    pub fn to_dfa(&self) -> crate::dfa::Dfa {
        let mut builder = crate::dfa::DfaPartsBuilder::default();
        let mut index_of: FxHashMap<Vec<StateId>, StateId> = FxHashMap::default();
        let start_set = vec![self.start];
        let start = builder.add_state(self.output_set(&start_set));
        index_of.insert(start_set.clone(), start);
        let mut worklist = vec![(start, start_set)];

        while let Some((dq, set)) = worklist.pop() {
            // Union of outgoing symbols over all members.
            let mut symbols = BTreeSet::new();
            for &q in &set {
                symbols.extend(self.symbols_of(q));
            }
            for sym in symbols {
                let mut next = BTreeSet::new();
                for &q in &set {
                    next.extend(self.successors(q, sym).iter().copied());
                }
                let next: Vec<StateId> = next.into_iter().collect();
                let target = match index_of.get(&next) {
                    Some(&t) => t,
                    None => {
                        let t = builder.add_state(self.output_set(&next));
                        index_of.insert(next.clone(), t);
                        worklist.push((t, next));
                        t
                    }
                };
                builder.add_transition(dq, sym, target);
            }
        }
        builder.finish(start)
    }

    fn output_set(&self, states: &[StateId]) -> Vec<Output> {
        let mut outs: Vec<Output> = states.iter().map(|&q| self.output(q)).collect();
        outs.sort_unstable();
        outs.dedup();
        outs
    }
}

/// Incrementally builds an [`Nfa`].
#[derive(Clone, Debug, Default)]
pub struct NfaBuilder {
    transitions: Vec<Vec<(Symbol, Vec<StateId>)>>,
    outputs: Vec<Output>,
}

impl NfaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state with the given output and returns its id.
    pub fn add_state(&mut self, output: Output) -> StateId {
        let id = StateId(u32::try_from(self.outputs.len()).expect("too many states"));
        self.outputs.push(output);
        self.transitions.push(Vec::new());
        id
    }

    /// Adds a transition `from --symbol--> to`. Duplicate transitions are
    /// merged.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of bounds.
    pub fn add_transition(&mut self, from: StateId, symbol: Symbol, to: StateId) {
        assert!(to.index() < self.outputs.len(), "target state out of bounds");
        let row = &mut self.transitions[from.index()];
        match row.binary_search_by_key(&symbol, |&(s, _)| s) {
            Ok(i) => {
                let succs = &mut row[i].1;
                if let Err(pos) = succs.binary_search(&to) {
                    succs.insert(pos, to);
                }
            }
            Err(i) => row.insert(i, (symbol, vec![to])),
        }
    }

    /// Finalizes the automaton with the given start state.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of bounds.
    pub fn finish(self, start: StateId) -> Nfa {
        assert!(start.index() < self.outputs.len(), "start state out of bounds");
        Nfa {
            start,
            transitions: self.transitions,
            outputs: self.outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Nfa {
        // q0 -a-> {q1, q2}; q1 -b-> q3; q2 -b-> q3
        let mut b = NfaBuilder::new();
        let q0 = b.add_state(Output(0));
        let q1 = b.add_state(Output(1));
        let q2 = b.add_state(Output(2));
        let q3 = b.add_state(Output(3));
        b.add_transition(q0, Symbol(0), q1);
        b.add_transition(q0, Symbol(0), q2);
        b.add_transition(q1, Symbol(1), q3);
        b.add_transition(q2, Symbol(1), q3);
        b.finish(q0)
    }

    #[test]
    fn behavior_on_empty_word_is_start_output() {
        let nfa = diamond();
        assert_eq!(nfa.behavior(&[]), Behavior::Outputs(vec![Output(0)]));
    }

    #[test]
    fn behavior_unions_outputs() {
        let nfa = diamond();
        assert_eq!(
            nfa.behavior(&[Symbol(0)]),
            Behavior::Outputs(vec![Output(1), Output(2)])
        );
        assert_eq!(
            nfa.behavior(&[Symbol(0), Symbol(1)]),
            Behavior::Outputs(vec![Output(3)])
        );
    }

    #[test]
    fn behavior_rejects_unknown_symbol() {
        let nfa = diamond();
        assert_eq!(nfa.behavior(&[Symbol(9)]), Behavior::Reject);
        assert_eq!(nfa.behavior(&[Symbol(0), Symbol(9)]), Behavior::Reject);
    }

    #[test]
    fn duplicate_transitions_merge() {
        let mut b = NfaBuilder::new();
        let q0 = b.add_state(Output(0));
        let q1 = b.add_state(Output(1));
        b.add_transition(q0, Symbol(0), q1);
        b.add_transition(q0, Symbol(0), q1);
        let nfa = b.finish(q0);
        assert_eq!(nfa.successors(q0, Symbol(0)), &[q1]);
    }

    #[test]
    fn alphabet_collects_all_symbols() {
        let nfa = diamond();
        assert_eq!(nfa.alphabet(), vec![Symbol(0), Symbol(1)]);
    }

    #[test]
    fn dfa_conversion_merges_nondeterminism() {
        let nfa = diamond();
        let dfa = nfa.to_dfa();
        // {q0} -a-> {q1,q2} -b-> {q3}: three states.
        assert_eq!(dfa.state_count(), 3);
        assert_eq!(
            dfa.behavior(&[Symbol(0)]),
            Behavior::Outputs(vec![Output(1), Output(2)])
        );
        assert_eq!(dfa.behavior(&[Symbol(9)]), Behavior::Reject);
    }

    #[test]
    fn cyclic_nfa_to_dfa_terminates() {
        let mut b = NfaBuilder::new();
        let q0 = b.add_state(Output(0));
        let q1 = b.add_state(Output(1));
        b.add_transition(q0, Symbol(0), q1);
        b.add_transition(q1, Symbol(0), q0);
        b.add_transition(q1, Symbol(0), q1); // nondeterministic self loop
        let nfa = b.finish(q0);
        let dfa = nfa.to_dfa();
        assert!(dfa.state_count() <= 4);
        assert_eq!(
            nfa.behavior(&[Symbol(0), Symbol(0), Symbol(0)]),
            dfa.behavior(&[Symbol(0), Symbol(0), Symbol(0)])
        );
    }
}
