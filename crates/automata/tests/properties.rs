//! Property-based tests for the automata substrate: subset construction
//! preserves behaviour, equivalence is behavioural, and minimization is
//! both behaviour-preserving and minimal.

use automata::{Behavior, Dfa, Nfa, NfaBuilder, Output, Symbol};
use proptest::prelude::*;

/// A random NFA with `n` states, `t` outputs, `s` symbols, and up to
/// `e` transitions.
fn arb_nfa(n: usize, t: u32, s: u32, e: usize) -> impl Strategy<Value = Nfa> {
    let outputs = prop::collection::vec(0..t, n);
    let transitions = prop::collection::vec((0..n, 0..s, 0..n), 0..e);
    (outputs, transitions).prop_map(|(outputs, transitions)| {
        let mut b = NfaBuilder::new();
        let states: Vec<_> = outputs.into_iter().map(|o| b.add_state(Output(o))).collect();
        for (from, sym, to) in transitions {
            b.add_transition(states[from], Symbol(sym), states[to]);
        }
        b.finish(states[0])
    })
}

/// A random word over `s` symbols.
fn arb_word(s: u32, max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec((0..s).prop_map(Symbol), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// β_NFA(w) = β_DFA(w) for every word (the correctness statement of
    /// Algorithm 3's subset construction).
    #[test]
    fn subset_construction_preserves_behavior(
        nfa in arb_nfa(6, 3, 3, 18),
        words in prop::collection::vec(arb_word(3, 8), 1..16),
    ) {
        let dfa = nfa.to_dfa();
        for w in words {
            prop_assert_eq!(nfa.behavior(&w), dfa.behavior(&w), "word {:?}", w);
        }
    }

    /// If two DFAs are reported equivalent, no word distinguishes them;
    /// if reported inequivalent, some short word must (bounded search —
    /// on automata this small a distinguishing word of length ≤ |Q1|+|Q2|
    /// exists by the Hopcroft–Karp invariant).
    #[test]
    fn equivalence_is_behavioral(
        a in arb_nfa(5, 2, 2, 12),
        b in arb_nfa(5, 2, 2, 12),
    ) {
        let da = a.to_dfa();
        let db = b.to_dfa();
        let eq = da.equivalent(&db);
        let found_diff = exhaustive_difference(&da, &db, da.state_count() + db.state_count() + 1);
        prop_assert_eq!(eq, found_diff.is_none(),
            "equivalent={} but distinguishing word = {:?}", eq, found_diff);
    }

    /// Minimization preserves behaviour and never grows the automaton.
    #[test]
    fn minimize_preserves_behavior_and_shrinks(
        nfa in arb_nfa(6, 3, 2, 18),
        words in prop::collection::vec(arb_word(2, 10), 1..16),
    ) {
        let dfa = nfa.to_dfa();
        let min = dfa.minimize();
        prop_assert!(min.state_count() <= dfa.state_count());
        for w in words {
            prop_assert_eq!(dfa.behavior(&w), min.behavior(&w), "word {:?}", w);
        }
        prop_assert!(dfa.equivalent(&min));
    }

    /// Minimizing twice is a fixed point in size.
    #[test]
    fn minimize_is_idempotent_in_size(nfa in arb_nfa(6, 2, 2, 15)) {
        let m1 = nfa.to_dfa().minimize();
        let m2 = m1.minimize();
        prop_assert_eq!(m1.state_count(), m2.state_count());
    }

    /// Equivalence is reflexive and symmetric on random automata.
    #[test]
    fn equivalence_is_reflexive_and_symmetric(
        a in arb_nfa(5, 3, 2, 14),
        b in arb_nfa(5, 3, 2, 14),
    ) {
        let da = a.to_dfa();
        let db = b.to_dfa();
        prop_assert!(da.equivalent(&da));
        prop_assert_eq!(da.equivalent(&db), db.equivalent(&da));
    }
}

/// Breadth-first search for a word on which the two DFAs differ, up to
/// the given length. Returns the word if found.
fn exhaustive_difference(a: &Dfa, b: &Dfa, max_len: usize) -> Option<Vec<Symbol>> {
    let mut alphabet = a.alphabet();
    alphabet.extend(b.alphabet());
    alphabet.sort_unstable();
    alphabet.dedup();

    // BFS over pairs of (state-or-error), tracking the word.
    use std::collections::{HashSet, VecDeque};
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum S {
        In(automata::StateId),
        Error,
    }
    let out_a = |s: S| match s {
        S::In(q) => Behavior::Outputs(a.output_set(q).to_vec()),
        S::Error => Behavior::Reject,
    };
    let out_b = |s: S| match s {
        S::In(q) => Behavior::Outputs(b.output_set(q).to_vec()),
        S::Error => Behavior::Reject,
    };
    let step_a = |s: S, sym: Symbol| match s {
        S::In(q) => a.successor(q, sym).map_or(S::Error, S::In),
        S::Error => S::Error,
    };
    let step_b = |s: S, sym: Symbol| match s {
        S::In(q) => b.successor(q, sym).map_or(S::Error, S::In),
        S::Error => S::Error,
    };

    let start = (S::In(a.start()), S::In(b.start()));
    let mut seen: HashSet<(S, S)> = HashSet::new();
    seen.insert(start);
    let mut queue: VecDeque<((S, S), Vec<Symbol>)> = VecDeque::new();
    queue.push_back((start, Vec::new()));
    while let Some(((sa, sb), word)) = queue.pop_front() {
        if out_a(sa) != out_b(sb) {
            return Some(word);
        }
        if word.len() >= max_len {
            continue;
        }
        for &sym in &alphabet {
            let next = (step_a(sa, sym), step_b(sb, sym));
            if seen.insert(next) {
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((next, w));
            }
        }
    }
    None
}
