//! Randomized property tests for the automata substrate: subset
//! construction preserves behaviour, equivalence is behavioural, and
//! minimization is both behaviour-preserving and minimal. Driven by the
//! in-tree deterministic PRNG (the build environment has no crates.io
//! access, so no proptest).

use automata::{Behavior, Dfa, Nfa, NfaBuilder, Output, Symbol};
use obs::rng::SplitMix64;

/// A random NFA with `n` states, `t` outputs, `s` symbols, and up to
/// `e` transitions.
fn random_nfa(rng: &mut SplitMix64, n: usize, t: u32, s: u32, e: usize) -> Nfa {
    let mut b = NfaBuilder::new();
    let states: Vec<_> = (0..n)
        .map(|_| b.add_state(Output(rng.below(t as u64) as u32)))
        .collect();
    for _ in 0..rng.below_usize(e) {
        let from = states[rng.below_usize(n)];
        let sym = Symbol(rng.below(s as u64) as u32);
        let to = states[rng.below_usize(n)];
        b.add_transition(from, sym, to);
    }
    b.finish(states[0])
}

/// A random word over `s` symbols, of length below `max_len`.
fn random_word(rng: &mut SplitMix64, s: u32, max_len: usize) -> Vec<Symbol> {
    (0..rng.below_usize(max_len))
        .map(|_| Symbol(rng.below(s as u64) as u32))
        .collect()
}

/// β_NFA(w) = β_DFA(w) for every word (the correctness statement of
/// Algorithm 3's subset construction).
#[test]
fn subset_construction_preserves_behavior() {
    let mut rng = SplitMix64::new(0xa07a_0001);
    for _ in 0..256 {
        let nfa = random_nfa(&mut rng, 6, 3, 3, 18);
        let dfa = nfa.to_dfa();
        for _ in 0..15 {
            let w = random_word(&mut rng, 3, 8);
            assert_eq!(nfa.behavior(&w), dfa.behavior(&w), "word {w:?}");
        }
    }
}

/// If two DFAs are reported equivalent, no word distinguishes them; if
/// reported inequivalent, some short word must (bounded search — on
/// automata this small a distinguishing word of length ≤ |Q1|+|Q2|
/// exists by the Hopcroft–Karp invariant).
#[test]
fn equivalence_is_behavioral() {
    let mut rng = SplitMix64::new(0xa07a_0002);
    for _ in 0..256 {
        let da = random_nfa(&mut rng, 5, 2, 2, 12).to_dfa();
        let db = random_nfa(&mut rng, 5, 2, 2, 12).to_dfa();
        let eq = da.equivalent(&db);
        let found_diff =
            exhaustive_difference(&da, &db, da.state_count() + db.state_count() + 1);
        assert_eq!(
            eq,
            found_diff.is_none(),
            "equivalent={eq} but distinguishing word = {found_diff:?}"
        );
    }
}

/// Minimization preserves behaviour and never grows the automaton.
#[test]
fn minimize_preserves_behavior_and_shrinks() {
    let mut rng = SplitMix64::new(0xa07a_0003);
    for _ in 0..256 {
        let dfa = random_nfa(&mut rng, 6, 3, 2, 18).to_dfa();
        let min = dfa.minimize();
        assert!(min.state_count() <= dfa.state_count());
        for _ in 0..15 {
            let w = random_word(&mut rng, 2, 10);
            assert_eq!(dfa.behavior(&w), min.behavior(&w), "word {w:?}");
        }
        assert!(dfa.equivalent(&min));
    }
}

/// Minimizing twice is a fixed point in size.
#[test]
fn minimize_is_idempotent_in_size() {
    let mut rng = SplitMix64::new(0xa07a_0004);
    for _ in 0..256 {
        let m1 = random_nfa(&mut rng, 6, 2, 2, 15).to_dfa().minimize();
        let m2 = m1.minimize();
        assert_eq!(m1.state_count(), m2.state_count());
    }
}

/// Equivalence is reflexive and symmetric on random automata.
#[test]
fn equivalence_is_reflexive_and_symmetric() {
    let mut rng = SplitMix64::new(0xa07a_0005);
    for _ in 0..256 {
        let da = random_nfa(&mut rng, 5, 3, 2, 14).to_dfa();
        let db = random_nfa(&mut rng, 5, 3, 2, 14).to_dfa();
        assert!(da.equivalent(&da));
        assert_eq!(da.equivalent(&db), db.equivalent(&da));
    }
}

/// Breadth-first search for a word on which the two DFAs differ, up to
/// the given length. Returns the word if found.
fn exhaustive_difference(a: &Dfa, b: &Dfa, max_len: usize) -> Option<Vec<Symbol>> {
    let mut alphabet = a.alphabet();
    alphabet.extend(b.alphabet());
    alphabet.sort_unstable();
    alphabet.dedup();

    // BFS over pairs of (state-or-error), tracking the word.
    use std::collections::{HashSet, VecDeque};
    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    enum S {
        In(automata::StateId),
        Error,
    }
    let out_a = |s: S| match s {
        S::In(q) => Behavior::Outputs(a.output_set(q).to_vec()),
        S::Error => Behavior::Reject,
    };
    let out_b = |s: S| match s {
        S::In(q) => Behavior::Outputs(b.output_set(q).to_vec()),
        S::Error => Behavior::Reject,
    };
    let step_a = |s: S, sym: Symbol| match s {
        S::In(q) => a.successor(q, sym).map_or(S::Error, S::In),
        S::Error => S::Error,
    };
    let step_b = |s: S, sym: Symbol| match s {
        S::In(q) => b.successor(q, sym).map_or(S::Error, S::In),
        S::Error => S::Error,
    };

    let start = (S::In(a.start()), S::In(b.start()));
    let mut seen: HashSet<(S, S)> = HashSet::new();
    seen.insert(start);
    let mut queue: VecDeque<((S, S), Vec<Symbol>)> = VecDeque::new();
    queue.push_back((start, Vec::new()));
    while let Some(((sa, sb), word)) = queue.pop_front() {
        if out_a(sa) != out_b(sb) {
            return Some(word);
        }
        if word.len() >= max_len {
            continue;
        }
        for &sym in &alphabet {
            let next = (step_a(sa, sym), step_b(sb, sym));
            if seen.insert(next) {
                let mut w = word.clone();
                w.push(sym);
                queue.push_back((next, w));
            }
        }
    }
    None
}
