//! Semantic tests for the points-to engine: field sensitivity, dispatch,
//! cast filtering, and context sensitivity.

use pta::{
    AllocSiteAbstraction, AllocTypeAbstraction, AnalysisConfig, CallSiteSensitive,
    ContextInsensitive, ObjectSensitive, TypeSensitive,
};

/// The single element of a one-object points-to set.
fn only(pts: &pta::PtsSet<pta::ObjId>) -> pta::ObjId {
    assert_eq!(pts.len(), 1);
    pts.iter().next().unwrap()
}

fn figure1() -> jir::Program {
    // The paper's Figure 1.
    jir::parse(
        "class A {
           field f: A;
           method foo(this) { return; }
         }
         class B extends A {
           method foo(this) { return; }
         }
         class C extends A {
           method foo(this) { return; }
           entry static method main() {
             x = new A; y = new A; z = new A;
             b = new B; c5 = new C; c6 = new C;
             x.f = b; y.f = c5; z.f = c6;
             a = z.f;
             virt a.foo();
             c = (C) a;
             return;
           }
         }",
    )
    .expect("figure 1 parses")
}

fn var_named(p: &jir::Program, m: jir::MethodId, name: &str) -> jir::VarId {
    (0..p.var_count())
        .map(jir::VarId::from_usize)
        .find(|&v| p.var(v).method() == m && p.var(v).name() == name)
        .unwrap_or_else(|| panic!("no var {name}"))
}

#[test]
fn andersen_is_field_sensitive() {
    let p = figure1();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    // a = z.f points only to o6 (type C), not to o4 (B) or o5 (C).
    let a = var_named(&p, main, "a");
    let pts = r.points_to_collapsed(a);
    assert_eq!(pts.len(), 1, "field-sensitive: a points to exactly o6");
    let ty = r.obj_type(only(pts));
    assert_eq!(p.type_name(ty), "C");
}

#[test]
fn alloc_type_abstraction_conflates() {
    let p = figure1();
    let r = AnalysisConfig::new(ContextInsensitive, AllocTypeAbstraction::new(&p))
        .run(&p)
        .unwrap();
    let main = p.entry();
    // With one object per type, x/y/z all point to the same A object, so
    // a = z.f sees both the B and the C stored values.
    let a = var_named(&p, main, "a");
    let pts = r.points_to_collapsed(a);
    let mut tys: Vec<String> = pts.iter().map(|o| p.type_name(r.obj_type(o))).collect();
    tys.sort();
    assert_eq!(tys, ["B", "C"], "allocation-type abstraction loses precision");
}

#[test]
fn virtual_dispatch_targets_runtime_class() {
    let p = figure1();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    // `virt a.foo()` must dispatch to C::foo only.
    let site = p
        .call_site_ids()
        .find(|&s| matches!(p.call_site(s).kind(), jir::CallKind::Virtual { .. }))
        .expect("one virtual call");
    let targets = r.call_targets(site);
    assert_eq!(targets.len(), 1);
    let t = p.method(targets[0]);
    assert_eq!(p.class(t.class()).name(), "C");
    assert_eq!(t.name(), "foo");
}

#[test]
fn cast_filters_incompatible_objects() {
    let p = jir::parse(
        "class A { }
         class B extends A { }
         class C extends A {
           entry static method main() {
             a = new A; b = new B;
             x = a; x = b;
             y = (B) x;
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let x = var_named(&p, main, "x");
    let y = var_named(&p, main, "y");
    assert_eq!(r.points_to_collapsed(x).len(), 2);
    let y_pts = r.points_to_collapsed(y);
    assert_eq!(y_pts.len(), 1, "cast lets only the B object through");
    assert_eq!(p.type_name(r.obj_type(only(y_pts))), "B");
}

/// The classic context-sensitivity litmus test: an identity method called
/// from two sites must not conflate its arguments under 1+ -CFA, but does
/// conflate them context-insensitively.
fn identity_program() -> jir::Program {
    jir::parse(
        "class Box { }
         class Id {
           method id(this, v) { return v; }
         }
         class Main {
           entry static method main() {
             i = new Id;
             a = new Box;
             b = new Box;
             x = virt i.id(a);
             y = virt i.id(b);
             return;
           }
         }",
    )
    .unwrap()
}

#[test]
fn context_insensitive_conflates_identity() {
    let p = identity_program();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let x = var_named(&p, main, "x");
    assert_eq!(r.points_to_collapsed(x).len(), 2, "ci merges both boxes");
}

#[test]
fn call_site_sensitivity_distinguishes_identity() {
    let p = identity_program();
    let r = AnalysisConfig::new(CallSiteSensitive::new(1), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let x = var_named(&p, main, "x");
    let y = var_named(&p, main, "y");
    assert_eq!(r.points_to_collapsed(x).len(), 1, "1-CFA splits call sites");
    assert_eq!(r.points_to_collapsed(y).len(), 1);
}

/// Object-sensitivity litmus test: the same setter method invoked on two
/// receiver objects must keep the receivers' fields separate.
fn container_program() -> jir::Program {
    jir::parse(
        "class Box { field val: Object; method set(this, v) { this.val = v; return; }
                     method get(this) { r = this.val; return r; } }
         class P { }
         class Q { }
         class Main {
           entry static method main() {
             b1 = new Box; b2 = new Box;
             p = new P; q = new Q;
             virt b1.set(p);
             virt b2.set(q);
             g1 = virt b1.get();
             g2 = virt b2.get();
             return;
           }
         }",
    )
    .unwrap()
}

#[test]
fn object_sensitivity_separates_receivers() {
    let p = container_program();
    let r = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let g1 = var_named(&p, main, "g1");
    let g2 = var_named(&p, main, "g2");
    let g1p = r.points_to_collapsed(g1);
    let g2p = r.points_to_collapsed(g2);
    assert_eq!(g1p.len(), 1, "2obj: b1.get() sees only p");
    assert_eq!(g2p.len(), 1, "2obj: b2.get() sees only q");
    assert_eq!(p.type_name(r.obj_type(only(g1p))), "P");
    assert_eq!(p.type_name(r.obj_type(only(g2p))), "Q");
}

#[test]
fn context_insensitive_conflates_receivers() {
    let p = container_program();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let g1 = var_named(&p, main, "g1");
    assert_eq!(r.points_to_collapsed(g1).len(), 2, "ci mixes both boxes");
}

/// Type-sensitivity merges receivers allocated in the same class but
/// still separates receivers allocated in different classes.
#[test]
fn type_sensitivity_separates_by_containing_class() {
    let p = jir::parse(
        "class Box { field val: Object; method set(this, v) { this.val = v; return; }
                     method get(this) { r = this.val; return r; } }
         class P { }
         class Q { }
         class MakerA { static method mk() { b = new Box; return b; } }
         class MakerB { static method mk() { b = new Box; return b; } }
         class Main {
           entry static method main() {
             b1 = call MakerA::mk();
             b2 = call MakerB::mk();
             p = new P; q = new Q;
             virt b1.set(p);
             virt b2.set(q);
             g1 = virt b1.get();
             g2 = virt b2.get();
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(TypeSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let g1 = var_named(&p, main, "g1");
    let g1p = r.points_to_collapsed(g1);
    assert_eq!(
        g1p.len(),
        1,
        "2type separates Box objects allocated in different classes"
    );
    assert_eq!(p.type_name(r.obj_type(only(g1p))), "P");
}

#[test]
fn static_fields_are_global() {
    let p = jir::parse(
        "class G { static field shared: Object; }
         class P { }
         class Main {
           static method put() { v = new P; G.shared = v; return; }
           entry static method main() {
             call Main::put();
             w = G.shared;
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let w = var_named(&p, main, "w");
    assert_eq!(r.points_to_collapsed(w).len(), 1);
}

#[test]
fn arrays_flow_through_element_field() {
    let p = jir::parse(
        "class P { }
         class Main {
           entry static method main() {
             arr = new Object[];
             v = new P;
             arr[*] = v;
             w = arr[*];
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let w = var_named(&p, main, "w");
    let pts = r.points_to_collapsed(w);
    assert_eq!(p.type_name(r.obj_type(only(pts))), "P");
}

#[test]
fn unreachable_methods_contribute_nothing() {
    let p = jir::parse(
        "class Dead { static method never() { d = new Dead; return; } }
         class Main {
           entry static method main() { m = new Main; return; }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    assert_eq!(r.object_count(), 1, "dead allocation never materializes");
    assert_eq!(r.reachable_method_count(), 1);
}

#[test]
fn recursion_terminates_with_context() {
    let p = jir::parse(
        "class L { field next: L;
           method build(this, n) {
             m = new L;
             this.next = m;
             r = virt m.build(m);
             return r;
           }
         }
         class Main {
           entry static method main() {
             l = new L;
             x = virt l.build(l);
             return;
           }
         }",
    )
    .unwrap();
    for k in 1..=3 {
        let r = AnalysisConfig::new(ObjectSensitive::new(k), AllocSiteAbstraction)
            .run(&p)
            .unwrap();
        assert!(r.reachable_method_count() >= 2, "k={k}");
    }
}

#[test]
fn special_calls_bind_this_to_receiver() {
    let p = jir::parse(
        "class A {
           field f: Object;
           method init(this, v) { this.f = v; return; }
         }
         class Main {
           entry static method main() {
             a = new A;
             v = new Main;
             special a.A::init(v);
             w = a.f;
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let main = p.entry();
    let w = var_named(&p, main, "w");
    assert_eq!(r.points_to_collapsed(w).len(), 1);
}

#[test]
fn interface_dispatch_resolves_to_implementations() {
    let p = jir::parse(
        "interface Shape { abstract method draw(this); }
         class Circle implements Shape { method draw(this) { return; } }
         class Square implements Shape { method draw(this) { return; } }
         class Main {
           entry static method main() {
             s = new Circle;
             s = new Square;
             virt s.draw();
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let site = p
        .call_site_ids()
        .find(|&s| matches!(p.call_site(s).kind(), jir::CallKind::Virtual { .. }))
        .unwrap();
    assert_eq!(r.call_targets(site).len(), 2, "both impls reachable");
}
