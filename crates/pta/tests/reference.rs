//! Cross-validation of the production worklist solver against the
//! naive round-based reference solver (`pta::naive`): identical
//! collapsed points-to sets, reachable methods, and call-graph edges
//! on small programs, for every context sensitivity and heap
//! abstraction.

use std::collections::BTreeSet;

use pta::{
    naive::solve_naive, AllocSiteAbstraction, AllocTypeAbstraction, AnalysisConfig, AnalysisResult,
    CallSiteSensitive, ContextInsensitive, ContextSelector, HeapAbstraction, ObjectSensitive,
    TypeSensitive,
};

fn collapsed_allocs(p: &jir::Program, r: &AnalysisResult, v: jir::VarId) -> BTreeSet<jir::AllocId> {
    let _ = p;
    r.points_to_collapsed(v)
        .into_iter()
        .map(|o| r.obj_alloc(o))
        .collect()
}

fn check<S: ContextSelector + Clone, H: HeapAbstraction + Clone>(
    label: &str,
    program: &jir::Program,
    selector: S,
    heap: H,
) {
    let fast = AnalysisConfig::new(selector.clone(), heap.clone())
        .run(program)
        .expect("fits budget");
    let slow = solve_naive(program, &selector, &heap);

    // Reachable methods.
    let fast_reach: BTreeSet<jir::MethodId> = program
        .method_ids()
        .filter(|&m| fast.is_reachable(m))
        .collect();
    assert_eq!(fast_reach, slow.reachable_methods(), "{label}: reachability");

    // Call-graph edges.
    let fast_edges: BTreeSet<(jir::CallSiteId, jir::MethodId)> =
        fast.call_graph_edges().collect();
    let slow_edges: BTreeSet<(jir::CallSiteId, jir::MethodId)> =
        slow.call_edges.iter().copied().collect();
    assert_eq!(fast_edges, slow_edges, "{label}: call graph");

    // Collapsed per-variable points-to, as allocation sites.
    for v in (0..program.var_count()).map(jir::VarId::from_usize) {
        let f = collapsed_allocs(program, &fast, v);
        let s = slow.var_points_to_allocs(v);
        assert_eq!(
            f,
            s,
            "{label}: variable {} ({:?})",
            program.var(v).name(),
            v
        );
    }
}

fn check_all(program: &jir::Program) {
    check("ci", program, ContextInsensitive, AllocSiteAbstraction);
    check("1cs", program, CallSiteSensitive::new(1), AllocSiteAbstraction);
    check("2cs", program, CallSiteSensitive::new(2), AllocSiteAbstraction);
    check("2obj", program, ObjectSensitive::new(2), AllocSiteAbstraction);
    check("3obj", program, ObjectSensitive::new(3), AllocSiteAbstraction);
    check("2type", program, TypeSensitive::new(2), AllocSiteAbstraction);
    check(
        "T-ci",
        program,
        ContextInsensitive,
        AllocTypeAbstraction::new(program),
    );
}

#[test]
fn figures_match_reference() {
    for p in [
        workloads::figures::figure1(),
        workloads::figures::figure3(),
        workloads::figures::figure6(),
        workloads::figures::figure7(),
    ] {
        check_all(&p);
    }
}

#[test]
fn recursive_and_cyclic_programs_match_reference() {
    let programs = [
        // Mutual recursion with allocation.
        "class A {
           method ping(this, v) { w = new A; r = virt this.pong(w); return r; }
           method pong(this, v) { r = virt this.ping(v); return v; }
         }
         class Main {
           entry static method main() { a = new A; x = new A; r = virt a.ping(x); return; } }",
        // Cyclic heap structure.
        "class N { field next: N; }
         class Main {
           entry static method main() {
             a = new N; b = new N;
             a.next = b; b.next = a;
             c = a.next; d = c.next; e = d.next;
             return;
           } }",
        // Polymorphic dispatch through a container.
        "class Base { method go(this) { return; } }
         class S1 extends Base { method go(this) { return; } }
         class S2 extends Base { method go(this) { return; } }
         class Holder { field h: Base;
           method put(this, v) { this.h = v; return; }
           method take(this) { r = this.h; return r; } }
         class Main {
           entry static method main() {
             h1 = new Holder; h2 = new Holder;
             s1 = new S1; s2 = new S2;
             virt h1.put(s1); virt h2.put(s2);
             g = virt h1.take();
             virt g.go();
             return;
           } }",
    ];
    for src in programs {
        let p = jir::parse(src).expect("parses");
        check_all(&p);
    }
}

#[test]
fn small_generated_workloads_match_reference() {
    for seed in 0..4u64 {
        let mut profile = workloads::Profile::small(&format!("ref{seed}"), seed + 11);
        // Keep the naive solver's rounds affordable.
        profile.modules = 2;
        profile.methods_per_module = 2;
        profile.blocks_per_method = 2;
        profile.wrapper_chain = 3;
        profile.wrapper_sites = 3;
        let w = workloads::generate(&profile);
        check_all(&w.program);
    }
}
