//! Coverage for the `AnalysisResult` query surface: per-context
//! queries, field and static points-to, statistics, and call-graph
//! accessors.

use pta::{AllocSiteAbstraction, AnalysisConfig, CallSiteSensitive, ContextInsensitive};

fn program() -> jir::Program {
    jir::parse(
        "class G { static field root: Object; }
         class Box { field val: Object; }
         class P { }
         class Main {
           static method fill(b, v) { b.val = v; return; }
           entry static method main() {
             b = new Box;
             p = new P;
             call Main::fill(b, p);
             G.root = p;
             w = G.root;
             g = b.val;
             return;
           }
         }",
    )
    .unwrap()
}

fn var(p: &jir::Program, name: &str) -> jir::VarId {
    (0..p.var_count())
        .map(jir::VarId::from_usize)
        .find(|&v| p.var(v).name() == name)
        .unwrap()
}

#[test]
fn field_and_static_points_to_are_queryable() {
    let p = program();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();

    // The Box object's val field points to the P object.
    let b_objs = r.points_to_collapsed(var(&p, "b"));
    assert_eq!(b_objs.len(), 1);
    let b_obj = b_objs.iter().next().unwrap();
    let cls = p.class_by_name("Box").unwrap();
    let val = p.field_by_name(cls, "val").unwrap();
    let field_pts = r.field_points_to(b_obj, val);
    assert_eq!(field_pts.len(), 1);
    let p_obj = field_pts.iter().next().unwrap();
    assert_eq!(p.type_name(r.obj_type(p_obj)), "P");

    // The static field points to the same P object.
    let g = p.class_by_name("G").unwrap();
    let root = p.field_by_name(g, "root").unwrap();
    assert_eq!(r.static_points_to(root), field_pts);

    // field_pointers() enumerates the val fact (sets are borrowed).
    let facts: Vec<_> = r.field_pointers().collect();
    assert!(facts
        .iter()
        .any(|&(obj, f, pts)| obj == b_obj && f == val && !pts.is_empty()));
}

#[test]
fn per_context_points_to_differs_from_collapsed() {
    let p = jir::parse(
        "class A { static method id(v) { return v; } }
         class P { } class Q { }
         class Main {
           entry static method main() {
             p = new P; q = new Q;
             x = call A::id(p);
             y = call A::id(q);
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(CallSiteSensitive::new(1), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let a = p.class_by_name("A").unwrap();
    let id = p.method_by_name(a, "id", 1).unwrap();
    let v_param = p.method(id).params()[0];
    // Collapsed: both objects; per context: exactly one each.
    assert_eq!(r.points_to_collapsed(v_param).len(), 2);
    let ctxs = r.contexts_of_method(id);
    assert_eq!(ctxs.len(), 2);
    for &ctx in ctxs {
        assert_eq!(r.points_to(ctx, v_param).len(), 1);
    }
}

#[test]
fn stats_track_the_fixpoint() {
    let p = program();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let s = r.stats();
    assert!(s.worklist_pops > 0);
    assert!(s.propagated_objects > 0);
    assert!(s.copy_edges > 0);
    assert_eq!(s.reachable_method_contexts, 2, "main and fill");
    assert!(s.context_count >= 1);
    assert!(r.total_points_to_size() >= 4);
    assert!(r.pointer_count() >= 6);
    assert!(r.cs_call_graph_edge_count() >= 1);
}

#[test]
fn call_targets_and_edges_agree() {
    let p = program();
    let r = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let edges: Vec<_> = r.call_graph_edges().collect();
    assert_eq!(edges.len(), r.call_graph_edge_count());
    for &(site, target) in &edges {
        assert!(r.call_targets(site).contains(&target));
    }
}
