//! Permutation invariance of the hierarchy-aware object numbering.
//!
//! [`pta::Numbering::Hierarchy`] hands out object ids in
//! class-hierarchy preorder lanes (so cast filters compile to range
//! tables), while [`pta::Numbering::Discovery`] is the historical
//! dense interning-order scheme. The two runs flow different raw ids
//! through every points-to set, which legitimately changes iteration
//! and therefore interning order — but the analysis *results* must be
//! bit-identical modulo the renumbering. This test pins that with the
//! same canonical, interning-order-independent fingerprint used by
//! `set_parity.rs`, across every corpus program × sensitivity, and
//! checks the old↔new permutation `AnalysisResult` exports
//! ([`pta::AnalysisResult::obj_canonical_index`] /
//! [`pta::AnalysisResult::obj_from_canonical`]) is a genuine bijection
//! onto `0..object_count`.

use pta::{
    AllocSiteAbstraction, AnalysisConfig, AnalysisResult, CallSiteSensitive, ContextInsensitive,
    CtxElem, Numbering, ObjectSensitive,
};

/// A canonical, interning-order-independent description of one abstract
/// object (identical to the one in `set_parity.rs`).
fn canon_obj(r: &AnalysisResult, o: pta::ObjId) -> Vec<u64> {
    let mut out = vec![r.obj_alloc(o).index() as u64];
    for e in r.contexts().elems(r.obj_heap_context(o)) {
        out.push(match *e {
            CtxElem::CallSite(s) => 1 << 32 | s.index() as u64,
            CtxElem::Alloc(a) => 2 << 32 | a.index() as u64,
            CtxElem::Type(c) => 3 << 32 | c.index() as u64,
        });
    }
    out
}

/// Canonical fingerprint: FNV-mixed per-variable collapsed object sets
/// plus sorted call-graph edges, and order-invariant summary counts.
fn fingerprint(p: &jir::Program, r: &AnalysisResult) -> (u64, usize, usize, usize, usize) {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for v in (0..p.var_count()).map(jir::VarId::from_usize) {
        let mut objs: Vec<Vec<u64>> = r
            .points_to_collapsed(v)
            .iter()
            .map(|o| canon_obj(r, o))
            .collect();
        objs.sort_unstable();
        objs.dedup();
        mix(v.index() as u64 ^ 0xdead);
        for desc in objs {
            for w in desc {
                mix(w);
            }
            mix(0xfeed);
        }
    }
    let mut edges: Vec<(usize, usize)> = r
        .call_graph_edges()
        .map(|(s, m)| (s.index(), m.index()))
        .collect();
    edges.sort_unstable();
    for (s, m) in edges {
        mix(((s as u64) << 32) | m as u64);
    }
    (
        h,
        r.total_points_to_size() as usize,
        r.pointer_count(),
        r.object_count(),
        r.call_graph_edge_count(),
    )
}

fn load(name: &str) -> jir::Program {
    match name {
        "figure1" | "containers" | "decorator" => {
            let path = format!("{}/../../corpus/{name}.jir", env!("CARGO_MANIFEST_DIR"));
            jir::parse(&std::fs::read_to_string(&path).expect("corpus file")).expect("parses")
        }
        other => workloads::dacapo::workload(other, 1).program,
    }
}

fn run(p: &jir::Program, analysis: &str, numbering: Numbering) -> AnalysisResult {
    match analysis {
        "ci" => AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .numbering(numbering)
            .run(p),
        "2cs" => AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
            .numbering(numbering)
            .run(p),
        "2obj" => AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
            .numbering(numbering)
            .run(p),
        other => panic!("unknown analysis {other}"),
    }
    .expect("fits budget")
}

#[test]
fn hierarchy_and_discovery_numbering_agree_on_canonical_fingerprints() {
    for program in ["figure1", "containers", "decorator", "luindex", "pmd"] {
        let p = load(program);
        for analysis in ["ci", "2cs", "2obj"] {
            let dis = run(&p, analysis, Numbering::Discovery);
            let hier = run(&p, analysis, Numbering::Hierarchy);
            assert_eq!(
                fingerprint(&p, &dis),
                fingerprint(&p, &hier),
                "{program}/{analysis}: hierarchy renumbering changed the canonical result"
            );
        }
    }
}

#[test]
fn canonical_permutation_is_a_bijection_onto_discovery_order() {
    for program in ["figure1", "containers", "luindex"] {
        let p = load(program);
        for numbering in [Numbering::Discovery, Numbering::Hierarchy] {
            let r = run(&p, "2cs", numbering);
            let n = r.object_count();
            let mut seen = vec![false; n];
            for o in r.objects() {
                let c = r.obj_canonical_index(o);
                assert!(
                    (c as usize) < n && !seen[c as usize],
                    "{program}: canonical index {c} out of range or duplicated"
                );
                seen[c as usize] = true;
                assert_eq!(
                    r.obj_from_canonical(c),
                    o,
                    "{program}: permutation does not round-trip"
                );
            }
            assert!(seen.iter().all(|&s| s), "{program}: permutation not onto");
            if numbering == Numbering::Discovery {
                // Discovery mode is the identity permutation.
                for o in r.objects() {
                    assert_eq!(r.obj_canonical_index(o) as usize, o.index());
                }
            }
        }
    }
}

#[test]
fn hierarchy_numbering_compiles_cast_filters_to_ranges() {
    // figure1 carries a downcast, so the solver must have compiled at
    // least one range table and answered filtered edges from it.
    let p = load("figure1");
    let r = run(&p, "ci", Numbering::Hierarchy);
    assert!(r.stats().mask_ranges > 0, "no range tables were compiled");
    assert!(
        r.stats().range_union_hits > 0,
        "no filtered propagation was answered from a range table"
    );
}
