//! Context-semantics tests: the shapes of contexts each selector
//! builds, heap-context conventions, and the Mahjong context rules of
//! paper Section 3.6.1.

use pta::{
    AllocSiteAbstraction, AnalysisConfig, CallSiteSensitive, CtxElem, MergedObjectMap, ObjectSensitive,
    TypeSensitive,
};

/// A deep receiver chain: o1 makes o2 makes o3 ... so k-obj contexts
/// grow until truncation.
fn chain_program() -> jir::Program {
    jir::parse(
        "class W {
           field inner: W;
           method mkA(this) { w = new W; w.inner = this; return w; }
           method mkB(this) { w = new W; w.inner = this; return w; }
           method probe(this) { p = new P; return p; }
         }
         class P { }
         class Main {
           entry static method main() {
             w0 = new W;
             w1 = virt w0.mkA();
             w2 = virt w1.mkB();
             w3 = virt w2.mkA();
             x = virt w3.probe();
             return;
           }
         }",
    )
    .unwrap()
}

#[test]
fn object_sensitive_contexts_are_alloc_site_suffixes() {
    let p = chain_program();
    let r = AnalysisConfig::new(ObjectSensitive::new(3), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    // Every context element must be an allocation site; no context is
    // longer than k = 3.
    let mut deepest = 0;
    for m in p.method_ids() {
        for &ctx in r.contexts_of_method(m) {
            let elems = r.contexts().elems(ctx);
            assert!(elems.len() <= 3);
            deepest = deepest.max(elems.len());
            for e in elems {
                assert!(matches!(e, CtxElem::Alloc(_)), "kobj elements are sites");
            }
        }
    }
    assert_eq!(deepest, 3, "the chain reaches full depth");
}

#[test]
fn call_site_sensitive_contexts_are_call_sites() {
    let p = chain_program();
    let r = AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    for m in p.method_ids() {
        for &ctx in r.contexts_of_method(m) {
            let elems = r.contexts().elems(ctx);
            assert!(elems.len() <= 2);
            for e in elems {
                assert!(matches!(e, CtxElem::CallSite(_)));
            }
        }
    }
}

#[test]
fn type_sensitive_contexts_are_classes() {
    let p = chain_program();
    let r = AnalysisConfig::new(TypeSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let mut saw_type_elem = false;
    for m in p.method_ids() {
        for &ctx in r.contexts_of_method(m) {
            for e in r.contexts().elems(ctx) {
                assert!(matches!(e, CtxElem::Type(_)));
                saw_type_elem = true;
            }
        }
    }
    assert!(saw_type_elem);
}

#[test]
fn heap_contexts_are_one_shorter_than_method_contexts() {
    let p = chain_program();
    let k = 3;
    let r = AnalysisConfig::new(ObjectSensitive::new(k), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    for obj in r.objects() {
        let hctx = r.contexts().elems(r.obj_heap_context(obj));
        assert!(hctx.len() < k, "heap context depth is k-1");
    }
}

#[test]
fn merged_objects_are_context_insensitive_and_collapse_contexts() {
    let p = chain_program();
    // Merge the two mk-sites (1 and 2: the `new W` inside mkA/mkB) by
    // hand — a miniature Mahjong decision.
    let mk_sites: Vec<jir::AllocId> = p
        .alloc_ids()
        .filter(|&a| {
            let m = p.method(p.alloc(a).method());
            m.name().starts_with("mk")
        })
        .collect();
    assert_eq!(mk_sites.len(), 2);
    let mut repr: Vec<jir::AllocId> = p.alloc_ids().collect();
    repr[mk_sites[1].index()] = mk_sites[0];
    let mom = MergedObjectMap::new(repr);

    let base = AnalysisConfig::new(ObjectSensitive::new(3), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let merged = AnalysisConfig::new(ObjectSensitive::new(3), mom)
        .run(&p)
        .unwrap();
    assert!(
        merged.object_count() < base.object_count(),
        "merging mk sites removes context-sensitive wrapper objects"
    );
    assert!(
        merged.reachable_context_count() <= base.reachable_context_count(),
        "and never adds method contexts"
    );
    // Merged wrapper objects carry no heap context.
    for obj in merged.objects() {
        if merged.obj_alloc(obj) == mk_sites[0] {
            assert!(merged.contexts().elems(merged.obj_heap_context(obj)).is_empty());
        }
    }
    // The call graph is unchanged: W methods and probe stay reachable.
    assert_eq!(
        base.call_graph_edge_count(),
        merged.call_graph_edge_count()
    );
}

#[test]
fn static_calls_inherit_context_under_kobj() {
    let p = jir::parse(
        "class Helper { static method id(v) { return v; } }
         class Box { method pass(this, v) { r = call Helper::id(v); return r; } }
         class P { } class Q { }
         class Main {
           entry static method main() {
             b1 = new Box; b2 = new Box;
             p = new P; q = new Q;
             x = virt b1.pass(p);
             y = virt b2.pass(q);
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    // Helper::id inherits the caller's (receiver-object) context, so it
    // is analyzed once per Box receiver and x/y stay separate.
    let helper = p.class_by_name("Helper").unwrap();
    let id = p.method_by_name(helper, "id", 1).unwrap();
    assert_eq!(r.contexts_of_method(id).len(), 2);
    let x = (0..p.var_count())
        .map(jir::VarId::from_usize)
        .find(|&v| p.var(v).name() == "x")
        .unwrap();
    assert_eq!(r.points_to_collapsed(x).len(), 1, "no conflation through id");
}

#[test]
fn k1_call_site_matches_manual_expectation() {
    // Two call sites into the same callee: 1cs gives exactly two callee
    // contexts, each a single call site.
    let p = jir::parse(
        "class A { static method f(v) { return v; } }
         class Main {
           entry static method main() {
             x = new Main;
             a = call A::f(x);
             b = call A::f(x);
             return;
           }
         }",
    )
    .unwrap();
    let r = AnalysisConfig::new(CallSiteSensitive::new(1), AllocSiteAbstraction)
        .run(&p)
        .unwrap();
    let a = p.class_by_name("A").unwrap();
    let f = p.method_by_name(a, "f", 1).unwrap();
    assert_eq!(r.contexts_of_method(f).len(), 2);
}
