//! Parity with the pre-redesign solver.
//!
//! The hybrid-set rewrite (difference propagation over `PtsSet` deltas,
//! per-type masks, coalesced pending worklist) must not change any
//! analysis *result* — only how fast it is computed. This test pins
//! that down two ways:
//!
//! 1. **Golden fingerprints.** Before the set swap, the `FastSet`-based
//!    solver's results on every corpus program × sensitivity were
//!    hashed with a canonical, interning-order-independent fingerprint
//!    (per-variable collapsed object sets described by allocation site
//!    and heap-context element chain, plus the call graph). The rewritten
//!    solver must reproduce every hash bit-for-bit, along with the
//!    invariant summary statistics.
//! 2. **Naive cross-check.** On the small corpus programs the results
//!    are additionally compared against the round-based reference
//!    solver (`pta::naive`), which shares no set or worklist code with
//!    the production solver.
//!
//! The fingerprint canonicalizes object identity because the coalesced
//! worklist legitimately changes *interning order* (raw `ObjId`/`CtxId`
//! indices) without changing which objects exist.

use std::collections::BTreeSet;

use pta::{
    naive::solve_naive, AllocSiteAbstraction, AnalysisConfig, AnalysisResult, CallSiteSensitive,
    ContextInsensitive, ContextSelector, CtxElem, HeapAbstraction, ObjectSensitive,
};

/// A canonical, interning-order-independent description of one abstract
/// object: its allocation site plus the heap context's element chain.
fn canon_obj(r: &AnalysisResult, o: pta::ObjId) -> Vec<u64> {
    let mut out = vec![r.obj_alloc(o).index() as u64];
    for e in r.contexts().elems(r.obj_heap_context(o)) {
        out.push(match *e {
            CtxElem::CallSite(s) => 1 << 32 | s.index() as u64,
            CtxElem::Alloc(a) => 2 << 32 | a.index() as u64,
            CtxElem::Type(c) => 3 << 32 | c.index() as u64,
        });
    }
    out
}

/// Canonical fingerprint of a result: FNV-mixed per-variable collapsed
/// canonical object sets plus sorted call-graph edges, and the
/// interning-order-invariant summary statistics.
fn fingerprint(p: &jir::Program, r: &AnalysisResult) -> (u64, usize, usize, usize, usize) {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |x: u64| {
        h ^= x;
        h = h.wrapping_mul(0x100000001b3);
    };
    for v in (0..p.var_count()).map(jir::VarId::from_usize) {
        let mut objs: Vec<Vec<u64>> = r
            .points_to_collapsed(v)
            .iter()
            .map(|o| canon_obj(r, o))
            .collect();
        objs.sort_unstable();
        objs.dedup();
        mix(v.index() as u64 ^ 0xdead);
        for desc in objs {
            for w in desc {
                mix(w);
            }
            mix(0xfeed);
        }
    }
    let mut edges: Vec<(usize, usize)> = r
        .call_graph_edges()
        .map(|(s, m)| (s.index(), m.index()))
        .collect();
    edges.sort_unstable();
    for (s, m) in edges {
        mix(((s as u64) << 32) | m as u64);
    }
    (
        h,
        r.total_points_to_size() as usize,
        r.pointer_count(),
        r.object_count(),
        r.call_graph_edge_count(),
    )
}

/// Goldens captured from the pre-redesign (`FastSet` + per-object
/// worklist) solver: `(program, analysis, hash, total_pts_size,
/// pointer_count, object_count, cg_edge_count)`.
const GOLDENS: &[(&str, &str, u64, usize, usize, usize, usize)] = &[
    ("figure1", "ci", 0x945cefd21f771be2, 12, 12, 6, 1),
    ("figure1", "2cs", 0x945cefd21f771be2, 12, 12, 6, 1),
    ("figure1", "2obj", 0x945cefd21f771be2, 12, 12, 6, 1),
    ("containers", "ci", 0x4d6a63b8ecd39b17, 13, 13, 6, 0),
    ("containers", "2cs", 0x4d6a63b8ecd39b17, 13, 13, 6, 0),
    ("containers", "2obj", 0x4d6a63b8ecd39b17, 13, 13, 6, 0),
    ("decorator", "ci", 0x3e701153555b28b8, 15, 15, 4, 3),
    ("decorator", "2cs", 0xdb8d32730bb82782, 15, 15, 4, 3),
    ("decorator", "2obj", 0x79afa4e9c9c545b9, 15, 15, 4, 3),
    ("luindex", "ci", 0x59d33beb08e25e4e, 3056, 768, 189, 475),
    ("luindex", "2cs", 0xdc155404ef4883a9, 27077, 5424, 764, 475),
    ("luindex", "2obj", 0x74a049d18e3237ad, 5791, 3885, 539, 475),
    ("pmd", "ci", 0x2b92f41fd2f20572, 35467, 4609, 859, 3558),
    ("pmd", "2cs", 0xa3e70fb61a8b734c, 3042288, 54520, 7102, 3558),
    ("pmd", "2obj", 0xbfdb3f26f2888b80, 83955, 33086, 3325, 3558),
];

fn load(name: &str) -> jir::Program {
    match name {
        "figure1" | "containers" | "decorator" => {
            let path = format!("{}/../../corpus/{name}.jir", env!("CARGO_MANIFEST_DIR"));
            jir::parse(&std::fs::read_to_string(&path).expect("corpus file")).expect("parses")
        }
        other => workloads::dacapo::workload(other, 1).program,
    }
}

fn run(p: &jir::Program, analysis: &str) -> AnalysisResult {
    match analysis {
        "ci" => AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .run(p)
            .unwrap(),
        "2cs" => AnalysisConfig::new(CallSiteSensitive::new(2), AllocSiteAbstraction)
            .run(p)
            .unwrap(),
        "2obj" => AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
            .run(p)
            .unwrap(),
        other => panic!("unknown analysis {other}"),
    }
}

#[test]
fn results_match_pre_redesign_goldens() {
    for &(name, analysis, hash, pts_size, pointers, objects, cg_edges) in GOLDENS {
        let p = load(name);
        let r = run(&p, analysis);
        let got = fingerprint(&p, &r);
        assert_eq!(
            got,
            (hash, pts_size, pointers, objects, cg_edges),
            "{name}/{analysis}: result diverged from the pre-redesign solver"
        );
    }
}

fn collapsed_allocs(r: &AnalysisResult, v: jir::VarId) -> BTreeSet<jir::AllocId> {
    r.points_to_collapsed(v)
        .iter()
        .map(|o| r.obj_alloc(o))
        .collect()
}

fn cross_check<S: ContextSelector + Clone, H: HeapAbstraction + Clone>(
    label: &str,
    p: &jir::Program,
    selector: S,
    heap: H,
) {
    let fast = AnalysisConfig::new(selector.clone(), heap.clone())
        .run(p)
        .expect("fits budget");
    let slow = solve_naive(p, &selector, &heap);
    for v in (0..p.var_count()).map(jir::VarId::from_usize) {
        assert_eq!(
            collapsed_allocs(&fast, v),
            slow.var_points_to_allocs(v),
            "{label}: points-to of {}",
            p.var(v).name()
        );
    }
    let fast_edges: BTreeSet<(jir::CallSiteId, jir::MethodId)> =
        fast.call_graph_edges().collect();
    assert_eq!(fast_edges, slow.call_edges, "{label}: call graph");
}

#[test]
fn corpus_results_match_naive_reference() {
    for name in ["figure1", "containers", "decorator"] {
        let p = load(name);
        cross_check(&format!("{name}/ci"), &p, ContextInsensitive, AllocSiteAbstraction);
        cross_check(
            &format!("{name}/2cs"),
            &p,
            CallSiteSensitive::new(2),
            AllocSiteAbstraction,
        );
        cross_check(
            &format!("{name}/2obj"),
            &p,
            ObjectSensitive::new(2),
            AllocSiteAbstraction,
        );
    }
}
