//! The worklist-based Andersen-style points-to solver with on-the-fly
//! call-graph construction.
//!
//! Semantics follow the standard subset-constraint formulation used by
//! Doop/Wala: flow-insensitive, field-sensitive, with a call graph
//! discovered during the fixpoint. Context sensitivity and heap
//! abstraction are pluggable ([`ContextSelector`], [`HeapAbstraction`]).
//!
//! # Difference propagation
//!
//! Points-to sets are [`pts::PtsSet`]s (hybrid sorted-vec / bitmap).
//! The worklist holds dirty *pointers*, not `(pointer, objects)` pairs:
//! each pointer carries one pending delta set into which all incoming
//! news is coalesced until the pointer is popped. Popping forwards only
//! that delta — never the full set — along copy edges via
//! [`pts::PtsSet::union_into`], whose returned delta seeds the next
//! hop. Type-filtered (cast) edges intersect against a per-type object
//! mask with a word-wise AND instead of a per-object subtype walk.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use jir::{
    AllocId, CallKind, CallSiteId, CallTarget, FieldId, MethodId, Program, Stmt, TypeId, VarId,
};
use pts::PtsSet;

use crate::context::{ContextArena, ContextSelector, CtxId};
use crate::heap::HeapAbstraction;
use crate::object::{ObjId, ObjTable};
use crate::result::{AnalysisResult, AnalysisStats};
use crate::util::{FastMap, FastSet};

/// An interned pointer node in the constraint graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PtrId(pub(crate) u32);

impl PtrId {
    /// Returns the arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for PtrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ptr#{}", self.0)
    }
}

/// The identity of a pointer node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PtrKey {
    /// A context-qualified local variable.
    Var(CtxId, VarId),
    /// An instance field of an abstract object.
    Field(ObjId, FieldId),
    /// A static field.
    Static(FieldId),
}

/// Resource limits for one analysis run.
///
/// The paper gives every configuration a 5-hour budget on a server;
/// workloads here are laptop-scale, so the default is 60 seconds.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Wall-clock limit.
    pub time_limit: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            time_limit: Duration::from_secs(60),
        }
    }
}

impl Budget {
    /// A budget with the given wall-clock limit in seconds.
    pub fn seconds(s: u64) -> Self {
        Budget {
            time_limit: Duration::from_secs(s),
        }
    }
}

/// Returned when an analysis exceeds its [`Budget`] — the analogue of the
/// paper's "unscalable within 5 hours" entries.
#[derive(Clone, Debug)]
pub struct Unscalable {
    /// Time spent before giving up.
    pub elapsed: Duration,
    /// Reachable `(context, method)` pairs processed before giving up.
    pub methods_processed: usize,
    /// Phase timings and counters accumulated up to the overrun, so an
    /// aborted run still reports where the time went (the paper's
    /// "unscalable within 5h" rows carry partial data too).
    pub stats: AnalysisStats,
}

impl std::fmt::Display for Unscalable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "analysis exceeded its budget after {:.1}s ({} method contexts processed)",
            self.elapsed.as_secs_f64(),
            self.methods_processed
        )
    }
}

impl std::error::Error for Unscalable {}

/// One fully specified analysis run: context selector, heap
/// abstraction, resource budget, and observability — the single
/// construction path shared by the CLIs, the bench harness, and tests.
///
/// # Examples
///
/// ```
/// use pta::{AnalysisConfig, Budget, ContextInsensitive, AllocSiteAbstraction};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = jir::parse(
///     "class A {
///        entry static method main() { x = new A; return; }
///      }",
/// )?;
/// let result = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
///     .budget(Budget::seconds(30))
///     .run(&program)?;
/// assert_eq!(result.object_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AnalysisConfig<S, H> {
    selector: S,
    heap: H,
    budget: Budget,
    observability: Option<bool>,
}

impl<S: ContextSelector, H: HeapAbstraction> AnalysisConfig<S, H> {
    /// Creates a configuration with the default [`Budget`] and the
    /// process-wide observability setting.
    pub fn new(selector: S, heap: H) -> Self {
        AnalysisConfig {
            selector,
            heap,
            budget: Budget::default(),
            observability: None,
        }
    }

    /// Replaces the resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Shorthand for [`AnalysisConfig::budget`] with a wall-clock limit
    /// in seconds.
    pub fn time_limit_secs(self, s: u64) -> Self {
        self.budget(Budget::seconds(s))
    }

    /// Forces telemetry on or off for this run only (the process-wide
    /// [`obs::set_enabled`] state is restored afterwards). Useful for
    /// timing runs that must not pay recording overhead, or for
    /// recording a single run inside an otherwise quiet batch.
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = Some(enabled);
        self
    }

    /// Runs the analysis to its fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Unscalable`] if the budget is exhausted first.
    pub fn run(&self, program: &Program) -> Result<AnalysisResult, Unscalable> {
        match self.observability {
            None => Solver::new(program, &self.selector, &self.heap, self.budget).solve(),
            Some(on) => {
                let prev = obs::enabled();
                obs::set_enabled(on);
                let r = Solver::new(program, &self.selector, &self.heap, self.budget).solve();
                obs::set_enabled(prev);
                r
            }
        }
    }
}

/// A configured points-to analysis, ready to run on programs.
#[derive(Debug)]
#[doc(hidden)]
pub struct Analysis<S, H> {
    config: AnalysisConfig<S, H>,
}

impl<S: ContextSelector, H: HeapAbstraction> Analysis<S, H> {
    /// Creates an analysis with the default [`Budget`].
    #[deprecated(since = "0.1.0", note = "use `AnalysisConfig::new` instead")]
    pub fn new(selector: S, heap: H) -> Self {
        Analysis {
            config: AnalysisConfig::new(selector, heap),
        }
    }

    /// Replaces the resource budget.
    #[deprecated(since = "0.1.0", note = "use `AnalysisConfig::budget` instead")]
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.config = self.config.budget(budget);
        self
    }

    /// Runs the analysis to its fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Unscalable`] if the budget is exhausted first.
    pub fn run(&self, program: &Program) -> Result<AnalysisResult, Unscalable> {
        self.config.run(program)
    }
}

/// A statically resolved call waiting for receiver objects.
#[derive(Clone, Copy, Debug)]
struct PendingCall {
    site: CallSiteId,
    caller_ctx: CtxId,
    /// For special calls the target is fixed; virtual calls dispatch on
    /// the receiver type.
    fixed_target: Option<MethodId>,
}

struct Solver<'a, S, H> {
    program: &'a Program,
    selector: &'a S,
    heap: &'a H,
    budget: Budget,
    start: Instant,

    arena: ContextArena,
    objs: ObjTable,

    ptr_map: FastMap<PtrKey, PtrId>,
    ptr_keys: Vec<PtrKey>,
    pts: Vec<PtsSet<ObjId>>,
    /// Pending (coalesced) delta per pointer; non-empty iff the pointer
    /// is on the worklist.
    pending: Vec<PtsSet<ObjId>>,
    /// Copy edges with an optional declared-type filter (cast edges).
    succ: Vec<Vec<(PtrId, Option<TypeId>)>>,
    loads: Vec<Vec<(FieldId, PtrId)>>,
    stores: Vec<Vec<(FieldId, PtrId)>>,
    calls: Vec<Vec<PendingCall>>,
    /// Per-type object masks for cast filtering: `masks[ty]` holds every
    /// interned object whose type is a subtype of `ty`. Built lazily on
    /// the first cast against `ty`, maintained on object interning.
    masks: FastMap<TypeId, PtsSet<ObjId>>,

    reachable: FastSet<(CtxId, MethodId)>,
    reachable_methods: FastSet<MethodId>,
    /// Context-insensitive call-graph edges.
    cg_edges: FastSet<(CallSiteId, MethodId)>,
    /// Context-sensitive call-graph edge count.
    cs_cg_edges: FastSet<(CtxId, CallSiteId, CtxId, MethodId)>,
    /// Per-method return variables (cached).
    return_vars: Vec<Vec<VarId>>,

    worklist: VecDeque<PtrId>,
    /// Newly reachable `(context, method)` pairs awaiting statement
    /// processing (kept iterative to bound stack depth on deep call
    /// chains).
    pending_methods: VecDeque<(CtxId, MethodId)>,
    stats: AnalysisStats,
}

impl<'a, S: ContextSelector, H: HeapAbstraction> Solver<'a, S, H> {
    fn new(program: &'a Program, selector: &'a S, heap: &'a H, budget: Budget) -> Self {
        let return_vars = program
            .method_ids()
            .map(|m| {
                program
                    .method(m)
                    .body()
                    .iter()
                    .filter_map(|s| match *s {
                        Stmt::Return { value } => value,
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        Solver {
            program,
            selector,
            heap,
            budget,
            start: Instant::now(),
            arena: ContextArena::new(),
            objs: ObjTable::new(),
            ptr_map: FastMap::default(),
            ptr_keys: Vec::new(),
            pts: Vec::new(),
            pending: Vec::new(),
            succ: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            calls: Vec::new(),
            masks: FastMap::default(),
            reachable: FastSet::default(),
            reachable_methods: FastSet::default(),
            cg_edges: FastSet::default(),
            cs_cg_edges: FastSet::default(),
            return_vars,
            worklist: VecDeque::new(),
            pending_methods: VecDeque::new(),
            stats: AnalysisStats::default(),
        }
    }

    fn solve(mut self) -> Result<AnalysisResult, Unscalable> {
        {
            let _init = obs::span("solver.init");
            let empty = self.arena.empty();
            self.mark_reachable(empty, self.program.entry());
            self.stats.init_time = self.start.elapsed();
        }

        let fixpoint_start = Instant::now();
        let fixpoint_span = obs::span("solver.fixpoint");
        let delta_hist = obs::histogram("pta.worklist_delta_size");
        let mut since_check = 0usize;
        loop {
            since_check += 1;
            if since_check >= 4096 {
                since_check = 0;
                if self.start.elapsed() > self.budget.time_limit {
                    drop(fixpoint_span);
                    self.stats.fixpoint_time = fixpoint_start.elapsed();
                    self.stats.elapsed = self.start.elapsed();
                    self.stats.context_count = self.arena.len();
                    self.stats.call_graph_edges = self.cg_edges.len() as u64;
                    self.stats.pts_peak_words = self.pts_words();
                    self.stats.publish();
                    return Err(Unscalable {
                        elapsed: self.start.elapsed(),
                        methods_processed: self.reachable.len(),
                        stats: self.stats.clone(),
                    });
                }
            }
            if let Some((ctx, method)) = self.pending_methods.pop_front() {
                self.process_method(ctx, method);
            } else if let Some(ptr) = self.worklist.pop_front() {
                // Take the whole coalesced delta; the pointer re-enters
                // the worklist if processing feeds it again.
                let delta = std::mem::take(&mut self.pending[ptr.index()]);
                self.stats.worklist_pops += 1;
                delta_hist.record(delta.len() as u64);
                self.process(ptr, &delta);
            } else {
                break;
            }
        }
        drop(fixpoint_span);
        self.stats.fixpoint_time = fixpoint_start.elapsed();

        let finalize_start = Instant::now();
        let finalize_span = obs::span("solver.finalize");
        self.stats.context_count = self.arena.len();
        self.stats.call_graph_edges = self.cg_edges.len() as u64;
        // Sets only grow, so the final footprint is the peak footprint.
        self.stats.pts_peak_words = self.pts_words();
        if obs::enabled() {
            let pts_hist = obs::histogram("pta.points_to_set_size");
            for set in &self.pts {
                pts_hist.record(set.len() as u64);
            }
            obs::gauge("pta.pointer_nodes").set(self.pts.len() as i64);
        }
        let result = AnalysisResult::from_parts(
            self.arena,
            self.objs,
            self.ptr_keys,
            self.ptr_map,
            self.pts,
            self.reachable,
            self.reachable_methods,
            self.cg_edges,
            self.cs_cg_edges.len(),
            AnalysisStats::default(), // placeholder, replaced below
        );
        drop(finalize_span);
        self.stats.finalize_time = finalize_start.elapsed();
        self.stats.elapsed = self.start.elapsed();
        self.stats.publish();
        Ok(result.with_stats(self.stats))
    }

    fn pts_words(&self) -> u64 {
        self.pts.iter().map(|s| s.mem_words() as u64).sum()
    }

    // --- Pointer graph primitives ----------------------------------------

    fn ptr(&mut self, key: PtrKey) -> PtrId {
        if let Some(&p) = self.ptr_map.get(&key) {
            return p;
        }
        let p = PtrId(u32::try_from(self.ptr_keys.len()).expect("too many pointers"));
        self.ptr_map.insert(key, p);
        self.ptr_keys.push(key);
        self.pts.push(PtsSet::new());
        self.pending.push(PtsSet::new());
        self.succ.push(Vec::new());
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        self.calls.push(Vec::new());
        p
    }

    fn var_ptr(&mut self, ctx: CtxId, var: VarId) -> PtrId {
        self.ptr(PtrKey::Var(ctx, var))
    }

    /// Interns an abstract object and keeps the lazily built type masks
    /// consistent: a mask must contain every object whose type passes
    /// its cast, including objects interned after the mask was built.
    fn intern_obj(&mut self, hctx: CtxId, alloc: AllocId) -> ObjId {
        let before = self.objs.len();
        let obj = self.objs.intern(hctx, alloc, self.program);
        if self.objs.len() > before && !self.masks.is_empty() {
            let oty = self.objs.ty(obj);
            for (&ty, mask) in self.masks.iter_mut() {
                if self.program.is_subtype(oty, ty) {
                    mask.insert(obj);
                }
            }
        }
        obj
    }

    /// Builds the object mask for `ty` if this is the first cast
    /// against it.
    fn ensure_mask(&mut self, ty: TypeId) {
        if self.masks.contains_key(&ty) {
            return;
        }
        let mut mask = PtsSet::new();
        for o in self.objs.iter() {
            if self.program.is_subtype(self.objs.ty(o), ty) {
                mask.insert(o);
            }
        }
        self.masks.insert(ty, mask);
    }

    /// Merges `delta` into the pointer's pending set, enqueueing the
    /// pointer on the empty→non-empty transition (pending is non-empty
    /// exactly while the pointer sits on the worklist).
    fn queue_delta(&mut self, ptr: PtrId, delta: PtsSet<ObjId>) {
        if delta.is_empty() {
            return;
        }
        let pending = &mut self.pending[ptr.index()];
        let newly_dirty = pending.is_empty();
        pending.union_with(&delta);
        if newly_dirty {
            self.worklist.push_back(ptr);
        }
    }

    /// Seeds `objs` into `pts(ptr)`, enqueueing the genuinely new part.
    fn add_objects(&mut self, ptr: PtrId, objs: impl IntoIterator<Item = ObjId>) {
        let set = &mut self.pts[ptr.index()];
        let mut delta = PtsSet::new();
        for o in objs {
            if set.insert(o) {
                delta.insert(o);
            }
        }
        self.queue_delta(ptr, delta);
    }

    /// Borrows two distinct points-to sets, source shared and target
    /// mutable, out of the arena.
    fn two_sets(
        pts: &mut [PtsSet<ObjId>],
        src: usize,
        dst: usize,
    ) -> (&PtsSet<ObjId>, &mut PtsSet<ObjId>) {
        debug_assert_ne!(src, dst);
        if src < dst {
            let (lo, hi) = pts.split_at_mut(dst);
            (&lo[src], &mut hi[0])
        } else {
            let (lo, hi) = pts.split_at_mut(src);
            (&hi[0], &mut lo[dst])
        }
    }

    /// Adds the copy edge `from → to` (optionally type-filtered) and
    /// replays the existing points-to set of `from`.
    fn add_edge(&mut self, from: PtrId, to: PtrId, filter: Option<TypeId>) {
        if from == to && filter.is_none() {
            return;
        }
        let row = &mut self.succ[from.index()];
        if row.contains(&(to, filter)) {
            return;
        }
        row.push((to, filter));
        self.stats.copy_edges += 1;
        // A filtered self-edge stays in the graph (for edge-count
        // parity) but can never contribute: filtering a set into itself
        // adds nothing.
        if from == to || self.pts[from.index()].is_empty() {
            return;
        }
        if let Some(ty) = filter {
            self.ensure_mask(ty);
        }
        let (src, dst) = Self::two_sets(&mut self.pts, from.index(), to.index());
        let delta = match filter {
            None => src.union_into(dst),
            Some(ty) => src.union_into_masked(&self.masks[&ty], dst),
        };
        self.queue_delta(to, delta);
    }

    // --- Delta processing --------------------------------------------------

    fn process(&mut self, ptr: PtrId, delta: &PtsSet<ObjId>) {
        let i = ptr.index();
        self.stats.delta_objects += delta.len() as u64;
        // "Propagated" counts only deltas that actually flow somewhere:
        // a pointer with no outgoing edges, loads, stores, or calls is a
        // sink and its delta dies here.
        if !self.succ[i].is_empty()
            || !self.loads[i].is_empty()
            || !self.stores[i].is_empty()
            || !self.calls[i].is_empty()
        {
            self.stats.propagated_objects += delta.len() as u64;
        }

        // Rows are append-only; iterate a snapshot of the length. An
        // entry appended mid-processing replays the full source set at
        // add time, which already covers this delta.
        let n_succ = self.succ[i].len();
        for k in 0..n_succ {
            let (to, filter) = self.succ[i][k];
            if to == ptr {
                continue; // filtered self-edge: never contributes
            }
            if let Some(ty) = filter {
                self.ensure_mask(ty);
            }
            let dst = &mut self.pts[to.index()];
            let d = match filter {
                None => delta.union_into(dst),
                Some(ty) => delta.union_into_masked(&self.masks[&ty], dst),
            };
            self.queue_delta(to, d);
        }

        // Field loads/stores and calls hang off variable pointers only.
        let n_loads = self.loads[i].len();
        for k in 0..n_loads {
            let (field, lhs) = self.loads[i][k];
            for obj in delta.iter() {
                let fp = self.ptr(PtrKey::Field(obj, field));
                self.add_edge(fp, lhs, None);
            }
        }
        let n_stores = self.stores[i].len();
        for k in 0..n_stores {
            let (field, rhs) = self.stores[i][k];
            for obj in delta.iter() {
                let fp = self.ptr(PtrKey::Field(obj, field));
                self.add_edge(rhs, fp, None);
            }
        }
        let n_calls = self.calls[i].len();
        for k in 0..n_calls {
            let call = self.calls[i][k];
            for obj in delta.iter() {
                self.dispatch_call(call, obj);
            }
        }
    }

    // --- Statements --------------------------------------------------------

    fn mark_reachable(&mut self, ctx: CtxId, method: MethodId) {
        if !self.reachable.insert((ctx, method)) {
            return;
        }
        self.reachable_methods.insert(method);
        self.stats.reachable_method_contexts += 1;
        self.pending_methods.push_back((ctx, method));
    }

    fn process_method(&mut self, ctx: CtxId, method: MethodId) {
        let body: Vec<Stmt> = self.program.method(method).body().to_vec();
        for stmt in body {
            self.process_stmt(ctx, method, stmt);
        }
    }

    fn process_stmt(&mut self, ctx: CtxId, method: MethodId, stmt: Stmt) {
        match stmt {
            Stmt::New { lhs, site } => {
                let repr = self.heap.repr(site);
                // Merged objects are modeled context-insensitively
                // (paper Section 3.6.1).
                let hctx = if self.heap.is_merged(repr) {
                    self.arena.empty()
                } else {
                    self.selector.heap_context(&mut self.arena, ctx, repr)
                };
                let obj = self.intern_obj(hctx, repr);
                let lp = self.var_ptr(ctx, lhs);
                self.add_objects(lp, [obj]);
            }
            Stmt::Assign { lhs, rhs } => {
                let (rp, lp) = (self.var_ptr(ctx, rhs), self.var_ptr(ctx, lhs));
                self.add_edge(rp, lp, None);
            }
            Stmt::Load { lhs, base, field } => {
                let bp = self.var_ptr(ctx, base);
                let lp = self.var_ptr(ctx, lhs);
                self.loads[bp.index()].push((field, lp));
                // Replay objects already known for the base. The clone
                // is O(words); interning field pointers below may grow
                // `self.pts`, so the base set cannot stay borrowed.
                let existing = self.pts[bp.index()].clone();
                for obj in existing.iter() {
                    let fp = self.ptr(PtrKey::Field(obj, field));
                    self.add_edge(fp, lp, None);
                }
            }
            Stmt::Store { base, field, rhs } => {
                let bp = self.var_ptr(ctx, base);
                let rp = self.var_ptr(ctx, rhs);
                self.stores[bp.index()].push((field, rp));
                let existing = self.pts[bp.index()].clone();
                for obj in existing.iter() {
                    let fp = self.ptr(PtrKey::Field(obj, field));
                    self.add_edge(rp, fp, None);
                }
            }
            Stmt::StaticLoad { lhs, field } => {
                let sp = self.ptr(PtrKey::Static(field));
                let lp = self.var_ptr(ctx, lhs);
                self.add_edge(sp, lp, None);
            }
            Stmt::StaticStore { field, rhs } => {
                let rp = self.var_ptr(ctx, rhs);
                let sp = self.ptr(PtrKey::Static(field));
                self.add_edge(rp, sp, None);
            }
            Stmt::Cast { lhs, rhs, site } => {
                let target = self.program.cast(site).target_ty();
                let (rp, lp) = (self.var_ptr(ctx, rhs), self.var_ptr(ctx, lhs));
                // Cast edges filter: only objects that can pass the cast
                // flow onward (failing objects raise at runtime).
                self.add_edge(rp, lp, Some(target));
            }
            Stmt::Call(site_id) => {
                let site = self.program.call_site(site_id).clone();
                match (site.kind().clone(), site.target().clone()) {
                    (CallKind::Static, CallTarget::Exact(target)) => {
                        let callee_ctx = self.selector.static_callee_context(
                            &mut self.arena,
                            ctx,
                            site_id,
                            target,
                        );
                        self.bind_call(ctx, site_id, callee_ctx, target, None);
                    }
                    (CallKind::Special { recv }, CallTarget::Exact(target)) => {
                        self.register_receiver_call(ctx, recv, site_id, Some(target));
                    }
                    (CallKind::Virtual { recv }, CallTarget::Signature { .. }) => {
                        self.register_receiver_call(ctx, recv, site_id, None);
                    }
                    (kind, target) => {
                        unreachable!("malformed call site {site_id:?}: {kind:?} {target:?}")
                    }
                }
            }
            Stmt::Return { .. } => {
                // Handled at call-binding time via `return_vars`.
            }
        }
        let _ = method;
    }

    fn register_receiver_call(
        &mut self,
        ctx: CtxId,
        recv: VarId,
        site: CallSiteId,
        fixed_target: Option<MethodId>,
    ) {
        let rp = self.var_ptr(ctx, recv);
        let call = PendingCall {
            site,
            caller_ctx: ctx,
            fixed_target,
        };
        self.calls[rp.index()].push(call);
        let existing = self.pts[rp.index()].clone();
        for obj in existing.iter() {
            self.dispatch_call(call, obj);
        }
    }

    fn dispatch_call(&mut self, call: PendingCall, recv_obj: ObjId) {
        let site = self.program.call_site(call.site);
        let target = match call.fixed_target {
            Some(t) => Some(t),
            None => match site.target() {
                CallTarget::Signature { name, arity } => {
                    self.program.dispatch(self.objs.ty(recv_obj), name, *arity)
                }
                CallTarget::Exact(t) => Some(*t),
            },
        };
        let Some(target) = target else {
            // No concrete implementation: the call site cannot resolve
            // for this receiver type (e.g. an abstract class leak).
            return;
        };
        if self.program.method(target).is_abstract() {
            return;
        }
        let callee_ctx = self.selector.callee_context(
            &mut self.arena,
            &self.objs,
            self.program,
            call.caller_ctx,
            call.site,
            recv_obj,
            target,
        );
        self.bind_call(call.caller_ctx, call.site, callee_ctx, target, Some(recv_obj));
    }

    fn bind_call(
        &mut self,
        caller_ctx: CtxId,
        site_id: CallSiteId,
        callee_ctx: CtxId,
        target: MethodId,
        recv_obj: Option<ObjId>,
    ) {
        self.cg_edges.insert((site_id, target));
        self.cs_cg_edges
            .insert((caller_ctx, site_id, callee_ctx, target));
        self.mark_reachable(callee_ctx, target);

        let callee = self.program.method(target);
        // `this` receives exactly the dispatching object.
        if let (Some(this), Some(obj)) = (callee.this(), recv_obj) {
            let tp = self.var_ptr(callee_ctx, this);
            self.add_objects(tp, [obj]);
        }
        // Arguments to parameters.
        let site = self.program.call_site(site_id).clone();
        let params: Vec<VarId> = callee.params().to_vec();
        for (&arg, &param) in site.args().iter().zip(params.iter()) {
            let ap = self.var_ptr(caller_ctx, arg);
            let pp = self.var_ptr(callee_ctx, param);
            self.add_edge(ap, pp, None);
        }
        // Returns to the result variable.
        if let Some(result) = site.result() {
            let rp = self.var_ptr(caller_ctx, result);
            let ret_vars: Vec<VarId> = self.return_vars[target.index()].clone();
            for rv in ret_vars {
                let rvp = self.var_ptr(callee_ctx, rv);
                self.add_edge(rvp, rp, None);
            }
        }
    }
}

/// Convenience: runs the context-insensitive allocation-site pre-analysis
/// the Mahjong pipeline starts from (paper Section 3.1, "ci").
///
/// # Errors
///
/// Returns [`Unscalable`] if the budget is exhausted (the pre-analysis is
/// given the same default budget as any other run).
pub fn pre_analysis(program: &Program) -> Result<AnalysisResult, Unscalable> {
    let _phase = obs::span("pre_analysis");
    AnalysisConfig::new(
        crate::context::ContextInsensitive,
        crate::heap::AllocSiteAbstraction,
    )
    .run(program)
}
