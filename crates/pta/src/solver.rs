//! The worklist-based Andersen-style points-to solver with on-the-fly
//! call-graph construction.
//!
//! Semantics follow the standard subset-constraint formulation used by
//! Doop/Wala: flow-insensitive, field-sensitive, with a call graph
//! discovered during the fixpoint. Context sensitivity and heap
//! abstraction are pluggable ([`ContextSelector`], [`HeapAbstraction`]).
//!
//! # Difference propagation
//!
//! Points-to sets are [`pts::PtsSet`]s (hybrid sorted-vec / bitmap).
//! The worklist holds dirty *pointers*, not `(pointer, objects)` pairs:
//! each pointer carries one pending delta set into which all incoming
//! news is coalesced until the pointer is popped. Popping forwards only
//! that delta — never the full set — along copy edges via
//! [`pts::PtsSet::union_into`], whose returned delta seeds the next
//! hop. Type-filtered (cast) edges intersect against a per-type object
//! mask with a word-wise AND instead of a per-object subtype walk.
//!
//! # Online cycle elimination
//!
//! Copy-edge cycles (mutually recursive parameter passing, `x = y; y =
//! x` chains) force every member pointer to converge to the same
//! points-to set — one delta hop per worklist pop, around and around.
//! The solver collapses such cycles while the fixpoint runs:
//!
//! - **Lazy Cycle Detection** (Hardekopf & Lin): when a popped delta
//!   crosses an unfiltered copy edge `x → y` without growing `y` and
//!   both endpoint sets have the same size, the edge is suspected to
//!   lie on a cycle. A bounded DFS looks for a return path `y ⇝ x`;
//!   if one exists, the cycle it closes is collapsed. Each edge is
//!   checked at most once.
//! - **Periodic SCC sweeps**: once enough copy edges accumulate since
//!   the last sweep (a counter heuristic), an iterative Tarjan pass
//!   over the condensed copy graph collapses every multi-node SCC in
//!   one go and recomputes the topological ranks that drive wave
//!   propagation.
//!
//! Collapsed pointers are unioned in a [`dsu::DisjointSets`]. The
//! *representative* owns the single shared points-to set, the single
//! pending-delta slot, and the merged consumer rows (copy edges,
//! loads, stores, calls); non-representatives keep empty slots. Every
//! solver entry point normalizes pointers through `find()` before
//! touching per-pointer state, and the final [`AnalysisResult`]
//! carries the redirect table so queries against collapsed pointers
//! resolve to the representative's set — collapse is invisible in
//! analysis results (members of an unfiltered copy cycle provably
//! converge to identical sets by mutual subset inclusion).
//!
//! # Wave propagation
//!
//! Between collapse points the worklist is processed in *waves*: the
//! dirty pointers are drained into a priority queue ordered by the
//! condensed copy graph's topological rank (sources first), so a delta
//! crosses the acyclic core once per wave instead of re-enqueueing
//! downstream pointers over and over. A pointer dirtied at or
//! downstream of the wave's cursor joins the running wave; a pointer
//! dirtied upstream waits for the next wave. `pta.wave_rounds` counts
//! the waves.
//!
//! # Parallel wave propagation
//!
//! With [`AnalysisConfig::threads`] above one, each wave is processed
//! *level-synchronously*: the topological ranks are longest-path
//! **levels** of the condensed copy graph, so all dirty pointers
//! sharing a rank are mutually independent along unfiltered copy edges
//! and form one batch. A batch runs in three phases:
//!
//! 1. **Resolve** (sequential): normalize each member's copy row
//!    through the DSU and compile any missing cast range tables — the
//!    two pieces of solver state that are not thread-safe.
//! 2. **Propagate** (parallel, read-only): `std::thread::scope` shards
//!    the batch over worker threads via chunked self-scheduling (an
//!    atomic cursor). Each worker computes, into thread-local scratch
//!    buffers, every copy edge's *contribution* — [`pts::PtsSet::difference`]
//!    / [`pts::PtsSet::difference_in_ranges`] against a frozen view of
//!    the target sets — without writing a single byte of shared state.
//! 3. **Merge** (sequential, deterministic): contributions are applied
//!    target-by-target in ascending pointer-id order with
//!    [`pts::PtsSet::union_into_from_shards`], then each member's field
//!    loads/stores and call dispatches run in batch order. Because the
//!    merge order depends only on the batch contents — never on thread
//!    count or scheduling — any `threads` value produces bit-identical
//!    analysis results (enforced by `tests/thread_parity.rs`).
//!
//! `pta.par_shards` counts shards spawned, `pta.par_steal_none` counts
//! workers that found the cursor already exhausted, and
//! `pta.wave_barrier_ns` accumulates the coordinator's wait at the
//! level barrier; all three flow into `BENCH_pta.json`.
//!
//! # Hash-consed rows
//!
//! Representative points-to sets and pending deltas live behind
//! copy-on-write [`pts::PtsHandle`]s backed by one per-run
//! [`pts::SetInterner`]. (Cast filters are *not* sets at all: under the
//! hierarchy numbering each filter type's subtype cone compiles to a
//! [`pts::IdRanges`] list of a few `[lo, hi)` runs — see
//! [`crate::numbering`].) Context-sensitive runs produce thousands of
//! bit-identical rows (the same receiver objects under many calling
//! contexts); every [`SEAL_SWEEP_WAVES`] waves the solver *seals*
//! dirty rows — re-interning their content so identical rows collapse
//! onto one shared allocation — and evicts interner entries no live
//! row references. Mutation is check-before-write: a propagation step
//! first computes the contribution (`difference` /
//! `difference_in_ranges`) against the target read-only, and only a
//! non-empty contribution touches `make_mut`, so quiescent edges never
//! break sharing. Sealing changes allocation identity, never content,
//! which is why every golden parity fingerprint is preserved
//! bit-for-bit. `pta.pts_interned` / `pta.pts_dedup_hits` /
//! `pta.intern_probe_ns` report the interner's work;
//! `pta.pts_peak_words` becomes the peak *physical* footprint
//! (deduplicated by allocation), with the logical (per-row) footprint
//! reported through the timeline's memory breakdown.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dsu::DisjointSets;
use jir::{
    AllocId, CallKind, CallSiteId, CallTarget, FieldId, MethodId, Program, Stmt, TypeId, VarId,
};
use obs::timeline::{
    HotPointer, MemoryBreakdown, ShardSpan, WaveRecord, LEVEL_MIXED, LEVEL_OVERHEAD, LEVEL_SEED,
    LEVEL_UNRANKED,
};
use pts::{IdRanges, PtsHandle, PtsSet, SetInterner};

use crate::context::{ContextArena, ContextSelector, CtxId};
use crate::heap::HeapAbstraction;
use crate::object::{Numbering, ObjId, ObjTable};
use crate::result::{AnalysisResult, AnalysisStats};
use crate::util::{FastMap, FastSet};

/// An interned pointer node in the constraint graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PtrId(pub(crate) u32);

impl PtrId {
    /// Returns the arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for PtrId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ptr#{}", self.0)
    }
}

/// The identity of a pointer node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PtrKey {
    /// A context-qualified local variable.
    Var(CtxId, VarId),
    /// An instance field of an abstract object.
    Field(ObjId, FieldId),
    /// A static field.
    Static(FieldId),
}

/// Resource limits for one analysis run.
///
/// The paper gives every configuration a 5-hour budget on a server;
/// workloads here are laptop-scale, so the default is 60 seconds.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Wall-clock limit.
    pub time_limit: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            time_limit: Duration::from_secs(60),
        }
    }
}

impl Budget {
    /// A budget with the given wall-clock limit in seconds.
    pub fn seconds(s: u64) -> Self {
        Budget {
            time_limit: Duration::from_secs(s),
        }
    }
}

/// Returned when an analysis exceeds its [`Budget`] — the analogue of the
/// paper's "unscalable within 5 hours" entries.
#[derive(Clone, Debug)]
pub struct Unscalable {
    /// Time spent before giving up.
    pub elapsed: Duration,
    /// Reachable `(context, method)` pairs processed before giving up.
    pub methods_processed: usize,
    /// Phase timings and counters accumulated up to the overrun, so an
    /// aborted run still reports where the time went (the paper's
    /// "unscalable within 5h" rows carry partial data too). Boxed to
    /// keep the error variant small on the `Result` hot path.
    pub stats: Box<AnalysisStats>,
}

impl std::fmt::Display for Unscalable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "analysis exceeded its budget after {:.1}s ({} method contexts processed)",
            self.elapsed.as_secs_f64(),
            self.methods_processed
        )
    }
}

impl std::error::Error for Unscalable {}

/// One fully specified analysis run: context selector, heap
/// abstraction, resource budget, and observability — the single
/// construction path shared by the CLIs, the bench harness, and tests.
///
/// # Examples
///
/// ```
/// use pta::{AnalysisConfig, Budget, ContextInsensitive, AllocSiteAbstraction};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = jir::parse(
///     "class A {
///        entry static method main() { x = new A; return; }
///      }",
/// )?;
/// let result = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
///     .budget(Budget::seconds(30))
///     .run(&program)?;
/// assert_eq!(result.object_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AnalysisConfig<S, H> {
    selector: S,
    heap: H,
    budget: Budget,
    observability: Option<bool>,
    threads: usize,
    numbering: Numbering,
}

impl<S: ContextSelector, H: HeapAbstraction> AnalysisConfig<S, H> {
    /// Creates a configuration with the default [`Budget`], the
    /// process-wide observability setting, and sequential (one-thread)
    /// wave propagation.
    pub fn new(selector: S, heap: H) -> Self {
        AnalysisConfig {
            selector,
            heap,
            budget: Budget::default(),
            observability: None,
            threads: 1,
            numbering: Numbering::default(),
        }
    }

    /// Sets the object-id numbering scheme. The default,
    /// [`Numbering::Hierarchy`], lays object ids out in class-hierarchy
    /// preorder lanes so cast masks compile to short range lists;
    /// [`Numbering::Discovery`] is the dense historical numbering.
    /// Results are bit-identical modulo the id permutation (exposed
    /// through [`AnalysisResult::obj_canonical_index`]).
    ///
    /// [`AnalysisResult::obj_canonical_index`]:
    ///     crate::AnalysisResult::obj_canonical_index
    pub fn numbering(mut self, numbering: Numbering) -> Self {
        self.numbering = numbering;
        self
    }

    /// Sets the worker-thread count for wave propagation (see the
    /// module docs on *parallel wave propagation*).
    ///
    /// `1` — the default — runs the classic sequential worklist loop;
    /// `0` means "auto": one shard per available hardware thread.
    /// Every thread count produces bit-identical analysis results; the
    /// knob only trades wall-clock for cores.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Replaces the resource budget.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Shorthand for [`AnalysisConfig::budget`] with a wall-clock limit
    /// in seconds.
    pub fn time_limit_secs(self, s: u64) -> Self {
        self.budget(Budget::seconds(s))
    }

    /// Forces telemetry on or off for this run only (the process-wide
    /// [`obs::set_enabled`] state is restored afterwards). Useful for
    /// timing runs that must not pay recording overhead, or for
    /// recording a single run inside an otherwise quiet batch.
    pub fn observability(mut self, enabled: bool) -> Self {
        self.observability = Some(enabled);
        self
    }

    /// Runs the analysis to its fixpoint.
    ///
    /// # Errors
    ///
    /// Returns [`Unscalable`] if the budget is exhausted first.
    pub fn run(&self, program: &Program) -> Result<AnalysisResult, Unscalable> {
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let solver = || {
            Solver::new(
                program,
                &self.selector,
                &self.heap,
                self.budget,
                threads,
                self.numbering,
            )
        };
        match self.observability {
            None => solver().solve(),
            Some(on) => {
                let prev = obs::enabled();
                obs::set_enabled(on);
                let r = solver().solve();
                obs::set_enabled(prev);
                r
            }
        }
    }
}

/// A statically resolved call waiting for receiver objects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct PendingCall {
    site: CallSiteId,
    caller_ctx: CtxId,
    /// For special calls the target is fixed; virtual calls dispatch on
    /// the receiver type.
    fixed_target: Option<MethodId>,
}

/// Collapse at most once per this many pending LCD candidates between
/// worklist pops (batching keeps the DFS off the per-delta hot path).
const LCD_BATCH: usize = 32;

/// Visit budget of one lazy-cycle-detection DFS.
const LCD_DFS_LIMIT: usize = 2048;

/// Levels smaller than this are processed inline: spawning shard
/// threads for a handful of pointers costs more than it saves.
const PAR_MIN_BATCH: usize = 16;

/// Target batch items per shard when sizing the thread fan-out (a
/// level of 40 pointers on an 8-thread budget spawns 5 shards, not 8).
const PAR_SHARD_ITEMS: usize = 8;

/// Minimum estimated propagate work — copy edges × delta objects,
/// summed over the batch — before a level fans out to shard threads.
/// Spawn plus barrier costs tens of microseconds per level, which the
/// many small-delta levels of a converging wave never pay back; they
/// run inline regardless of batch size. (This is what fixed t2 being
/// *slower* than t1: two threads splitting sub-threshold levels spent
/// more on coordination than the halved compute saved.)
const PAR_MIN_WORK: u64 = 1024;

/// Minimum merge groups (distinct contribution targets) before the
/// merge phase itself fans out to partition workers.
const PAR_MIN_MERGE: usize = 32;

/// A level batch (or coalesced run of batches) at least this expensive
/// always gets its own timeline record; cheaper work coalesces into a
/// `LEVEL_MIXED` residual so the record ring tracks where the time
/// went without one entry per micro-batch.
const TL_FLUSH_NS: u64 = 4_000_000;

/// Per-run budget of standalone records for level batches below
/// [`TL_FLUSH_NS`], so short runs (tests, tiny programs) still produce
/// per-level records instead of one coalesced blob.
const TL_FREE_RECORDS: u32 = 256;

/// Memory-attribution sampling period in waves (each sample scans
/// every points-to and pending set, so it must stay off the per-wave
/// hot path).
const TL_MEM_SAMPLE_WAVES: u64 = 64;

/// Rows in the hottest-pointer table published at finalize.
const TL_TOP_K: usize = 24;

/// Seal-sweep period in waves: dirty representative rows and masks are
/// re-interned (deduplicating identical contents onto one shared
/// allocation) and dead interner entries evicted every this many
/// waves, and once more at finalize. Sealing hashes every dirty row's
/// elements, so it stays off the per-wave hot path; between sweeps
/// mutated rows simply stay dirty and unique.
const SEAL_SWEEP_WAVES: u64 = 64;

/// Copy-row length at which `add_edge` membership switches from a
/// linear scan of the row to a mirrored hash set. Short rows stay
/// scan-only (cheaper and allocation-free); hub rows — field pointers
/// replayed once per load/store-site × object — get the set.
const EDGE_SET_MIN: usize = 48;

/// A copy edge as stored in `succ` rows: target pointer plus the
/// optional declared-type filter carried by cast edges.
type Edge = (PtrId, Option<TypeId>);

/// Per-run funnel from the solver's hot loops into [`obs::timeline`].
///
/// Batches worth at least [`TL_FLUSH_NS`] become standalone
/// [`WaveRecord`]s; real level batches below that spend the per-run
/// [`TL_FREE_RECORDS`] budget; everything else is absorbed into a
/// `LEVEL_MIXED` residual flushed once it accumulates [`TL_FLUSH_NS`]
/// or at a wave boundary. When observability was off at run start
/// (`on == false`) every method returns immediately and no `Instant`
/// is ever read — the profiler is fully inert.
struct TimelineSink {
    on: bool,
    run: u32,
    wave: u32,
    free_left: u32,
    residual: WaveRecord,
}

impl TimelineSink {
    fn new() -> Self {
        let on = obs::enabled();
        TimelineSink {
            on,
            run: if on { obs::timeline().begin_run() } else { 0 },
            wave: 0,
            free_left: TL_FREE_RECORDS,
            residual: WaveRecord::default(),
        }
    }

    /// `Instant::now()` when recording, `None` otherwise — the hot
    /// loops thread these marks through so disabled runs never touch
    /// the clock.
    fn now(&self) -> Option<Instant> {
        if self.on {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Routes one measured batch record (run/wave stamped here).
    fn batch(&mut self, mut rec: WaveRecord) {
        if !self.on {
            return;
        }
        rec.run = self.run;
        rec.wave = self.wave;
        if rec.total_ns() >= TL_FLUSH_NS {
            obs::timeline().record_wave(rec);
            return;
        }
        // The free budget is reserved for real level batches (pops >
        // 0): tiny runs still get per-level records, while cheap
        // seed/overhead slivers always coalesce.
        if rec.pops > 0 && self.free_left > 0 {
            self.free_left -= 1;
            obs::timeline().record_wave(rec);
            return;
        }
        if self.residual.pops == 0 && self.residual.total_ns() == 0 {
            self.residual.wave = rec.wave;
        }
        self.residual.absorb(&rec);
        if self.residual.total_ns() >= TL_FLUSH_NS {
            self.flush_residual();
        }
    }

    /// Emits the coalesced residual as one `LEVEL_MIXED` record.
    fn flush_residual(&mut self) {
        if !self.on {
            return;
        }
        let rec = std::mem::take(&mut self.residual);
        if rec.pops == 0 && rec.total_ns() == 0 {
            return;
        }
        obs::timeline().record_wave(WaveRecord {
            run: self.run,
            level: LEVEL_MIXED,
            ..rec
        });
    }

    /// Records solver bookkeeping (collapse, wave scheduling, init and
    /// finalize) elapsed since `t0`; no-op on disabled runs.
    fn overhead_since(&mut self, t0: Option<Instant>) {
        let Some(t0) = t0 else { return };
        self.batch(WaveRecord {
            level: LEVEL_OVERHEAD,
            resolve_ns: t0.elapsed().as_nanos() as u64,
            ..WaveRecord::default()
        });
    }

    /// Records a statement-processing (seed) drain elapsed since `t0`.
    fn seed_since(&mut self, t0: Option<Instant>) {
        let Some(t0) = t0 else { return };
        self.batch(WaveRecord {
            level: LEVEL_SEED,
            merge_ns: t0.elapsed().as_nanos() as u64,
            ..WaveRecord::default()
        });
    }
}

/// Identity a parallel propagate shard stamps on its [`ShardSpan`]
/// (present only when the batch is profiled and actually sharded).
#[derive(Clone, Copy)]
struct ShardCtx {
    run: u32,
    wave: u32,
    level: u32,
}

/// Per-item output of one parallel wave shard: the copy-edge
/// contributions `(target representative, objects new to it)` computed
/// against a frozen view of the points-to sets, plus the quiescent
/// unfiltered edges to probe for lazy cycle detection.
#[derive(Default)]
struct ItemOut {
    contribs: Vec<(u32, PtsSet<ObjId>)>,
    lcd: Vec<u32>,
}

/// One target row of a partitioned parallel merge: the handle swapped
/// out of the points-to table (the owning worker mutates it freely),
/// the span of the sorted slot list contributing to it, and the merged
/// delta the coordinator queues after restoring the row.
struct MergeItem {
    target: u32,
    row: PtsHandle<ObjId>,
    slots: (usize, usize),
    delta: PtsSet<ObjId>,
}

/// Merges one partition of target rows. Each [`MergeItem`] exclusively
/// owns its row, so partitions tile the merge with no shared writes;
/// the per-row union order (ascending slot index = ascending batch
/// index) is the same as the sequential merge arm's.
fn merge_partition(part: &mut [MergeItem], slots: &[(u32, usize, usize)], outs: &[(usize, ItemOut)]) {
    for item in part {
        let (si, end) = item.slots;
        item.delta = PtsSet::union_into_from_shards(
            slots[si..end]
                .iter()
                .map(|&(_, oi, ci)| &outs[oi].1.contribs[ci].1),
            item.row.make_mut(),
        );
    }
}

/// One shard of the parallel propagate phase: claims chunks of the
/// level batch off the shared cursor and computes, for every claimed
/// item, its copy-edge contributions against the frozen points-to
/// sets. Reads only — every row was DSU-normalized and every cast
/// range table compiled by the resolve phase. Returns the tagged per-item
/// outputs, whether this shard claimed any chunk at all (the
/// `pta.par_steal_none` signal), and — when `ctx` carries a
/// `(ShardCtx, shard index)` — the shard's busy nanoseconds, recording
/// its execution window as a [`ShardSpan`] for the Chrome trace.
fn shard_worker(
    batch: &[(PtrId, PtsSet<ObjId>)],
    succ: &[Vec<(PtrId, Option<TypeId>)>],
    pts: &[PtsHandle<ObjId>],
    ranges: &FastMap<TypeId, IdRanges>,
    cursor: &AtomicUsize,
    chunk: usize,
    ctx: Option<(ShardCtx, u32)>,
) -> (Vec<(usize, ItemOut)>, bool, u64) {
    let timed = ctx.map(|c| (c, obs::epoch_us(), Instant::now()));
    let mut out: Vec<(usize, ItemOut)> = Vec::new();
    let mut got_any = false;
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= batch.len() {
            break;
        }
        got_any = true;
        let end = (start + chunk).min(batch.len());
        for (bi, &(ptr, ref delta)) in batch.iter().enumerate().take(end).skip(start) {
            let i = ptr.index();
            let mut item = ItemOut::default();
            for &(to, filter) in &succ[i] {
                if to == ptr {
                    continue; // self-edge: never contributes
                }
                let ti = to.index();
                let d = match filter {
                    None => delta.difference(&pts[ti]),
                    Some(ty) => delta.difference_in_ranges(&ranges[&ty], &pts[ti]),
                };
                if d.is_empty() {
                    // Same hint as the sequential path: an unfiltered
                    // edge the delta crossed without growing the target,
                    // with equal endpoint sizes, may close a cycle.
                    if filter.is_none() && pts[i].len() == pts[ti].len() {
                        item.lcd.push(to.0);
                    }
                } else {
                    item.contribs.push((to.0, d));
                }
            }
            if !item.contribs.is_empty() || !item.lcd.is_empty() {
                out.push((bi, item));
            }
        }
    }
    let busy_ns = match timed {
        Some(((c, shard), start_us, t0)) => {
            let busy = t0.elapsed();
            obs::timeline().record_shard(ShardSpan {
                run: c.run,
                wave: c.wave,
                level: c.level,
                shard,
                start_us,
                dur_us: busy.as_micros() as u64,
            });
            busy.as_nanos() as u64
        }
        None => 0,
    };
    (out, got_any, busy_ns)
}

struct Solver<'a, S, H> {
    program: &'a Program,
    selector: &'a S,
    heap: &'a H,
    budget: Budget,
    /// Wave-propagation shard budget (1 = sequential worklist loop).
    threads: usize,
    start: Instant,

    arena: ContextArena,
    objs: ObjTable,

    ptr_map: FastMap<PtrKey, PtrId>,
    ptr_keys: Vec<PtrKey>,
    pts: Vec<PtsHandle<ObjId>>,
    /// Pending (coalesced) delta per pointer; non-empty only on
    /// representatives, and only while the pointer awaits processing.
    /// Pending handles are transient (drained every wave) and are
    /// never sealed — only the long-lived `pts` rows and masks are.
    pending: Vec<PtsHandle<ObjId>>,
    /// Copy edges with an optional declared-type filter (cast edges).
    /// Rows live on representatives; targets are normalized lazily at
    /// processing time and eagerly at every SCC sweep.
    succ: Vec<Vec<Edge>>,
    /// Exact membership mirror of `succ` rows past [`EDGE_SET_MIN`]
    /// entries. `add_edge` is called once per (edge site, replayed
    /// object); on hub rows the linear `contains` scan is the solver's
    /// dominant cost, so long rows carry a hash set that must always
    /// reflect the row's exact (possibly unnormalized) contents.
    succ_set: Vec<Option<Box<FastSet<Edge>>>>,
    loads: Vec<Vec<(FieldId, PtrId)>>,
    stores: Vec<Vec<(FieldId, PtrId)>>,
    calls: Vec<Vec<PendingCall>>,
    /// Range-compiled cast masks: `ranges[ty]` covers every interned
    /// object whose type is a subtype of `ty`, as coalesced id runs
    /// (short under hierarchy numbering — that is the point of the
    /// numbering). Built lazily on the first cast against `ty`,
    /// maintained per newly interned object; never materialized as a
    /// set, so the old `pta.mem_mask_words` bitmap cost is gone.
    ranges: FastMap<TypeId, IdRanges>,

    /// The per-run hash-consing store behind every `pts` row and mask;
    /// shared with the [`AnalysisResult`] so query-surface caches
    /// deduplicate against the same table.
    interner: Arc<SetInterner<ObjId>>,
    /// The canonical sealed empty handle (interner id 0); cloned to
    /// materialize fresh rows and to drain pending slots without
    /// allocating.
    empty: PtsHandle<ObjId>,

    /// The cycle-collapse partition over pointer ids. A pointer's
    /// per-index solver state is authoritative only on `find(p) == p`.
    dsu: DisjointSets,
    /// Topological rank per representative in the condensed copy graph
    /// (sources low), recomputed at each SCC sweep; pointers interned
    /// after the last sweep rank `u32::MAX` (processed last).
    topo: Vec<u32>,
    /// Copy edges added since the last full SCC sweep (the sweep
    /// trigger counter).
    edges_since_sweep: usize,
    /// Unfiltered copy edges already probed by lazy cycle detection.
    lcd_checked: FastSet<(PtrId, PtrId)>,
    /// Quiescent-edge observations awaiting an LCD probe.
    lcd_candidates: Vec<(PtrId, PtrId)>,

    reachable: FastSet<(CtxId, MethodId)>,
    reachable_methods: FastSet<MethodId>,
    /// Context-insensitive call-graph edges.
    cg_edges: FastSet<(CallSiteId, MethodId)>,
    /// Context-sensitive call-graph edge count.
    cs_cg_edges: FastSet<(CtxId, CallSiteId, CtxId, MethodId)>,
    /// Virtual-dispatch memo: `(site, receiver type) → target`.
    /// [`Program::dispatch`] hashes an owned `(String, usize)` key per
    /// call; resolving each pair once makes repeat dispatches
    /// allocation-free.
    dispatch_cache: FastMap<(CallSiteId, TypeId), Option<MethodId>>,
    /// Per-method return variables (cached).
    return_vars: Vec<Vec<VarId>>,

    worklist: VecDeque<PtrId>,
    /// Newly reachable `(context, method)` pairs awaiting statement
    /// processing (kept iterative to bound stack depth on deep call
    /// chains).
    pending_methods: VecDeque<(CtxId, MethodId)>,
    stats: AnalysisStats,

    /// Timeline funnel for this run (inert when observability was off
    /// at run start).
    tl: TimelineSink,
    /// Per-pointer popped-delta words, feeding the hottest-pointer
    /// table; grown alongside `pts` only while profiling.
    hot_words: Vec<u64>,
    /// Per-pointer worklist pops, feeding the hottest-pointer table.
    hot_pops: Vec<u32>,
    /// Largest pending-delta footprint seen at any memory sample.
    pending_peak_words: u64,
    /// `worklist_pops` already mirrored into `pta.live_worklist_pops`.
    live_pops_published: u64,
}

impl<'a, S: ContextSelector, H: HeapAbstraction> Solver<'a, S, H> {
    fn new(
        program: &'a Program,
        selector: &'a S,
        heap: &'a H,
        budget: Budget,
        threads: usize,
        numbering: Numbering,
    ) -> Self {
        let return_vars = program
            .method_ids()
            .map(|m| {
                program
                    .method(m)
                    .body()
                    .iter()
                    .filter_map(|s| match *s {
                        Stmt::Return { value } => value,
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let interner = Arc::new(SetInterner::new());
        let empty = interner.empty_handle();
        Solver {
            program,
            selector,
            heap,
            budget,
            threads: threads.max(1),
            start: Instant::now(),
            arena: ContextArena::new(),
            objs: ObjTable::with_numbering(program, numbering),
            ptr_map: FastMap::default(),
            ptr_keys: Vec::new(),
            pts: Vec::new(),
            pending: Vec::new(),
            succ: Vec::new(),
            succ_set: Vec::new(),
            loads: Vec::new(),
            stores: Vec::new(),
            calls: Vec::new(),
            ranges: FastMap::default(),
            interner,
            empty,
            dsu: DisjointSets::new(0),
            topo: Vec::new(),
            edges_since_sweep: 0,
            lcd_checked: FastSet::default(),
            lcd_candidates: Vec::new(),
            reachable: FastSet::default(),
            reachable_methods: FastSet::default(),
            cg_edges: FastSet::default(),
            cs_cg_edges: FastSet::default(),
            dispatch_cache: FastMap::default(),
            return_vars,
            worklist: VecDeque::new(),
            pending_methods: VecDeque::new(),
            stats: AnalysisStats::default(),
            tl: TimelineSink::new(),
            hot_words: Vec::new(),
            hot_pops: Vec::new(),
            pending_peak_words: 0,
            live_pops_published: 0,
        }
    }

    fn solve(mut self) -> Result<AnalysisResult, Unscalable> {
        {
            let _init = obs::span("solver.init");
            let t0 = self.tl.now();
            let empty = self.arena.empty();
            self.mark_reachable(empty, self.program.entry());
            self.stats.init_time = self.start.elapsed();
            self.tl.overhead_since(t0);
        }

        let fixpoint_start = Instant::now();
        let fixpoint_span = obs::span("solver.fixpoint");
        let delta_hist = obs::histogram("pta.worklist_delta_size");
        let mut since_check = 0usize;
        'fixpoint: loop {
            // Statement processing first: it seeds objects and edges the
            // wave below will propagate.
            let t_seed = if self.pending_methods.is_empty() {
                None
            } else {
                self.tl.now()
            };
            while let Some((ctx, method)) = self.pending_methods.pop_front() {
                self.process_method(ctx, method);
            }
            self.tl.seed_since(t_seed);
            if self.worklist.is_empty() {
                break 'fixpoint;
            }

            // Wave boundary: collapse cycles found since the last wave,
            // then re-sweep whenever the copy graph changed — a sweep is
            // O(V + E), negligible next to the propagation it orders,
            // and fresh topological ranks are what make the wave pay
            // off (stale ranks degenerate toward FIFO).
            let t_over = self.tl.now();
            self.apply_lcd();
            if self.edges_since_sweep >= self.boundary_sweep_threshold() {
                self.collapse_sweep();
            }

            // One wave: dirty pointers in topological rank order.
            self.stats.wave_rounds += 1;
            self.tl.wave = self.stats.wave_rounds as u32;
            let dirty: Vec<PtrId> = self.worklist.drain(..).collect();
            let mut wave: BinaryHeap<Reverse<(u32, u32)>> = dirty
                .into_iter()
                .map(|p| Reverse((self.rank(p), p.0)))
                .collect();
            let mut next_wave: Vec<PtrId> = Vec::new();
            self.tl.overhead_since(t_over);

            let overrun = if self.threads > 1 {
                self.wave_parallel(&mut wave, &mut next_wave, &delta_hist, &mut since_check)
            } else {
                self.wave_sequential(&mut wave, &mut next_wave, &delta_hist, &mut since_check)
            };
            if overrun {
                drop(fixpoint_span);
                return Err(self.overrun(fixpoint_start));
            }
            self.worklist.extend(next_wave);
            // Seal before any memory sample so the sample sees the
            // deduplicated footprint the sweep just established.
            if self.stats.wave_rounds.is_multiple_of(SEAL_SWEEP_WAVES) {
                self.seal_dirty();
            }
            if self.tl.on {
                obs::counter("pta.live_wave_rounds").inc();
                let pops = self.stats.worklist_pops;
                obs::counter("pta.live_worklist_pops").add(pops - self.live_pops_published);
                self.live_pops_published = pops;
                if self.stats.wave_rounds.is_multiple_of(TL_MEM_SAMPLE_WAVES) {
                    self.sample_memory(self.stats.wave_rounds as u32);
                }
            }
        }
        drop(fixpoint_span);
        self.stats.fixpoint_time = fixpoint_start.elapsed();

        let finalize_start = Instant::now();
        let finalize_span = obs::span("solver.finalize");
        self.stats.context_count = self.arena.len();
        self.stats.call_graph_edges = self.cg_edges.len() as u64;
        // One last seal sweep deduplicates whatever mutated since the
        // previous one; `seal_dirty` folds the post-seal physical
        // footprint into the running `pts_peak_words` maximum.
        self.seal_dirty();
        self.stats.pts_interned = self.interner.interned();
        self.stats.pts_dedup_hits = self.interner.dedup_hits();
        self.stats.dsu_ops = self.dsu.ops();
        self.stats.mask_ranges = self.ranges.values().map(|r| r.run_count() as u64).sum();
        if obs::enabled() {
            let pts_hist = obs::histogram("pta.points_to_set_size");
            for set in &self.pts {
                pts_hist.record(set.len() as u64);
            }
            obs::gauge("pta.pointer_nodes").set(self.pts.len() as i64);
        }
        if self.tl.on {
            // Final memory attribution. Every sample is taken right
            // after a seal sweep, so the retained (largest-`rep_words`)
            // sample's physical footprint is exactly the
            // `pts_peak_words` running maximum this run reports.
            self.sample_memory(0);
            self.publish_top_pointers();
            obs::gauge("pta.pending_peak_words").set(self.pending_peak_words as i64);
        }
        let result = AnalysisResult::from_parts(
            self.arena,
            self.objs,
            self.ptr_keys,
            self.ptr_map,
            self.pts,
            self.interner,
            self.dsu.snapshot(),
            self.reachable,
            self.reachable_methods,
            self.cg_edges,
            self.cs_cg_edges.len(),
            AnalysisStats::default(), // placeholder, replaced below
        );
        drop(finalize_span);
        self.stats.finalize_time = finalize_start.elapsed();
        self.tl.batch(WaveRecord {
            level: LEVEL_OVERHEAD,
            resolve_ns: self.stats.finalize_time.as_nanos() as u64,
            ..WaveRecord::default()
        });
        self.tl.flush_residual();
        self.stats.elapsed = self.start.elapsed();
        self.stats.publish();
        Ok(result.with_stats(self.stats))
    }

    /// Final bookkeeping of a budget-overrun exit.
    fn overrun(&mut self, fixpoint_start: Instant) -> Unscalable {
        self.stats.fixpoint_time = fixpoint_start.elapsed();
        self.stats.elapsed = self.start.elapsed();
        self.stats.context_count = self.arena.len();
        self.stats.call_graph_edges = self.cg_edges.len() as u64;
        self.seal_dirty();
        self.stats.pts_interned = self.interner.interned();
        self.stats.pts_dedup_hits = self.interner.dedup_hits();
        self.stats.dsu_ops = self.dsu.ops();
        self.stats.mask_ranges = self.ranges.values().map(|r| r.run_count() as u64).sum();
        if self.tl.on {
            // An aborted run may still be the process peak: sample it
            // so the memory categories cover whatever `pts_peak_words`
            // the bench record ends up reporting.
            self.sample_memory(self.stats.wave_rounds as u32);
            self.publish_top_pointers();
            obs::gauge("pta.pending_peak_words").set(self.pending_peak_words as i64);
            self.tl.flush_residual();
        }
        self.stats.publish();
        Unscalable {
            elapsed: self.start.elapsed(),
            methods_processed: self.reachable.len(),
            stats: Box::new(self.stats.clone()),
        }
    }

    /// Points-to row footprint as `(physical, logical)` words:
    /// physical counts each allocation once (rows sealed onto the same
    /// interned set share one), logical counts every row as if it were
    /// unshared — the pre-interning number, and the dedup win is their
    /// ratio.
    fn pts_words(&self) -> (u64, u64) {
        let mut seen: FastSet<usize> = FastSet::default();
        let mut physical = 0u64;
        let mut logical = 0u64;
        for h in &self.pts {
            let w = h.mem_words() as u64;
            logical += w;
            if seen.insert(h.addr()) {
                physical += w;
            }
        }
        (physical, logical)
    }

    /// Re-interns every dirty points-to row, evicts interner entries
    /// nothing references anymore, and folds the post-seal physical
    /// footprint into the `pts_peak_words` running maximum. Probe time
    /// lands in `intern_probe_ns`. (Cast masks used to be sealed here
    /// too; as compiled range tables they are never interned at all.)
    fn seal_dirty(&mut self) {
        let t0 = Instant::now();
        for h in &mut self.pts {
            h.seal(&self.interner);
        }
        self.interner.evict_dead();
        self.stats.intern_probe_ns += t0.elapsed().as_nanos() as u64;
        let (physical, _) = self.pts_words();
        self.stats.pts_peak_words = self.stats.pts_peak_words.max(physical);
    }

    /// Takes one memory-attribution sample (`wave` 0 = finalize) and
    /// mirrors it into the `pta.mem_*` gauges when it becomes the
    /// retained (largest-`rep_words`) sample. Scans every set, so
    /// callers keep it off the per-wave hot path.
    fn sample_memory(&mut self, wave: u32) {
        let (rep_words, logical_words) = self.pts_words();
        let pending_words: u64 = self.pending.iter().map(|s| s.mem_words() as u64).sum();
        // Compiled range tables cost one word per run — the whole
        // point of the compilation; this attribution used to be the
        // mask bitmaps' footprint.
        let mask_words: u64 = self.ranges.values().map(|r| r.mem_words() as u64).sum();
        self.pending_peak_words = self.pending_peak_words.max(pending_words);
        self.stats.pts_peak_words = self.stats.pts_peak_words.max(rep_words);
        obs::gauge("pta.live_pts_words").set(rep_words as i64);
        let retained = obs::timeline().offer_memory(MemoryBreakdown {
            run: self.tl.run,
            wave,
            rep_words,
            logical_words,
            pending_words,
            mask_words,
        });
        if retained {
            obs::gauge("pta.mem_rep_words").set(rep_words as i64);
            obs::gauge("pta.mem_logical_words").set(logical_words as i64);
            obs::gauge("pta.mem_pending_words").set(pending_words as i64);
            obs::gauge("pta.mem_mask_words").set(mask_words as i64);
        }
    }

    /// Builds the hottest-pointer table (top [`TL_TOP_K`] popped-delta
    /// word totals) and offers it to the timeline, scored by this
    /// run's total popped words.
    fn publish_top_pointers(&self) {
        let total: u64 = self.hot_words.iter().sum();
        if total == 0 {
            return;
        }
        let mut idx: Vec<u32> = (0..self.hot_words.len() as u32)
            .filter(|&i| self.hot_words[i as usize] > 0)
            .collect();
        idx.sort_unstable_by_key(|&i| (Reverse(self.hot_words[i as usize]), i));
        idx.truncate(TL_TOP_K);
        // Count collapsed-SCC members for just the selected reps.
        let mut scc_size: FastMap<u32, u32> = idx.iter().map(|&i| (i, 0)).collect();
        for p in 0..self.pts.len() {
            if let Some(c) = scc_size.get_mut(&(self.dsu.find(p) as u32)) {
                *c += 1;
            }
        }
        let rows: Vec<HotPointer> = idx
            .iter()
            .enumerate()
            .map(|(k, &i)| {
                let ii = i as usize;
                HotPointer {
                    rank: k as u32 + 1,
                    key: format!("{:?}", self.ptr_keys[ii]),
                    words: self.hot_words[ii],
                    pops: u64::from(self.hot_pops[ii]),
                    set_len: self.pts[self.dsu.find(ii)].len() as u64,
                    scc_size: scc_size.get(&i).copied().unwrap_or(1).max(1),
                }
            })
            .collect();
        obs::timeline().offer_top_pointers(total, rows);
    }

    // --- Cycle collapse ----------------------------------------------------

    /// Returns the representative of `p` in the collapse partition.
    fn rep(&self, p: PtrId) -> PtrId {
        PtrId(self.dsu.find(p.index()) as u32)
    }

    /// Topological rank of `p`'s representative in the condensed copy
    /// graph (low = upstream); pointers interned after the last sweep
    /// rank last.
    fn rank(&self, p: PtrId) -> u32 {
        self.topo
            .get(self.dsu.find(p.index()))
            .copied()
            .unwrap_or(u32::MAX)
    }

    /// Copy edges to accumulate before the next full SCC sweep.
    fn sweep_threshold(&self) -> usize {
        (self.pts.len() / 4).max(4096)
    }

    /// Copy edges that justify a full sweep at a wave boundary. A sweep
    /// is O(V + E); running it after *every* edge trickle made sweeps a
    /// top-three cost on the large workloads. Pointers added since the
    /// last sweep rank `u32::MAX` and are processed in the trailing
    /// unranked batch, so stale ranks cost extra pops, not correctness
    /// — the threshold trades a few re-pops for thousands of sweeps.
    fn boundary_sweep_threshold(&self) -> usize {
        (self.pts.len() / 64).max(256)
    }

    /// Routes pointers dirtied since the last routing step: downstream
    /// of the wave cursor joins the running wave, upstream waits for
    /// the next one.
    fn route_dirty(
        &mut self,
        wave: &mut BinaryHeap<Reverse<(u32, u32)>>,
        next_wave: &mut Vec<PtrId>,
        cursor_rank: u32,
    ) {
        while let Some(q) = self.worklist.pop_front() {
            let r = self.rank(q);
            if r >= cursor_rank {
                wave.push(Reverse((r, q.0)));
            } else {
                next_wave.push(q);
            }
        }
    }

    /// Processes one wave with the classic sequential per-pop loop
    /// (`threads == 1`). Returns `true` on budget overrun.
    fn wave_sequential(
        &mut self,
        wave: &mut BinaryHeap<Reverse<(u32, u32)>>,
        next_wave: &mut Vec<PtrId>,
        delta_hist: &obs::Histogram,
        since_check: &mut usize,
    ) -> bool {
        // Consecutive pops at one topological rank coalesce into one
        // timeline record (the sequential analogue of a level batch).
        let mut cur = WaveRecord::default();
        let mut cur_any = false;
        while let Some(Reverse((cursor_rank, pi))) = wave.pop() {
            // Collapse between pops only — no row iteration is on
            // the stack here, so merging solver state is safe.
            if self.lcd_candidates.len() >= LCD_BATCH
                || self.edges_since_sweep >= self.sweep_threshold()
            {
                let t0 = self.tl.now();
                self.apply_lcd();
                if self.edges_since_sweep >= self.sweep_threshold() {
                    self.collapse_sweep();
                }
                self.route_dirty(wave, next_wave, cursor_rank);
                self.tl.overhead_since(t0);
            }

            *since_check += 1;
            if *since_check >= 4096 {
                *since_check = 0;
                if self.start.elapsed() > self.budget.time_limit {
                    if cur_any {
                        self.tl.batch(std::mem::take(&mut cur));
                    }
                    self.tl.flush_residual();
                    return true;
                }
            }

            let ptr = PtrId(pi);
            // A stale entry (pointer collapsed into a representative
            // or already drained by an earlier duplicate) carries no
            // pending delta; skip it without counting a pop. Draining
            // swaps in the shared empty handle and unwraps the taken
            // handle in place (pending handles are uniquely owned).
            let delta = self.take_pending(ptr).into_set();
            if delta.is_empty() {
                continue;
            }
            self.stats.worklist_pops += 1;
            delta_hist.record(delta.len() as u64);
            if self.tl.on {
                let level = cursor_rank.min(LEVEL_UNRANKED);
                if cur_any && cur.level != level {
                    self.tl.batch(std::mem::take(&mut cur));
                }
                cur.level = level;
                cur.shards = 1;
                cur_any = true;
                cur.pops += 1;
                cur.objects += delta.len() as u64;
                cur.words += delta.mem_words() as u64;
                self.hot_words[ptr.index()] += delta.mem_words() as u64;
                self.hot_pops[ptr.index()] += 1;
            }
            let t0 = self.tl.now();
            self.process(ptr, &delta);
            let t1 = self.tl.now();
            while let Some((ctx, method)) = self.pending_methods.pop_front() {
                self.process_method(ctx, method);
            }
            if let (Some(t0), Some(t1)) = (t0, t1) {
                cur.propagate_ns += t1.duration_since(t0).as_nanos() as u64;
                cur.merge_ns += t1.elapsed().as_nanos() as u64;
            }
            self.route_dirty(wave, next_wave, cursor_rank);
        }
        if cur_any {
            self.tl.batch(std::mem::take(&mut cur));
        }
        self.tl.flush_residual();
        false
    }

    /// Processes one wave level-synchronously (`threads > 1`): all
    /// dirty pointers sharing the lowest outstanding topological level
    /// form one batch handed to [`Solver::process_level`]. Returns
    /// `true` on budget overrun.
    fn wave_parallel(
        &mut self,
        wave: &mut BinaryHeap<Reverse<(u32, u32)>>,
        next_wave: &mut Vec<PtrId>,
        delta_hist: &obs::Histogram,
        since_check: &mut usize,
    ) -> bool {
        while let Some(&Reverse((level, _))) = wave.peek() {
            // Collapse between batches only: shard workers read the
            // copy rows and the partition, so both must be stable for
            // the whole batch.
            if self.lcd_candidates.len() >= LCD_BATCH
                || self.edges_since_sweep >= self.sweep_threshold()
            {
                let t0 = self.tl.now();
                self.apply_lcd();
                if self.edges_since_sweep >= self.sweep_threshold() {
                    self.collapse_sweep();
                }
                self.route_dirty(wave, next_wave, level);
                self.tl.overhead_since(t0);
            }

            // Drain the level. Equal-level pointers share no unfiltered
            // copy edge (levels are longest-path depths of the condensed
            // graph), so their deltas can propagate from one frozen
            // snapshot concurrently. A filtered (cast) edge may connect
            // level peers; its target simply re-dirties and pops again
            // in a later batch.
            let mut batch: Vec<(PtrId, PtsSet<ObjId>)> = Vec::new();
            while let Some(&Reverse((r, pi))) = wave.peek() {
                if r != level {
                    break;
                }
                wave.pop();
                let ptr = PtrId(pi);
                let delta = self.take_pending(ptr);
                if !delta.is_empty() {
                    batch.push((ptr, delta.into_set()));
                }
            }
            if batch.is_empty() {
                continue;
            }

            *since_check += batch.len();
            if *since_check >= 4096 {
                *since_check = 0;
                if self.start.elapsed() > self.budget.time_limit {
                    self.tl.flush_residual();
                    return true;
                }
            }

            self.process_level(&batch, level.min(LEVEL_UNRANKED), delta_hist);
            self.route_dirty(wave, next_wave, level);
        }
        self.tl.flush_residual();
        false
    }

    /// Processes one level batch in the three phases described in the
    /// module docs: sequential resolve, parallel read-only propagate,
    /// sequential deterministic merge. `level` is the batch's
    /// topological level (clamped to `LEVEL_UNRANKED`), used only for
    /// timeline attribution.
    fn process_level(
        &mut self,
        batch: &[(PtrId, PtsSet<ObjId>)],
        level: u32,
        delta_hist: &obs::Histogram,
    ) {
        let t_resolve = self.tl.now();
        let mut objects = 0u64;
        let mut words = 0u64;
        let mut est_work = 0u64;
        // Resolve: normalize every copy row in the batch through the
        // DSU (`Cell`-based, not `Sync`) and compile every cast range
        // table a shard might read. Rows stay sorted enough for the
        // workers: duplicates introduced by normalization are harmless
        // (unions are idempotent).
        for &(ptr, ref delta) in batch {
            let i = ptr.index();
            self.stats.worklist_pops += 1;
            delta_hist.record(delta.len() as u64);
            self.stats.delta_objects += delta.len() as u64;
            est_work += self.succ[i].len() as u64 * delta.len() as u64;
            if self.has_consumers(i) {
                self.stats.propagated_objects += delta.len() as u64;
            }
            if self.tl.on {
                objects += delta.len() as u64;
                words += delta.mem_words() as u64;
                self.hot_words[i] += delta.mem_words() as u64;
                self.hot_pops[i] += 1;
            }
            let mut changed = false;
            for k in 0..self.succ[i].len() {
                let (to_raw, filter) = self.succ[i][k];
                let to = self.rep(to_raw);
                if to != to_raw {
                    self.succ[i][k].0 = to;
                    changed = true;
                }
                if let Some(ty) = filter {
                    self.ensure_ranges(ty);
                    // The propagate shards answer this edge from the
                    // compiled table; count it here where stats are
                    // mutable.
                    self.stats.range_union_hits += 1;
                }
            }
            if changed && self.succ_set[i].is_some() {
                self.rebuild_succ_set(i);
            }
        }

        // Propagate: shards claim chunks of the batch off an atomic
        // cursor and compute copy-edge contributions against a frozen
        // view of the points-to sets — no shared writes at all.
        let t_prop = self.tl.now();
        let shards = if batch.len() >= PAR_MIN_BATCH && est_work >= PAR_MIN_WORK {
            self.threads
                .min(batch.len().div_ceil(PAR_SHARD_ITEMS))
                .max(1)
        } else {
            1
        };
        let chunk = batch.len().div_ceil(shards * 4).max(1);
        let cursor = AtomicUsize::new(0);
        let mut busy_ns = 0u64;
        let mut outs: Vec<(usize, ItemOut)> = if shards > 1 {
            self.stats.par_shards += shards as u64;
            let shard_ctx = if self.tl.on {
                Some(ShardCtx {
                    run: self.tl.run,
                    wave: self.tl.wave,
                    level,
                })
            } else {
                None
            };
            let succ = &self.succ;
            let pts = &self.pts;
            let ranges = &self.ranges;
            let cursor = &cursor;
            let (outs, steal_none, barrier_ns, busy) = std::thread::scope(|s| {
                let handles: Vec<_> = (1..shards)
                    .map(|k| {
                        let ctx = shard_ctx.map(|c| (c, k as u32));
                        s.spawn(move || shard_worker(batch, succ, pts, ranges, cursor, chunk, ctx))
                    })
                    .collect();
                let (mut outs, _, mut busy) =
                    shard_worker(batch, succ, pts, ranges, cursor, chunk, shard_ctx.map(|c| (c, 0)));
                let barrier_start = Instant::now();
                let mut steal_none = 0u64;
                for h in handles {
                    let (o, got_any, b) = h.join().expect("wave shard worker panicked");
                    if !got_any {
                        steal_none += 1;
                    }
                    busy += b;
                    outs.extend(o);
                }
                (outs, steal_none, barrier_start.elapsed().as_nanos() as u64, busy)
            });
            self.stats.par_steal_none += steal_none;
            self.stats.wave_barrier_ns += barrier_ns;
            busy_ns = busy;
            outs
        } else {
            shard_worker(batch, &self.succ, &self.pts, &self.ranges, &cursor, batch.len(), None).0
        };
        // Shards report in join order; batch index restores the one
        // true order before anything downstream looks at the results.
        let t_merge = self.tl.now();
        outs.sort_unstable_by_key(|&(bi, _)| bi);

        // Merge: apply contributions target-by-target in ascending
        // pointer-id order (ties broken by batch index), so the writes
        // depend only on the batch contents — never on thread count.
        let mut slots: Vec<(u32, usize, usize)> = Vec::new();
        for (oi, (_, item)) in outs.iter().enumerate() {
            for (ci, &(target, _)) in item.contribs.iter().enumerate() {
                slots.push((target, oi, ci));
            }
        }
        slots.sort_unstable();
        // Group the slot list by target: each group owns exactly one
        // points-to row, so groups form disjoint partitions that can
        // merge on worker threads without any synchronization.
        let mut groups: Vec<(u32, usize, usize)> = Vec::new();
        let mut si = 0;
        while si < slots.len() {
            let target = slots[si].0;
            let mut end = si;
            while end < slots.len() && slots[end].0 == target {
                end += 1;
            }
            groups.push((target, si, end));
            si = end;
        }
        let merge_shards = if shards > 1 && groups.len() >= PAR_MIN_MERGE {
            self.threads.min(groups.len().div_ceil(PAR_SHARD_ITEMS)).max(1)
        } else {
            1
        };
        if merge_shards > 1 {
            // Partitioned parallel merge: swap every target's handle
            // out of the table, hand workers contiguous partitions of
            // rows they exclusively own, then restore the handles and
            // queue the deltas sequentially in ascending target order
            // — the exact order the sequential arm below uses, so any
            // thread count still produces bit-identical results.
            self.stats.par_merge_shards += merge_shards as u64;
            let mut work: Vec<MergeItem> = groups
                .iter()
                .map(|&(t, si, end)| MergeItem {
                    target: t,
                    row: std::mem::replace(&mut self.pts[t as usize], self.empty.clone()),
                    slots: (si, end),
                    delta: PtsSet::new(),
                })
                .collect();
            let part = work.len().div_ceil(merge_shards);
            let slots_ref = &slots;
            let outs_ref = &outs;
            std::thread::scope(|s| {
                let mut rest: &mut [MergeItem] = &mut work;
                while rest.len() > part {
                    let (head, tail) = rest.split_at_mut(part);
                    s.spawn(move || merge_partition(head, slots_ref, outs_ref));
                    rest = tail;
                }
                merge_partition(rest, slots_ref, outs_ref);
            });
            for item in work {
                self.pts[item.target as usize] = item.row;
                self.queue_delta(PtrId(item.target), item.delta);
            }
        } else {
            for &(target, si, end) in &groups {
                // Every contribution was computed as a non-empty
                // difference against this exact target state, so the
                // merge always grows it — `make_mut` here never copies
                // without cause.
                let delta = PtsSet::union_into_from_shards(
                    slots[si..end]
                        .iter()
                        .map(|&(_, oi, ci)| &outs[oi].1.contribs[ci].1),
                    self.pts[target as usize].make_mut(),
                );
                self.queue_delta(PtrId(target), delta);
            }
        }

        // Quiescent edges spotted by the shards feed lazy cycle
        // detection exactly as in the sequential path.
        for (bi, item) in &outs {
            let from = batch[*bi].0;
            for &to in &item.lcd {
                let to = PtrId(to);
                if self.lcd_checked.insert((from, to)) {
                    self.lcd_candidates.push((from, to));
                }
            }
        }

        // Non-copy consumers (field loads/stores, call dispatch) mutate
        // solver state freely, so they run sequentially in batch order,
        // after all copy contributions have landed.
        for &(ptr, ref delta) in batch {
            self.process_consumers(ptr, delta);
            while let Some((ctx, method)) = self.pending_methods.pop_front() {
                self.process_method(ctx, method);
            }
        }

        if let (Some(t_resolve), Some(t_prop), Some(t_merge)) = (t_resolve, t_prop, t_merge) {
            let propagate_ns = t_merge.duration_since(t_prop).as_nanos() as u64;
            // Sharded batches account busy from the workers' own
            // clocks; idle is the propagate wall the shards did not
            // spend computing (scheduling skew plus the level barrier).
            let (busy, idle) = if shards > 1 {
                let wall = propagate_ns * shards as u64;
                (busy_ns, wall.saturating_sub(busy_ns))
            } else {
                (propagate_ns, 0)
            };
            self.tl.batch(WaveRecord {
                run: 0, // stamped by the sink
                wave: 0,
                level,
                pops: batch.len() as u32,
                objects,
                words,
                resolve_ns: t_prop.duration_since(t_resolve).as_nanos() as u64,
                propagate_ns,
                merge_ns: t_merge.elapsed().as_nanos() as u64,
                shards: shards as u32,
                busy_ns: busy,
                idle_ns: idle,
            });
        }
    }

    /// Probes every pending LCD candidate edge `from → to` for a return
    /// path `to ⇝ from` and collapses each cycle found.
    fn apply_lcd(&mut self) {
        if self.lcd_candidates.is_empty() {
            return;
        }
        let cands = std::mem::take(&mut self.lcd_candidates);
        for (from, to) in cands {
            let (from, to) = (self.rep(from), self.rep(to));
            if from == to {
                continue; // already collapsed by an earlier candidate
            }
            if let Some(cycle) = self.find_cycle(to, from) {
                self.collapse_scc(&cycle);
            }
        }
    }

    /// Bounded DFS from `start` over unfiltered copy edges looking for
    /// `target`; returns the path (representatives, `start ..= target`)
    /// if found. Together with the triggering edge `target → start`,
    /// the path is one cycle.
    fn find_cycle(&self, start: PtrId, target: PtrId) -> Option<Vec<u32>> {
        let mut visited: FastSet<u32> = FastSet::default();
        visited.insert(start.0);
        let mut path: Vec<(u32, usize)> = vec![(start.0, 0)];
        let mut budget = LCD_DFS_LIMIT;
        'dfs: while let Some(&(v, _)) = path.last() {
            let vi = v as usize;
            loop {
                let cursor = path.last().unwrap().1;
                if cursor >= self.succ[vi].len() {
                    path.pop();
                    continue 'dfs;
                }
                path.last_mut().unwrap().1 = cursor + 1;
                let (to, filter) = self.succ[vi][cursor];
                if filter.is_some() {
                    continue;
                }
                let w = self.dsu.find(to.index()) as u32;
                if w == target.0 {
                    let mut cycle: Vec<u32> = path.iter().map(|&(n, _)| n).collect();
                    cycle.push(target.0);
                    return Some(cycle);
                }
                if w as usize == vi || !visited.insert(w) {
                    continue;
                }
                if budget == 0 {
                    return None;
                }
                budget -= 1;
                path.push((w, 0));
                continue 'dfs;
            }
        }
        None
    }

    /// Collapses one strongly connected component (all members must be
    /// current representatives): unions the members, moves every
    /// member's points-to set, pending delta, and consumer rows onto
    /// the surviving representative, and queues whatever some member's
    /// consumers have not seen yet.
    fn collapse_scc(&mut self, members: &[u32]) {
        debug_assert!(members.len() > 1);
        for w in members.windows(2) {
            self.dsu.union(w[0] as usize, w[1] as usize);
        }
        let r = self.dsu.find(members[0] as usize);

        let mut merged: PtsSet<ObjId> = PtsSet::new();
        let mut pend: PtsSet<ObjId> = PtsSet::new();
        let mut olds: Vec<(PtsHandle<ObjId>, bool)> = Vec::with_capacity(members.len());
        for &m in members {
            let mi = m as usize;
            let pts_m = std::mem::replace(&mut self.pts[mi], self.empty.clone());
            let pend_m = self.take_pending(PtrId(m));
            pend.union_with(&pend_m);
            merged.union_with(&pts_m);
            olds.push((pts_m, self.has_consumers(mi)));
        }
        // A member's consumers have seen `pts \ pending`; after the
        // merge they hang off the representative, so the pending delta
        // must cover `merged \ (pts \ pending) = (merged \ pts) ∪
        // pending` for every consumer-carrying member. Replaying an
        // object a consumer already saw is idempotent, so the union
        // over members is sound.
        for (old, has_consumers) in &olds {
            if *has_consumers && old.len() != merged.len() {
                pend.union_with(&merged.difference(old));
            }
        }

        let mut succ_r: Vec<(PtrId, Option<TypeId>)> = Vec::new();
        let mut loads_r: Vec<(FieldId, PtrId)> = Vec::new();
        let mut stores_r: Vec<(FieldId, PtrId)> = Vec::new();
        let mut calls_r: Vec<PendingCall> = Vec::new();
        for &m in members {
            let mi = m as usize;
            succ_r.append(&mut self.succ[mi]);
            self.succ_set[mi] = None;
            loads_r.append(&mut self.loads[mi]);
            stores_r.append(&mut self.stores[mi]);
            calls_r.append(&mut self.calls[mi]);
        }
        // Normalize the merged copy row; intra-SCC unfiltered edges
        // became self-loops and can never contribute again. (Filtered
        // self-loops are kept but skipped at processing time.)
        for e in &mut succ_r {
            e.0 = PtrId(self.dsu.find(e.0.index()) as u32);
        }
        succ_r.retain(|&(to, f)| !(to.index() == r && f.is_none()));
        succ_r.sort_unstable();
        succ_r.dedup();
        loads_r.sort_unstable();
        loads_r.dedup();
        stores_r.sort_unstable();
        stores_r.dedup();
        calls_r.sort_unstable();
        calls_r.dedup();
        self.succ[r] = succ_r;
        self.rebuild_succ_set(r);
        self.loads[r] = loads_r;
        self.stores[r] = stores_r;
        self.calls[r] = calls_r;

        self.stats.scc_collapsed_ptrs += (members.len() - 1) as u64;
        self.pts[r] = PtsHandle::from_set(merged);
        if !pend.is_empty() {
            self.pending[r] = PtsHandle::from_set(pend);
            self.worklist.push_back(PtrId(r as u32));
        }
    }

    /// Full cycle collapse: iterative Tarjan over the condensed copy
    /// graph (unfiltered edges between representatives), collapsing
    /// every multi-node SCC and recomputing the topological ranks used
    /// by wave scheduling.
    fn collapse_sweep(&mut self) {
        self.stats.collapse_sweeps += 1;
        self.edges_since_sweep = 0;
        let n = self.pts.len();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        // SCCs in Tarjan emission order: a component is emitted only
        // after everything it reaches, i.e. sinks first.
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        let mut frames: Vec<(u32, usize)> = Vec::new();

        for s in 0..n as u32 {
            if index[s as usize] != UNVISITED || self.dsu.find(s as usize) != s as usize {
                continue;
            }
            index[s as usize] = next_index;
            low[s as usize] = next_index;
            next_index += 1;
            on_stack[s as usize] = true;
            stack.push(s);
            frames.push((s, 0));
            'dfs: while let Some(&(v, _)) = frames.last() {
                let vi = v as usize;
                loop {
                    let cursor = frames.last().unwrap().1;
                    if cursor >= self.succ[vi].len() {
                        break;
                    }
                    frames.last_mut().unwrap().1 = cursor + 1;
                    let (to, filter) = self.succ[vi][cursor];
                    if filter.is_some() {
                        continue;
                    }
                    let w = self.dsu.find(to.index()) as u32;
                    let wi = w as usize;
                    if wi == vi {
                        continue;
                    }
                    if index[wi] == UNVISITED {
                        index[wi] = next_index;
                        low[wi] = next_index;
                        next_index += 1;
                        on_stack[wi] = true;
                        stack.push(w);
                        frames.push((w, 0));
                        continue 'dfs;
                    } else if on_stack[wi] {
                        low[vi] = low[vi].min(index[wi]);
                    }
                }
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
                if low[vi] == index[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("Tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
            }
        }

        // Wave order wants sources first, and parallel batching wants
        // the rank to be a *level* — the longest-path depth in the
        // condensed DAG — so that equal-rank components share no
        // unfiltered copy edge and a whole level can propagate from one
        // frozen snapshot. Tarjan emitted sinks first, so iterating
        // components in reverse emission order finalizes every
        // predecessor before its successors are relaxed: one pass over
        // the condensed edges suffices.
        let mut scc_of = vec![UNVISITED; n];
        for (e, comp) in sccs.iter().enumerate() {
            for &m in comp {
                scc_of[m as usize] = e as u32;
            }
        }
        let mut level = vec![0u32; sccs.len()];
        for e in (0..sccs.len()).rev() {
            let l = level[e];
            for &m in &sccs[e] {
                for &(to, filter) in &self.succ[m as usize] {
                    if filter.is_some() {
                        continue;
                    }
                    let we = scc_of[self.dsu.find(to.index())];
                    if we == e as u32 || we == UNVISITED {
                        continue;
                    }
                    let d = &mut level[we as usize];
                    *d = (*d).max(l + 1);
                }
            }
        }
        self.topo = vec![UNVISITED; n];
        for (e, comp) in sccs.iter().enumerate() {
            for &m in comp {
                self.topo[m as usize] = level[e];
            }
        }
        for comp in &sccs {
            if comp.len() > 1 {
                self.collapse_scc(comp);
            }
        }
        // Tidy surviving rows: renormalize targets against the new
        // partition and drop duplicates so later pops scan less.
        for i in 0..n {
            if self.dsu.find(i) != i || self.succ[i].is_empty() {
                continue;
            }
            let row = &mut self.succ[i];
            for e in row.iter_mut() {
                e.0 = PtrId(self.dsu.find(e.0.index()) as u32);
            }
            row.retain(|&(to, f)| !(to.index() == i && f.is_none()));
            row.sort_unstable();
            row.dedup();
            self.rebuild_succ_set(i);
        }
    }

    // --- Pointer graph primitives ----------------------------------------

    /// Re-derives the membership mirror of `succ[i]` after the row was
    /// mutated in place (normalization, collapse merge, tidy). Keeps
    /// the invariant: a mirror exists iff the row is long, and answers
    /// membership over exactly the row's current contents.
    fn rebuild_succ_set(&mut self, i: usize) {
        if self.succ[i].len() >= EDGE_SET_MIN {
            self.succ_set[i] = Some(Box::new(self.succ[i].iter().copied().collect()));
        } else {
            self.succ_set[i] = None;
        }
    }

    fn ptr(&mut self, key: PtrKey) -> PtrId {
        if let Some(&p) = self.ptr_map.get(&key) {
            return p;
        }
        let p = PtrId(u32::try_from(self.ptr_keys.len()).expect("too many pointers"));
        self.ptr_map.insert(key, p);
        self.ptr_keys.push(key);
        self.pts.push(self.empty.clone());
        self.pending.push(self.empty.clone());
        self.succ.push(Vec::new());
        self.succ_set.push(None);
        self.loads.push(Vec::new());
        self.stores.push(Vec::new());
        self.calls.push(Vec::new());
        self.dsu.push();
        if self.tl.on {
            self.hot_words.push(0);
            self.hot_pops.push(0);
        }
        p
    }

    fn var_ptr(&mut self, ctx: CtxId, var: VarId) -> PtrId {
        self.ptr(PtrKey::Var(ctx, var))
    }

    /// Interns an abstract object and keeps the lazily compiled range
    /// tables consistent: a table must cover every object whose type
    /// passes its cast, including objects interned after it was built.
    /// Under hierarchy numbering same-type ids are consecutive, so the
    /// insert almost always extends an existing run in place.
    fn intern_obj(&mut self, hctx: CtxId, alloc: AllocId) -> ObjId {
        let before = self.objs.len();
        let obj = self.objs.intern(hctx, alloc, self.program);
        if self.objs.len() > before && !self.ranges.is_empty() {
            let oty = self.objs.ty(obj);
            for (&ty, runs) in self.ranges.iter_mut() {
                if self.program.is_subtype(oty, ty) {
                    runs.insert_id(obj.0);
                }
            }
        }
        obj
    }

    /// Compiles the range table for `ty` if this is the first cast
    /// against it: the sorted ids of every object in `ty`'s subtype
    /// cone, coalesced into runs.
    fn ensure_ranges(&mut self, ty: TypeId) {
        if self.ranges.contains_key(&ty) {
            return;
        }
        let mut ids: Vec<u32> = self
            .objs
            .iter()
            .filter(|&o| self.program.is_subtype(self.objs.ty(o), ty))
            .map(|o| o.0)
            .collect();
        ids.sort_unstable();
        self.ranges.insert(ty, IdRanges::from_sorted_ids(ids));
    }

    /// Returns `true` if anything observes the pointer's points-to set:
    /// an outgoing copy edge, a registered load/store, or a call
    /// dispatching on it.
    fn has_consumers(&self, i: usize) -> bool {
        !self.succ[i].is_empty()
            || !self.loads[i].is_empty()
            || !self.stores[i].is_empty()
            || !self.calls[i].is_empty()
    }

    /// Merges `delta` into the pointer's pending set, enqueueing the
    /// pointer on the empty→non-empty transition. `ptr` must already be
    /// a representative whose points-to set absorbed the delta.
    ///
    /// A delta arriving at a pointer with no consumers is dropped, not
    /// queued: the objects already live in `pts(ptr)`, and every
    /// consumer-registration path (`add_edge`, load/store registration,
    /// receiver-call registration) replays the full existing set when a
    /// consumer appears later — so popping a sink pointer can never do
    /// work. This skips the single useless pop most pointers would
    /// otherwise get.
    fn queue_delta(&mut self, ptr: PtrId, delta: PtsSet<ObjId>) {
        debug_assert_eq!(self.dsu.find(ptr.index()), ptr.index());
        if delta.is_empty() || !self.has_consumers(ptr.index()) {
            return;
        }
        let i = ptr.index();
        if self.pending[i].is_empty() {
            // Empty slots hold the shared empty handle; adopt the delta
            // wholesale instead of copying into it.
            self.pending[i] = PtsHandle::from_set(delta);
            self.worklist.push_back(ptr);
        } else {
            // A non-empty pending handle is uniquely owned (built by
            // `from_set` above), so `make_mut` mutates in place.
            self.pending[i].make_mut().union_with(&delta);
        }
    }

    /// Drains the pointer's pending handle, leaving the shared empty
    /// handle behind.
    fn take_pending(&mut self, ptr: PtrId) -> PtsHandle<ObjId> {
        std::mem::replace(&mut self.pending[ptr.index()], self.empty.clone())
    }

    /// Seeds `objs` into `pts(ptr)`, enqueueing the genuinely new part.
    /// Check-before-mutate: membership is probed read-only first, so a
    /// fully redundant seed never un-shares the row.
    fn add_objects(&mut self, ptr: PtrId, objs: impl IntoIterator<Item = ObjId>) {
        let ptr = self.rep(ptr);
        let mut delta = PtsSet::new();
        {
            let set = &self.pts[ptr.index()];
            for o in objs {
                if !set.contains(o) {
                    delta.insert(o);
                }
            }
        }
        if delta.is_empty() {
            return;
        }
        self.pts[ptr.index()].make_mut().union_with(&delta);
        self.queue_delta(ptr, delta);
    }

    /// Adds the copy edge `from → to` (optionally type-filtered) and
    /// replays the existing points-to set of `from`. Both endpoints are
    /// normalized to their representatives; an unfiltered edge that
    /// collapses to a self-loop is dropped (it can never contribute).
    fn add_edge(&mut self, from: PtrId, to: PtrId, filter: Option<TypeId>) {
        let (from, to) = (self.rep(from), self.rep(to));
        if from == to && filter.is_none() {
            return;
        }
        let fi = from.index();
        let entry = (to, filter);
        let present = match &self.succ_set[fi] {
            Some(set) => set.contains(&entry),
            None => self.succ[fi].contains(&entry),
        };
        if present {
            return;
        }
        self.succ[fi].push(entry);
        match &mut self.succ_set[fi] {
            Some(set) => {
                set.insert(entry);
            }
            None if self.succ[fi].len() >= EDGE_SET_MIN => {
                self.succ_set[fi] = Some(Box::new(self.succ[fi].iter().copied().collect()));
            }
            None => {}
        }
        self.stats.copy_edges += 1;
        self.edges_since_sweep += 1;
        // A filtered self-edge stays in the graph (for edge-count
        // parity) but can never contribute: filtering a set into itself
        // adds nothing.
        if from == to || self.pts[from.index()].is_empty() {
            return;
        }
        if let Some(ty) = filter {
            self.ensure_ranges(ty);
        }
        // Share the source allocation (cheap `Arc` clone) so the replay
        // can mutate the target row; only a non-empty contribution
        // touches the target's copy-on-write path.
        let src = self.pts[from.index()].share();
        let delta = match filter {
            None => src.difference(&self.pts[to.index()]),
            Some(ty) => {
                self.stats.range_union_hits += 1;
                src.difference_in_ranges(&self.ranges[&ty], &self.pts[to.index()])
            }
        };
        if delta.is_empty() {
            return;
        }
        self.pts[to.index()].make_mut().union_with(&delta);
        self.queue_delta(to, delta);
    }

    // --- Delta processing --------------------------------------------------

    fn process(&mut self, ptr: PtrId, delta: &PtsSet<ObjId>) {
        let i = ptr.index();
        self.stats.delta_objects += delta.len() as u64;
        // "Propagated" counts only deltas that actually flow somewhere:
        // a pointer with no outgoing edges, loads, stores, or calls is a
        // sink and its delta dies here. (Sink deltas are no longer even
        // queued, so the guard is belt-and-braces.)
        if self.has_consumers(i) {
            self.stats.propagated_objects += delta.len() as u64;
        }

        // Rows are append-only between collapse points; iterate a
        // snapshot of the length. An entry appended mid-processing
        // replays the full source set at add time, which already covers
        // this delta.
        let n_succ = self.succ[i].len();
        for k in 0..n_succ {
            let (to_raw, filter) = self.succ[i][k];
            let to = self.rep(to_raw);
            if to == ptr {
                continue; // self-edge: never contributes
            }
            if let Some(ty) = filter {
                self.ensure_ranges(ty);
            }
            // Contribution first (read-only), copy-on-write only when
            // it is non-empty: quiescent edges leave sharing intact.
            let d = match filter {
                None => delta.difference(&self.pts[to.index()]),
                Some(ty) => {
                    self.stats.range_union_hits += 1;
                    delta.difference_in_ranges(&self.ranges[&ty], &self.pts[to.index()])
                }
            };
            if d.is_empty() {
                // Lazy cycle detection: the delta crossed `ptr → to`
                // without growing the target, and the endpoint sets
                // have equal sizes — the classic hint that the edge
                // lies on a converged cycle. Probe each edge once.
                if filter.is_none()
                    && self.pts[i].len() == self.pts[to.index()].len()
                    && self.lcd_checked.insert((ptr, to))
                {
                    self.lcd_candidates.push((ptr, to));
                }
            } else {
                self.pts[to.index()].make_mut().union_with(&d);
                self.queue_delta(to, d);
            }
        }

        self.process_consumers(ptr, delta);
    }

    /// Runs the non-copy consumers of a popped delta: field loads and
    /// stores materialize field pointers and edges, calls dispatch on
    /// the new receiver objects. Shared by the sequential per-pop path
    /// and the parallel merge phase (where it runs in batch order after
    /// every copy contribution has landed).
    fn process_consumers(&mut self, ptr: PtrId, delta: &PtsSet<ObjId>) {
        let i = ptr.index();
        // Field loads/stores and calls hang off variable pointers only.
        let n_loads = self.loads[i].len();
        for k in 0..n_loads {
            let (field, lhs) = self.loads[i][k];
            for obj in delta.iter() {
                let fp = self.ptr(PtrKey::Field(obj, field));
                self.add_edge(fp, lhs, None);
            }
        }
        let n_stores = self.stores[i].len();
        for k in 0..n_stores {
            let (field, rhs) = self.stores[i][k];
            for obj in delta.iter() {
                let fp = self.ptr(PtrKey::Field(obj, field));
                self.add_edge(rhs, fp, None);
            }
        }
        let n_calls = self.calls[i].len();
        for k in 0..n_calls {
            let call = self.calls[i][k];
            for obj in delta.iter() {
                self.dispatch_call(call, obj);
            }
        }
    }

    // --- Statements --------------------------------------------------------

    fn mark_reachable(&mut self, ctx: CtxId, method: MethodId) {
        if !self.reachable.insert((ctx, method)) {
            return;
        }
        self.reachable_methods.insert(method);
        self.stats.reachable_method_contexts += 1;
        self.pending_methods.push_back((ctx, method));
    }

    fn process_method(&mut self, ctx: CtxId, method: MethodId) {
        // Copy the program reference out of `self` so the body borrow
        // does not pin `self` (statement processing needs `&mut`).
        let program = self.program;
        for &stmt in program.method(method).body() {
            self.process_stmt(ctx, method, stmt);
        }
    }

    fn process_stmt(&mut self, ctx: CtxId, method: MethodId, stmt: Stmt) {
        match stmt {
            Stmt::New { lhs, site } => {
                let repr = self.heap.repr(site);
                // Merged objects are modeled context-insensitively
                // (paper Section 3.6.1).
                let hctx = if self.heap.is_merged(repr) {
                    self.arena.empty()
                } else {
                    self.selector.heap_context(&mut self.arena, ctx, repr)
                };
                let obj = self.intern_obj(hctx, repr);
                let lp = self.var_ptr(ctx, lhs);
                self.add_objects(lp, [obj]);
            }
            Stmt::Assign { lhs, rhs } => {
                let (rp, lp) = (self.var_ptr(ctx, rhs), self.var_ptr(ctx, lhs));
                self.add_edge(rp, lp, None);
            }
            Stmt::Load { lhs, base, field } => {
                let bp = self.var_ptr(ctx, base);
                let lp = self.var_ptr(ctx, lhs);
                let bp = self.rep(bp);
                self.loads[bp.index()].push((field, lp));
                // Replay objects already known for the base. The clone
                // is O(words); interning field pointers below may grow
                // `self.pts`, so the base set cannot stay borrowed.
                let existing = self.pts[bp.index()].clone();
                for obj in existing.iter() {
                    let fp = self.ptr(PtrKey::Field(obj, field));
                    self.add_edge(fp, lp, None);
                }
            }
            Stmt::Store { base, field, rhs } => {
                let bp = self.var_ptr(ctx, base);
                let rp = self.var_ptr(ctx, rhs);
                let bp = self.rep(bp);
                self.stores[bp.index()].push((field, rp));
                let existing = self.pts[bp.index()].clone();
                for obj in existing.iter() {
                    let fp = self.ptr(PtrKey::Field(obj, field));
                    self.add_edge(rp, fp, None);
                }
            }
            Stmt::StaticLoad { lhs, field } => {
                let sp = self.ptr(PtrKey::Static(field));
                let lp = self.var_ptr(ctx, lhs);
                self.add_edge(sp, lp, None);
            }
            Stmt::StaticStore { field, rhs } => {
                let rp = self.var_ptr(ctx, rhs);
                let sp = self.ptr(PtrKey::Static(field));
                self.add_edge(rp, sp, None);
            }
            Stmt::Cast { lhs, rhs, site } => {
                let target = self.program.cast(site).target_ty();
                let (rp, lp) = (self.var_ptr(ctx, rhs), self.var_ptr(ctx, lhs));
                // Cast edges filter: only objects that can pass the cast
                // flow onward (failing objects raise at runtime).
                self.add_edge(rp, lp, Some(target));
            }
            Stmt::Call(site_id) => {
                let program = self.program;
                let site = program.call_site(site_id);
                match (site.kind(), site.target()) {
                    (CallKind::Static, &CallTarget::Exact(target)) => {
                        let callee_ctx = self.selector.static_callee_context(
                            &mut self.arena,
                            ctx,
                            site_id,
                            target,
                        );
                        self.bind_call(ctx, site_id, callee_ctx, target, None);
                    }
                    (&CallKind::Special { recv }, &CallTarget::Exact(target)) => {
                        self.register_receiver_call(ctx, recv, site_id, Some(target));
                    }
                    (&CallKind::Virtual { recv }, CallTarget::Signature { .. }) => {
                        self.register_receiver_call(ctx, recv, site_id, None);
                    }
                    (kind, target) => {
                        unreachable!("malformed call site {site_id:?}: {kind:?} {target:?}")
                    }
                }
            }
            Stmt::Return { .. } => {
                // Handled at call-binding time via `return_vars`.
            }
        }
        let _ = method;
    }

    fn register_receiver_call(
        &mut self,
        ctx: CtxId,
        recv: VarId,
        site: CallSiteId,
        fixed_target: Option<MethodId>,
    ) {
        let rp = self.var_ptr(ctx, recv);
        let rp = self.rep(rp);
        let call = PendingCall {
            site,
            caller_ctx: ctx,
            fixed_target,
        };
        self.calls[rp.index()].push(call);
        let existing = self.pts[rp.index()].clone();
        for obj in existing.iter() {
            self.dispatch_call(call, obj);
        }
    }

    fn dispatch_call(&mut self, call: PendingCall, recv_obj: ObjId) {
        let target = match call.fixed_target {
            Some(t) => Some(t),
            None => {
                let site = self.program.call_site(call.site);
                match site.target() {
                    CallTarget::Signature { name, arity } => {
                        let ty = self.objs.ty(recv_obj);
                        match self.dispatch_cache.get(&(call.site, ty)) {
                            Some(&t) => t,
                            None => {
                                let t = self.program.dispatch(ty, name, *arity);
                                self.dispatch_cache.insert((call.site, ty), t);
                                t
                            }
                        }
                    }
                    CallTarget::Exact(t) => Some(*t),
                }
            }
        };
        let Some(target) = target else {
            // No concrete implementation: the call site cannot resolve
            // for this receiver type (e.g. an abstract class leak).
            return;
        };
        if self.program.method(target).is_abstract() {
            return;
        }
        let callee_ctx = self.selector.callee_context(
            &mut self.arena,
            &self.objs,
            self.program,
            call.caller_ctx,
            call.site,
            recv_obj,
            target,
        );
        self.bind_call(call.caller_ctx, call.site, callee_ctx, target, Some(recv_obj));
    }

    fn bind_call(
        &mut self,
        caller_ctx: CtxId,
        site_id: CallSiteId,
        callee_ctx: CtxId,
        target: MethodId,
        recv_obj: Option<ObjId>,
    ) {
        self.cg_edges.insert((site_id, target));
        self.cs_cg_edges
            .insert((caller_ctx, site_id, callee_ctx, target));
        self.mark_reachable(callee_ctx, target);

        // Borrow the callee and site through a copied-out program
        // reference: the borrows outlive `&mut self` calls below, and
        // binding stays allocation-free.
        let program = self.program;
        let callee = program.method(target);
        // `this` receives exactly the dispatching object.
        if let (Some(this), Some(obj)) = (callee.this(), recv_obj) {
            let tp = self.var_ptr(callee_ctx, this);
            self.add_objects(tp, [obj]);
        }
        // Arguments to parameters.
        let site = program.call_site(site_id);
        for (&arg, &param) in site.args().iter().zip(callee.params().iter()) {
            let ap = self.var_ptr(caller_ctx, arg);
            let pp = self.var_ptr(callee_ctx, param);
            self.add_edge(ap, pp, None);
        }
        // Returns to the result variable.
        if let Some(result) = site.result() {
            let rp = self.var_ptr(caller_ctx, result);
            for k in 0..self.return_vars[target.index()].len() {
                let rv = self.return_vars[target.index()][k];
                let rvp = self.var_ptr(callee_ctx, rv);
                self.add_edge(rvp, rp, None);
            }
        }
    }
}

/// Convenience: runs the context-insensitive allocation-site pre-analysis
/// the Mahjong pipeline starts from (paper Section 3.1, "ci").
///
/// # Errors
///
/// Returns [`Unscalable`] if the budget is exhausted (the pre-analysis is
/// given the same default budget as any other run).
pub fn pre_analysis(program: &Program) -> Result<AnalysisResult, Unscalable> {
    let _phase = obs::span("pre_analysis");
    AnalysisConfig::new(
        crate::context::ContextInsensitive,
        crate::heap::AllocSiteAbstraction,
    )
    .run(program)
}
