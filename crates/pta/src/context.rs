//! Calling contexts and context-sensitivity strategies.
//!
//! A context is an interned sequence of [`CtxElem`]s; the
//! [`ContextSelector`] trait decides which sequence a callee (or a heap
//! object) is analyzed under. The three mainstream strategies the paper
//! evaluates are provided:
//!
//! - [`CallSiteSensitive`] — k-CFA (Shivers); context elements are call
//!   sites;
//! - [`ObjectSensitive`] — k-obj (Milanova et al.); context elements are
//!   receiver objects;
//! - [`TypeSensitive`] — k-type (Smaragdakis et al.); context elements
//!   are the classes containing the receiver objects' allocation sites;
//!
//! plus [`ContextInsensitive`] (the pre-analysis configuration).
//!
//! Heap contexts follow the standard convention: an allocation site in a
//! method analyzed under a depth-`k` context receives the most recent
//! `k - 1` elements of that context (paper Section 3.6.1).

use jir::{AllocId, CallSiteId, ClassId, MethodId, Program};

use crate::object::{ObjId, ObjTable};
use crate::util::FastMap;

/// One element of a calling context.
///
/// Object-sensitive contexts store plain allocation sites (the receiver
/// object's site), not nested context-sensitive objects — the standard
/// "full-object-sensitivity" formulation of Doop/Smaragdakis, which keeps
/// the context universe finite (`AllocId^k`) even for recursive
/// allocation patterns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CtxElem {
    /// A call site (call-site-sensitivity).
    CallSite(CallSiteId),
    /// A receiver object's allocation site (object-sensitivity). Under a
    /// merging heap abstraction this is already the representative site,
    /// exactly as paper Section 3.6.1 prescribes for M-kobj.
    Alloc(AllocId),
    /// The class containing a receiver object's allocation site
    /// (type-sensitivity).
    Type(ClassId),
}

/// An interned calling context (also used for heap contexts).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub(crate) u32);

impl CtxId {
    /// Returns the arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for CtxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

/// Hash-consing arena for contexts. Index 0 is always the empty context.
#[derive(Debug)]
pub struct ContextArena {
    ctxs: Vec<Vec<CtxElem>>,
    map: FastMap<Vec<CtxElem>, CtxId>,
}

impl Default for ContextArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ContextArena {
    /// Creates an arena containing only the empty context.
    pub fn new() -> Self {
        let mut arena = ContextArena {
            ctxs: Vec::new(),
            map: FastMap::default(),
        };
        arena.intern(Vec::new());
        arena
    }

    /// Returns the empty context.
    pub fn empty(&self) -> CtxId {
        CtxId(0)
    }

    /// Rebuilds an arena from its element table, `ctxs[i]` being the
    /// elements of `CtxId(i)` (snapshot restore). The caller must pass
    /// the table of a previously built arena: entry 0 empty, entries
    /// distinct. Violations return an error instead of corrupting the
    /// hash-consing map.
    pub(crate) fn from_raw(ctxs: Vec<Vec<CtxElem>>) -> Result<Self, String> {
        if ctxs.first().map(Vec::as_slice) != Some(&[]) {
            return Err("context 0 is not the empty context".to_owned());
        }
        let mut map = FastMap::default();
        for (i, elems) in ctxs.iter().enumerate() {
            if map.insert(elems.clone(), CtxId(i as u32)).is_some() {
                return Err(format!("duplicate context at index {i}"));
            }
        }
        Ok(ContextArena { ctxs, map })
    }

    /// Interns a context, returning its id.
    pub fn intern(&mut self, elems: Vec<CtxElem>) -> CtxId {
        if let Some(&id) = self.map.get(&elems) {
            return id;
        }
        let id = CtxId(u32::try_from(self.ctxs.len()).expect("too many contexts"));
        self.map.insert(elems.clone(), id);
        self.ctxs.push(elems);
        id
    }

    /// Returns the elements of a context.
    pub fn elems(&self, id: CtxId) -> &[CtxElem] {
        &self.ctxs[id.index()]
    }

    /// Returns the number of distinct contexts created so far.
    pub fn len(&self) -> usize {
        self.ctxs.len()
    }

    /// Returns `true` if only the empty context exists.
    pub fn is_empty(&self) -> bool {
        self.ctxs.len() <= 1
    }

    /// Interns `base ++ [tail]` truncated to its most recent `k` elements.
    pub fn append_truncated(&mut self, base: CtxId, tail: CtxElem, k: usize) -> CtxId {
        if k == 0 {
            return self.empty();
        }
        let base_elems = &self.ctxs[base.index()];
        let keep = base_elems.len().min(k - 1);
        let mut elems = Vec::with_capacity(keep + 1);
        elems.extend_from_slice(&base_elems[base_elems.len() - keep..]);
        elems.push(tail);
        self.intern(elems)
    }

    /// Interns the most recent `k` elements of `base`.
    pub fn truncate(&mut self, base: CtxId, k: usize) -> CtxId {
        let elems = &self.ctxs[base.index()];
        if elems.len() <= k {
            return base;
        }
        let elems = elems[elems.len() - k..].to_vec();
        self.intern(elems)
    }
}

/// A context-sensitivity strategy: decides callee contexts and heap
/// contexts.
///
/// Implementations must be pure functions of their inputs (the solver
/// may invoke them in any order).
#[allow(clippy::too_many_arguments)] // mirrors the analysis signature
pub trait ContextSelector {
    /// The context for a dynamically dispatched callee (virtual and
    /// special calls), given the receiver object.
    fn callee_context(
        &self,
        arena: &mut ContextArena,
        objs: &ObjTable,
        program: &Program,
        caller: CtxId,
        site: CallSiteId,
        recv: ObjId,
        callee: MethodId,
    ) -> CtxId;

    /// The context for a statically bound callee (static calls).
    fn static_callee_context(
        &self,
        arena: &mut ContextArena,
        caller: CtxId,
        site: CallSiteId,
        callee: MethodId,
    ) -> CtxId;

    /// The heap context for an allocation site in a method analyzed
    /// under `ctx`.
    fn heap_context(&self, arena: &mut ContextArena, ctx: CtxId, alloc: AllocId) -> CtxId;

    /// A short human-readable name, e.g. `"2obj"`.
    fn describe(&self) -> String;
}

/// Context-insensitive analysis: everything under the empty context.
/// This is the configuration of the Mahjong pre-analysis (`ci`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ContextInsensitive;

impl ContextSelector for ContextInsensitive {
    fn callee_context(
        &self,
        arena: &mut ContextArena,
        _objs: &ObjTable,
        _program: &Program,
        _caller: CtxId,
        _site: CallSiteId,
        _recv: ObjId,
        _callee: MethodId,
    ) -> CtxId {
        arena.empty()
    }

    fn static_callee_context(
        &self,
        arena: &mut ContextArena,
        _caller: CtxId,
        _site: CallSiteId,
        _callee: MethodId,
    ) -> CtxId {
        arena.empty()
    }

    fn heap_context(&self, arena: &mut ContextArena, _ctx: CtxId, _alloc: AllocId) -> CtxId {
        arena.empty()
    }

    fn describe(&self) -> String {
        "ci".to_owned()
    }
}

/// k-call-site-sensitivity (k-CFA): a method is analyzed once per
/// sequence of the `k` most recent call sites; allocation sites receive
/// the `k - 1` most recent call sites.
#[derive(Clone, Copy, Debug)]
pub struct CallSiteSensitive {
    k: usize,
}

impl CallSiteSensitive {
    /// Creates a k-CFA selector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (use [`ContextInsensitive`] instead).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        CallSiteSensitive { k }
    }
}

impl ContextSelector for CallSiteSensitive {
    fn callee_context(
        &self,
        arena: &mut ContextArena,
        _objs: &ObjTable,
        _program: &Program,
        caller: CtxId,
        site: CallSiteId,
        _recv: ObjId,
        _callee: MethodId,
    ) -> CtxId {
        arena.append_truncated(caller, CtxElem::CallSite(site), self.k)
    }

    fn static_callee_context(
        &self,
        arena: &mut ContextArena,
        caller: CtxId,
        site: CallSiteId,
        _callee: MethodId,
    ) -> CtxId {
        arena.append_truncated(caller, CtxElem::CallSite(site), self.k)
    }

    fn heap_context(&self, arena: &mut ContextArena, ctx: CtxId, _alloc: AllocId) -> CtxId {
        arena.truncate(ctx, self.k - 1)
    }

    fn describe(&self) -> String {
        format!("{}cs", self.k)
    }
}

/// k-object-sensitivity: a method is analyzed once per sequence of the
/// `k` most recent receiver objects (the receiver's heap context plus
/// the receiver itself); statically bound calls inherit the caller's
/// context.
#[derive(Clone, Copy, Debug)]
pub struct ObjectSensitive {
    k: usize,
}

impl ObjectSensitive {
    /// Creates a k-obj selector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (use [`ContextInsensitive`] instead).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        ObjectSensitive { k }
    }
}

impl ContextSelector for ObjectSensitive {
    fn callee_context(
        &self,
        arena: &mut ContextArena,
        objs: &ObjTable,
        _program: &Program,
        _caller: CtxId,
        _site: CallSiteId,
        recv: ObjId,
        _callee: MethodId,
    ) -> CtxId {
        // [heap context of recv, recv's allocation site], truncated to
        // the last k elements.
        let hctx = objs.heap_context(recv);
        arena.append_truncated(hctx, CtxElem::Alloc(objs.alloc(recv)), self.k)
    }

    fn static_callee_context(
        &self,
        _arena: &mut ContextArena,
        caller: CtxId,
        _site: CallSiteId,
        _callee: MethodId,
    ) -> CtxId {
        caller
    }

    fn heap_context(&self, arena: &mut ContextArena, ctx: CtxId, _alloc: AllocId) -> CtxId {
        arena.truncate(ctx, self.k - 1)
    }

    fn describe(&self) -> String {
        format!("{}obj", self.k)
    }
}

/// k-type-sensitivity: like k-obj, but every receiver object in a
/// context is replaced by the class *containing* its allocation site.
#[derive(Clone, Copy, Debug)]
pub struct TypeSensitive {
    k: usize,
}

impl TypeSensitive {
    /// Creates a k-type selector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (use [`ContextInsensitive`] instead).
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        TypeSensitive { k }
    }
}

impl ContextSelector for TypeSensitive {
    fn callee_context(
        &self,
        arena: &mut ContextArena,
        objs: &ObjTable,
        program: &Program,
        _caller: CtxId,
        _site: CallSiteId,
        recv: ObjId,
        _callee: MethodId,
    ) -> CtxId {
        // Under k-type the heap context already consists of Type
        // elements; append the containing class of the receiver's
        // allocation site.
        let hctx = objs.heap_context(recv);
        let containing = program.alloc_containing_class(objs.alloc(recv));
        arena.append_truncated(hctx, CtxElem::Type(containing), self.k)
    }

    fn static_callee_context(
        &self,
        _arena: &mut ContextArena,
        caller: CtxId,
        _site: CallSiteId,
        _callee: MethodId,
    ) -> CtxId {
        caller
    }

    fn heap_context(&self, arena: &mut ContextArena, ctx: CtxId, _alloc: AllocId) -> CtxId {
        arena.truncate(ctx, self.k - 1)
    }

    fn describe(&self) -> String {
        format!("{}type", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_context_is_index_zero() {
        let arena = ContextArena::new();
        assert_eq!(arena.empty().index(), 0);
        assert!(arena.elems(arena.empty()).is_empty());
    }

    #[test]
    fn interning_dedups() {
        let mut arena = ContextArena::new();
        let a = arena.intern(vec![CtxElem::CallSite(CallSiteId::from_usize(1))]);
        let b = arena.intern(vec![CtxElem::CallSite(CallSiteId::from_usize(1))]);
        assert_eq!(a, b);
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn append_truncated_keeps_most_recent() {
        let mut arena = ContextArena::new();
        let cs = |i| CtxElem::CallSite(CallSiteId::from_usize(i));
        let c1 = arena.append_truncated(arena.empty(), cs(1), 2);
        let c2 = arena.append_truncated(c1, cs(2), 2);
        let c3 = arena.append_truncated(c2, cs(3), 2);
        assert_eq!(arena.elems(c3), &[cs(2), cs(3)]);
    }

    #[test]
    fn append_truncated_k_zero_is_empty() {
        let mut arena = ContextArena::new();
        let cs = CtxElem::CallSite(CallSiteId::from_usize(7));
        let c = arena.append_truncated(arena.empty(), cs, 0);
        assert_eq!(c, arena.empty());
    }

    #[test]
    fn truncate_shortens() {
        let mut arena = ContextArena::new();
        let cs = |i| CtxElem::CallSite(CallSiteId::from_usize(i));
        let c = arena.intern(vec![cs(1), cs(2), cs(3)]);
        let t = arena.truncate(c, 1);
        assert_eq!(arena.elems(t), &[cs(3)]);
        let t0 = arena.truncate(c, 0);
        assert_eq!(t0, arena.empty());
        // Truncating to a longer length is the identity.
        assert_eq!(arena.truncate(c, 5), c);
    }

    #[test]
    fn describe_names() {
        assert_eq!(ContextInsensitive.describe(), "ci");
        assert_eq!(CallSiteSensitive::new(2).describe(), "2cs");
        assert_eq!(ObjectSensitive::new(3).describe(), "3obj");
        assert_eq!(TypeSensitive::new(2).describe(), "2type");
    }
}
