//! Hierarchy-aware object numbering.
//!
//! The solver's cast filters need, per filter type `T`, the set of
//! interned objects whose runtime type is a subtype of `T`. Under
//! discovery-order numbering that set is arbitrary and must be
//! materialized as a mask bitmap; this module instead hands out object
//! ids so that **each type's objects occupy a few contiguous id runs**,
//! letting the solver compile every cast mask down to a short
//! [`pts::IdRanges`] list (see `Improving bit-vector representation of
//! points-to sets using class hierarchy`, arXiv:1108.2683).
//!
//! Two pieces:
//!
//! - [`TypeOrder`] ranks every `TypeId` by **class-hierarchy preorder**:
//!   classes in a preorder walk of the single-inheritance class tree
//!   (so a class cone — the class plus all transitive subclasses — is
//!   one contiguous rank interval), and array types banded after the
//!   classes by dimension, then by base-class preorder (array
//!   covariance makes an array cone contiguous within its dimension
//!   band). Interface cones are genuine unions of class subtrees and
//!   map to one interval per implementing subtree.
//! - [`ObjNumbering`] allocates object ids online, without knowing the
//!   final object count: every allocated type gets an initial **lane**
//!   sized by its static allocation-site count, laid out in
//!   [`TypeOrder`] rank order so related lanes are adjacent; when
//!   context sensitivity overflows a lane, the type gets a **spill
//!   chunk** at the id-space frontier whose capacity doubles with the
//!   type's population, bounding a type's runs at O(log objects).
//!
//! Unfilled lane/chunk slack ids are never handed out, so they never
//! appear in any points-to set: a range table may cover them for free.
//! The id space is therefore *sparse*; `ObjTable` keeps the id ↔
//! discovery-slot permutation, and golden fingerprints canonicalize
//! through the discovery index so results stay bit-identical modulo
//! the renumbering.

use jir::{ClassId, Program, TypeId, TypeKind};

/// Class-hierarchy preorder ranks over every `TypeId` of a program.
#[derive(Debug)]
pub struct TypeOrder {
    /// `rank[ty]` = position of `ty` in the hierarchy order.
    rank: Vec<u32>,
}

impl TypeOrder {
    /// Computes the order for `program` (O(classes + types log types)).
    pub fn new(program: &Program) -> Self {
        let nc = program.class_count();
        let mut children: Vec<Vec<ClassId>> = vec![Vec::new(); nc];
        let mut roots: Vec<ClassId> = Vec::new();
        for c in program.class_ids() {
            match program.class(c).superclass() {
                Some(s) => children[s.index()].push(c),
                None => roots.push(c),
            }
        }
        let mut pre = vec![0u32; nc];
        let mut next = 0u32;
        let mut stack: Vec<ClassId> = roots;
        stack.reverse();
        while let Some(c) = stack.pop() {
            pre[c.index()] = next;
            next += 1;
            // Children pushed in reverse so siblings keep id order —
            // the walk is deterministic for a given program.
            for &k in children[c.index()].iter().rev() {
                stack.push(k);
            }
        }
        // Sort types by (array dimension, base-class preorder): classes
        // first (dimension 0), then arrays banded per dimension.
        let nt = program.type_count();
        let mut keyed: Vec<(u64, u32)> = (0..nt)
            .map(|t| {
                let ty = TypeId::from_usize(t);
                let (dim, base) = base_class(program, ty);
                ((u64::from(dim) << 32) | u64::from(pre[base.index()]), t as u32)
            })
            .collect();
        keyed.sort_unstable();
        let mut rank = vec![0u32; nt];
        for (r, &(_, t)) in keyed.iter().enumerate() {
            rank[t as usize] = r as u32;
        }
        TypeOrder { rank }
    }

    /// The hierarchy rank of `ty` (lower = earlier in preorder).
    pub fn rank(&self, ty: TypeId) -> u32 {
        self.rank[ty.index()]
    }
}

/// Unwraps array nesting: `(dimension, ultimate base class)`.
fn base_class(program: &Program, mut ty: TypeId) -> (u32, ClassId) {
    let mut dim = 0u32;
    loop {
        match program.ty(ty) {
            TypeKind::Class(c) => return (dim, c),
            TypeKind::Array { elem } => {
                dim += 1;
                ty = elem;
            }
        }
    }
}

/// Minimum spill-chunk capacity: a type whose lane overflows gets at
/// least this many ids per chunk even while its population is tiny.
const MIN_SPILL: u32 = 4;

/// Online allocator of hierarchy-ordered object ids (see module docs).
#[derive(Debug)]
pub struct ObjNumbering {
    /// Next free id in the type's current lane/chunk.
    next: Vec<u32>,
    /// One-past-the-end of the type's current lane/chunk.
    end: Vec<u32>,
    /// Ids handed out so far per type (sizes the next spill chunk).
    filled: Vec<u32>,
    /// First id past every lane and chunk handed out — the id-space
    /// size, including unfilled slack.
    frontier: u32,
}

impl ObjNumbering {
    /// Lays out one lane per allocated type, in [`TypeOrder`] rank
    /// order, sized by the type's static allocation-site count.
    pub fn new(program: &Program) -> Self {
        let order = TypeOrder::new(program);
        let nt = program.type_count();
        let mut sites = vec![0u32; nt];
        for a in program.alloc_ids() {
            sites[program.alloc(a).ty().index()] += 1;
        }
        let mut lanes: Vec<u32> = (0..nt as u32).filter(|&t| sites[t as usize] > 0).collect();
        lanes.sort_unstable_by_key(|&t| order.rank(TypeId::from_usize(t as usize)));
        let mut next = vec![0u32; nt];
        let mut end = vec![0u32; nt];
        let mut frontier = 0u32;
        for &t in &lanes {
            next[t as usize] = frontier;
            frontier += sites[t as usize];
            end[t as usize] = frontier;
        }
        ObjNumbering {
            next,
            end,
            filled: vec![0; nt],
            frontier,
        }
    }

    /// Hands out the next id for an object of runtime type `ty`.
    pub fn assign(&mut self, ty: TypeId) -> u32 {
        let t = ty.index();
        if self.next[t] == self.end[t] {
            // Lane (or previous chunk) exhausted: open a spill chunk at
            // the frontier, doubling with the type's population.
            let cap = self.filled[t].max(MIN_SPILL);
            self.next[t] = self.frontier;
            self.end[t] = self.frontier + cap;
            self.frontier = self.end[t];
        }
        let id = self.next[t];
        self.next[t] += 1;
        self.filled[t] += 1;
        id
    }

    /// The id-space size (largest handed-out id + 1, plus slack).
    pub fn id_space(&self) -> u32 {
        self.frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> Program {
        jir::parse(
            "class A {
               entry static method main() {
                 a = new A; b = new B; c = new C; d = new D;
                 arr = new A[]; return;
               }
             }
             class B extends A {}
             class C extends B {}
             class D extends A {}",
        )
        .expect("parses")
    }

    #[test]
    fn class_cones_are_rank_contiguous() {
        let p = program();
        let order = TypeOrder::new(&p);
        let ty = |name: &str| p.class(p.class_by_name(name).unwrap()).ty();
        let (a, b, c, d) = (ty("A"), ty("B"), ty("C"), ty("D"));
        // The A-cone {A, B, C, D} must occupy a contiguous rank
        // interval with A first, and the B-cone {B, C} likewise.
        let mut cone: Vec<u32> = [a, b, c, d].iter().map(|&t| order.rank(t)).collect();
        let a_rank = cone[0];
        cone.sort_unstable();
        assert_eq!(cone[0], a_rank, "root of the cone ranks first");
        assert!(
            cone.windows(2).all(|w| w[1] == w[0] + 1),
            "subclass cone is not contiguous: {cone:?}"
        );
        assert!(
            order.rank(b).abs_diff(order.rank(c)) == 1,
            "B and its only subclass C must be adjacent"
        );
    }

    #[test]
    fn lanes_fill_before_spilling() {
        let p = program();
        let mut num = ObjNumbering::new(&p);
        let a = p.class(p.class_by_name("A").unwrap()).ty();
        let first = num.assign(a);
        // One static A-site: the lane holds exactly one id; the next
        // assignment spills to the frontier.
        let initial_space = num.id_space();
        let second = num.assign(a);
        assert_ne!(first, second);
        assert!(second >= initial_space, "spill goes past the initial lanes");
        assert!(num.id_space() > second);
        // Spill chunks are contiguous for the same type.
        let third = num.assign(a);
        assert_eq!(third, second + 1, "same-type spill ids are consecutive");
    }
}
