//! Analysis results: points-to sets, the discovered call graph, and the
//! query API consumed by the clients and by Mahjong's FPG builder.
//!
//! The query API is **borrow-first**: points-to accessors return
//! `&PtsSet<ObjId>` views into the solver's final state (the empty set
//! for pointers that never arose) and [`AnalysisResult::call_targets`]
//! returns a precomputed sorted slice. Callers that need owned data use
//! [`pts::PtsSet::to_vec`] as the escape hatch; nothing allocates per
//! query.

use std::sync::Arc;
use std::time::Duration;

use jir::{AllocId, CallSiteId, FieldId, MethodId, TypeId, VarId};
use pts::{PtsHandle, PtsSet, SetInterner};

use crate::context::{ContextArena, CtxId};
use crate::object::{ObjId, ObjTable};
use crate::solver::{PtrId, PtrKey};
use crate::util::{FastMap, FastSet};

/// The empty points-to set, returned by reference for pointers that
/// never arose during the analysis.
static EMPTY_PTS: PtsSet<ObjId> = PtsSet::new();

/// Counters describing one solver run.
///
/// This per-run view is the stable public API; at the end of every run
/// (including budget-overrun exits) the same numbers are published into
/// the process-global [`obs`] registry under `pta.*` names, where they
/// aggregate across runs and travel with the JSON-Lines/Chrome-trace
/// exports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalysisStats {
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Wall-clock spent seeding the entry point (`solver.init`).
    pub init_time: Duration,
    /// Wall-clock spent in the worklist loop (`solver.fixpoint`).
    pub fixpoint_time: Duration,
    /// Wall-clock spent assembling the result (`solver.finalize`).
    pub finalize_time: Duration,
    /// Worklist entries processed. One pop consumes a pointer's whole
    /// coalesced delta, so this is typically far below `delta_objects`.
    pub worklist_pops: u64,
    /// Objects pushed through the constraint graph: the sum of popped
    /// delta sizes over pointers with at least one consumer (copy edge,
    /// load, store, or call). Deltas popped at sink pointers die in
    /// place and are excluded; `delta_objects` counts everything.
    pub propagated_objects: u64,
    /// Total points-to set insertion events (every popped delta
    /// object, consumers or not). Equals the sum of final set sizes.
    pub delta_objects: u64,
    /// Copy edges in the final constraint graph.
    pub copy_edges: u64,
    /// Context-insensitive call-graph edges discovered.
    pub call_graph_edges: u64,
    /// Reachable `(context, method)` pairs.
    pub reachable_method_contexts: u64,
    /// Distinct calling contexts created.
    pub context_count: usize,
    /// Peak **physical** memory footprint of all points-to sets, in
    /// 64-bit words: the running max, sampled after each seal sweep, of
    /// the deduplicated footprint (rows sharing one interned allocation
    /// count it once). The logical (per-row) footprint travels on the
    /// timeline as `mem_logical_words`.
    pub pts_peak_words: u64,
    /// Distinct set contents admitted to the interner (unique
    /// allocations ever sealed, including the shared empty set).
    pub pts_interned: u64,
    /// Seal operations that found their content already interned and
    /// swapped the row onto the canonical shared allocation.
    pub pts_dedup_hits: u64,
    /// Nanoseconds spent in seal sweeps: fingerprinting dirty rows,
    /// probing the interner, and evicting dead entries.
    pub intern_probe_ns: u64,
    /// Pointers merged away by online cycle collapse (each collapsed
    /// SCC of `k` members contributes `k - 1`).
    pub scc_collapsed_ptrs: u64,
    /// Full Tarjan SCC sweeps run over the condensed copy graph.
    pub collapse_sweeps: u64,
    /// Topologically ordered propagation waves executed.
    pub wave_rounds: u64,
    /// Elementary union-find operations spent maintaining the collapse
    /// partition (see [`dsu::DisjointSets::ops`]).
    pub dsu_ops: u64,
    /// Parallel wave shards executed (counted only when a level batch
    /// actually fanned out to `> 1` shard; zero for sequential runs).
    pub par_shards: u64,
    /// Spawned shard workers that found the batch cursor already
    /// exhausted before claiming a single chunk — a high ratio against
    /// `par_shards` means levels are too small for the fan-out.
    pub par_steal_none: u64,
    /// Nanoseconds the coordinating thread spent waiting at level
    /// barriers for shard workers to finish.
    pub wave_barrier_ns: u64,
    /// Partition workers spawned by the parallel merge phase (counted
    /// only when a level's merge actually fanned out; zero for
    /// sequential runs).
    pub par_merge_shards: u64,
    /// Total `[lo, hi)` runs across all compiled cast range tables at
    /// the end of the run — the whole footprint of cast filtering
    /// under the hierarchy numbering (two words per run; compare the
    /// old `pta.mem_mask_words` bitmap cost).
    pub mask_ranges: u64,
    /// Filtered (cast-edge) propagation steps answered by a range
    /// table instead of a materialized mask set.
    pub range_union_hits: u64,
}

impl AnalysisStats {
    /// Publishes the run's counters into the global [`obs`] registry
    /// (no-op while recording is disabled). Counters are monotonic, so
    /// repeated runs aggregate; the peak-words gauge keeps the largest
    /// run's value.
    pub fn publish(&self) {
        if !obs::enabled() {
            return;
        }
        obs::counter("pta.worklist_pops").add(self.worklist_pops);
        obs::counter("pta.propagated_objects").add(self.propagated_objects);
        obs::counter("pta.delta_objects").add(self.delta_objects);
        obs::counter("pta.copy_edges").add(self.copy_edges);
        obs::counter("pta.call_graph_edges").add(self.call_graph_edges);
        obs::counter("pta.reachable_method_contexts").add(self.reachable_method_contexts);
        obs::counter("pta.contexts_created").add(self.context_count as u64);
        obs::counter("pta.scc_collapsed_ptrs").add(self.scc_collapsed_ptrs);
        obs::counter("pta.collapse_sweeps").add(self.collapse_sweeps);
        obs::counter("pta.wave_rounds").add(self.wave_rounds);
        obs::counter("pta.dsu_ops").add(self.dsu_ops);
        obs::counter("pta.par_shards").add(self.par_shards);
        obs::counter("pta.par_steal_none").add(self.par_steal_none);
        obs::counter("pta.par_merge_shards").add(self.par_merge_shards);
        obs::counter("pta.wave_barrier_ns").add(self.wave_barrier_ns);
        obs::counter("pta.pts_interned").add(self.pts_interned);
        obs::counter("pta.pts_dedup_hits").add(self.pts_dedup_hits);
        obs::counter("pta.intern_probe_ns").add(self.intern_probe_ns);
        obs::counter("pta.mask_ranges").add(self.mask_ranges);
        obs::counter("pta.range_union_hits").add(self.range_union_hits);
        let peak = obs::gauge("pta.pts_peak_words");
        if self.pts_peak_words as i64 > peak.get() {
            peak.set(self.pts_peak_words as i64);
        }
    }
}

/// The immutable result of a points-to analysis run.
#[derive(Debug)]
pub struct AnalysisResult {
    pub(crate) arena: ContextArena,
    pub(crate) objs: ObjTable,
    pub(crate) ptr_keys: Vec<PtrKey>,
    pub(crate) ptr_map: FastMap<PtrKey, PtrId>,
    pub(crate) pts: Vec<PtsHandle<ObjId>>,
    /// Cycle-collapse redirect table: `pts[redirect[i]]` is pointer
    /// `i`'s points-to set (collapsed pointers hand their state to a
    /// representative; members of an unfiltered copy cycle converge to
    /// identical sets at fixpoint, so the redirection is invisible in
    /// query results).
    pub(crate) redirect: Vec<u32>,
    /// Context-collapsed points-to set per variable, built eagerly at
    /// result assembly and sealed against the solver's interner so
    /// variables with identical collapsed sets share one allocation.
    /// Single-pointer variables just share their row's handle.
    pub(crate) collapsed: FastMap<VarId, PtsHandle<ObjId>>,
    pub(crate) reachable: FastSet<(CtxId, MethodId)>,
    pub(crate) reachable_methods: FastSet<MethodId>,
    pub(crate) cg_edges: FastSet<(CallSiteId, MethodId)>,
    pub(crate) cs_cg_edge_count: usize,
    pub(crate) stats: AnalysisStats,
    /// Contexts each method is analyzed under.
    pub(crate) method_ctxs: FastMap<MethodId, Vec<CtxId>>,
    /// Sorted, deduplicated targets per call site (precomputed so
    /// `call_targets` is an O(1) borrow instead of an edge scan).
    pub(crate) site_targets: FastMap<CallSiteId, Vec<MethodId>>,
}

impl AnalysisResult {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        arena: ContextArena,
        objs: ObjTable,
        ptr_keys: Vec<PtrKey>,
        ptr_map: FastMap<PtrKey, PtrId>,
        pts: Vec<PtsHandle<ObjId>>,
        interner: Arc<SetInterner<ObjId>>,
        redirect: Vec<u32>,
        reachable: FastSet<(CtxId, MethodId)>,
        reachable_methods: FastSet<MethodId>,
        cg_edges: FastSet<(CallSiteId, MethodId)>,
        cs_cg_edge_count: usize,
        stats: AnalysisStats,
    ) -> Self {
        let mut method_ctxs: FastMap<MethodId, Vec<CtxId>> = FastMap::default();
        for &(ctx, m) in &reachable {
            method_ctxs.entry(m).or_default().push(ctx);
        }
        let mut var_ptrs: FastMap<VarId, Vec<PtrId>> = FastMap::default();
        for (i, key) in ptr_keys.iter().enumerate() {
            if let PtrKey::Var(_, v) = *key {
                var_ptrs.entry(v).or_default().push(PtrId(i as u32));
            }
        }
        let mut site_targets: FastMap<CallSiteId, Vec<MethodId>> = FastMap::default();
        for &(s, m) in &cg_edges {
            site_targets.entry(s).or_default().push(m);
        }
        for targets in site_targets.values_mut() {
            targets.sort_unstable();
            targets.dedup();
        }
        let mut collapsed: FastMap<VarId, PtsHandle<ObjId>> = FastMap::default();
        for (&var, ptrs) in &var_ptrs {
            let handle = match ptrs.as_slice() {
                // One context: the collapsed set IS the row; share it.
                [p] => pts[redirect[p.index()] as usize].clone(),
                many => {
                    let mut out = PtsSet::new();
                    for p in many {
                        out.union_with(&pts[redirect[p.index()] as usize]);
                    }
                    let mut h = PtsHandle::from_set(out);
                    h.seal(&interner);
                    h
                }
            };
            collapsed.insert(var, handle);
        }
        AnalysisResult {
            arena,
            objs,
            ptr_keys,
            ptr_map,
            pts,
            redirect,
            collapsed,
            reachable,
            reachable_methods,
            cg_edges,
            cs_cg_edge_count,
            stats,
            method_ctxs,
            site_targets,
        }
    }

    /// Replaces the stats block (the solver finishes timing the
    /// finalize phase only after the result is assembled).
    pub(crate) fn with_stats(mut self, stats: AnalysisStats) -> Self {
        self.stats = stats;
        self
    }

    // --- Object queries -----------------------------------------------------

    /// Returns the number of distinct abstract objects created.
    pub fn object_count(&self) -> usize {
        self.objs.len()
    }

    /// Returns the (representative) allocation site of an object.
    pub fn obj_alloc(&self, obj: ObjId) -> AllocId {
        self.objs.alloc(obj)
    }

    /// Returns the runtime type of an object.
    pub fn obj_type(&self, obj: ObjId) -> TypeId {
        self.objs.ty(obj)
    }

    /// Returns the heap context of an object.
    pub fn obj_heap_context(&self, obj: ObjId) -> CtxId {
        self.objs.heap_context(obj)
    }

    /// Iterates over all abstract objects.
    pub fn objects(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.objs.iter()
    }

    /// Canonical (discovery-order) index of `obj` — the id it would
    /// carry under [`crate::Numbering::Discovery`]. This is the old↔new
    /// permutation of the hierarchy renumbering: fingerprints computed
    /// over canonical indices are bit-identical regardless of the
    /// [`crate::Numbering`] the run used.
    pub fn obj_canonical_index(&self, obj: ObjId) -> u32 {
        self.objs.discovery_index(obj)
    }

    /// Inverse of [`AnalysisResult::obj_canonical_index`]: the object
    /// interned `i`-th (`i < object_count()`).
    pub fn obj_from_canonical(&self, i: u32) -> ObjId {
        self.objs.by_discovery_index(i)
    }

    // --- Points-to queries ---------------------------------------------------

    /// Returns the points-to set of variable `var` under context `ctx`
    /// (the empty set if the pointer never arose). Borrows; use
    /// [`PtsSet::to_vec`] for an owned, sorted `Vec`.
    pub fn points_to(&self, ctx: CtxId, var: VarId) -> &PtsSet<ObjId> {
        self.pts_of(PtrKey::Var(ctx, var))
    }

    /// Returns the context-insensitively collapsed points-to set of
    /// `var`: the union over all contexts. Borrows from a cache built
    /// at result assembly (variables with identical collapsed sets
    /// share one interned allocation); the empty set if `var` never
    /// arose. Use [`PtsSet::to_vec`] for an owned, sorted `Vec`.
    pub fn points_to_collapsed(&self, var: VarId) -> &PtsSet<ObjId> {
        match self.collapsed.get(&var) {
            Some(h) => h.as_set(),
            None => &EMPTY_PTS,
        }
    }

    /// Returns the points-to set of `obj.field`.
    pub fn field_points_to(&self, obj: ObjId, field: FieldId) -> &PtsSet<ObjId> {
        self.pts_of(PtrKey::Field(obj, field))
    }

    /// Returns the points-to set of a static field.
    pub fn static_points_to(&self, field: FieldId) -> &PtsSet<ObjId> {
        self.pts_of(PtrKey::Static(field))
    }

    fn pts_of(&self, key: PtrKey) -> &PtsSet<ObjId> {
        match self.ptr_map.get(&key) {
            Some(p) => self.resolved(*p),
            None => &EMPTY_PTS,
        }
    }

    /// Resolves a pointer through the cycle-collapse redirect table to
    /// the set its representative owns.
    fn resolved(&self, p: PtrId) -> &PtsSet<ObjId> {
        self.pts[self.redirect[p.index()] as usize].as_set()
    }

    /// Iterates over all `(object, field, points-to set)` triples — the
    /// raw material of Mahjong's field points-to graph. Sets are
    /// borrowed; iteration order of each set is ascending.
    pub fn field_pointers(
        &self,
    ) -> impl Iterator<Item = (ObjId, FieldId, &PtsSet<ObjId>)> + '_ {
        self.ptr_keys
            .iter()
            .enumerate()
            .filter_map(move |(i, key)| match *key {
                PtrKey::Field(obj, field) => {
                    Some((obj, field, self.resolved(PtrId(i as u32))))
                }
                _ => None,
            })
    }

    /// Sum of all points-to set sizes (a standard size metric). Each
    /// pointer counts its resolved (representative) set, so the metric
    /// is unaffected by cycle collapse.
    pub fn total_points_to_size(&self) -> u64 {
        (0..self.ptr_keys.len())
            .map(|i| self.resolved(PtrId(i as u32)).len() as u64)
            .sum()
    }

    /// Number of pointer nodes in the constraint graph.
    pub fn pointer_count(&self) -> usize {
        self.ptr_keys.len()
    }

    // --- Call graph and reachability ------------------------------------------

    /// Returns the context-insensitive call-graph edges `(site, target)`.
    pub fn call_graph_edges(&self) -> impl Iterator<Item = (CallSiteId, MethodId)> + '_ {
        self.cg_edges.iter().copied()
    }

    /// Returns the number of context-insensitive call-graph edges — the
    /// paper's "#call graph edges" metric.
    pub fn call_graph_edge_count(&self) -> usize {
        self.cg_edges.len()
    }

    /// Returns the number of context-sensitive call-graph edges.
    pub fn cs_call_graph_edge_count(&self) -> usize {
        self.cs_cg_edge_count
    }

    /// Returns the targets discovered for one call site, sorted and
    /// deduplicated (empty for unresolved or unreachable sites).
    pub fn call_targets(&self, site: CallSiteId) -> &[MethodId] {
        self.site_targets
            .get(&site)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns `true` if `method` is reachable from the entry point.
    pub fn is_reachable(&self, method: MethodId) -> bool {
        self.reachable_methods.contains(&method)
    }

    /// Returns the number of reachable methods (context-insensitive).
    pub fn reachable_method_count(&self) -> usize {
        self.reachable_methods.len()
    }

    /// Returns the contexts under which `method` was analyzed.
    pub fn contexts_of_method(&self, method: MethodId) -> &[CtxId] {
        self.method_ctxs
            .get(&method)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Returns the number of reachable `(context, method)` pairs.
    pub fn reachable_context_count(&self) -> usize {
        self.reachable.len()
    }

    /// Returns the solver statistics.
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// Returns the context arena (for inspecting context elements).
    pub fn contexts(&self) -> &ContextArena {
        &self.arena
    }
}
