//! Heap abstractions: how concrete allocation sites are partitioned into
//! abstract objects.
//!
//! The paper contrasts three abstractions:
//!
//! - [`AllocSiteAbstraction`] — one object per allocation site (the
//!   mainstream default in Doop/Wala/Soot);
//! - [`AllocTypeAbstraction`] — one object per type (the "naive
//!   solution" of paper Section 2.1, used as the T-kA baseline);
//! - [`MergedObjectMap`] — the Mahjong abstraction: objects merged per
//!   type-consistency equivalence class (paper Definition 2.2). Built
//!   by the `mahjong` crate and consumed here.

use jir::{AllocId, Program};

/// How allocation sites are merged into abstract objects.
///
/// `repr` maps each allocation site to the representative of its
/// equivalence class; the engine then models all sites of a class by
/// the representative's site. `is_merged` reports whether a site's
/// class has more than one member: merged objects are always modeled
/// context-insensitively (paper Section 3.6.1).
pub trait HeapAbstraction {
    /// Returns the representative allocation site for `alloc`.
    fn repr(&self, alloc: AllocId) -> AllocId;

    /// Returns `true` if `alloc` belongs to an equivalence class with
    /// more than one member.
    fn is_merged(&self, alloc: AllocId) -> bool;

    /// A short human-readable name, e.g. `"alloc-site"`.
    fn describe(&self) -> String;

    /// Counts the abstract objects this abstraction induces over the
    /// given allocation sites (distinct representatives).
    fn object_count(&self, allocs: impl Iterator<Item = AllocId>) -> usize
    where
        Self: Sized,
    {
        let mut reprs: Vec<AllocId> = allocs.map(|a| self.repr(a)).collect();
        reprs.sort_unstable();
        reprs.dedup();
        reprs.len()
    }
}

/// The allocation-site abstraction: the identity partition.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocSiteAbstraction;

impl HeapAbstraction for AllocSiteAbstraction {
    fn repr(&self, alloc: AllocId) -> AllocId {
        alloc
    }

    fn is_merged(&self, _alloc: AllocId) -> bool {
        false
    }

    fn describe(&self) -> String {
        "alloc-site".to_owned()
    }
}

/// The allocation-type abstraction: all sites of the same type share one
/// representative (paper Section 2.1 — fast but imprecise).
#[derive(Clone, Debug)]
pub struct AllocTypeAbstraction {
    repr: Vec<AllocId>,
    merged: Vec<bool>,
}

impl AllocTypeAbstraction {
    /// Builds the per-type partition for a program.
    pub fn new(program: &Program) -> Self {
        let mut first_of_type: std::collections::HashMap<jir::TypeId, AllocId> =
            std::collections::HashMap::new();
        let mut count_of_type: std::collections::HashMap<jir::TypeId, usize> =
            std::collections::HashMap::new();
        for a in program.alloc_ids() {
            let ty = program.alloc(a).ty();
            first_of_type.entry(ty).or_insert(a);
            *count_of_type.entry(ty).or_insert(0) += 1;
        }
        let repr: Vec<AllocId> = program
            .alloc_ids()
            .map(|a| first_of_type[&program.alloc(a).ty()])
            .collect();
        let merged: Vec<bool> = program
            .alloc_ids()
            .map(|a| count_of_type[&program.alloc(a).ty()] > 1)
            .collect();
        AllocTypeAbstraction { repr, merged }
    }
}

impl HeapAbstraction for AllocTypeAbstraction {
    fn repr(&self, alloc: AllocId) -> AllocId {
        self.repr[alloc.index()]
    }

    fn is_merged(&self, alloc: AllocId) -> bool {
        self.merged[alloc.index()]
    }

    fn describe(&self) -> String {
        "alloc-type".to_owned()
    }
}

/// The Mahjong heap abstraction: the merged object map (MOM) of paper
/// Algorithm 1, mapping every allocation site to the representative of
/// its type-consistency equivalence class.
///
/// Constructed by `mahjong::build_heap_abstraction`; this crate only
/// consumes it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergedObjectMap {
    repr: Vec<AllocId>,
    merged: Vec<bool>,
}

impl MergedObjectMap {
    /// Creates a map from a representative per allocation site (indexed
    /// by `AllocId`).
    ///
    /// # Panics
    ///
    /// Panics if any representative is itself mapped to a different
    /// representative (the map must be idempotent).
    pub fn new(repr: Vec<AllocId>) -> Self {
        for (i, &r) in repr.iter().enumerate() {
            assert_eq!(
                repr[r.index()],
                r,
                "representative of alloc#{i} is not a fixed point"
            );
        }
        let mut class_size = vec![0usize; repr.len()];
        for &r in &repr {
            class_size[r.index()] += 1;
        }
        let merged = repr.iter().map(|&r| class_size[r.index()] > 1).collect();
        MergedObjectMap { repr, merged }
    }

    /// Returns the identity map over `n` allocation sites (every class a
    /// singleton).
    pub fn identity(n: usize) -> Self {
        MergedObjectMap {
            repr: (0..n).map(AllocId::from_usize).collect(),
            merged: vec![false; n],
        }
    }

    /// Returns the number of allocation sites covered.
    pub fn len(&self) -> usize {
        self.repr.len()
    }

    /// Returns `true` if the map covers no allocation sites.
    pub fn is_empty(&self) -> bool {
        self.repr.is_empty()
    }

    /// Returns the number of equivalence classes (abstract objects).
    pub fn class_count(&self) -> usize {
        let mut reprs: Vec<AllocId> = self.repr.clone();
        reprs.sort_unstable();
        reprs.dedup();
        reprs.len()
    }

    /// Groups allocation sites into their equivalence classes, ordered
    /// by smallest member; members ascend within each class.
    pub fn classes(&self) -> Vec<Vec<AllocId>> {
        let mut by_repr: std::collections::BTreeMap<AllocId, Vec<AllocId>> =
            std::collections::BTreeMap::new();
        for (i, &r) in self.repr.iter().enumerate() {
            by_repr.entry(r).or_default().push(AllocId::from_usize(i));
        }
        by_repr.into_values().collect()
    }
}

impl HeapAbstraction for MergedObjectMap {
    fn repr(&self, alloc: AllocId) -> AllocId {
        self.repr[alloc.index()]
    }

    fn is_merged(&self, alloc: AllocId) -> bool {
        self.merged[alloc.index()]
    }

    fn describe(&self) -> String {
        "mahjong".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_site_is_identity() {
        let h = AllocSiteAbstraction;
        let a = AllocId::from_usize(5);
        assert_eq!(h.repr(a), a);
        assert!(!h.is_merged(a));
    }

    #[test]
    fn mom_identity() {
        let m = MergedObjectMap::identity(3);
        assert_eq!(m.class_count(), 3);
        assert!(!m.is_merged(AllocId::from_usize(0)));
    }

    #[test]
    fn mom_classes_and_merged_flags() {
        // {0, 2} merged into 0; {1} singleton.
        let m = MergedObjectMap::new(vec![
            AllocId::from_usize(0),
            AllocId::from_usize(1),
            AllocId::from_usize(0),
        ]);
        assert_eq!(m.class_count(), 2);
        assert!(m.is_merged(AllocId::from_usize(0)));
        assert!(m.is_merged(AllocId::from_usize(2)));
        assert!(!m.is_merged(AllocId::from_usize(1)));
        assert_eq!(
            m.classes(),
            vec![
                vec![AllocId::from_usize(0), AllocId::from_usize(2)],
                vec![AllocId::from_usize(1)],
            ]
        );
    }

    #[test]
    #[should_panic(expected = "not a fixed point")]
    fn mom_rejects_non_idempotent_map() {
        // 0 -> 1 but 1 -> 2: not idempotent.
        let _ = MergedObjectMap::new(vec![
            AllocId::from_usize(1),
            AllocId::from_usize(2),
            AllocId::from_usize(2),
        ]);
    }
}
