//! A naive reference solver: round-based, recompute-everything
//! fixpoint iteration with no worklist, no deltas, and no replay
//! subtleties.
//!
//! It is deliberately simple — every round re-evaluates every
//! statement of every reachable `(context, method)` pair against full
//! points-to sets — so its correctness is easy to audit. The test
//! suite cross-validates the production worklist solver against it on
//! small programs (`tests/reference.rs`); it is far too slow for real
//! workloads.

use std::collections::{BTreeMap, BTreeSet};

use jir::{CallKind, CallSiteId, CallTarget, MethodId, Program, Stmt, VarId};

use crate::context::{ContextArena, ContextSelector, CtxId};
use crate::heap::HeapAbstraction;
use crate::object::{ObjId, ObjTable};
use crate::solver::PtrKey;

/// The reference solver's result: plain maps, independently computed.
#[derive(Debug, Default)]
pub struct NaiveResult {
    /// Points-to sets per pointer.
    pub pts: BTreeMap<PtrKey, BTreeSet<ObjId>>,
    /// Reachable `(context, method)` pairs.
    pub reachable: BTreeSet<(CtxId, MethodId)>,
    /// Context-insensitive call-graph edges.
    pub call_edges: BTreeSet<(CallSiteId, MethodId)>,
    /// The object table (to translate `ObjId`s).
    pub objs: ObjTable,
    /// The context arena.
    pub arena: ContextArena,
}

impl NaiveResult {
    /// The collapsed points-to set of a variable, as allocation sites.
    pub fn var_points_to_allocs(&self, var: VarId) -> BTreeSet<jir::AllocId> {
        self.pts
            .iter()
            .filter(|(key, _)| matches!(key, PtrKey::Var(_, v) if *v == var))
            .flat_map(|(_, set)| set.iter().map(|&o| self.objs.alloc(o)))
            .collect()
    }

    /// The set of reachable methods (context-insensitive).
    pub fn reachable_methods(&self) -> BTreeSet<MethodId> {
        self.reachable.iter().map(|&(_, m)| m).collect()
    }
}

/// Runs the round-based fixpoint. Intended for small test programs;
/// rounds are bounded only by monotonicity (every round either adds a
/// fact or terminates).
pub fn solve_naive<S: ContextSelector, H: HeapAbstraction>(
    program: &Program,
    selector: &S,
    heap: &H,
) -> NaiveResult {
    let mut r = NaiveResult::default();
    let empty = r.arena.empty();
    r.reachable.insert((empty, program.entry()));

    loop {
        let before = facts(&r);
        let snapshot: Vec<(CtxId, MethodId)> = r.reachable.iter().copied().collect();
        for (ctx, m) in snapshot {
            eval_method(program, selector, heap, &mut r, ctx, m);
        }
        if facts(&r) == before {
            return r;
        }
    }
}

/// A monotone measure of the result: total facts.
fn facts(r: &NaiveResult) -> (usize, usize, usize) {
    (
        r.pts.values().map(BTreeSet::len).sum(),
        r.reachable.len(),
        r.call_edges.len(),
    )
}

fn get(r: &NaiveResult, key: PtrKey) -> BTreeSet<ObjId> {
    r.pts.get(&key).cloned().unwrap_or_default()
}

fn add(r: &mut NaiveResult, key: PtrKey, objs: impl IntoIterator<Item = ObjId>) {
    r.pts.entry(key).or_default().extend(objs);
}

fn eval_method<S: ContextSelector, H: HeapAbstraction>(
    program: &Program,
    selector: &S,
    heap: &H,
    r: &mut NaiveResult,
    ctx: CtxId,
    method: MethodId,
) {
    let body: Vec<Stmt> = program.method(method).body().to_vec();
    for stmt in body {
        match stmt {
            Stmt::New { lhs, site } => {
                let repr = heap.repr(site);
                let hctx = if heap.is_merged(repr) {
                    r.arena.empty()
                } else {
                    selector.heap_context(&mut r.arena, ctx, repr)
                };
                let obj = r.objs.intern(hctx, repr, program);
                add(r, PtrKey::Var(ctx, lhs), [obj]);
            }
            Stmt::Assign { lhs, rhs } => {
                let from = get(r, PtrKey::Var(ctx, rhs));
                add(r, PtrKey::Var(ctx, lhs), from);
            }
            Stmt::Load { lhs, base, field } => {
                let bases = get(r, PtrKey::Var(ctx, base));
                for b in bases {
                    let vals = get(r, PtrKey::Field(b, field));
                    add(r, PtrKey::Var(ctx, lhs), vals);
                }
            }
            Stmt::Store { base, field, rhs } => {
                let bases = get(r, PtrKey::Var(ctx, base));
                let vals = get(r, PtrKey::Var(ctx, rhs));
                for b in bases {
                    add(r, PtrKey::Field(b, field), vals.iter().copied());
                }
            }
            Stmt::StaticLoad { lhs, field } => {
                let vals = get(r, PtrKey::Static(field));
                add(r, PtrKey::Var(ctx, lhs), vals);
            }
            Stmt::StaticStore { field, rhs } => {
                let vals = get(r, PtrKey::Var(ctx, rhs));
                add(r, PtrKey::Static(field), vals);
            }
            Stmt::Cast { lhs, rhs, site } => {
                let target = program.cast(site).target_ty();
                let vals: Vec<ObjId> = get(r, PtrKey::Var(ctx, rhs))
                    .into_iter()
                    .filter(|&o| program.is_subtype(r.objs.ty(o), target))
                    .collect();
                add(r, PtrKey::Var(ctx, lhs), vals);
            }
            Stmt::Call(site_id) => {
                eval_call(program, selector, heap, r, ctx, site_id);
            }
            Stmt::Return { .. } => {}
        }
    }
}

fn eval_call<S: ContextSelector, H: HeapAbstraction>(
    program: &Program,
    selector: &S,
    heap: &H,
    r: &mut NaiveResult,
    ctx: CtxId,
    site_id: CallSiteId,
) {
    let _ = heap;
    let site = program.call_site(site_id).clone();
    match (site.kind().clone(), site.target().clone()) {
        (CallKind::Static, CallTarget::Exact(target)) => {
            let callee_ctx = selector.static_callee_context(&mut r.arena, ctx, site_id, target);
            bind(program, r, ctx, site_id, callee_ctx, target, None);
        }
        (kind, target) => {
            let recv_var = kind.receiver().expect("receiver-passing call");
            let recvs = get(r, PtrKey::Var(ctx, recv_var));
            for recv in recvs {
                let resolved = match &target {
                    CallTarget::Exact(t) => Some(*t),
                    CallTarget::Signature { name, arity } => {
                        program.dispatch(r.objs.ty(recv), name, *arity)
                    }
                };
                let Some(t) = resolved else { continue };
                if program.method(t).is_abstract() {
                    continue;
                }
                let callee_ctx = selector.callee_context(
                    &mut r.arena,
                    &r.objs,
                    program,
                    ctx,
                    site_id,
                    recv,
                    t,
                );
                bind(program, r, ctx, site_id, callee_ctx, t, Some(recv));
            }
        }
    }
}

fn bind(
    program: &Program,
    r: &mut NaiveResult,
    caller_ctx: CtxId,
    site_id: CallSiteId,
    callee_ctx: CtxId,
    target: MethodId,
    recv: Option<ObjId>,
) {
    r.call_edges.insert((site_id, target));
    r.reachable.insert((callee_ctx, target));
    let callee = program.method(target);
    if let (Some(this), Some(obj)) = (callee.this(), recv) {
        add(r, PtrKey::Var(callee_ctx, this), [obj]);
    }
    let site = program.call_site(site_id).clone();
    let params: Vec<VarId> = callee.params().to_vec();
    for (&arg, &param) in site.args().iter().zip(params.iter()) {
        let vals = get(r, PtrKey::Var(caller_ctx, arg));
        add(r, PtrKey::Var(callee_ctx, param), vals);
    }
    if let Some(result) = site.result() {
        let rets: Vec<VarId> = program
            .method(target)
            .body()
            .iter()
            .filter_map(|s| match *s {
                Stmt::Return { value } => value,
                _ => None,
            })
            .collect();
        for rv in rets {
            let vals = get(r, PtrKey::Var(callee_ctx, rv));
            add(r, PtrKey::Var(caller_ctx, result), vals);
        }
    }
}
