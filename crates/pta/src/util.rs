//! Small utilities: fast, deterministic hash maps for the hot interning
//! and points-to-set tables.
//!
//! The hasher itself lives in the workspace-shared [`fxhash`] crate (a
//! hand-rolled FxHash: multiplicative word mixing — not DoS-resistant,
//! but the analysis only hashes its own interned indices, so speed and
//! determinism are what matter). This module keeps the historical
//! `FastMap`/`FastSet`/`FastHasher` names as aliases so `pta` call
//! sites and downstream users are unaffected by the extraction.

pub use fxhash::FxHasher as FastHasher;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = fxhash::FxHashMap<K, V>;
/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = fxhash::FxHashSet<T>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hasher;

    #[test]
    fn aliases_share_the_workspace_hasher() {
        let mut a = FastHasher::default();
        let mut b = fxhash::FxHasher::default();
        a.write_u64(0xdead_beef);
        b.write_u64(0xdead_beef);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), None);
        let mut s = FastSet::default();
        s.insert(7u32);
        assert!(s.contains(&7));
    }
}
