//! Small utilities: a fast, deterministic hasher for the hot interning
//! and points-to-set maps.
//!
//! The hasher is a simple multiplicative mix (the same family as
//! rustc's FxHash): not DoS-resistant, but the analysis only hashes its
//! own interned indices, so speed and determinism are what matter.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;
/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast non-cryptographic hasher for small integer-like keys.
#[derive(Debug, Default, Clone)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_distinct_buckets_mostly() {
        let mut set = FastSet::default();
        for i in 0u32..10_000 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
        assert!(set.contains(&42));
        assert!(!set.contains(&10_000));
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FastHasher::default();
        let mut b = FastHasher::default();
        a.write_u64(123);
        b.write_u64(123);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FastMap<(u32, u32), u32> = FastMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), None);
    }
}
