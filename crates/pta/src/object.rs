//! Abstract heap objects: a heap context paired with a (representative)
//! allocation site.

use jir::{AllocId, Program, TypeId};

use crate::context::CtxId;
use crate::util::FastMap;

/// An interned abstract heap object `(heap context, allocation site)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub(crate) u32);

impl ObjId {
    /// Returns the arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Object ids are dense arena indices, so points-to sets over them can
/// use the hybrid vec/bitmap representation from the `pts` crate.
impl pts::Elem for ObjId {
    fn into_index(self) -> usize {
        self.0 as usize
    }
    fn from_index(i: usize) -> Self {
        ObjId(u32::try_from(i).expect("object index fits u32"))
    }
}

/// Hash-consing arena of abstract heap objects.
///
/// Under the allocation-site abstraction each entry pairs an allocation
/// site with a heap context; under a merging abstraction (allocation-type
/// or Mahjong) the allocation site stored here is already the
/// representative of its equivalence class.
#[derive(Debug, Default)]
pub struct ObjTable {
    hctxs: Vec<CtxId>,
    allocs: Vec<AllocId>,
    types: Vec<TypeId>,
    map: FastMap<(CtxId, AllocId), ObjId>,
}

impl ObjTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns the object `(hctx, alloc)`.
    pub fn intern(&mut self, hctx: CtxId, alloc: AllocId, program: &Program) -> ObjId {
        if let Some(&id) = self.map.get(&(hctx, alloc)) {
            return id;
        }
        let id = ObjId(u32::try_from(self.allocs.len()).expect("too many objects"));
        self.hctxs.push(hctx);
        self.allocs.push(alloc);
        self.types.push(program.alloc(alloc).ty());
        self.map.insert((hctx, alloc), id);
        id
    }

    /// Returns the heap context of an object.
    pub fn heap_context(&self, obj: ObjId) -> CtxId {
        self.hctxs[obj.index()]
    }

    /// Returns the (representative) allocation site of an object.
    pub fn alloc(&self, obj: ObjId) -> AllocId {
        self.allocs[obj.index()]
    }

    /// Returns the runtime type of an object.
    pub fn ty(&self, obj: ObjId) -> TypeId {
        self.types[obj.index()]
    }

    /// Returns the number of distinct abstract objects created.
    pub fn len(&self) -> usize {
        self.allocs.len()
    }

    /// Returns `true` if no objects have been created.
    pub fn is_empty(&self) -> bool {
        self.allocs.is_empty()
    }

    /// Iterates over all object ids.
    pub fn iter(&self) -> impl Iterator<Item = ObjId> + '_ {
        (0..self.allocs.len()).map(|i| ObjId(i as u32))
    }
}
