//! Abstract heap objects: a heap context paired with a (representative)
//! allocation site.
//!
//! Object ids come from a pluggable [`Numbering`]: discovery order
//! (dense, the historical scheme) or class-hierarchy order
//! ([`crate::numbering::ObjNumbering`] — sparse ids laid out so each
//! type's subtype cone is a few contiguous runs, which is what lets the
//! solver compile cast masks down to [`pts::IdRanges`]). Either way the
//! table keeps the id ↔ discovery-slot permutation, so results can be
//! canonicalized independently of the numbering in effect.

use jir::{AllocId, Program, TypeId};

use crate::context::CtxId;
use crate::numbering::ObjNumbering;
use crate::util::FastMap;

/// Sentinel slot for ids inside unfilled lane/chunk slack.
const NO_SLOT: u32 = u32::MAX;

/// How a run's object ids are laid out (see [`crate::numbering`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Numbering {
    /// Dense ids in interning (discovery) order — the canonical
    /// numbering golden fingerprints are expressed in.
    Discovery,
    /// Sparse ids in class-hierarchy preorder lanes, so subtype cones
    /// compile to short range lists.
    #[default]
    Hierarchy,
}

/// An interned abstract heap object `(heap context, allocation site)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(pub(crate) u32);

impl ObjId {
    /// Returns the id as an index into the (possibly sparse) id space.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for ObjId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// Object ids index the numbering's id space, so points-to sets over
/// them can use the hybrid vec/bitmap representation from the `pts`
/// crate (bitmap words scale with the id space, which the hierarchy
/// numbering keeps within a small constant of the object count).
impl pts::Elem for ObjId {
    fn into_index(self) -> usize {
        self.0 as usize
    }
    fn from_index(i: usize) -> Self {
        ObjId(u32::try_from(i).expect("object index fits u32"))
    }
}

/// Hash-consing arena of abstract heap objects.
///
/// Under the allocation-site abstraction each entry pairs an allocation
/// site with a heap context; under a merging abstraction (allocation-type
/// or Mahjong) the allocation site stored here is already the
/// representative of its equivalence class.
#[derive(Debug, Default)]
pub struct ObjTable {
    /// Hierarchy-mode id allocator; `None` = discovery mode (id ==
    /// discovery slot).
    numbering: Option<ObjNumbering>,
    /// Id → discovery slot ([`NO_SLOT`] for slack ids never handed
    /// out). Identity in discovery mode.
    slot_of: Vec<u32>,
    /// Discovery slot → id, in interning order.
    ids: Vec<ObjId>,
    hctxs: Vec<CtxId>,
    allocs: Vec<AllocId>,
    types: Vec<TypeId>,
    map: FastMap<(CtxId, AllocId), ObjId>,
}

impl ObjTable {
    /// Creates an empty table in discovery (dense-id) mode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with the given numbering for `program`.
    pub fn with_numbering(program: &Program, numbering: Numbering) -> Self {
        ObjTable {
            numbering: match numbering {
                Numbering::Discovery => None,
                Numbering::Hierarchy => Some(ObjNumbering::new(program)),
            },
            ..Self::default()
        }
    }

    /// Interns the object `(hctx, alloc)`.
    pub fn intern(&mut self, hctx: CtxId, alloc: AllocId, program: &Program) -> ObjId {
        if let Some(&id) = self.map.get(&(hctx, alloc)) {
            return id;
        }
        let slot = u32::try_from(self.ids.len()).expect("too many objects");
        let ty = program.alloc(alloc).ty();
        let id = match &mut self.numbering {
            None => ObjId(slot),
            Some(num) => ObjId(num.assign(ty)),
        };
        if self.slot_of.len() <= id.index() {
            self.slot_of.resize(id.index() + 1, NO_SLOT);
        }
        self.slot_of[id.index()] = slot;
        self.ids.push(id);
        self.hctxs.push(hctx);
        self.allocs.push(alloc);
        self.types.push(ty);
        self.map.insert((hctx, alloc), id);
        id
    }

    /// Rebuilds a table from per-slot rows in discovery order plus the
    /// id-space bound (snapshot restore). The restored table is a
    /// read-only view: it carries no [`ObjNumbering`] allocator, so it
    /// answers every query but cannot intern new objects under the
    /// hierarchy layout (`intern` of a known `(hctx, alloc)` pair still
    /// works; an unknown pair would fall back to dense ids). Rejects
    /// ids outside `id_space`, duplicate ids, and duplicate
    /// `(hctx, alloc)` pairs.
    pub(crate) fn from_slots(
        rows: Vec<(ObjId, CtxId, AllocId, TypeId)>,
        id_space: usize,
    ) -> Result<Self, String> {
        let mut table = ObjTable {
            slot_of: vec![NO_SLOT; id_space],
            ..Self::default()
        };
        for (slot, (id, hctx, alloc, ty)) in rows.into_iter().enumerate() {
            if id.index() >= id_space {
                return Err(format!("object id {id:?} outside id space {id_space}"));
            }
            if table.slot_of[id.index()] != NO_SLOT {
                return Err(format!("object id {id:?} assigned twice"));
            }
            if table.map.insert((hctx, alloc), id).is_some() {
                return Err(format!("object ({hctx:?}, {alloc:?}) interned twice"));
            }
            table.slot_of[id.index()] = slot as u32;
            table.ids.push(id);
            table.hctxs.push(hctx);
            table.allocs.push(alloc);
            table.types.push(ty);
        }
        Ok(table)
    }

    /// Whether `raw` names an id this table actually handed out (ids
    /// inside hierarchy lane/chunk slack do not; snapshot restore uses
    /// this to validate decoded set elements before any query can
    /// reach [`ObjTable::slot`]).
    pub(crate) fn has_id(&self, raw: u32) -> bool {
        (raw as usize) < self.slot_of.len() && self.slot_of[raw as usize] != NO_SLOT
    }

    fn slot(&self, obj: ObjId) -> usize {
        let s = self.slot_of[obj.index()];
        debug_assert_ne!(s, NO_SLOT, "id {obj:?} was never handed out");
        s as usize
    }

    /// Returns the heap context of an object.
    pub fn heap_context(&self, obj: ObjId) -> CtxId {
        self.hctxs[self.slot(obj)]
    }

    /// Returns the (representative) allocation site of an object.
    pub fn alloc(&self, obj: ObjId) -> AllocId {
        self.allocs[self.slot(obj)]
    }

    /// Returns the runtime type of an object.
    pub fn ty(&self, obj: ObjId) -> TypeId {
        self.types[self.slot(obj)]
    }

    /// Canonical (discovery-order) index of `obj`: the id it would
    /// carry under [`Numbering::Discovery`]. Together with
    /// [`ObjTable::by_discovery_index`] this is the old↔new id
    /// permutation exposed through `AnalysisResult`.
    pub fn discovery_index(&self, obj: ObjId) -> u32 {
        self.slot_of[obj.index()]
    }

    /// The object interned `i`-th (inverse of
    /// [`ObjTable::discovery_index`]).
    pub fn by_discovery_index(&self, i: u32) -> ObjId {
        self.ids[i as usize]
    }

    /// Returns the number of distinct abstract objects created.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// One past the largest id handed out — the points-to universe
    /// size, including lane/chunk slack in hierarchy mode.
    pub fn id_space(&self) -> usize {
        self.slot_of.len()
    }

    /// Returns `true` if no objects have been created.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates over all object ids, in discovery order.
    pub fn iter(&self) -> impl Iterator<Item = ObjId> + '_ {
        self.ids.iter().copied()
    }
}
