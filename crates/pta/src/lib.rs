//! # pta — whole-program points-to analysis
//!
//! The analysis-engine substrate of the Mahjong reproduction (Tan, Li,
//! Xue, PLDI 2017): an Andersen-style, flow-insensitive, field-sensitive
//! subset analysis over [`jir`] programs with on-the-fly call-graph
//! construction. Two axes are pluggable, mirroring the paper's
//! experimental matrix:
//!
//! - **Context sensitivity** ([`ContextSelector`]):
//!   [`ContextInsensitive`] (the pre-analysis), [`CallSiteSensitive`]
//!   (k-CFA), [`ObjectSensitive`] (k-obj), [`TypeSensitive`] (k-type).
//! - **Heap abstraction** ([`HeapAbstraction`]):
//!   [`AllocSiteAbstraction`] (one object per allocation site),
//!   [`AllocTypeAbstraction`] (one object per type — the naive baseline
//!   of paper Section 2.1), and [`MergedObjectMap`] (the Mahjong
//!   abstraction, produced by the `mahjong` crate).
//!
//! Merged objects are always modeled context-insensitively, and merged
//! context elements are automatically replaced by their class
//! representatives, exactly as prescribed in paper Section 3.6.1.
//!
//! Points-to sets are hybrid sorted-vec / bitmap [`PtsSet`]s (from the
//! `pts` crate) and the result API is borrow-first: accessors hand out
//! `&PtsSet<ObjId>` views with `to_vec()` as the owned escape hatch.
//!
//! # Examples
//!
//! Running a 2-object-sensitive analysis:
//!
//! ```
//! use pta::{AnalysisConfig, ObjectSensitive, AllocSiteAbstraction};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = jir::parse(
//!     "class A {
//!        field f: A;
//!        method id(this, v) { w = v; return w; }
//!        entry static method main() {
//!          a = new A; b = new A;
//!          r = virt a.id(b);
//!          return;
//!        }
//!      }",
//! )?;
//! let result = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
//!     .run(&program)?;
//! assert!(result.call_graph_edge_count() >= 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod context;
mod heap;
pub mod naive;
pub mod numbering;
mod object;
mod result;
pub mod snapshot;
mod solver;
pub mod util;

pub use context::{
    CallSiteSensitive, ContextArena, ContextInsensitive, ContextSelector, CtxElem, CtxId,
    ObjectSensitive, TypeSensitive,
};
pub use heap::{AllocSiteAbstraction, AllocTypeAbstraction, HeapAbstraction, MergedObjectMap};
pub use object::{Numbering, ObjId, ObjTable};
pub use pts::PtsSet;
pub use result::{AnalysisResult, AnalysisStats};
pub use solver::{pre_analysis, AnalysisConfig, Budget, PtrId, PtrKey, Unscalable};
