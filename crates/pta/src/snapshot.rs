//! Raw, serialization-friendly views of an [`AnalysisResult`].
//!
//! The `snapshot` crate persists analysis results as a versioned binary
//! artifact; this module is the boundary between that byte format and
//! the solver's private data structures. [`extract`] flattens a result
//! into [`RawResult`] — plain integer tables with **every unique
//! points-to set stored once** (rows reference set indices, mirroring
//! the solver's hash-consing interner) — and [`restore`] rebuilds a
//! fully functional result from one, re-interning the sets into a
//! fresh [`SetInterner`] so handle-equality fast paths work exactly as
//! they do after a live run.
//!
//! # Round-trip guarantees
//!
//! `restore(extract(r))` answers every query of the borrow-first API
//! bit-identically to `r`: the tables preserve interning order
//! (contexts and objects keep their ids), the redirect table, and the
//! row → set mapping, and derived indices (`points_to_collapsed`
//! cache, `call_targets` slices, per-method context lists) are rebuilt
//! by the same `AnalysisResult::from_parts` code path the solver
//! uses. Snapshot encoding is also *canonical*: [`extract`] sorts the
//! call-graph/reachability tables and orders unique sets by first row
//! occurrence, so extracting a restored result reproduces the raw
//! tables exactly (the snapshot crate's byte-level round-trip test
//! relies on this).
//!
//! # Validation
//!
//! [`restore`] trusts nothing: every id is bounds-checked against the
//! tables that define it (contexts, object slots, set indices,
//! redirect targets) and structural invariants (context 0 empty, set
//! elements strictly ascending, object ids unique) are verified, so a
//! corrupted or adversarial snapshot that passed the byte-level
//! checksums still cannot make any later query panic. Failures return
//! [`RestoreError`] with a human-readable detail.

use std::sync::Arc;

use pts::{Elem, PtsHandle, PtsSet, SetInterner};

use crate::context::{ContextArena, CtxElem, CtxId};
use crate::object::{ObjId, ObjTable};
use crate::result::{AnalysisResult, AnalysisStats};
use crate::solver::{PtrId, PtrKey};
use crate::util::{FastMap, FastSet};

use jir::{AllocId, CallSiteId, FieldId, MethodId, TypeId, VarId};

/// A context element as a `(tag, value)` pair: tag 1 = call site,
/// 2 = allocation site, 3 = class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawCtxElem {
    /// Element kind tag (1, 2, or 3).
    pub tag: u8,
    /// The element's id payload (raw arena index).
    pub value: u32,
}

/// One abstract object row, in discovery (interning) order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawObj {
    /// The object's id (sparse under the hierarchy numbering).
    pub id: u32,
    /// Heap context (index into the context table).
    pub hctx: u32,
    /// Representative allocation site.
    pub alloc: u32,
    /// Runtime type.
    pub ty: u32,
}

/// A pointer key as a `(tag, a, b)` triple: tag 1 = `Var(ctx=a,
/// var=b)`, 2 = `Field(obj=a, field=b)`, 3 = `Static(field=a, b=0)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawPtrKey {
    /// Key kind tag (1, 2, or 3).
    pub tag: u8,
    /// First id payload.
    pub a: u32,
    /// Second id payload (0 for static fields).
    pub b: u32,
}

/// The flattened form of an [`AnalysisResult`]: plain integer tables,
/// with unique points-to sets stored once and rows referencing them by
/// index. See the module docs for ordering and validation guarantees.
#[derive(Clone, Debug, PartialEq)]
pub struct RawResult {
    /// Context table: `ctxs[i]` is the element chain of context `i`
    /// (entry 0 is the empty context).
    pub ctxs: Vec<Vec<RawCtxElem>>,
    /// Object rows in discovery order.
    pub objs: Vec<RawObj>,
    /// One past the largest object id (the points-to universe size,
    /// including hierarchy-numbering slack).
    pub obj_id_space: u32,
    /// Pointer keys, indexed by pointer id.
    pub ptr_keys: Vec<RawPtrKey>,
    /// Cycle-collapse redirect table (same length as `ptr_keys`).
    pub redirect: Vec<u32>,
    /// Per-pointer index into `sets` (same length as `ptr_keys`).
    pub row_set: Vec<u32>,
    /// Unique points-to sets, each a strictly ascending object-id
    /// list, ordered by first occurrence along the row table.
    pub sets: Vec<Vec<u32>>,
    /// Reachable `(context, method)` pairs, sorted.
    pub reachable: Vec<(u32, u32)>,
    /// Reachable methods (context-insensitive), sorted.
    pub reachable_methods: Vec<u32>,
    /// Context-insensitive call-graph edges `(site, method)`, sorted.
    pub cg_edges: Vec<(u32, u32)>,
    /// Context-sensitive call-graph edge count.
    pub cs_cg_edge_count: u64,
    /// The run's counters, carried verbatim (a restored result reports
    /// the statistics of the run that produced the snapshot).
    pub stats: AnalysisStats,
}

/// Returned when [`restore`] rejects a malformed [`RawResult`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RestoreError {
    /// What was wrong, e.g. `"pointer 12: context 99 out of bounds"`.
    pub detail: String,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid snapshot data: {}", self.detail)
    }
}

impl std::error::Error for RestoreError {}

fn err<T>(detail: impl Into<String>) -> Result<T, RestoreError> {
    Err(RestoreError { detail: detail.into() })
}

/// Flattens a result into its canonical raw tables (see module docs).
pub fn extract(result: &AnalysisResult) -> RawResult {
    let arena = &result.arena;
    let ctxs: Vec<Vec<RawCtxElem>> = (0..arena.len())
        .map(|i| {
            arena
                .elems(CtxId(i as u32))
                .iter()
                .map(|e| match *e {
                    CtxElem::CallSite(s) => RawCtxElem { tag: 1, value: s.as_u32() },
                    CtxElem::Alloc(a) => RawCtxElem { tag: 2, value: a.as_u32() },
                    CtxElem::Type(c) => RawCtxElem { tag: 3, value: c.as_u32() },
                })
                .collect()
        })
        .collect();

    let objs: Vec<RawObj> = result
        .objs
        .iter()
        .map(|o| RawObj {
            id: o.0,
            hctx: result.objs.heap_context(o).0,
            alloc: result.objs.alloc(o).as_u32(),
            ty: result.objs.ty(o).as_u32(),
        })
        .collect();

    let ptr_keys: Vec<RawPtrKey> = result
        .ptr_keys
        .iter()
        .map(|k| match *k {
            PtrKey::Var(ctx, v) => RawPtrKey { tag: 1, a: ctx.0, b: v.as_u32() },
            PtrKey::Field(o, f) => RawPtrKey { tag: 2, a: o.0, b: f.as_u32() },
            PtrKey::Static(f) => RawPtrKey { tag: 3, a: f.as_u32(), b: 0 },
        })
        .collect();

    // Unique-set table: rows sharing one physical allocation (the
    // solver's final seal sweep deduplicates them) reference one
    // entry. Keyed on the allocation address, so building the table is
    // O(rows); ordering is first occurrence, which is deterministic
    // because the row order is.
    let mut set_of_addr: FastMap<usize, u32> = FastMap::default();
    let mut sets: Vec<Vec<u32>> = Vec::new();
    let mut row_set = Vec::with_capacity(result.pts.len());
    for handle in &result.pts {
        let idx = *set_of_addr.entry(handle.addr()).or_insert_with(|| {
            let idx = u32::try_from(sets.len()).expect("set table fits u32");
            sets.push(handle.as_set().iter().map(|o| o.0).collect());
            idx
        });
        row_set.push(idx);
    }

    let mut reachable: Vec<(u32, u32)> = result
        .reachable
        .iter()
        .map(|&(c, m)| (c.0, m.as_u32()))
        .collect();
    reachable.sort_unstable();
    let mut reachable_methods: Vec<u32> =
        result.reachable_methods.iter().map(|m| m.as_u32()).collect();
    reachable_methods.sort_unstable();
    let mut cg_edges: Vec<(u32, u32)> = result
        .cg_edges
        .iter()
        .map(|&(s, m)| (s.as_u32(), m.as_u32()))
        .collect();
    cg_edges.sort_unstable();

    RawResult {
        ctxs,
        objs,
        obj_id_space: u32::try_from(result.objs.id_space()).expect("id space fits u32"),
        ptr_keys,
        redirect: result.redirect.clone(),
        row_set,
        sets,
        reachable,
        reachable_methods,
        cg_edges,
        cs_cg_edge_count: result.cs_cg_edge_count as u64,
        stats: result.stats.clone(),
    }
}

/// Rebuilds a queryable result from raw tables, validating every id
/// (see module docs). The returned result is indistinguishable from
/// the freshly solved one under the whole query API.
pub fn restore(raw: RawResult) -> Result<AnalysisResult, RestoreError> {
    // Contexts.
    let mut ctxs = Vec::with_capacity(raw.ctxs.len());
    for (i, elems) in raw.ctxs.iter().enumerate() {
        let mut chain = Vec::with_capacity(elems.len());
        for e in elems {
            chain.push(match e.tag {
                1 => CtxElem::CallSite(CallSiteId::from_u32(e.value)),
                2 => CtxElem::Alloc(AllocId::from_u32(e.value)),
                3 => CtxElem::Type(jir::ClassId::from_u32(e.value)),
                t => return err(format!("context {i}: unknown element tag {t}")),
            });
        }
        ctxs.push(chain);
    }
    let arena = match ContextArena::from_raw(ctxs) {
        Ok(a) => a,
        Err(e) => return err(e),
    };
    let ctx_count = arena.len() as u32;

    // Objects.
    let mut rows = Vec::with_capacity(raw.objs.len());
    for (i, o) in raw.objs.iter().enumerate() {
        if o.hctx >= ctx_count {
            return err(format!("object {i}: heap context {} out of bounds", o.hctx));
        }
        rows.push((
            ObjId(o.id),
            CtxId(o.hctx),
            AllocId::from_u32(o.alloc),
            TypeId::from_u32(o.ty),
        ));
    }
    let objs = match ObjTable::from_slots(rows, raw.obj_id_space as usize) {
        Ok(t) => t,
        Err(e) => return err(e),
    };

    // Unique sets, re-interned so content-equal rows share one
    // allocation and sealed-handle comparisons fast-path.
    let interner = Arc::new(SetInterner::<ObjId>::new());
    let mut handles: Vec<PtsHandle<ObjId>> = Vec::with_capacity(raw.sets.len());
    for (i, elems) in raw.sets.iter().enumerate() {
        let mut set = PtsSet::new();
        let mut prev: Option<u32> = None;
        for &e in elems {
            if prev.is_some_and(|p| p >= e) {
                return err(format!("set {i}: elements not strictly ascending"));
            }
            if !objs.has_id(e) {
                return err(format!("set {i}: unknown object id {e}"));
            }
            set.insert(ObjId::from_index(e as usize));
            prev = Some(e);
        }
        let mut handle = PtsHandle::from_set(set);
        handle.seal(&interner);
        handles.push(handle);
    }

    // Pointer rows.
    let n = raw.ptr_keys.len();
    if raw.redirect.len() != n || raw.row_set.len() != n {
        return err(format!(
            "table length mismatch: {n} keys, {} redirects, {} rows",
            raw.redirect.len(),
            raw.row_set.len()
        ));
    }
    let mut ptr_keys = Vec::with_capacity(n);
    let mut ptr_map: FastMap<PtrKey, PtrId> = FastMap::default();
    for (i, k) in raw.ptr_keys.iter().enumerate() {
        let key = match k.tag {
            1 => {
                if k.a >= ctx_count {
                    return err(format!("pointer {i}: context {} out of bounds", k.a));
                }
                PtrKey::Var(CtxId(k.a), VarId::from_u32(k.b))
            }
            2 => {
                if !objs.has_id(k.a) {
                    return err(format!("pointer {i}: unknown object id {}", k.a));
                }
                PtrKey::Field(ObjId(k.a), FieldId::from_u32(k.b))
            }
            3 => PtrKey::Static(FieldId::from_u32(k.a)),
            t => return err(format!("pointer {i}: unknown key tag {t}")),
        };
        if ptr_map.insert(key, PtrId(i as u32)).is_some() {
            return err(format!("pointer {i}: duplicate key"));
        }
        ptr_keys.push(key);
    }
    let mut pts = Vec::with_capacity(n);
    for (i, (&r, &s)) in raw.redirect.iter().zip(&raw.row_set).enumerate() {
        if r as usize >= n {
            return err(format!("pointer {i}: redirect {r} out of bounds"));
        }
        if s as usize >= handles.len() {
            return err(format!("pointer {i}: set index {s} out of bounds"));
        }
        pts.push(handles[s as usize].clone());
    }

    // Reachability and the call graph.
    let mut reachable: FastSet<(CtxId, MethodId)> = FastSet::default();
    for &(c, m) in &raw.reachable {
        if c >= ctx_count {
            return err(format!("reachable pair: context {c} out of bounds"));
        }
        reachable.insert((CtxId(c), MethodId::from_u32(m)));
    }
    let reachable_methods: FastSet<MethodId> = raw
        .reachable_methods
        .iter()
        .map(|&m| MethodId::from_u32(m))
        .collect();
    let cg_edges: FastSet<(CallSiteId, MethodId)> = raw
        .cg_edges
        .iter()
        .map(|&(s, m)| (CallSiteId::from_u32(s), MethodId::from_u32(m)))
        .collect();

    let stats = raw.stats;
    Ok(AnalysisResult::from_parts(
        arena,
        objs,
        ptr_keys,
        ptr_map,
        pts,
        interner,
        raw.redirect,
        reachable,
        reachable_methods,
        cg_edges,
        usize::try_from(raw.cs_cg_edge_count)
            .map_err(|_| RestoreError { detail: "cs edge count overflows".into() })?,
        stats.clone(),
    )
    .with_stats(stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AllocSiteAbstraction, AnalysisConfig, ContextInsensitive, ObjectSensitive};

    const PROGRAM: &str = "class A {
        field f: A;
        method id(this, v) { w = v; return w; }
        entry static method main() {
          a = new A; b = new A;
          a.f = b;
          r = virt a.id(b);
          return;
        }
      }";

    fn result(obj: bool) -> (jir::Program, AnalysisResult) {
        let p = jir::parse(PROGRAM).expect("parses");
        let r = if obj {
            AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
                .run(&p)
                .expect("fits budget")
        } else {
            AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
                .run(&p)
                .expect("fits budget")
        };
        (p, r)
    }

    #[test]
    fn extract_restore_preserves_every_query() {
        for obj in [false, true] {
            let (p, r) = result(obj);
            let restored = restore(extract(&r)).expect("restores");
            assert_eq!(r.object_count(), restored.object_count());
            assert_eq!(r.pointer_count(), restored.pointer_count());
            assert_eq!(r.total_points_to_size(), restored.total_points_to_size());
            assert_eq!(r.call_graph_edge_count(), restored.call_graph_edge_count());
            assert_eq!(r.reachable_context_count(), restored.reachable_context_count());
            for v in (0..p.var_count()).map(VarId::from_usize) {
                assert_eq!(
                    r.points_to_collapsed(v).to_vec(),
                    restored.points_to_collapsed(v).to_vec(),
                    "collapsed set of var {v:?}"
                );
            }
            for s in p.call_site_ids() {
                assert_eq!(r.call_targets(s), restored.call_targets(s));
            }
        }
    }

    #[test]
    fn extract_is_canonical_after_restore() {
        let (_, r) = result(true);
        let raw = extract(&r);
        let restored = restore(raw.clone()).expect("restores");
        assert_eq!(raw, extract(&restored), "extract ∘ restore is the identity on raw tables");
    }

    #[test]
    fn restore_rejects_out_of_bounds_ids() {
        let (_, r) = result(false);
        let good = extract(&r);

        let mut bad = good.clone();
        bad.row_set[0] = bad.sets.len() as u32;
        assert!(restore(bad).is_err(), "set index out of bounds");

        let mut bad = good.clone();
        bad.redirect[0] = bad.ptr_keys.len() as u32;
        assert!(restore(bad).is_err(), "redirect out of bounds");

        let mut bad = good.clone();
        bad.sets[0] = vec![bad.obj_id_space + 7];
        assert!(restore(bad).is_err(), "unknown object id in a set");

        let mut bad = good.clone();
        if let Some(first) = bad.ctxs.first_mut() {
            first.push(RawCtxElem { tag: 1, value: 0 });
        }
        assert!(restore(bad).is_err(), "context 0 must stay empty");

        let mut bad = good;
        bad.ptr_keys[0].tag = 9;
        assert!(restore(bad).is_err(), "unknown pointer tag");
    }
}
