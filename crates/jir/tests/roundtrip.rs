//! Parser/printer roundtrip and hierarchy-query tests for JIR.
//! Randomized cases are driven by the in-tree deterministic PRNG (the
//! build environment has no crates.io access, so no proptest).

use jir::{JirError, ProgramBuilder};
use obs::rng::SplitMix64;

/// Builds a random (but always valid) program through the builder API:
/// a hierarchy of classes, fields, and straight-line method bodies.
fn random_program(rng: &mut SplitMix64) -> jir::Program {
    // (class shape choices, per-method statement choices)
    let class_specs: Vec<(usize, bool)> = (0..1 + rng.below_usize(5))
        .map(|_| (rng.below_usize(3), rng.chance(0.5)))
        .collect();
    let stmt_specs: Vec<(u8, usize, usize)> = (0..rng.below_usize(20))
        .map(|_| (rng.below(6) as u8, rng.below_usize(8), rng.below_usize(8)))
        .collect();
    {
        let mut b = ProgramBuilder::new();
        let object = b.object_class();
        let mut classes = vec![object];
        let mut fields = Vec::new();
        for (i, &(super_pick, with_field)) in class_specs.iter().enumerate() {
            let superclass = classes[super_pick % classes.len()];
            let c = b
                .declare_class(&format!("C{i}"), Some(superclass))
                .expect("unique names");
            if with_field {
                let ty = b.class_type(c);
                fields.push(b.declare_field(c, &format!("f{i}"), ty).expect("unique"));
            }
            let m = b.declare_method(c, "m", 0).expect("unique");
            let mut body = b.body(m);
            body.ret(None);
            classes.push(c);
        }
        // A main that exercises random statements over fresh locals.
        let main_cls = b.declare_class("Main", Some(object)).expect("unique");
        let main = b.declare_static_method(main_cls, "main", 0).expect("unique");
        b.set_entry(main);
        {
            let concrete: Vec<jir::ClassId> = classes[1..].to_vec();
            let mut body = b.body(main);
            let mut vars = Vec::new();
            // Seed a variable so later statements have operands.
            let v0 = body.var("v0");
            if let Some(&c) = concrete.first() {
                body.new_object(v0, c);
            }
            vars.push(v0);
            for (k, &(kind, a, bsel)) in stmt_specs.iter().enumerate() {
                let va = vars[a % vars.len()];
                let vb = vars[bsel % vars.len()];
                match kind {
                    0 if !concrete.is_empty() => {
                        let v = body.var(&format!("v{}", k + 1));
                        body.new_object(v, concrete[a % concrete.len()]);
                        vars.push(v);
                    }
                    1 => body.assign(va, vb),
                    2 if !fields.is_empty() => {
                        body.store(va, fields[a % fields.len()], vb);
                    }
                    3 if !fields.is_empty() => {
                        let v = body.var(&format!("v{}", k + 1));
                        body.load(v, va, fields[a % fields.len()]);
                        vars.push(v);
                    }
                    4 => {
                        body.virtual_call(None, va, "m", &[]);
                    }
                    _ => {
                        let v = body.var(&format!("v{}", k + 1));
                        body.array_load(v, va);
                        vars.push(v);
                    }
                }
            }
            body.ret(None);
        }
        b.finish().expect("generated program is valid")
    }
}

/// Print → parse preserves all entity counts and the analysis-visible
/// structure.
#[test]
fn printed_program_reparses() {
    let mut rng = SplitMix64::new(0x71c_0001);
    for _ in 0..128 {
        let p = random_program(&mut rng);
        let text = p.to_string();
        let q = jir::parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(p.class_count(), q.class_count());
        assert_eq!(p.alloc_count(), q.alloc_count());
        assert_eq!(p.call_site_count(), q.call_site_count());
        assert_eq!(p.cast_count(), q.cast_count());
        assert_eq!(p.field_count(), q.field_count());
        assert_eq!(p.method_count(), q.method_count());
        // Printing is idempotent modulo the first roundtrip.
        assert_eq!(
            q.to_string(),
            jir::parse(&q.to_string()).unwrap().to_string()
        );
    }
}

/// Subtyping is reflexive and transitive, and dispatch respects it:
/// the dispatched method is declared by an ancestor.
#[test]
fn hierarchy_queries_are_consistent() {
    let mut rng = SplitMix64::new(0x71c_0002);
    for _ in 0..128 {
        let p = random_program(&mut rng);
        for c in p.class_ids() {
            assert!(p.is_subclass(c, c));
            assert!(p.is_subclass(c, p.object_class()));
            let ty = p.class(c).ty();
            assert!(p.is_subtype(ty, ty));
            if !p.class(c).is_abstract() {
                if let Some(target) = p.dispatch(ty, "m", 0) {
                    let decl = p.method(target).class();
                    assert!(p.is_subclass(c, decl), "dispatch target is an ancestor");
                }
            }
        }
        // Transitivity over sampled triples.
        let n = p.class_count();
        for i in 0..n {
            for j in 0..n {
                for k in 0..n {
                    let (a, b, c) = (
                        jir::ClassId::from_usize(i),
                        jir::ClassId::from_usize(j),
                        jir::ClassId::from_usize(k),
                    );
                    if p.is_subclass(a, b) && p.is_subclass(b, c) {
                        assert!(p.is_subclass(a, c));
                    }
                }
            }
        }
    }
}

#[test]
fn duplicate_class_is_rejected() {
    let mut b = ProgramBuilder::new();
    b.declare_class("A", None).unwrap();
    assert!(matches!(
        b.declare_class("A", None),
        Err(JirError::DuplicateClass(_))
    ));
}

#[test]
fn entry_must_be_static_and_nullary() {
    let mut b = ProgramBuilder::new();
    let a = b.declare_class("A", None).unwrap();
    let m = b.declare_method(a, "main", 0).unwrap(); // instance method
    {
        let mut body = b.body(m);
        body.ret(None);
    }
    b.set_entry(m);
    assert!(matches!(b.finish(), Err(JirError::BadEntry(_))));
}

#[test]
fn abstract_allocation_is_rejected() {
    let err = jir::parse(
        "abstract class A { }
         class Main { entry static method main() { x = new A; return; } }",
    )
    .unwrap_err();
    assert!(matches!(err, JirError::AbstractAllocation { .. }));
}

#[test]
fn interface_cannot_be_extended_by_class_syntax() {
    let err = jir::parse(
        "interface I { }
         class A extends I { }
         class Main { entry static method main() { return; } }",
    )
    .unwrap_err();
    assert!(matches!(err, JirError::BadSupertype { .. }));
}

#[test]
fn array_types_are_covariant() {
    let p = jir::parse(
        "class A { }
         class B extends A {
           entry static method main() { x = new B[]; return; }
         }",
    )
    .unwrap();
    let a = p.class_by_name("A").unwrap();
    let b = p.class_by_name("B").unwrap();
    // Recover the array types through the program's type table.
    let b_arr = (0..p.type_count())
        .map(jir::TypeId::from_usize)
        .find(|&t| p.type_name(t) == "B[]")
        .expect("B[] exists");
    assert!(p.is_subtype(b_arr, p.class(p.object_class()).ty()));
    let _ = (a, b);
}
