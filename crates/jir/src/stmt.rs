//! Statements of the flow-insensitive JIR method body.
//!
//! JIR is deliberately small: it keeps exactly the statement kinds that a
//! flow-insensitive, field-sensitive points-to analysis observes. Arithmetic,
//! branching, and exceptions are irrelevant to points-to facts and are not
//! represented; array reads/writes are modeled with a distinguished
//! element pseudo-field (see [`Program::array_elem_field`]).
//!
//! [`Program::array_elem_field`]: crate::Program::array_elem_field

use crate::ids::{AllocId, CallSiteId, CastId, FieldId, VarId};

/// A single statement in a method body.
///
/// Variant fields are named after their role (`lhs`, `rhs`, `base`,
/// `field`, `site`, `value`) and carry no further invariants.
/// Statement order is preserved for printing and debugging but carries no
/// semantic weight: the analyses in this workspace are flow-insensitive.
#[allow(missing_docs)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Stmt {
    /// `lhs = new T()` — `site` records the allocated type.
    New { lhs: VarId, site: AllocId },
    /// `lhs = rhs` — a local move.
    Assign { lhs: VarId, rhs: VarId },
    /// `lhs = base.field` — an instance field load.
    Load {
        lhs: VarId,
        base: VarId,
        field: FieldId,
    },
    /// `base.field = rhs` — an instance field store.
    Store {
        base: VarId,
        field: FieldId,
        rhs: VarId,
    },
    /// `lhs = C.field` — a static field load.
    StaticLoad { lhs: VarId, field: FieldId },
    /// `C.field = rhs` — a static field store.
    StaticStore { field: FieldId, rhs: VarId },
    /// `lhs = (T) rhs` — a checked downcast; `site` records the target type.
    Cast {
        lhs: VarId,
        rhs: VarId,
        site: CastId,
    },
    /// A method invocation; all details live in the [`CallSite`] table.
    ///
    /// [`CallSite`]: crate::CallSite
    Call(CallSiteId),
    /// `return value` — `None` for `void` returns.
    Return { value: Option<VarId> },
}

/// How a call site selects its target method.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CallKind {
    /// `recv.m(...)` — dynamically dispatched on the runtime class of the
    /// object `recv` points to.
    Virtual { recv: VarId },
    /// `super.m(...)` / constructor invocation — statically bound but still
    /// passes a receiver.
    Special { recv: VarId },
    /// `C.m(...)` — statically bound, no receiver.
    Static,
}

impl CallKind {
    /// Returns the receiver variable, if this kind of call has one.
    pub fn receiver(&self) -> Option<VarId> {
        match *self {
            CallKind::Virtual { recv } | CallKind::Special { recv } => Some(recv),
            CallKind::Static => None,
        }
    }

    /// Returns `true` for dynamically dispatched calls.
    pub fn is_virtual(&self) -> bool {
        matches!(self, CallKind::Virtual { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_kind_receiver() {
        let v = VarId::from_usize(3);
        assert_eq!(CallKind::Virtual { recv: v }.receiver(), Some(v));
        assert_eq!(CallKind::Special { recv: v }.receiver(), Some(v));
        assert_eq!(CallKind::Static.receiver(), None);
    }

    #[test]
    fn call_kind_is_virtual() {
        let v = VarId::from_usize(0);
        assert!(CallKind::Virtual { recv: v }.is_virtual());
        assert!(!CallKind::Special { recv: v }.is_virtual());
        assert!(!CallKind::Static.is_virtual());
    }
}
