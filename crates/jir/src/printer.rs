//! Pretty-printing of programs in the textual `.jir` syntax accepted by
//! [`parse`].
//!
//! [`parse`]: crate::parse

use std::fmt::{self, Write as _};

use crate::ids::{ClassId, MethodId, VarId};
use crate::program::{CallTarget, Program};
use crate::stmt::{CallKind, Stmt};

/// Writes the whole program in `.jir` syntax.
pub(crate) fn write_program(p: &Program, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for c in p.class_ids() {
        if c == p.object_class() {
            continue; // Object is implicit.
        }
        write_class(p, c, f)?;
        writeln!(f)?;
    }
    Ok(())
}

fn write_class(p: &Program, c: ClassId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let cls = p.class(c);
    if cls.is_interface() {
        write!(f, "interface {}", cls.name())?;
        if !cls.interfaces().is_empty() {
            write!(f, " extends {}", join_classes(p, cls.interfaces()))?;
        }
    } else {
        if cls.is_abstract() {
            write!(f, "abstract ")?;
        }
        write!(f, "class {}", cls.name())?;
        if let Some(sup) = cls.superclass() {
            if sup != p.object_class() {
                write!(f, " extends {}", p.class(sup).name())?;
            }
        }
        if !cls.interfaces().is_empty() {
            write!(f, " implements {}", join_classes(p, cls.interfaces()))?;
        }
    }
    writeln!(f, " {{")?;
    for &fid in cls.fields() {
        let field = p.field(fid);
        let kw = if field.is_static() { "static field" } else { "field" };
        writeln!(f, "  {kw} {}: {};", field.name(), p.type_name(field.ty()))?;
    }
    for &m in cls.methods() {
        write_method(p, m, f)?;
    }
    writeln!(f, "}}")
}

fn join_classes(p: &Program, cs: &[ClassId]) -> String {
    let mut s = String::new();
    for (i, &c) in cs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(p.class(c).name());
    }
    s
}

fn write_method(p: &Program, m: MethodId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let method = p.method(m);
    let mut header = String::new();
    if m == p.entry() {
        header.push_str("entry ");
    }
    if method.is_static() {
        header.push_str("static ");
    }
    if method.is_abstract() {
        header.push_str("abstract ");
    }
    let _ = write!(header, "method {}(", method.name());
    for (i, &v) in method.params().iter().enumerate() {
        if i > 0 {
            header.push_str(", ");
        }
        header.push_str(p.var(v).name());
    }
    header.push(')');
    if method.is_abstract() {
        return writeln!(f, "  {header};");
    }
    writeln!(f, "  {header} {{")?;
    for stmt in method.body() {
        writeln!(f, "    {};", fmt_stmt(p, stmt))?;
    }
    writeln!(f, "  }}")
}

fn v(p: &Program, var: VarId) -> String {
    p.var(var).name().to_owned()
}

fn fmt_stmt(p: &Program, stmt: &Stmt) -> String {
    match *stmt {
        Stmt::New { lhs, site } => {
            format!("{} = new {}", v(p, lhs), p.type_name(p.alloc(site).ty()))
        }
        Stmt::Assign { lhs, rhs } => format!("{} = {}", v(p, lhs), v(p, rhs)),
        Stmt::Load { lhs, base, field } => {
            if field == p.array_elem_field() {
                format!("{} = {}[*]", v(p, lhs), v(p, base))
            } else {
                format!("{} = {}.{}", v(p, lhs), v(p, base), p.field(field).name())
            }
        }
        Stmt::Store { base, field, rhs } => {
            if field == p.array_elem_field() {
                format!("{}[*] = {}", v(p, base), v(p, rhs))
            } else {
                format!("{}.{} = {}", v(p, base), p.field(field).name(), v(p, rhs))
            }
        }
        Stmt::StaticLoad { lhs, field } => {
            let cls = p.field(field).class().expect("static field has a class");
            format!(
                "{} = {}.{}",
                v(p, lhs),
                p.class(cls).name(),
                p.field(field).name()
            )
        }
        Stmt::StaticStore { field, rhs } => {
            let cls = p.field(field).class().expect("static field has a class");
            format!(
                "{}.{} = {}",
                p.class(cls).name(),
                p.field(field).name(),
                v(p, rhs)
            )
        }
        Stmt::Cast { lhs, rhs, site } => {
            format!(
                "{} = ({}) {}",
                v(p, lhs),
                p.type_name(p.cast(site).target_ty()),
                v(p, rhs)
            )
        }
        Stmt::Call(site) => {
            let cs = p.call_site(site);
            let mut s = String::new();
            if let Some(r) = cs.result() {
                let _ = write!(s, "{} = ", v(p, r));
            }
            match (cs.kind(), cs.target()) {
                (CallKind::Virtual { recv }, CallTarget::Signature { name, .. }) => {
                    let _ = write!(s, "virt {}.{name}", v(p, *recv));
                }
                (CallKind::Special { recv }, CallTarget::Exact(m)) => {
                    let callee = p.method(*m);
                    let _ = write!(
                        s,
                        "special {}.{}::{}",
                        v(p, *recv),
                        p.class(callee.class()).name(),
                        callee.name()
                    );
                }
                (CallKind::Static, CallTarget::Exact(m)) => {
                    let callee = p.method(*m);
                    let _ = write!(
                        s,
                        "call {}::{}",
                        p.class(callee.class()).name(),
                        callee.name()
                    );
                }
                // Unreachable for programs built through the public API.
                (kind, target) => {
                    let _ = write!(s, "?call {kind:?} {target:?}");
                }
            }
            s.push('(');
            for (i, &a) in cs.args().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&v(p, a));
            }
            s.push(')');
            s
        }
        Stmt::Return { value } => match value {
            Some(var) => format!("return {}", v(p, var)),
            None => "return".to_owned(),
        },
    }
}
