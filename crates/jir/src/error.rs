//! Error types for program construction, validation, and parsing.

use std::error::Error;
use std::fmt;

/// An error raised while building, validating, or parsing a JIR program.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing names
pub enum JirError {
    /// A class name was declared twice.
    DuplicateClass(String),
    /// A field name was declared twice in the same class.
    DuplicateField { class: String, field: String },
    /// A method `(name, arity)` pair was declared twice in the same class.
    DuplicateMethod { class: String, method: String },
    /// The class hierarchy contains a cycle through the named class.
    CyclicHierarchy(String),
    /// A class lists a non-interface in its `implements` clause, or
    /// extends an interface.
    BadSupertype { class: String, supertype: String },
    /// No entry method was designated.
    MissingEntry,
    /// The entry method is not static or takes parameters.
    BadEntry(String),
    /// An abstract method has a body, or a concrete method was declared
    /// inside an interface.
    BadMethodShape { class: String, method: String },
    /// A statement references a variable of a different method.
    ForeignVariable { method: String, var: String },
    /// An allocation site instantiates an abstract class or interface.
    AbstractAllocation { method: String, ty: String },
    /// A parse error with line information.
    Parse { line: usize, message: String },
    /// A name used in a program could not be resolved.
    Unresolved { line: usize, name: String },
}

impl fmt::Display for JirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JirError::DuplicateClass(name) => write!(f, "duplicate class `{name}`"),
            JirError::DuplicateField { class, field } => {
                write!(f, "duplicate field `{field}` in class `{class}`")
            }
            JirError::DuplicateMethod { class, method } => {
                write!(f, "duplicate method `{method}` in class `{class}`")
            }
            JirError::CyclicHierarchy(name) => {
                write!(f, "cyclic class hierarchy through `{name}`")
            }
            JirError::BadSupertype { class, supertype } => {
                write!(f, "class `{class}` has invalid supertype `{supertype}`")
            }
            JirError::MissingEntry => write!(f, "program has no entry method"),
            JirError::BadEntry(name) => {
                write!(f, "entry method `{name}` must be static and take no parameters")
            }
            JirError::BadMethodShape { class, method } => {
                write!(f, "method `{class}.{method}` has an invalid shape")
            }
            JirError::ForeignVariable { method, var } => {
                write!(f, "method `{method}` uses variable `{var}` of another method")
            }
            JirError::AbstractAllocation { method, ty } => {
                write!(f, "method `{method}` instantiates non-instantiable type `{ty}`")
            }
            JirError::Parse { line, message } => write!(f, "parse error at line {line}: {message}"),
            JirError::Unresolved { line, name } => {
                write!(f, "unresolved name `{name}` at line {line}")
            }
        }
    }
}

impl Error for JirError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_trailing_punctuation() {
        let msgs = [
            JirError::DuplicateClass("A".into()).to_string(),
            JirError::MissingEntry.to_string(),
            JirError::Parse {
                line: 3,
                message: "bad token".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "{m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "{m}");
        }
    }
}
