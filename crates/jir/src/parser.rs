//! Parser for the textual `.jir` program syntax.
//!
//! The syntax mirrors what the pretty-printer emits; whitespace and line
//! breaks are insignificant. For example:
//!
//! ```text
//! class A {
//!   field f: A;
//!   method foo(this) { return; }
//! }
//! class B extends A {
//!   method foo(this) { return; }
//!   entry static method main() {
//!     x = new B;
//!     x.f = x;
//!     y = x.f;
//!     virt x.foo();
//!     c = (A) y;
//!     return;
//!   }
//! }
//! ```
//!
//! Statements: `x = new T` / `x = new T[]`, `x = y`, `x = y.f`, `y.f = x`,
//! `x = y[*]`, `y[*] = x`, static loads/stores via a class name
//! (`x = C.f`), `x = (T) y`, `virt r.m(a, b)`, `special r.C::m(a)`,
//! `call C::m(a)` (each optionally prefixed `x = `), and `return [x]`.
//! Line comments start with `//`. The root class `Object` is predeclared.

use std::collections::HashMap;

use crate::builder::ProgramBuilder;
use crate::error::JirError;
use crate::ids::{ClassId, FieldId, MethodId, TypeId, VarId};
use crate::program::Program;

/// Parses a program from `.jir` source text.
///
/// # Errors
///
/// Returns [`JirError::Parse`] on syntax errors, [`JirError::Unresolved`]
/// on unknown names, and any [`ProgramBuilder::finish`] validation error.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), jir::JirError> {
/// let program = jir::parse(
///     "class A {
///        entry static method main() { x = new A; return; }
///      }",
/// )?;
/// assert_eq!(program.alloc_count(), 1);
/// # Ok(())
/// # }
/// ```
pub fn parse(source: &str) -> Result<Program, JirError> {
    let tokens = lex(source);
    let ast = Parser::new(tokens).program()?;
    build(ast)
}

// --- Lexer ------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Sym(char),
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Sym(c) => write!(f, "`{c}`"),
        }
    }
}

fn lex(source: &str) -> Vec<(usize, Tok)> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push((line, Tok::Sym('/')));
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '$' => {
                let mut word = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '$' {
                        word.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((line, Tok::Ident(word)));
            }
            sym => {
                chars.next();
                out.push((line, Tok::Sym(sym)));
            }
        }
    }
    out
}

// --- AST ---------------------------------------------------------------------

#[derive(Debug)]
struct AstProgram {
    classes: Vec<AstClass>,
}

#[derive(Debug)]
struct AstClass {
    name: String,
    is_interface: bool,
    is_abstract: bool,
    extends: Vec<String>,
    implements: Vec<String>,
    fields: Vec<AstField>,
    methods: Vec<AstMethod>,
    line: usize,
}

#[derive(Debug)]
struct AstField {
    name: String,
    ty: AstType,
    is_static: bool,
    line: usize,
}

#[derive(Debug, Clone)]
struct AstType {
    base: String,
    dims: usize,
}

#[derive(Debug)]
struct AstMethod {
    name: String,
    params: Vec<String>,
    is_static: bool,
    is_abstract: bool,
    is_entry: bool,
    body: Vec<AstStmt>,
}

#[derive(Debug)]
enum AstStmt {
    New {
        lhs: String,
        ty: AstType,
        line: usize,
    },
    Assign {
        lhs: String,
        rhs: String,
    },
    Load {
        lhs: String,
        base: String,
        field: String,
        line: usize,
    },
    Store {
        base: String,
        field: String,
        rhs: String,
        line: usize,
    },
    ArrayLoad {
        lhs: String,
        array: String,
    },
    ArrayStore {
        array: String,
        rhs: String,
    },
    Cast {
        lhs: String,
        ty: AstType,
        rhs: String,
        line: usize,
    },
    Call {
        result: Option<String>,
        kind: AstCall,
        line: usize,
    },
    Return(Option<String>),
}

#[derive(Debug)]
enum AstCall {
    Virt {
        recv: String,
        name: String,
        args: Vec<String>,
    },
    Special {
        recv: String,
        class: String,
        name: String,
        args: Vec<String>,
    },
    Static {
        class: String,
        name: String,
        args: Vec<String>,
    },
}

// --- Parser -------------------------------------------------------------------

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

fn perr(line: usize, message: impl Into<String>) -> JirError {
    JirError::Parse {
        line,
        message: message.into(),
    }
}

impl Parser {
    fn new(toks: Vec<(usize, Tok)>) -> Self {
        Parser { toks, pos: 0 }
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(1, |&(l, _)| l)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn ident(&mut self, what: &str) -> Result<String, JirError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => Err(perr(line, format!("expected {what}, found {t}"))),
            None => Err(perr(line, format!("expected {what}, found end of input"))),
        }
    }

    fn expect(&mut self, sym: char) -> Result<(), JirError> {
        let line = self.line();
        match self.next() {
            Some(Tok::Sym(c)) if c == sym => Ok(()),
            Some(t) => Err(perr(line, format!("expected `{sym}`, found {t}"))),
            None => Err(perr(line, format!("expected `{sym}`, found end of input"))),
        }
    }

    fn eat(&mut self, sym: char) -> bool {
        if self.peek() == Some(&Tok::Sym(sym)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn peek_is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s == kw)
    }

    fn ty(&mut self) -> Result<AstType, JirError> {
        let base = self.ident("type name")?;
        let mut dims = 0;
        while self.eat('[') {
            self.expect(']')?;
            dims += 1;
        }
        Ok(AstType { base, dims })
    }

    fn ident_list(&mut self) -> Result<Vec<String>, JirError> {
        let mut out = vec![self.ident("name")?];
        while self.eat(',') {
            out.push(self.ident("name")?);
        }
        Ok(out)
    }

    fn program(mut self) -> Result<AstProgram, JirError> {
        let mut classes = Vec::new();
        while self.peek().is_some() {
            classes.push(self.class()?);
        }
        Ok(AstProgram { classes })
    }

    fn class(&mut self) -> Result<AstClass, JirError> {
        let line = self.line();
        let is_abstract = self.eat_kw("abstract");
        let is_interface = if self.eat_kw("class") {
            false
        } else if self.eat_kw("interface") {
            true
        } else {
            return Err(perr(line, "expected `class` or `interface`"));
        };
        let name = self.ident("class name")?;
        let mut extends = Vec::new();
        let mut implements = Vec::new();
        loop {
            if self.eat_kw("extends") {
                extends = self.ident_list()?;
            } else if self.eat_kw("implements") {
                implements = self.ident_list()?;
            } else {
                break;
            }
        }
        self.expect('{')?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat('}') {
            let mline = self.line();
            let mut is_static = false;
            let mut is_abs = false;
            let mut is_entry = false;
            loop {
                if self.eat_kw("static") {
                    is_static = true;
                } else if self.eat_kw("abstract") {
                    is_abs = true;
                } else if self.eat_kw("entry") {
                    is_entry = true;
                } else {
                    break;
                }
            }
            if self.eat_kw("field") {
                let fname = self.ident("field name")?;
                self.expect(':')?;
                let ty = self.ty()?;
                self.expect(';')?;
                fields.push(AstField {
                    name: fname,
                    ty,
                    is_static,
                    line: mline,
                });
            } else if self.eat_kw("method") {
                let mname = self.ident("method name")?;
                self.expect('(')?;
                let mut params = Vec::new();
                if !self.eat(')') {
                    loop {
                        params.push(self.ident("parameter name")?);
                        if self.eat(')') {
                            break;
                        }
                        self.expect(',')?;
                    }
                }
                // An explicit leading `this` is tolerated and stripped.
                if !is_static && params.first().map(String::as_str) == Some("this") {
                    params.remove(0);
                }
                let body = if self.eat(';') {
                    is_abs = true;
                    Vec::new()
                } else {
                    self.expect('{')?;
                    let mut body = Vec::new();
                    while !self.eat('}') {
                        body.push(self.stmt()?);
                    }
                    body
                };
                methods.push(AstMethod {
                    name: mname,
                    params,
                    is_static,
                    is_abstract: is_abs,
                    is_entry,
                    body,
                });
            } else {
                return Err(perr(mline, "expected `field` or `method`"));
            }
        }
        Ok(AstClass {
            name,
            is_interface,
            is_abstract,
            extends,
            implements,
            fields,
            methods,
            line,
        })
    }

    fn stmt(&mut self) -> Result<AstStmt, JirError> {
        let line = self.line();
        if self.eat_kw("return") {
            let value = match self.peek() {
                Some(Tok::Ident(_)) => Some(self.ident("variable")?),
                _ => None,
            };
            self.expect(';')?;
            return Ok(AstStmt::Return(value));
        }
        if self.peek_is_kw("virt") || self.peek_is_kw("special") || self.peek_is_kw("call") {
            let kind = self.call()?;
            self.expect(';')?;
            return Ok(AstStmt::Call {
                result: None,
                kind,
                line,
            });
        }

        let first = self.ident("statement")?;
        if self.eat('[') {
            // `base[*] = rhs`
            self.expect('*')?;
            self.expect(']')?;
            self.expect('=')?;
            let rhs = self.ident("rhs")?;
            self.expect(';')?;
            return Ok(AstStmt::ArrayStore { array: first, rhs });
        }
        if self.eat('.') {
            // `base.f = rhs`
            let field = self.ident("field name")?;
            self.expect('=')?;
            let rhs = self.ident("rhs")?;
            self.expect(';')?;
            return Ok(AstStmt::Store {
                base: first,
                field,
                rhs,
                line,
            });
        }
        self.expect('=')?;
        if self.eat('(') {
            // `lhs = (T) rhs`
            let ty = self.ty()?;
            self.expect(')')?;
            let rhs = self.ident("rhs")?;
            self.expect(';')?;
            return Ok(AstStmt::Cast {
                lhs: first,
                ty,
                rhs,
                line,
            });
        }
        if self.eat_kw("new") {
            let ty = self.ty()?;
            self.expect(';')?;
            return Ok(AstStmt::New {
                lhs: first,
                ty,
                line,
            });
        }
        if self.peek_is_kw("virt") || self.peek_is_kw("special") || self.peek_is_kw("call") {
            let kind = self.call()?;
            self.expect(';')?;
            return Ok(AstStmt::Call {
                result: Some(first),
                kind,
                line,
            });
        }
        let second = self.ident("rhs")?;
        if self.eat('[') {
            // `lhs = array[*]`
            self.expect('*')?;
            self.expect(']')?;
            self.expect(';')?;
            return Ok(AstStmt::ArrayLoad {
                lhs: first,
                array: second,
            });
        }
        if self.eat('.') {
            // `lhs = base.f`
            let field = self.ident("field name")?;
            self.expect(';')?;
            return Ok(AstStmt::Load {
                lhs: first,
                base: second,
                field,
                line,
            });
        }
        self.expect(';')?;
        Ok(AstStmt::Assign {
            lhs: first,
            rhs: second,
        })
    }

    fn call(&mut self) -> Result<AstCall, JirError> {
        if self.eat_kw("virt") {
            let recv = self.ident("receiver")?;
            self.expect('.')?;
            let name = self.ident("method name")?;
            let args = self.args()?;
            Ok(AstCall::Virt { recv, name, args })
        } else if self.eat_kw("special") {
            let recv = self.ident("receiver")?;
            self.expect('.')?;
            let class = self.ident("class name")?;
            self.expect(':')?;
            self.expect(':')?;
            let name = self.ident("method name")?;
            let args = self.args()?;
            Ok(AstCall::Special {
                recv,
                class,
                name,
                args,
            })
        } else {
            // call C::m(...)
            let line = self.line();
            if !self.eat_kw("call") {
                return Err(perr(line, "expected a call keyword"));
            }
            let class = self.ident("class name")?;
            self.expect(':')?;
            self.expect(':')?;
            let name = self.ident("method name")?;
            let args = self.args()?;
            Ok(AstCall::Static { class, name, args })
        }
    }

    fn args(&mut self) -> Result<Vec<String>, JirError> {
        self.expect('(')?;
        let mut out = Vec::new();
        if self.eat(')') {
            return Ok(out);
        }
        loop {
            out.push(self.ident("argument")?);
            if self.eat(')') {
                return Ok(out);
            }
            self.expect(',')?;
        }
    }
}

// --- AST -> Program -------------------------------------------------------------

fn build(ast: AstProgram) -> Result<Program, JirError> {
    let mut b = ProgramBuilder::new();

    // Declare classes in dependency order (supers before subs).
    let index: HashMap<&str, usize> = ast
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();
    let n = ast.classes.len();
    let mut declared: Vec<Option<ClassId>> = vec![None; n];
    let mut state = vec![0u8; n];
    for i in 0..n {
        declare_class(&ast, &index, i, &mut b, &mut declared, &mut state)?;
    }

    // Declare fields and method signatures.
    let mut method_ids: Vec<Vec<MethodId>> = Vec::with_capacity(n);
    for (i, cls) in ast.classes.iter().enumerate() {
        let cid = declared[i].expect("declared above");
        for f in &cls.fields {
            let ty = resolve_type(&mut b, &f.ty, f.line)?;
            if f.is_static {
                b.declare_static_field(cid, &f.name, ty)?;
            } else {
                b.declare_field(cid, &f.name, ty)?;
            }
        }
        let mut mids = Vec::new();
        for m in &cls.methods {
            let mid = if m.is_static {
                b.declare_static_method(cid, &m.name, m.params.len())?
            } else if m.is_abstract {
                b.declare_abstract_method(cid, &m.name, m.params.len())?
            } else {
                b.declare_method(cid, &m.name, m.params.len())?
            };
            if m.is_entry {
                b.set_entry(mid);
            }
            mids.push(mid);
        }
        method_ids.push(mids);
    }

    // Build bodies.
    for (i, cls) in ast.classes.iter().enumerate() {
        for (j, m) in cls.methods.iter().enumerate() {
            if m.is_abstract {
                continue;
            }
            build_body(&mut b, method_ids[i][j], m)?;
        }
    }

    b.finish()
}

fn declare_class(
    ast: &AstProgram,
    index: &HashMap<&str, usize>,
    i: usize,
    b: &mut ProgramBuilder,
    declared: &mut Vec<Option<ClassId>>,
    state: &mut Vec<u8>,
) -> Result<ClassId, JirError> {
    if let Some(id) = declared[i] {
        return Ok(id);
    }
    if state[i] == 1 {
        return Err(JirError::CyclicHierarchy(ast.classes[i].name.clone()));
    }
    state[i] = 1;
    let cls = &ast.classes[i];
    let resolve = |names: &[String],
                   b: &mut ProgramBuilder,
                   declared: &mut Vec<Option<ClassId>>,
                   state: &mut Vec<u8>|
     -> Result<Vec<ClassId>, JirError> {
        names
            .iter()
            .map(|name| {
                if name == "Object" {
                    return Ok(b.object_class());
                }
                let &j = index.get(name.as_str()).ok_or_else(|| JirError::Unresolved {
                    line: cls.line,
                    name: name.clone(),
                })?;
                declare_class(ast, index, j, b, declared, state)
            })
            .collect()
    };
    let supers = resolve(&cls.extends, b, declared, state)?;
    let ifaces = resolve(&cls.implements, b, declared, state)?;
    let id = if cls.is_interface {
        b.declare_interface(&cls.name, &supers)?
    } else {
        if supers.len() > 1 {
            return Err(perr(cls.line, "a class may extend at most one class"));
        }
        b.declare_class_full(
            &cls.name,
            supers.first().copied(),
            &ifaces,
            false,
            cls.is_abstract,
        )?
    };
    declared[i] = Some(id);
    state[i] = 2;
    Ok(id)
}

fn resolve_type(b: &mut ProgramBuilder, ty: &AstType, line: usize) -> Result<TypeId, JirError> {
    let cid = b.class_by_name(&ty.base).ok_or_else(|| JirError::Unresolved {
        line,
        name: ty.base.clone(),
    })?;
    let mut t = b.class_type(cid);
    for _ in 0..ty.dims {
        t = b.array_type(t);
    }
    Ok(t)
}

fn build_body(b: &mut ProgramBuilder, mid: MethodId, ast: &AstMethod) -> Result<(), JirError> {
    let mut vars: HashMap<String, VarId> = HashMap::new();
    {
        let body = b.body(mid);
        if let Some(this) = body.this() {
            vars.insert("this".to_owned(), this);
        }
        for (k, p) in ast.params.iter().enumerate() {
            vars.insert(p.clone(), body.param(k));
        }
    }
    for stmt in &ast.body {
        build_stmt(b, mid, &mut vars, stmt)?;
    }
    Ok(())
}

fn build_stmt(
    b: &mut ProgramBuilder,
    mid: MethodId,
    vars: &mut HashMap<String, VarId>,
    stmt: &AstStmt,
) -> Result<(), JirError> {
    match stmt {
        AstStmt::New { lhs, ty, line } => {
            let lhs = lookup_var(b, mid, vars, lhs);
            let ty = resolve_type(b, ty, *line)?;
            b.body(mid).new_of_type(lhs, ty);
        }
        AstStmt::Assign { lhs, rhs } => {
            let lhs = lookup_var(b, mid, vars, lhs);
            let rhs = lookup_var(b, mid, vars, rhs);
            b.body(mid).assign(lhs, rhs);
        }
        AstStmt::Load {
            lhs,
            base,
            field,
            line,
        } => {
            let lhs = lookup_var(b, mid, vars, lhs);
            // A class name in base position means a static load.
            if !vars.contains_key(base) && b.class_by_name(base).is_some() {
                let field = field_by_name(b, field, *line)?;
                b.body(mid).static_load(lhs, field);
            } else {
                let base = lookup_var(b, mid, vars, base);
                let field = field_by_name(b, field, *line)?;
                b.body(mid).load(lhs, base, field);
            }
        }
        AstStmt::Store {
            base,
            field,
            rhs,
            line,
        } => {
            let rhs = lookup_var(b, mid, vars, rhs);
            if !vars.contains_key(base) && b.class_by_name(base).is_some() {
                let field = field_by_name(b, field, *line)?;
                b.body(mid).static_store(field, rhs);
            } else {
                let base = lookup_var(b, mid, vars, base);
                let field = field_by_name(b, field, *line)?;
                b.body(mid).store(base, field, rhs);
            }
        }
        AstStmt::ArrayLoad { lhs, array } => {
            let lhs = lookup_var(b, mid, vars, lhs);
            let array = lookup_var(b, mid, vars, array);
            b.body(mid).array_load(lhs, array);
        }
        AstStmt::ArrayStore { array, rhs } => {
            let array = lookup_var(b, mid, vars, array);
            let rhs = lookup_var(b, mid, vars, rhs);
            b.body(mid).array_store(array, rhs);
        }
        AstStmt::Cast { lhs, ty, rhs, line } => {
            let lhs = lookup_var(b, mid, vars, lhs);
            let rhs = lookup_var(b, mid, vars, rhs);
            let ty = resolve_type(b, ty, *line)?;
            b.body(mid).cast(lhs, ty, rhs);
        }
        AstStmt::Call { result, kind, line } => {
            let result = result.as_ref().map(|r| lookup_var(b, mid, vars, r));
            match kind {
                AstCall::Virt { recv, name, args } => {
                    let recv = lookup_var(b, mid, vars, recv);
                    let args: Vec<VarId> =
                        args.iter().map(|a| lookup_var(b, mid, vars, a)).collect();
                    b.body(mid).virtual_call(result, recv, name, &args);
                }
                AstCall::Special {
                    recv,
                    class,
                    name,
                    args,
                } => {
                    let target = exact_method(b, class, name, args.len(), *line)?;
                    let recv = lookup_var(b, mid, vars, recv);
                    let args: Vec<VarId> =
                        args.iter().map(|a| lookup_var(b, mid, vars, a)).collect();
                    b.body(mid).special_call(result, recv, target, &args);
                }
                AstCall::Static { class, name, args } => {
                    let target = exact_method(b, class, name, args.len(), *line)?;
                    let args: Vec<VarId> =
                        args.iter().map(|a| lookup_var(b, mid, vars, a)).collect();
                    b.body(mid).static_call(result, target, &args);
                }
            }
        }
        AstStmt::Return(value) => {
            let value = value.as_ref().map(|v| lookup_var(b, mid, vars, v));
            b.body(mid).ret(value);
        }
    }
    Ok(())
}

fn lookup_var(
    b: &mut ProgramBuilder,
    mid: MethodId,
    vars: &mut HashMap<String, VarId>,
    name: &str,
) -> VarId {
    if let Some(&v) = vars.get(name) {
        return v;
    }
    let v = b.body(mid).var(name);
    vars.insert(name.to_owned(), v);
    v
}

/// Resolves a field by name across all classes. JIR field names are
/// globally unique in practice (the workloads and figures use distinct
/// names); on a tie the first declaration wins.
fn field_by_name(b: &ProgramBuilder, name: &str, line: usize) -> Result<FieldId, JirError> {
    b.find_field_by_name(name).ok_or_else(|| JirError::Unresolved {
        line,
        name: name.to_owned(),
    })
}

fn exact_method(
    b: &ProgramBuilder,
    cname: &str,
    mname: &str,
    arity: usize,
    line: usize,
) -> Result<MethodId, JirError> {
    let cid = b.class_by_name(cname).ok_or_else(|| JirError::Unresolved {
        line,
        name: cname.to_owned(),
    })?;
    b.find_method(cid, mname, arity).ok_or_else(|| JirError::Unresolved {
        line,
        name: format!("{cname}::{mname}/{arity}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_tracks_lines_and_comments() {
        let toks = lex("a // comment\nb");
        assert_eq!(
            toks,
            vec![
                (1, Tok::Ident("a".to_owned())),
                (2, Tok::Ident("b".to_owned()))
            ]
        );
    }

    #[test]
    fn parse_empty_class_inline() {
        let p = parse("class P { } class Main { entry static method main() { x = new P; return; } }")
            .unwrap();
        assert_eq!(p.class_count(), 3); // Object + P + Main
    }

    #[test]
    fn parse_error_reports_line() {
        let err = parse("class A {\n  bogus;\n}").unwrap_err();
        match err {
            JirError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_all_statement_forms() {
        let p = parse(
            "class A {
               field f: A;
               static field s: A;
               method m(this, v) { return v; }
               static method st(v) { return v; }
               entry static method main() {
                 x = new A;
                 arr = new A[];
                 y = x;
                 x.f = y;
                 z = x.f;
                 A.s = x;
                 w = A.s;
                 arr[*] = x;
                 e = arr[*];
                 c = (A) e;
                 r1 = virt x.m(y);
                 r2 = special x.A::m(y);
                 r3 = call A::st(x);
                 virt x.m(y);
                 return;
               }
             }",
        )
        .unwrap();
        assert_eq!(p.alloc_count(), 2);
        assert_eq!(p.call_site_count(), 4);
        assert_eq!(p.cast_count(), 1);
    }

    #[test]
    fn roundtrip_print_and_reparse() {
        let src = "class A {
               field f: A;
               method foo(this) { g = this.f; return g; }
             }
             class B extends A {
               method foo(this) { return; }
               entry static method main() {
                 x = new B; x.f = x; virt x.foo(); return;
               }
             }";
        let p1 = parse(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p1.class_count(), p2.class_count());
        assert_eq!(p1.alloc_count(), p2.alloc_count());
        assert_eq!(p1.call_site_count(), p2.call_site_count());
    }

    #[test]
    fn unresolved_class_errors() {
        let err = parse("class A extends Missing { entry static method main() { return; } }")
            .unwrap_err();
        assert!(matches!(err, JirError::Unresolved { .. }));
    }

    #[test]
    fn interfaces_and_abstract_methods() {
        let p = parse(
            "interface I { abstract method m(this); }
             abstract class Base implements I { }
             class Impl extends Base {
               method m(this) { return; }
               entry static method main() { x = new Impl; virt x.m(); return; }
             }",
        )
        .unwrap();
        let i = p.class_by_name("I").unwrap();
        assert!(p.class(i).is_interface());
        let base = p.class_by_name("Base").unwrap();
        assert!(p.class(base).is_abstract());
        let impl_ = p.class_by_name("Impl").unwrap();
        assert!(p.is_subclass(impl_, i));
    }
}
