//! Well-formedness checks run by [`ProgramBuilder::finish`].
//!
//! [`ProgramBuilder::finish`]: crate::ProgramBuilder::finish

use crate::error::JirError;
use crate::program::{Program, TypeKind};
use crate::stmt::Stmt;
use crate::{MethodId, VarId};

/// Validates structural invariants of a program.
///
/// # Errors
///
/// Returns the first violation found:
/// - the entry method must be static with no parameters;
/// - interfaces may only declare abstract instance methods;
/// - abstract methods must have empty bodies;
/// - every variable used in a method body must belong to that method;
/// - allocation sites must instantiate concrete classes or array types;
/// - `extends`/`implements` edges must respect interface-ness.
pub(crate) fn validate(program: &Program) -> Result<(), JirError> {
    let entry = program.method(program.entry());
    if !entry.is_static() || !entry.params().is_empty() {
        return Err(JirError::BadEntry(entry.name().to_owned()));
    }

    for c in program.class_ids() {
        let cls = program.class(c);
        if let Some(sup) = cls.superclass() {
            if program.class(sup).is_interface() {
                return Err(JirError::BadSupertype {
                    class: cls.name().to_owned(),
                    supertype: program.class(sup).name().to_owned(),
                });
            }
        }
        for &i in cls.interfaces() {
            if !program.class(i).is_interface() {
                return Err(JirError::BadSupertype {
                    class: cls.name().to_owned(),
                    supertype: program.class(i).name().to_owned(),
                });
            }
        }
        for &m in cls.methods() {
            let method = program.method(m);
            if cls.is_interface() && !method.is_abstract() {
                return Err(JirError::BadMethodShape {
                    class: cls.name().to_owned(),
                    method: method.name().to_owned(),
                });
            }
            if method.is_abstract() && !method.body().is_empty() {
                return Err(JirError::BadMethodShape {
                    class: cls.name().to_owned(),
                    method: method.name().to_owned(),
                });
            }
        }
    }

    for m in program.method_ids() {
        validate_body(program, m)?;
    }
    Ok(())
}

fn validate_body(program: &Program, m: MethodId) -> Result<(), JirError> {
    let method = program.method(m);
    let check_var = |v: VarId| -> Result<(), JirError> {
        if program.var(v).method() != m {
            return Err(JirError::ForeignVariable {
                method: method.name().to_owned(),
                var: program.var(v).name().to_owned(),
            });
        }
        Ok(())
    };
    for stmt in method.body() {
        match *stmt {
            Stmt::New { lhs, site } => {
                check_var(lhs)?;
                let ty = program.alloc(site).ty();
                if let TypeKind::Class(c) = program.ty(ty) {
                    if program.class(c).is_abstract() {
                        return Err(JirError::AbstractAllocation {
                            method: method.name().to_owned(),
                            ty: program.type_name(ty),
                        });
                    }
                }
            }
            Stmt::Assign { lhs, rhs } => {
                check_var(lhs)?;
                check_var(rhs)?;
            }
            Stmt::Load { lhs, base, .. } => {
                check_var(lhs)?;
                check_var(base)?;
            }
            Stmt::Store { base, rhs, .. } => {
                check_var(base)?;
                check_var(rhs)?;
            }
            Stmt::StaticLoad { lhs, .. } => check_var(lhs)?,
            Stmt::StaticStore { rhs, .. } => check_var(rhs)?,
            Stmt::Cast { lhs, rhs, .. } => {
                check_var(lhs)?;
                check_var(rhs)?;
            }
            Stmt::Call(site) => {
                let cs = program.call_site(site);
                if let Some(r) = cs.result() {
                    check_var(r)?;
                }
                if let Some(recv) = cs.kind().receiver() {
                    check_var(recv)?;
                }
                for &a in cs.args() {
                    check_var(a)?;
                }
            }
            Stmt::Return { value } => {
                if let Some(v) = value {
                    check_var(v)?;
                }
            }
        }
    }
    Ok(())
}
