//! Fluent construction of [`Program`]s.
//!
//! [`ProgramBuilder`] declares classes, fields, and methods; a
//! [`BodyBuilder`] (obtained per method) appends statements. Calling
//! [`ProgramBuilder::finish`] validates the program and precomputes
//! hierarchy tables.
//!
//! # Examples
//!
//! ```
//! use jir::ProgramBuilder;
//!
//! # fn main() -> Result<(), jir::JirError> {
//! let mut b = ProgramBuilder::new();
//! let object = b.object_class();
//! let a = b.declare_class("A", Some(object))?;
//! let f = b.declare_field(a, "f", b.class_type(a))?;
//!
//! let main = b.declare_static_method(a, "main", 0)?;
//! b.set_entry(main);
//! {
//!     let mut body = b.body(main);
//!     let x = body.var("x");
//!     let y = body.var("y");
//!     body.new_object(x, a);
//!     body.store(x, f, x);
//!     body.load(y, x, f);
//!     body.ret(Some(y));
//! }
//! let program = b.finish()?;
//! assert_eq!(program.class_count(), 2); // Object + A
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;

use crate::error::JirError;
use crate::ids::{AllocId, CallSiteId, CastId, ClassId, FieldId, MethodId, TypeId, VarId};
use crate::program::{
    AllocSite, CallSite, CallTarget, CastSite, Class, ClassBitSet, Field, Method, Program,
    TypeKind, Var,
};
use crate::stmt::{CallKind, Stmt};

/// Incrementally builds a [`Program`].
///
/// The builder starts with the root class (`java.lang.Object` analogue)
/// already declared; retrieve it with [`ProgramBuilder::object_class`].
#[derive(Debug)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    types: Vec<TypeKind>,
    fields: Vec<Field>,
    methods: Vec<Method>,
    vars: Vec<Var>,
    allocs: Vec<AllocSite>,
    call_sites: Vec<CallSite>,
    casts: Vec<CastSite>,
    entry: Option<MethodId>,
    object_class: ClassId,
    array_elem_field: FieldId,
    class_by_name: HashMap<String, ClassId>,
    array_type_by_elem: HashMap<TypeId, TypeId>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder with the root class already declared.
    pub fn new() -> Self {
        let object_class = ClassId::from_usize(0);
        let object_type = TypeId::from_usize(0);
        let array_elem_field = FieldId::from_usize(0);
        let mut class_by_name = HashMap::new();
        class_by_name.insert("Object".to_owned(), object_class);
        ProgramBuilder {
            classes: vec![Class {
                name: "Object".to_owned(),
                superclass: None,
                interfaces: Vec::new(),
                is_interface: false,
                is_abstract: false,
                fields: Vec::new(),
                methods: Vec::new(),
                ty: object_type,
            }],
            types: vec![TypeKind::Class(object_class)],
            fields: vec![Field {
                name: "[]".to_owned(),
                class: None,
                ty: object_type,
                is_static: false,
            }],
            methods: Vec::new(),
            vars: Vec::new(),
            allocs: Vec::new(),
            call_sites: Vec::new(),
            casts: Vec::new(),
            entry: None,
            object_class,
            array_elem_field,
            class_by_name,
            array_type_by_elem: HashMap::new(),
        }
    }

    /// Returns the root class.
    pub fn object_class(&self) -> ClassId {
        self.object_class
    }

    /// Returns the instance type of a class.
    pub fn class_type(&self, class: ClassId) -> TypeId {
        self.classes[class.index()].ty
    }

    /// Returns (interning if necessary) the array type with the given
    /// element type.
    pub fn array_type(&mut self, elem: TypeId) -> TypeId {
        if let Some(&t) = self.array_type_by_elem.get(&elem) {
            return t;
        }
        let t = TypeId::from_usize(self.types.len());
        self.types.push(TypeKind::Array { elem });
        self.array_type_by_elem.insert(elem, t);
        t
    }

    /// Looks up a previously declared class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Looks up a field by name across all classes (first declaration wins).
    pub fn find_field_by_name(&self, name: &str) -> Option<FieldId> {
        self.fields
            .iter()
            .position(|f| f.name == name && f.class.is_some())
            .map(FieldId::from_usize)
    }

    /// Looks up a method declared directly by `class` with the given
    /// name and arity.
    pub fn find_method(&self, class: ClassId, name: &str, arity: usize) -> Option<MethodId> {
        self.classes[class.index()]
            .methods
            .iter()
            .copied()
            .find(|&m| {
                let method = &self.methods[m.index()];
                method.name == name && method.params.len() == arity
            })
    }

    /// Declares a concrete class.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateClass`] if the name is taken.
    pub fn declare_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
    ) -> Result<ClassId, JirError> {
        self.declare_class_full(name, superclass, &[], false, false)
    }

    /// Declares an abstract class.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateClass`] if the name is taken.
    pub fn declare_abstract_class(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
    ) -> Result<ClassId, JirError> {
        self.declare_class_full(name, superclass, &[], false, true)
    }

    /// Declares an interface.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateClass`] if the name is taken.
    pub fn declare_interface(
        &mut self,
        name: &str,
        extends: &[ClassId],
    ) -> Result<ClassId, JirError> {
        self.declare_class_full(name, None, extends, true, true)
    }

    /// Declares a class with full control over its shape.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateClass`] if the name is taken.
    pub fn declare_class_full(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        interfaces: &[ClassId],
        is_interface: bool,
        is_abstract: bool,
    ) -> Result<ClassId, JirError> {
        if self.class_by_name.contains_key(name) {
            return Err(JirError::DuplicateClass(name.to_owned()));
        }
        let id = ClassId::from_usize(self.classes.len());
        let ty = TypeId::from_usize(self.types.len());
        self.types.push(TypeKind::Class(id));
        let superclass = if is_interface {
            None
        } else {
            Some(superclass.unwrap_or(self.object_class))
        };
        self.classes.push(Class {
            name: name.to_owned(),
            superclass,
            interfaces: interfaces.to_vec(),
            is_interface,
            is_abstract,
            fields: Vec::new(),
            methods: Vec::new(),
            ty,
        });
        self.class_by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Declares an instance field.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateField`] if the class already declares
    /// a field with this name.
    pub fn declare_field(
        &mut self,
        class: ClassId,
        name: &str,
        ty: TypeId,
    ) -> Result<FieldId, JirError> {
        self.declare_field_full(class, name, ty, false)
    }

    /// Declares a static field.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateField`] if the class already declares
    /// a field with this name.
    pub fn declare_static_field(
        &mut self,
        class: ClassId,
        name: &str,
        ty: TypeId,
    ) -> Result<FieldId, JirError> {
        self.declare_field_full(class, name, ty, true)
    }

    fn declare_field_full(
        &mut self,
        class: ClassId,
        name: &str,
        ty: TypeId,
        is_static: bool,
    ) -> Result<FieldId, JirError> {
        let cls = &self.classes[class.index()];
        if cls
            .fields
            .iter()
            .any(|&f| self.fields[f.index()].name == name)
        {
            return Err(JirError::DuplicateField {
                class: cls.name.clone(),
                field: name.to_owned(),
            });
        }
        let id = FieldId::from_usize(self.fields.len());
        self.fields.push(Field {
            name: name.to_owned(),
            class: Some(class),
            ty,
            is_static,
        });
        self.classes[class.index()].fields.push(id);
        Ok(id)
    }

    /// Declares a concrete instance method with `arity` parameters; the
    /// `this` variable and parameter variables are created automatically.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateMethod`] if `(name, arity)` is taken
    /// in this class.
    pub fn declare_method(
        &mut self,
        class: ClassId,
        name: &str,
        arity: usize,
    ) -> Result<MethodId, JirError> {
        self.declare_method_full(class, name, arity, false, false)
    }

    /// Declares a static method with `arity` parameters.
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateMethod`] if `(name, arity)` is taken
    /// in this class.
    pub fn declare_static_method(
        &mut self,
        class: ClassId,
        name: &str,
        arity: usize,
    ) -> Result<MethodId, JirError> {
        self.declare_method_full(class, name, arity, true, false)
    }

    /// Declares an abstract instance method (no body may be added).
    ///
    /// # Errors
    ///
    /// Returns [`JirError::DuplicateMethod`] if `(name, arity)` is taken
    /// in this class.
    pub fn declare_abstract_method(
        &mut self,
        class: ClassId,
        name: &str,
        arity: usize,
    ) -> Result<MethodId, JirError> {
        self.declare_method_full(class, name, arity, false, true)
    }

    fn declare_method_full(
        &mut self,
        class: ClassId,
        name: &str,
        arity: usize,
        is_static: bool,
        is_abstract: bool,
    ) -> Result<MethodId, JirError> {
        let cls = &self.classes[class.index()];
        if cls.methods.iter().any(|&m| {
            self.methods[m.index()].name == name && self.methods[m.index()].params.len() == arity
        }) {
            return Err(JirError::DuplicateMethod {
                class: cls.name.clone(),
                method: format!("{name}/{arity}"),
            });
        }
        let id = MethodId::from_usize(self.methods.len());
        let this = if is_static || is_abstract {
            None
        } else {
            Some(self.fresh_var("this", id))
        };
        let params = (0..arity)
            .map(|i| self.fresh_var(&format!("p{i}"), id))
            .collect();
        self.methods.push(Method {
            class,
            name: name.to_owned(),
            this,
            params,
            is_static,
            is_abstract,
            body: Vec::new(),
        });
        self.classes[class.index()].methods.push(id);
        Ok(id)
    }

    fn fresh_var(&mut self, name: &str, method: MethodId) -> VarId {
        let id = VarId::from_usize(self.vars.len());
        self.vars.push(Var {
            name: name.to_owned(),
            method,
        });
        id
    }

    /// Designates the program entry point; must be a static 0-ary method.
    pub fn set_entry(&mut self, method: MethodId) {
        self.entry = Some(method);
    }

    /// Opens a body builder for appending statements to `method`.
    ///
    /// # Panics
    ///
    /// Panics if `method` is abstract.
    pub fn body(&mut self, method: MethodId) -> BodyBuilder<'_> {
        assert!(
            !self.methods[method.index()].is_abstract,
            "cannot build a body for abstract method {method}"
        );
        BodyBuilder { b: self, method }
    }

    /// Validates the program and precomputes hierarchy tables.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure; see [`JirError`] for the
    /// conditions checked.
    pub fn finish(self) -> Result<Program, JirError> {
        let entry = self.entry.ok_or(JirError::MissingEntry)?;
        let mut program = Program {
            classes: self.classes,
            types: self.types,
            fields: self.fields,
            methods: self.methods,
            vars: self.vars,
            allocs: self.allocs,
            call_sites: self.call_sites,
            casts: self.casts,
            entry,
            object_class: self.object_class,
            array_elem_field: self.array_elem_field,
            class_by_name: self.class_by_name,
            ancestors: Vec::new(),
            vtables: Vec::new(),
        };
        crate::validate::validate(&program)?;
        compute_hierarchy(&mut program)?;
        Ok(program)
    }
}

/// Appends statements to one method's body; created by
/// [`ProgramBuilder::body`].
#[derive(Debug)]
pub struct BodyBuilder<'a> {
    b: &'a mut ProgramBuilder,
    method: MethodId,
}

impl BodyBuilder<'_> {
    /// Returns the method under construction.
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// Returns the `this` variable of the method, if any.
    pub fn this(&self) -> Option<VarId> {
        self.b.methods[self.method.index()].this
    }

    /// Returns the `i`-th parameter variable.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> VarId {
        self.b.methods[self.method.index()].params[i]
    }

    /// Creates a fresh local variable.
    pub fn var(&mut self, name: &str) -> VarId {
        self.b.fresh_var(name, self.method)
    }

    /// Appends `lhs = new <ty>` for an arbitrary type (class or array).
    pub fn new_of_type(&mut self, lhs: VarId, ty: TypeId) -> AllocId {
        let site = AllocId::from_usize(self.b.allocs.len());
        self.b.allocs.push(AllocSite {
            ty,
            method: self.method,
        });
        self.push(Stmt::New { lhs, site });
        site
    }

    /// Appends `lhs = new C()`.
    pub fn new_object(&mut self, lhs: VarId, class: ClassId) -> AllocId {
        let ty = self.b.class_type(class);
        self.new_of_type(lhs, ty)
    }

    /// Appends `lhs = new elem[...]`.
    pub fn new_array(&mut self, lhs: VarId, elem: TypeId) -> AllocId {
        let ty = self.b.array_type(elem);
        self.new_of_type(lhs, ty)
    }

    /// Appends `lhs = rhs`.
    pub fn assign(&mut self, lhs: VarId, rhs: VarId) {
        self.push(Stmt::Assign { lhs, rhs });
    }

    /// Appends `lhs = base.field`.
    pub fn load(&mut self, lhs: VarId, base: VarId, field: FieldId) {
        self.push(Stmt::Load { lhs, base, field });
    }

    /// Appends `base.field = rhs`.
    pub fn store(&mut self, base: VarId, field: FieldId, rhs: VarId) {
        self.push(Stmt::Store { base, field, rhs });
    }

    /// Appends `lhs = array[*]` (index-insensitive array load).
    pub fn array_load(&mut self, lhs: VarId, array: VarId) {
        let field = self.b.array_elem_field;
        self.push(Stmt::Load {
            lhs,
            base: array,
            field,
        });
    }

    /// Appends `array[*] = rhs` (index-insensitive array store).
    pub fn array_store(&mut self, array: VarId, rhs: VarId) {
        let field = self.b.array_elem_field;
        self.push(Stmt::Store {
            base: array,
            field,
            rhs,
        });
    }

    /// Appends `lhs = C.field`.
    pub fn static_load(&mut self, lhs: VarId, field: FieldId) {
        self.push(Stmt::StaticLoad { lhs, field });
    }

    /// Appends `C.field = rhs`.
    pub fn static_store(&mut self, field: FieldId, rhs: VarId) {
        self.push(Stmt::StaticStore { field, rhs });
    }

    /// Appends `lhs = (ty) rhs`.
    pub fn cast(&mut self, lhs: VarId, ty: TypeId, rhs: VarId) -> CastId {
        let site = CastId::from_usize(self.b.casts.len());
        self.b.casts.push(CastSite {
            target_ty: ty,
            method: self.method,
        });
        self.push(Stmt::Cast { lhs, rhs, site });
        site
    }

    /// Appends a virtual call `result = recv.name(args...)`.
    pub fn virtual_call(
        &mut self,
        result: Option<VarId>,
        recv: VarId,
        name: &str,
        args: &[VarId],
    ) -> CallSiteId {
        self.push_call(
            CallKind::Virtual { recv },
            CallTarget::Signature {
                name: name.to_owned(),
                arity: args.len(),
            },
            args,
            result,
        )
    }

    /// Appends a special (statically bound, receiver-passing) call.
    pub fn special_call(
        &mut self,
        result: Option<VarId>,
        recv: VarId,
        target: MethodId,
        args: &[VarId],
    ) -> CallSiteId {
        self.push_call(
            CallKind::Special { recv },
            CallTarget::Exact(target),
            args,
            result,
        )
    }

    /// Appends a static call `result = C.name(args...)`.
    pub fn static_call(
        &mut self,
        result: Option<VarId>,
        target: MethodId,
        args: &[VarId],
    ) -> CallSiteId {
        self.push_call(CallKind::Static, CallTarget::Exact(target), args, result)
    }

    fn push_call(
        &mut self,
        kind: CallKind,
        target: CallTarget,
        args: &[VarId],
        result: Option<VarId>,
    ) -> CallSiteId {
        let site = CallSiteId::from_usize(self.b.call_sites.len());
        self.b.call_sites.push(CallSite {
            kind,
            target,
            args: args.to_vec(),
            result,
            method: self.method,
        });
        self.push(Stmt::Call(site));
        site
    }

    /// Appends `return value`.
    pub fn ret(&mut self, value: Option<VarId>) {
        self.push(Stmt::Return { value });
    }

    fn push(&mut self, stmt: Stmt) {
        self.b.methods[self.method.index()].body.push(stmt);
    }
}

/// Computes ancestor bitsets and vtables; detects hierarchy cycles.
fn compute_hierarchy(program: &mut Program) -> Result<(), JirError> {
    let n = program.classes.len();
    // Topological order over (superclass + interfaces) edges.
    let mut order = Vec::with_capacity(n);
    let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
    for start in 0..n {
        if state[start] != 0 {
            continue;
        }
        // Iterative DFS.
        let mut stack = vec![(start, 0usize)];
        state[start] = 1;
        while let Some(top) = stack.last_mut() {
            let (c, i) = (top.0, top.1);
            let supers = class_supers(program, ClassId::from_usize(c));
            if i < supers.len() {
                let next = supers[i].index();
                top.1 += 1;
                match state[next] {
                    0 => {
                        state[next] = 1;
                        stack.push((next, 0));
                    }
                    1 => {
                        return Err(JirError::CyclicHierarchy(
                            program.classes[next].name.clone(),
                        ));
                    }
                    _ => {}
                }
            } else {
                state[c] = 2;
                order.push(c);
                stack.pop();
            }
        }
    }

    // Ancestor bitsets, in topological order (supers before subs).
    let mut ancestors: Vec<ClassBitSet> = vec![ClassBitSet::with_capacity(n); n];
    for &c in &order {
        let id = ClassId::from_usize(c);
        let mut set = ClassBitSet::with_capacity(n);
        set.insert(id);
        for sup in class_supers(program, id) {
            set.union_with(&ancestors[sup.index()]);
        }
        ancestors[c] = set;
    }

    // Vtables: inherit the superclass table, then overwrite with own
    // concrete methods.
    let mut vtables: Vec<HashMap<(String, usize), MethodId>> = vec![HashMap::new(); n];
    for &c in &order {
        let id = ClassId::from_usize(c);
        let mut table = match program.classes[c].superclass {
            Some(sup) => vtables[sup.index()].clone(),
            None => HashMap::new(),
        };
        for &m in &program.classes[c].methods {
            let method = &program.methods[m.index()];
            if !method.is_abstract && !method.is_static {
                table.insert((method.name.clone(), method.params.len()), m);
            }
        }
        vtables[id.index()] = table;
    }

    program.ancestors = ancestors;
    program.vtables = vtables;
    Ok(())
}

fn class_supers(program: &Program, c: ClassId) -> Vec<ClassId> {
    let cls = &program.classes[c.index()];
    let mut out = Vec::with_capacity(1 + cls.interfaces.len());
    if let Some(s) = cls.superclass {
        out.push(s);
    }
    out.extend_from_slice(&cls.interfaces);
    out
}
