//! The whole-program representation: arenas of classes, types, fields,
//! methods, variables, allocation sites, call sites, and cast sites, plus
//! precomputed class-hierarchy queries (subtyping and virtual dispatch).

use std::collections::HashMap;
use std::fmt;

use crate::ids::{AllocId, CallSiteId, CastId, ClassId, FieldId, MethodId, TypeId, VarId};
use crate::stmt::{CallKind, Stmt};

/// A reference type in the program: either a class/interface type or an
/// array type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// The type of instances of a class or interface.
    Class(ClassId),
    /// An array type with the given element type (`elem[]`).
    Array {
        /// The element type.
        elem: TypeId,
    },
}

/// A class or interface declaration.
#[derive(Clone, Debug)]
pub struct Class {
    pub(crate) name: String,
    pub(crate) superclass: Option<ClassId>,
    pub(crate) interfaces: Vec<ClassId>,
    pub(crate) is_interface: bool,
    pub(crate) is_abstract: bool,
    pub(crate) fields: Vec<FieldId>,
    pub(crate) methods: Vec<MethodId>,
    pub(crate) ty: TypeId,
}

impl Class {
    /// Returns the fully qualified class name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the direct superclass, or `None` for the root class.
    pub fn superclass(&self) -> Option<ClassId> {
        self.superclass
    }

    /// Returns the directly implemented interfaces.
    pub fn interfaces(&self) -> &[ClassId] {
        &self.interfaces
    }

    /// Returns `true` if this declaration is an interface.
    pub fn is_interface(&self) -> bool {
        self.is_interface
    }

    /// Returns `true` if this class cannot be instantiated.
    pub fn is_abstract(&self) -> bool {
        self.is_abstract || self.is_interface
    }

    /// Returns the fields declared directly by this class.
    pub fn fields(&self) -> &[FieldId] {
        &self.fields
    }

    /// Returns the methods declared directly by this class.
    pub fn methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// Returns the instance type of this class.
    pub fn ty(&self) -> TypeId {
        self.ty
    }
}

/// A field declaration.
#[derive(Clone, Debug)]
pub struct Field {
    pub(crate) name: String,
    /// `None` only for the array-element pseudo-field.
    pub(crate) class: Option<ClassId>,
    pub(crate) ty: TypeId,
    pub(crate) is_static: bool,
}

impl Field {
    /// Returns the field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the declaring class, or `None` for the array-element
    /// pseudo-field.
    pub fn class(&self) -> Option<ClassId> {
        self.class
    }

    /// Returns the declared type of the field.
    pub fn ty(&self) -> TypeId {
        self.ty
    }

    /// Returns `true` for static fields.
    pub fn is_static(&self) -> bool {
        self.is_static
    }
}

/// A method declaration with its body.
#[derive(Clone, Debug)]
pub struct Method {
    pub(crate) class: ClassId,
    pub(crate) name: String,
    pub(crate) this: Option<VarId>,
    pub(crate) params: Vec<VarId>,
    pub(crate) is_static: bool,
    pub(crate) is_abstract: bool,
    pub(crate) body: Vec<Stmt>,
}

impl Method {
    /// Returns the declaring class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Returns the method name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the `this` variable, or `None` for static methods.
    pub fn this(&self) -> Option<VarId> {
        self.this
    }

    /// Returns the declared parameters, excluding `this`.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// Returns the number of declared parameters, excluding `this`.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Returns `true` for static methods.
    pub fn is_static(&self) -> bool {
        self.is_static
    }

    /// Returns `true` for abstract methods (no body).
    pub fn is_abstract(&self) -> bool {
        self.is_abstract
    }

    /// Returns the statements of the body.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }
}

/// A local variable or parameter.
#[derive(Clone, Debug)]
pub struct Var {
    pub(crate) name: String,
    pub(crate) method: MethodId,
}

impl Var {
    /// Returns the variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the method this variable belongs to.
    pub fn method(&self) -> MethodId {
        self.method
    }
}

/// An allocation site: `x = new T()` at a specific program point.
#[derive(Clone, Copy, Debug)]
pub struct AllocSite {
    pub(crate) ty: TypeId,
    pub(crate) method: MethodId,
}

impl AllocSite {
    /// Returns the allocated type.
    pub fn ty(&self) -> TypeId {
        self.ty
    }

    /// Returns the method containing the allocation.
    pub fn method(&self) -> MethodId {
        self.method
    }
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// Resolved dynamically from the receiver's runtime class by
    /// `(name, arity)` signature.
    Signature {
        /// The method name.
        name: String,
        /// The parameter count (excluding the receiver).
        arity: usize,
    },
    /// Statically bound to an exact method (static and special calls).
    Exact(MethodId),
}

/// A call site with its arguments and optional result variable.
#[derive(Clone, Debug)]
pub struct CallSite {
    pub(crate) kind: CallKind,
    pub(crate) target: CallTarget,
    pub(crate) args: Vec<VarId>,
    pub(crate) result: Option<VarId>,
    pub(crate) method: MethodId,
}

impl CallSite {
    /// Returns the dispatch kind.
    pub fn kind(&self) -> &CallKind {
        &self.kind
    }

    /// Returns how the callee is named.
    pub fn target(&self) -> &CallTarget {
        &self.target
    }

    /// Returns the argument variables (excluding the receiver).
    pub fn args(&self) -> &[VarId] {
        &self.args
    }

    /// Returns the variable receiving the call result, if any.
    pub fn result(&self) -> Option<VarId> {
        self.result
    }

    /// Returns the method containing this call site.
    pub fn method(&self) -> MethodId {
        self.method
    }
}

/// A cast site: `x = (T) y` at a specific program point.
#[derive(Clone, Copy, Debug)]
pub struct CastSite {
    pub(crate) target_ty: TypeId,
    pub(crate) method: MethodId,
}

impl CastSite {
    /// Returns the type being cast to.
    pub fn target_ty(&self) -> TypeId {
        self.target_ty
    }

    /// Returns the method containing this cast.
    pub fn method(&self) -> MethodId {
        self.method
    }
}

/// An immutable whole program, produced by [`ProgramBuilder::finish`] or
/// [`parse`].
///
/// All entities live in arenas indexed by typed ids ([`ClassId`], [`MethodId`], ...);
/// hierarchy queries (subtyping, dispatch) are precomputed when the program
/// is finished and answered in constant or near-constant time.
///
/// [`ProgramBuilder::finish`]: crate::ProgramBuilder::finish
/// [`parse`]: crate::parse
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) classes: Vec<Class>,
    pub(crate) types: Vec<TypeKind>,
    pub(crate) fields: Vec<Field>,
    pub(crate) methods: Vec<Method>,
    pub(crate) vars: Vec<Var>,
    pub(crate) allocs: Vec<AllocSite>,
    pub(crate) call_sites: Vec<CallSite>,
    pub(crate) casts: Vec<CastSite>,
    pub(crate) entry: MethodId,
    pub(crate) object_class: ClassId,
    pub(crate) array_elem_field: FieldId,
    pub(crate) class_by_name: HashMap<String, ClassId>,
    /// `ancestors[c]` = all classes/interfaces `c` is a subtype of,
    /// including `c` itself, as a bitset over `ClassId`.
    pub(crate) ancestors: Vec<ClassBitSet>,
    /// `vtables[c]` maps `(name, arity)` to the concrete method a virtual
    /// call on an instance of `c` dispatches to.
    pub(crate) vtables: Vec<HashMap<(String, usize), MethodId>>,
}

/// A fixed-size bitset over [`ClassId`]s, used for ancestor sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct ClassBitSet {
    words: Vec<u64>,
}

impl ClassBitSet {
    pub(crate) fn with_capacity(n: usize) -> Self {
        ClassBitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub(crate) fn insert(&mut self, c: ClassId) {
        let i = c.index();
        self.words[i / 64] |= 1 << (i % 64);
    }

    pub(crate) fn contains(&self, c: ClassId) -> bool {
        let i = c.index();
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    pub(crate) fn union_with(&mut self, other: &ClassBitSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

impl Program {
    // --- Entity accessors -------------------------------------------------

    /// Returns the class with the given id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Returns the type table entry with the given id.
    pub fn ty(&self, id: TypeId) -> TypeKind {
        self.types[id.index()]
    }

    /// Returns the field with the given id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Returns the method with the given id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Returns the variable with the given id.
    pub fn var(&self, id: VarId) -> &Var {
        &self.vars[id.index()]
    }

    /// Returns the allocation site with the given id.
    pub fn alloc(&self, id: AllocId) -> &AllocSite {
        &self.allocs[id.index()]
    }

    /// Returns the call site with the given id.
    pub fn call_site(&self, id: CallSiteId) -> &CallSite {
        &self.call_sites[id.index()]
    }

    /// Returns the cast site with the given id.
    pub fn cast(&self, id: CastId) -> &CastSite {
        &self.casts[id.index()]
    }

    /// Returns the program entry point (the `main` method).
    pub fn entry(&self) -> MethodId {
        self.entry
    }

    /// Returns the root class (`java.lang.Object` analogue).
    pub fn object_class(&self) -> ClassId {
        self.object_class
    }

    /// Returns the pseudo-field used to model array element reads/writes.
    pub fn array_elem_field(&self) -> FieldId {
        self.array_elem_field
    }

    // --- Counts and iteration --------------------------------------------

    /// Returns the number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Returns the number of types in the type table.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Returns the number of fields (including the array pseudo-field).
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Returns the number of methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Returns the number of variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Returns the number of allocation sites.
    pub fn alloc_count(&self) -> usize {
        self.allocs.len()
    }

    /// Returns the number of call sites.
    pub fn call_site_count(&self) -> usize {
        self.call_sites.len()
    }

    /// Returns the number of cast sites.
    pub fn cast_count(&self) -> usize {
        self.casts.len()
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(ClassId::from_usize)
    }

    /// Iterates over all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> + '_ {
        (0..self.methods.len()).map(MethodId::from_usize)
    }

    /// Iterates over all allocation site ids.
    pub fn alloc_ids(&self) -> impl Iterator<Item = AllocId> + '_ {
        (0..self.allocs.len()).map(AllocId::from_usize)
    }

    /// Iterates over all call site ids.
    pub fn call_site_ids(&self) -> impl Iterator<Item = CallSiteId> + '_ {
        (0..self.call_sites.len()).map(CallSiteId::from_usize)
    }

    /// Iterates over all cast site ids.
    pub fn cast_ids(&self) -> impl Iterator<Item = CastId> + '_ {
        (0..self.casts.len()).map(CastId::from_usize)
    }

    /// Iterates over all field ids.
    pub fn field_ids(&self) -> impl Iterator<Item = FieldId> + '_ {
        (0..self.fields.len()).map(FieldId::from_usize)
    }

    // --- Lookups -----------------------------------------------------------

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Looks up a field declared by (or inherited into) `class` with the
    /// given name, walking up the superclass chain.
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let cls = self.class(c);
            for &f in &cls.fields {
                if self.field(f).name == name {
                    return Some(f);
                }
            }
            cur = cls.superclass;
        }
        None
    }

    /// Looks up a method declared directly by `class` with the given name
    /// and arity.
    pub fn method_by_name(&self, class: ClassId, name: &str, arity: usize) -> Option<MethodId> {
        self.class(class)
            .methods
            .iter()
            .copied()
            .find(|&m| self.method(m).name == name && self.method(m).arity() == arity)
    }

    // --- Hierarchy queries --------------------------------------------------

    /// Returns `true` if `sub` is `sup` or a transitive
    /// subclass/implementor of `sup`.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        self.ancestors[sub.index()].contains(sup)
    }

    /// Returns `true` if type `sub` is assignable to type `sup`.
    ///
    /// Class types use the class hierarchy; array types are covariant in
    /// their element type (as in Java); every array type is assignable to
    /// the root class type.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        if sub == sup {
            return true;
        }
        match (self.ty(sub), self.ty(sup)) {
            (TypeKind::Class(a), TypeKind::Class(b)) => self.is_subclass(a, b),
            (TypeKind::Array { .. }, TypeKind::Class(b)) => b == self.object_class,
            (TypeKind::Array { elem: a }, TypeKind::Array { elem: b }) => self.is_subtype(a, b),
            (TypeKind::Class(_), TypeKind::Array { .. }) => false,
        }
    }

    /// Resolves a virtual call on a receiver of runtime type `recv_ty` to
    /// the concrete method with signature `(name, arity)`.
    ///
    /// Array receivers dispatch through the root class. Returns `None` if
    /// no concrete implementation exists (a malformed program or an
    /// abstract receiver class).
    pub fn dispatch(&self, recv_ty: TypeId, name: &str, arity: usize) -> Option<MethodId> {
        let class = match self.ty(recv_ty) {
            TypeKind::Class(c) => c,
            TypeKind::Array { .. } => self.object_class,
        };
        self.vtables[class.index()]
            .get(&(name.to_owned(), arity))
            .copied()
    }

    /// Returns the class that lexically contains the given allocation site
    /// (the "containing type" used by type-sensitivity, Smaragdakis et al.).
    pub fn alloc_containing_class(&self, alloc: AllocId) -> ClassId {
        self.method(self.alloc(alloc).method).class
    }

    /// Returns a human-readable name for a type (`"A"`, `"A[]"`, ...).
    pub fn type_name(&self, ty: TypeId) -> String {
        match self.ty(ty) {
            TypeKind::Class(c) => self.class(c).name.clone(),
            TypeKind::Array { elem } => format!("{}[]", self.type_name(elem)),
        }
    }

    /// Returns all reference-typed instance fields of objects of type `ty`:
    /// the declared+inherited fields for class types, the element
    /// pseudo-field for array types.
    pub fn instance_fields_of_type(&self, ty: TypeId) -> Vec<FieldId> {
        match self.ty(ty) {
            TypeKind::Array { .. } => vec![self.array_elem_field],
            TypeKind::Class(c) => {
                let mut out = Vec::new();
                let mut cur = Some(c);
                while let Some(cl) = cur {
                    for &f in &self.class(cl).fields {
                        if !self.field(f).is_static {
                            out.push(f);
                        }
                    }
                    cur = self.class(cl).superclass;
                }
                out
            }
        }
    }

    /// Returns a stable, human-readable label for an allocation site, e.g.
    /// `"alloc#3:B@A.foo"`.
    pub fn alloc_label(&self, alloc: AllocId) -> String {
        let site = self.alloc(alloc);
        let m = self.method(site.method);
        format!(
            "{alloc}:{}@{}.{}",
            self.type_name(site.ty),
            self.class(m.class).name,
            m.name
        )
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::write_program(self, f)
    }
}
