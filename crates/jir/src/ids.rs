//! Typed index identifiers for every entity arena in a [`Program`].
//!
//! Each id is a thin `u32` newtype ([C-NEWTYPE]): cheap to copy, hashable,
//! and statically distinct from every other id kind, so a [`FieldId`] can
//! never be confused with a [`MethodId`] at a call site.
//!
//! [`Program`]: crate::Program
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

/// Declares a `u32`-backed arena index type.
macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a raw arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_usize(index: usize) -> Self {
                Self(u32::try_from(index).expect("arena index overflows u32"))
            }

            /// Returns the raw arena index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub fn as_u32(self) -> u32 {
                self.0
            }

            /// Creates an id from a raw `u32` value.
            #[inline]
            pub fn from_u32(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl ::std::fmt::Debug for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl ::std::fmt::Display for $name {
            fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a class or interface declaration.
    ClassId,
    "class#"
);
define_id!(
    /// Identifies an entry in the program's type table (a class type or an
    /// array type).
    TypeId,
    "ty#"
);
define_id!(
    /// Identifies a field declaration.
    FieldId,
    "field#"
);
define_id!(
    /// Identifies a method declaration.
    MethodId,
    "method#"
);
define_id!(
    /// Identifies a local variable or parameter of some method.
    VarId,
    "var#"
);
define_id!(
    /// Identifies an allocation site (`x = new T()`).
    AllocId,
    "alloc#"
);
define_id!(
    /// Identifies a call site.
    CallSiteId,
    "call#"
);
define_id!(
    /// Identifies a cast site (`x = (T) y`).
    CastId,
    "cast#"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_usize() {
        let id = ClassId::from_usize(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(ClassId::from_u32(42), id);
    }

    #[test]
    fn debug_and_display_use_prefix() {
        let id = FieldId::from_usize(7);
        assert_eq!(format!("{id:?}"), "field#7");
        assert_eq!(format!("{id}"), "field#7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(VarId::from_usize(1) < VarId::from_usize(2));
    }

    #[test]
    #[should_panic(expected = "arena index overflows u32")]
    fn from_usize_overflow_panics() {
        let _ = AllocId::from_usize(usize::MAX);
    }
}
