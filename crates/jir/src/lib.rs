//! # jir — a Java-like IR for whole-program points-to analysis
//!
//! This crate is the program-representation substrate of the Mahjong
//! reproduction (Tan, Li, Xue, PLDI 2017). It models exactly the part of
//! Java that a flow-insensitive, field-sensitive points-to analysis
//! observes:
//!
//! - classes, interfaces, and abstract classes with single inheritance and
//!   multiple interface implementation;
//! - instance and static reference-typed fields; arrays via a
//!   distinguished element pseudo-field (index-insensitive, as in
//!   Doop/Wala);
//! - methods with virtual, special (statically bound), and static calls;
//! - allocation sites, local moves, field loads/stores, checked casts,
//!   and returns.
//!
//! Programs are built either with the fluent [`ProgramBuilder`] API or by
//! parsing the textual `.jir` syntax with [`parse`]. A finished
//! [`Program`] is immutable and precomputes class-hierarchy queries
//! (subtyping, virtual dispatch).
//!
//! # Examples
//!
//! Parsing the motivating program of the paper's Figure 1:
//!
//! ```
//! # fn main() -> Result<(), jir::JirError> {
//! let program = jir::parse(
//!     "class A {
//!        field f: A;
//!        method foo(this) { return; }
//!      }
//!      class B extends A {
//!        method foo(this) { return; }
//!      }
//!      class C extends A {
//!        method foo(this) { return; }
//!        entry static method main() {
//!          x = new A; y = new A; z = new A;
//!          b = new B; c0 = new C; c1 = new C;
//!          x.f = b; y.f = c0; z.f = c1;
//!          a = z.f;
//!          virt a.foo();
//!          c = (C) a;
//!          return;
//!        }
//!      }",
//! )?;
//! assert_eq!(program.alloc_count(), 6);
//! assert_eq!(program.cast_count(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod error;
mod ids;
mod parser;
mod printer;
mod program;
mod stmt;
mod validate;

pub use builder::{BodyBuilder, ProgramBuilder};
pub use error::JirError;
pub use ids::{AllocId, CallSiteId, CastId, ClassId, FieldId, MethodId, TypeId, VarId};
pub use parser::parse;
pub use program::{
    AllocSite, CallSite, CallTarget, CastSite, Class, Field, Method, Program, TypeKind, Var,
};
pub use stmt::{CallKind, Stmt};
