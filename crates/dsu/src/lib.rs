//! # dsu — disjoint-set forests
//!
//! The union-find substrate used by Mahjong's object-merging driver
//! (Algorithm 1) and by the Hopcroft–Karp automata-equivalence checker
//! (Algorithm 4). Implements the two classic heuristics the paper calls
//! out in its Section 5 ("Disjoint-Set Forest" optimization): union by
//! rank and path compression, giving near-O(1) amortized operations.
//!
//! # Examples
//!
//! ```
//! use dsu::DisjointSets;
//!
//! let mut ds = DisjointSets::new(5);
//! ds.union(0, 1);
//! ds.union(3, 4);
//! assert!(ds.same_set(0, 1));
//! assert!(!ds.same_set(1, 3));
//! assert_eq!(ds.set_count(), 3); // {0,1} {2} {3,4}
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::cell::Cell;

/// A disjoint-set forest over the integers `0..len`.
///
/// `find` uses interior mutability for path compression, so queries take
/// `&self`; the structure is therefore not `Sync` (wrap it per-thread or
/// behind a lock for parallel use — Mahjong's parallel driver gives each
/// worker thread its own forest, see `mahjong::merge_parallel`).
#[derive(Debug, Clone)]
pub struct DisjointSets {
    parent: Vec<Cell<u32>>,
    rank: Vec<u8>,
    set_count: usize,
    /// Elementary operations performed: one per parent-pointer follow in
    /// `find` plus one per link in `union`. The effectively-constant
    /// amortized cost of these is the paper's Section 5 "Disjoint-Set
    /// Forest" claim; callers export the count as telemetry.
    ops: Cell<u64>,
}

impl DisjointSets {
    /// Creates `len` singleton sets.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds `u32::MAX`.
    pub fn new(len: usize) -> Self {
        assert!(u32::try_from(len).is_ok(), "universe too large for u32");
        DisjointSets {
            parent: (0..len as u32).map(Cell::new).collect(),
            rank: vec![0; len],
            set_count: len,
            ops: Cell::new(0),
        }
    }

    /// Returns the number of elementary union-find operations performed
    /// so far (parent-pointer follows in `find`, links in `union`).
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// Returns the size of the universe.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Returns the number of disjoint sets currently in the forest.
    pub fn set_count(&self) -> usize {
        self.set_count
    }

    /// Adds one more singleton set and returns its element.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        assert!(u32::try_from(id).is_ok(), "universe too large for u32");
        self.parent.push(Cell::new(id as u32));
        self.rank.push(0);
        self.set_count += 1;
        id
    }

    /// Returns the representative of the set containing `x`, compressing
    /// the path along the way.
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn find(&self, x: usize) -> usize {
        let mut root = x as u32;
        let mut follows = 1u64;
        while self.parent[root as usize].get() != root {
            root = self.parent[root as usize].get();
            follows += 1;
        }
        self.ops.set(self.ops.get() + follows);
        // Path compression: point every node on the path at the root.
        let mut cur = x as u32;
        while cur != root {
            let next = self.parent[cur as usize].get();
            self.parent[cur as usize].set(root);
            cur = next;
        }
        root as usize
    }

    /// Unites the sets containing `x` and `y`; returns `true` if they
    /// were previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of bounds.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        // Union by rank: attach the shallower tree under the deeper one.
        let (hi, lo) = if self.rank[rx] >= self.rank[ry] {
            (rx, ry)
        } else {
            (ry, rx)
        };
        self.parent[lo].set(hi as u32);
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.set_count -= 1;
        self.ops.set(self.ops.get() + 1);
        true
    }

    /// Returns `true` if `x` and `y` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if `x` or `y` is out of bounds.
    pub fn same_set(&self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Resolves every element to its representative in one pass — a
    /// *snapshot* of the partition as a plain `Vec` (index → root).
    ///
    /// The snapshot is detached from the forest: later `union`s do not
    /// invalidate it. The `pta` solver uses this at finalize time to
    /// freeze the cycle-collapse redirect table into the (immutable)
    /// analysis result without carrying the forest itself along.
    pub fn snapshot(&self) -> Vec<u32> {
        (0..self.len()).map(|x| self.find(x) as u32).collect()
    }

    /// Groups the universe into its equivalence classes.
    ///
    /// Returns one `Vec` per set, each listing the set's members in
    /// ascending order; classes are ordered by their smallest member.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for x in 0..self.len() {
            by_root.entry(self.find(x)).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = by_root.into_values().collect();
        out.sort_by_key(|class| class[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let ds = DisjointSets::new(4);
        assert_eq!(ds.set_count(), 4);
        for i in 0..4 {
            assert_eq!(ds.find(i), i);
        }
    }

    #[test]
    fn union_merges_and_counts() {
        let mut ds = DisjointSets::new(6);
        assert!(ds.union(0, 1));
        assert!(ds.union(1, 2));
        assert!(!ds.union(0, 2), "already united");
        assert_eq!(ds.set_count(), 4);
        assert!(ds.same_set(0, 2));
        assert!(!ds.same_set(0, 3));
    }

    #[test]
    fn transitive_chain() {
        let mut ds = DisjointSets::new(100);
        for i in 0..99 {
            ds.union(i, i + 1);
        }
        assert_eq!(ds.set_count(), 1);
        assert!(ds.same_set(0, 99));
    }

    #[test]
    fn push_extends_universe() {
        let mut ds = DisjointSets::new(1);
        let id = ds.push();
        assert_eq!(id, 1);
        assert_eq!(ds.set_count(), 2);
        ds.union(0, 1);
        assert_eq!(ds.set_count(), 1);
    }

    #[test]
    fn classes_are_sorted_partitions() {
        let mut ds = DisjointSets::new(5);
        ds.union(4, 2);
        ds.union(0, 3);
        let classes = ds.classes();
        assert_eq!(classes, vec![vec![0, 3], vec![1], vec![2, 4]]);
    }

    #[test]
    fn ops_counter_tracks_work() {
        let mut ds = DisjointSets::new(4);
        assert_eq!(ds.ops(), 0);
        ds.find(0); // one self-parent check
        assert_eq!(ds.ops(), 1);
        ds.union(0, 1); // two finds + one link
        assert_eq!(ds.ops(), 4);
        let before = ds.ops();
        ds.same_set(0, 1);
        assert!(ds.ops() > before);
    }

    #[test]
    fn snapshot_freezes_partition() {
        let mut ds = DisjointSets::new(4);
        ds.union(0, 1);
        let snap = ds.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0], snap[1]);
        assert_ne!(snap[2], snap[3]);
        // Detached: a later union does not rewrite the snapshot.
        ds.union(2, 3);
        assert_ne!(snap[2], snap[3]);
        assert_eq!(ds.snapshot()[2], ds.snapshot()[3]);
    }

    #[test]
    fn empty_universe() {
        let ds = DisjointSets::new(0);
        assert!(ds.is_empty());
        assert_eq!(ds.set_count(), 0);
        assert!(ds.classes().is_empty());
    }
}
