//! Randomized property tests for the disjoint-set forest: union-find
//! must realize exactly the equivalence closure of the union
//! operations. Driven by the in-tree deterministic PRNG (the build
//! environment has no crates.io access, so no proptest).

use dsu::DisjointSets;
use obs::rng::SplitMix64;

/// A reference implementation: equivalence closure by transitive
/// saturation over an adjacency list.
fn reference_classes(n: usize, unions: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut label: Vec<usize> = (0..n).collect();
    // Repeatedly relabel until stable (O(n * unions), fine for tests).
    loop {
        let mut changed = false;
        for &(a, b) in unions {
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                let lo = la.min(lb);
                for l in label.iter_mut() {
                    if *l == la || *l == lb {
                        *l = lo;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, &l) in label.iter().enumerate() {
        by_label.entry(l).or_default().push(i);
    }
    by_label.into_values().collect()
}

/// One random scenario: a universe size in `[1, max_n)` and a batch of
/// random union pairs.
fn random_case(rng: &mut SplitMix64, max_n: usize, max_unions: usize) -> (usize, Vec<(usize, usize)>) {
    let n = 1 + rng.below_usize(max_n - 1);
    let k = rng.below_usize(max_unions);
    let unions = (0..k)
        .map(|_| (rng.below_usize(n), rng.below_usize(n)))
        .collect();
    (n, unions)
}

/// The forest's classes equal the reference closure's classes.
#[test]
fn classes_match_reference() {
    let mut rng = SplitMix64::new(0x5eed_0001);
    for _ in 0..256 {
        let (n, unions) = random_case(&mut rng, 24, 48);
        let mut ds = DisjointSets::new(n);
        for &(a, b) in &unions {
            ds.union(a, b);
        }
        assert_eq!(
            ds.classes(),
            reference_classes(n, &unions),
            "n={n} unions={unions:?}"
        );
    }
}

/// `same_set` agrees with class membership, and `set_count` with the
/// number of classes.
#[test]
fn queries_are_consistent() {
    let mut rng = SplitMix64::new(0x5eed_0002);
    for _ in 0..256 {
        let (n, unions) = random_case(&mut rng, 16, 32);
        let mut ds = DisjointSets::new(n);
        for &(a, b) in &unions {
            ds.union(a, b);
        }
        let classes = ds.classes();
        assert_eq!(classes.len(), ds.set_count());
        for class in &classes {
            for &x in class {
                for &y in class {
                    assert!(ds.same_set(x, y));
                }
                assert_eq!(ds.find(x), ds.find(class[0]));
            }
        }
        // Elements of different classes are never same_set.
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                assert!(!ds.same_set(classes[i][0], classes[j][0]));
            }
        }
    }
}

/// Union returns true exactly when it joins two distinct sets, and the
/// set count decreases by exactly the number of true unions.
#[test]
fn union_return_value_tracks_count() {
    let mut rng = SplitMix64::new(0x5eed_0003);
    for _ in 0..256 {
        let (n, unions) = random_case(&mut rng, 16, 32);
        let mut ds = DisjointSets::new(n);
        let mut effective = 0usize;
        for &(a, b) in &unions {
            if ds.union(a, b) {
                effective += 1;
            }
        }
        assert_eq!(ds.set_count(), n - effective);
    }
}

/// The solver's usage pattern: the universe grows (`push` per interned
/// pointer) *while* unions and finds interleave with it, and the ops
/// counter is read for telemetry. Checked against the naive partition
/// oracle replayed over the final universe.
#[test]
fn interleaved_push_union_find_matches_oracle() {
    let mut rng = SplitMix64::new(0x5eed_0005);
    for _ in 0..128 {
        let mut ds = DisjointSets::new(1 + rng.below_usize(4));
        let mut unions: Vec<(usize, usize)> = Vec::new();
        let steps = 16 + rng.below_usize(64);
        let mut ops_last = ds.ops();
        for _ in 0..steps {
            match rng.below_usize(4) {
                0 => {
                    let id = ds.push();
                    assert_eq!(id, ds.len() - 1);
                    // A fresh element is its own representative.
                    assert_eq!(ds.find(id), id);
                }
                1 => {
                    let (a, b) = (rng.below_usize(ds.len()), rng.below_usize(ds.len()));
                    let distinct_before = !ds.same_set(a, b);
                    assert_eq!(ds.union(a, b), distinct_before);
                    unions.push((a, b));
                }
                2 => {
                    let x = rng.below_usize(ds.len());
                    let r = ds.find(x);
                    assert!(ds.same_set(x, r));
                    assert_eq!(ds.find(r), r, "a representative is its own root");
                }
                _ => {
                    // Snapshot agrees with live finds at the moment it
                    // is taken (the solver's finalize-time redirect).
                    let snap = ds.snapshot();
                    assert_eq!(snap.len(), ds.len());
                    for (x, &root) in snap.iter().enumerate() {
                        assert_eq!(root as usize, ds.find(x));
                    }
                }
            }
            // Every operation above performs at least one elementary
            // union-find step; the counter never goes backwards.
            assert!(ds.ops() > ops_last || ds.ops() == ops_last);
            ops_last = ds.ops();
        }
        // Replaying the recorded unions over the final universe must
        // yield the same partition.
        assert_eq!(
            ds.classes(),
            reference_classes(ds.len(), &unions),
            "unions={unions:?}"
        );
        assert!(ds.ops() > 0);
    }
}

/// The ops counter is monotone in the workload and stays within the
/// near-linear bound the rank + path-compression heuristics guarantee.
#[test]
fn ops_counter_is_monotone_and_bounded() {
    let mut rng = SplitMix64::new(0x5eed_0004);
    for _ in 0..64 {
        let (n, unions) = random_case(&mut rng, 64, 128);
        let mut ds = DisjointSets::new(n);
        let mut last = ds.ops();
        for &(a, b) in &unions {
            ds.union(a, b);
            assert!(ds.ops() >= last);
            last = ds.ops();
        }
        // Each union does two finds (≤ ~log n follows amortized, bounded
        // by n here) plus at most one link.
        let bound = (unions.len() as u64 + 1) * (2 * n as u64 + 1);
        assert!(ds.ops() <= bound, "ops={} bound={bound}", ds.ops());
    }
}
