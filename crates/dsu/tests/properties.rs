//! Property-based tests for the disjoint-set forest: union-find must
//! realize exactly the equivalence closure of the union operations.

use dsu::DisjointSets;
use proptest::prelude::*;

/// A reference implementation: equivalence closure by transitive
/// saturation over an adjacency list.
fn reference_classes(n: usize, unions: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut label: Vec<usize> = (0..n).collect();
    // Repeatedly relabel until stable (O(n * unions), fine for tests).
    loop {
        let mut changed = false;
        for &(a, b) in unions {
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                let lo = la.min(lb);
                for l in label.iter_mut() {
                    if *l == la || *l == lb {
                        *l = lo;
                    }
                }
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut by_label: std::collections::BTreeMap<usize, Vec<usize>> =
        std::collections::BTreeMap::new();
    for (i, &l) in label.iter().enumerate() {
        by_label.entry(l).or_default().push(i);
    }
    by_label.into_values().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The forest's classes equal the reference closure's classes.
    #[test]
    fn classes_match_reference(
        n in 1usize..24,
        unions in prop::collection::vec((0usize..24, 0usize..24), 0..48),
    ) {
        let unions: Vec<(usize, usize)> =
            unions.into_iter().map(|(a, b)| (a % n, b % n)).collect();
        let mut ds = DisjointSets::new(n);
        for &(a, b) in &unions {
            ds.union(a, b);
        }
        prop_assert_eq!(ds.classes(), reference_classes(n, &unions));
    }

    /// `same_set` agrees with class membership, and `set_count` with the
    /// number of classes.
    #[test]
    fn queries_are_consistent(
        n in 1usize..16,
        unions in prop::collection::vec((0usize..16, 0usize..16), 0..32),
    ) {
        let mut ds = DisjointSets::new(n);
        for (a, b) in unions {
            ds.union(a % n, b % n);
        }
        let classes = ds.classes();
        prop_assert_eq!(classes.len(), ds.set_count());
        for class in &classes {
            for &x in class {
                for &y in class {
                    prop_assert!(ds.same_set(x, y));
                }
                prop_assert_eq!(ds.find(x), ds.find(class[0]));
            }
        }
        // Elements of different classes are never same_set.
        for i in 0..classes.len() {
            for j in (i + 1)..classes.len() {
                prop_assert!(!ds.same_set(classes[i][0], classes[j][0]));
            }
        }
    }

    /// Union returns true exactly when it joins two distinct sets, and
    /// the set count decreases by exactly the number of true unions.
    #[test]
    fn union_return_value_tracks_count(
        n in 1usize..16,
        unions in prop::collection::vec((0usize..16, 0usize..16), 0..32),
    ) {
        let mut ds = DisjointSets::new(n);
        let mut effective = 0usize;
        for (a, b) in unions {
            if ds.union(a % n, b % n) {
                effective += 1;
            }
        }
        prop_assert_eq!(ds.set_count(), n - effective);
    }
}
