//! # bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (Section 6) over the synthetic workloads:
//!
//! - [`table2_program`] — the main results (Table 2): all 12 programs × five
//!   context-sensitive analyses × {allocation-site, Mahjong}, reporting
//!   analysis time, speedup, and the three client metrics;
//! - [`figure8_row`] — abstract-object counts (Figure 8) under the allocation-site
//!   abstraction vs Mahjong;
//! - [`figure9`] — the equivalence-class size distribution (checkstyle);
//! - [`table1`] — example equivalence classes (checkstyle);
//! - [`motivation`] — the Section 2.1 pmd comparison (3obj / T-3obj /
//!   M-3obj);
//! - [`pre_analysis_stats`] — Section 6.1.1's pre-analysis cost
//!   breakdown and NFA statistics;
//! - [`ablations`] — design-choice ablations (Condition 2, null
//!   modeling, parallelism, representative choice).
//!
//! The `repro` binary drives these from the command line.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::time::{Duration, Instant};

use clients::ClientMetrics;
use jir::Program;
use mahjong::{FieldPointsToGraph, MahjongConfig, MahjongOutput, Representative};
use pta::{
    AllocSiteAbstraction, AllocTypeAbstraction, AnalysisConfig, AnalysisResult, Budget,
    CallSiteSensitive, ContextInsensitive, HeapAbstraction, MergedObjectMap, ObjectSensitive,
    TypeSensitive,
};

/// Which context-sensitivity to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sensitivity {
    /// Context-insensitive.
    Ci,
    /// k-call-site-sensitive.
    Cs(usize),
    /// k-object-sensitive.
    Obj(usize),
    /// k-type-sensitive.
    Type(usize),
}

impl Sensitivity {
    /// The five analyses of the paper's Table 2.
    pub const TABLE2: [Sensitivity; 5] = [
        Sensitivity::Cs(2),
        Sensitivity::Obj(2),
        Sensitivity::Obj(3),
        Sensitivity::Type(2),
        Sensitivity::Type(3),
    ];

    /// Short name, e.g. `"3obj"`.
    pub fn name(&self) -> String {
        match self {
            Sensitivity::Ci => "ci".to_owned(),
            Sensitivity::Cs(k) => format!("{k}cs"),
            Sensitivity::Obj(k) => format!("{k}obj"),
            Sensitivity::Type(k) => format!("{k}type"),
        }
    }
}

/// Which heap abstraction to pair with an analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HeapKind {
    /// One object per allocation site (the paper's baselines).
    AllocSite,
    /// One object per type (the `T-` baselines of Section 2.1).
    AllocType,
    /// The Mahjong merged-object map (the `M-` configurations).
    Mahjong,
}

/// One analysis run's outcome.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Analysis wall-clock seconds; `None` when the budget was exceeded
    /// (the paper's "unscalable" entries).
    pub seconds: Option<f64>,
    /// Client metrics (absent when unscalable).
    pub call_graph_edges: Option<usize>,
    /// `#poly call sites` (absent when unscalable).
    pub poly_call_sites: Option<usize>,
    /// `#may-fail casts` (absent when unscalable).
    pub may_fail_casts: Option<usize>,
    /// Abstract objects materialized.
    pub objects: Option<usize>,
    /// Reachable `(context, method)` pairs.
    pub method_contexts: Option<usize>,
}

impl RunOutcome {
    fn unscalable() -> Self {
        RunOutcome {
            seconds: None,
            call_graph_edges: None,
            poly_call_sites: None,
            may_fail_casts: None,
            objects: None,
            method_contexts: None,
        }
    }

    fn from_result(program: &Program, result: &AnalysisResult, elapsed: Duration) -> Self {
        let metrics = ClientMetrics::compute(program, result);
        RunOutcome {
            seconds: Some(elapsed.as_secs_f64()),
            call_graph_edges: Some(metrics.call_graph_edges),
            poly_call_sites: Some(metrics.poly_call_sites),
            may_fail_casts: Some(metrics.may_fail_casts),
            objects: Some(result.object_count()),
            method_contexts: Some(result.reachable_context_count()),
        }
    }
}

/// Runs one `(sensitivity, heap)` configuration under a budget with
/// `threads` wave-propagation shards (see [`AnalysisConfig::threads`];
/// `1` = sequential, `0` = one shard per hardware thread).
pub fn run_configuration(
    program: &Program,
    sensitivity: Sensitivity,
    heap: HeapKind,
    mom: &MergedObjectMap,
    budget: Budget,
    threads: usize,
) -> RunOutcome {
    match heap {
        HeapKind::AllocSite => {
            run_with_heap(program, sensitivity, AllocSiteAbstraction, budget, threads)
        }
        HeapKind::AllocType => run_with_heap(
            program,
            sensitivity,
            AllocTypeAbstraction::new(program),
            budget,
            threads,
        ),
        HeapKind::Mahjong => run_with_heap(program, sensitivity, mom.clone(), budget, threads),
    }
}

fn run_with_heap<H: HeapAbstraction>(
    program: &Program,
    sensitivity: Sensitivity,
    heap: H,
    budget: Budget,
    threads: usize,
) -> RunOutcome {
    // The span (and elapsed time) covers only the solver run: client
    // metrics computed by `RunOutcome::from_result` are reporting
    // cost, not analysis cost, and the timeline's attribution check
    // (timeline records vs. `main_analysis` wall) relies on the span
    // bounding solver work alone.
    let (result, elapsed) = {
        let _phase = obs::span("main_analysis");
        let start = Instant::now();
        let result = match sensitivity {
            Sensitivity::Ci => AnalysisConfig::new(ContextInsensitive, heap)
                .budget(budget)
                .threads(threads)
                .run(program),
            Sensitivity::Cs(k) => AnalysisConfig::new(CallSiteSensitive::new(k), heap)
                .budget(budget)
                .threads(threads)
                .run(program),
            Sensitivity::Obj(k) => AnalysisConfig::new(ObjectSensitive::new(k), heap)
                .budget(budget)
                .threads(threads)
                .run(program),
            Sensitivity::Type(k) => AnalysisConfig::new(TypeSensitive::new(k), heap)
                .budget(budget)
                .threads(threads)
                .run(program),
        };
        (result, start.elapsed())
    };
    match result {
        Ok(r) => RunOutcome::from_result(program, &r, elapsed),
        Err(_) => RunOutcome::unscalable(),
    }
}

/// Like [`run_configuration`], but hands back the [`AnalysisResult`]
/// itself instead of summarized metrics — the entry point for callers
/// that keep the result alive (snapshot save, query serving).
pub fn run_for_result(
    program: &Program,
    sensitivity: Sensitivity,
    heap: HeapKind,
    mom: &MergedObjectMap,
    budget: Budget,
    threads: usize,
) -> Result<AnalysisResult, pta::Unscalable> {
    match heap {
        HeapKind::AllocSite => {
            result_with_heap(program, sensitivity, AllocSiteAbstraction, budget, threads)
        }
        HeapKind::AllocType => result_with_heap(
            program,
            sensitivity,
            AllocTypeAbstraction::new(program),
            budget,
            threads,
        ),
        HeapKind::Mahjong => result_with_heap(program, sensitivity, mom.clone(), budget, threads),
    }
}

fn result_with_heap<H: HeapAbstraction>(
    program: &Program,
    sensitivity: Sensitivity,
    heap: H,
    budget: Budget,
    threads: usize,
) -> Result<AnalysisResult, pta::Unscalable> {
    let _phase = obs::span("main_analysis");
    match sensitivity {
        Sensitivity::Ci => AnalysisConfig::new(ContextInsensitive, heap)
            .budget(budget)
            .threads(threads)
            .run(program),
        Sensitivity::Cs(k) => AnalysisConfig::new(CallSiteSensitive::new(k), heap)
            .budget(budget)
            .threads(threads)
            .run(program),
        Sensitivity::Obj(k) => AnalysisConfig::new(ObjectSensitive::new(k), heap)
            .budget(budget)
            .threads(threads)
            .run(program),
        Sensitivity::Type(k) => AnalysisConfig::new(TypeSensitive::new(k), heap)
            .budget(budget)
            .threads(threads)
            .run(program),
    }
}

/// The pre-analysis products every experiment starts from.
#[derive(Debug)]
pub struct Prepared {
    /// The generated program.
    pub program: Program,
    /// The context-insensitive pre-analysis result.
    pub pre: AnalysisResult,
    /// Pre-analysis (`ci`) seconds.
    pub ci_seconds: f64,
    /// The field points-to graph.
    pub fpg: FieldPointsToGraph,
    /// FPG construction seconds.
    pub fpg_seconds: f64,
    /// The Mahjong output (merged-object map + stats).
    pub mahjong: MahjongOutput,
    /// Mahjong (merge) seconds.
    pub mahjong_seconds: f64,
}

/// Generates a program and runs the full Mahjong pre-analysis pipeline.
///
/// # Panics
///
/// Panics if the pre-analysis itself exceeds a 10-minute budget (it
/// never does at supported scales).
pub fn prepare(name: &str, scale: usize, config: &MahjongConfig) -> Prepared {
    let workload = workloads::dacapo::workload(name, scale);
    let program = workload.program;

    let t = Instant::now();
    let pre = {
        let _phase = obs::span("pre_analysis");
        // The Mahjong thread budget drives the CI pass too, so both
        // halves of the pre-analysis pipeline scale together.
        AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
            .budget(Budget::seconds(600))
            .threads(config.threads)
            .run(&program)
            .expect("pre-analysis fits its budget")
    };
    let ci_seconds = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let fpg = FieldPointsToGraph::from_analysis(&program, &pre, config.model_null);
    let fpg_seconds = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let mahjong = mahjong::merge_equivalent_objects(&fpg, config);
    let mahjong_seconds = t.elapsed().as_secs_f64();

    Prepared {
        program,
        pre,
        ci_seconds,
        fpg,
        fpg_seconds,
        mahjong,
        mahjong_seconds,
    }
}

// --- Table 2 -----------------------------------------------------------------

/// One `(program, analysis)` row pair of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Program name.
    pub program: String,
    /// Analysis name (e.g. `"3obj"`).
    pub analysis: String,
    /// The allocation-site baseline run.
    pub baseline: RunOutcome,
    /// The Mahjong run.
    pub mahjong: RunOutcome,
    /// `baseline.seconds / mahjong.seconds` when both finished.
    pub speedup: Option<f64>,
}

/// Runs the Table 2 matrix for one program with `threads` solver
/// shards (both the pre-analysis CI pass and every main analysis).
pub fn table2_program(
    name: &str,
    scale: usize,
    budget: Budget,
    threads: usize,
) -> (Prepared, Vec<Table2Row>) {
    let config = MahjongConfig {
        threads: threads.max(1),
        ..MahjongConfig::default()
    };
    let prepared = prepare(name, scale, &config);
    let mom = &prepared.mahjong.mom;
    let rows = Sensitivity::TABLE2
        .iter()
        .map(|&s| {
            let baseline =
                run_configuration(&prepared.program, s, HeapKind::AllocSite, mom, budget, threads);
            let mahjong =
                run_configuration(&prepared.program, s, HeapKind::Mahjong, mom, budget, threads);
            let speedup = match (baseline.seconds, mahjong.seconds) {
                (Some(b), Some(m)) if m > 0.0 => Some(b / m),
                _ => None,
            };
            Table2Row {
                program: name.to_owned(),
                analysis: s.name(),
                baseline,
                mahjong,
                speedup,
            }
        })
        .collect();
    (prepared, rows)
}

// --- Figure 8 ----------------------------------------------------------------

/// One bar pair of Figure 8.
#[derive(Clone, Debug)]
pub struct Figure8Row {
    /// Program name.
    pub program: String,
    /// Objects under the allocation-site abstraction (reachable sites).
    pub alloc_site_objects: usize,
    /// Objects under Mahjong (equivalence classes over reachable sites).
    pub mahjong_objects: usize,
}

impl Figure8Row {
    /// The reduction percentage Mahjong achieves.
    pub fn reduction_percent(&self) -> f64 {
        100.0 * (1.0 - self.mahjong_objects as f64 / self.alloc_site_objects as f64)
    }
}

/// Computes the Figure 8 pair for one prepared program.
pub fn figure8_row(name: &str, prepared: &Prepared) -> Figure8Row {
    Figure8Row {
        program: name.to_owned(),
        alloc_site_objects: prepared.mahjong.stats.objects,
        mahjong_objects: prepared.mahjong.stats.merged_objects,
    }
}

// --- Figure 9 / Table 1 ----------------------------------------------------------

/// A point of Figure 9: `count` equivalence classes have exactly `size`
/// members.
pub type Figure9Point = mahjong::partition::SizeDistributionPoint;

/// Computes the equivalence-class size distribution over reachable
/// objects (Figure 9).
pub fn figure9(prepared: &Prepared) -> Vec<Figure9Point> {
    mahjong::HeapPartition::new(&prepared.program, &prepared.fpg, &prepared.mahjong.mom)
        .size_distribution()
}

/// A row of Table 1: one equivalence class with its type and contents.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Rank by decreasing class size (1 = largest).
    pub rank: usize,
    /// The class's object type.
    pub type_name: String,
    /// Members in this equivalence class.
    pub class_size: usize,
    /// Total reachable objects of this type.
    pub total_of_type: usize,
    /// What the members' fields point to (a content summary).
    pub remark: String,
}

/// Computes Table 1: the largest equivalence classes with content
/// summaries.
pub fn table1(prepared: &Prepared, top: usize) -> Vec<Table1Row> {
    let program = &prepared.program;
    let partition =
        mahjong::HeapPartition::new(program, &prepared.fpg, &prepared.mahjong.mom);
    partition
        .summaries(program, &prepared.fpg, top)
        .into_iter()
        .map(|s| {
            let mut content: Vec<String> = s
                .contents
                .iter()
                .map(|c| match c {
                    Some(t) => program.type_name(*t),
                    None => "null".to_owned(),
                })
                .collect();
            content.sort();
            Table1Row {
                rank: s.rank,
                type_name: program.type_name(s.ty),
                class_size: s.members.len(),
                total_of_type: s.total_of_type,
                remark: if content.is_empty() {
                    "(no fields)".to_owned()
                } else {
                    content.join(", ")
                },
            }
        })
        .collect()
}

// --- Motivation (Section 2.1) ---------------------------------------------------

/// The Section 2.1 motivating comparison on pmd: `3obj` vs `T-3obj` vs
/// `M-3obj`.
#[derive(Clone, Debug)]
pub struct MotivationResult {
    /// The `3obj` baseline.
    pub obj3: RunOutcome,
    /// `3obj` with the allocation-type abstraction.
    pub t_obj3: RunOutcome,
    /// `3obj` with Mahjong.
    pub m_obj3: RunOutcome,
}

/// Runs the motivation experiment with `threads` solver shards.
pub fn motivation(scale: usize, budget: Budget, threads: usize) -> (Prepared, MotivationResult) {
    let prepared = prepare("pmd", scale, &MahjongConfig::default());
    let mom = &prepared.mahjong.mom;
    let s = Sensitivity::Obj(3);
    let result = MotivationResult {
        obj3: run_configuration(&prepared.program, s, HeapKind::AllocSite, mom, budget, threads),
        t_obj3: run_configuration(&prepared.program, s, HeapKind::AllocType, mom, budget, threads),
        m_obj3: run_configuration(&prepared.program, s, HeapKind::Mahjong, mom, budget, threads),
    };
    (prepared, result)
}

// --- Pre-analysis statistics (Section 6.1.1) ------------------------------------------

/// Section 6.1.1's per-program pre-analysis statistics.
#[derive(Clone, Debug)]
pub struct PreAnalysisStats {
    /// Program name.
    pub program: String,
    /// `ci` seconds.
    pub ci_seconds: f64,
    /// FPG construction seconds.
    pub fpg_seconds: f64,
    /// Mahjong merge seconds.
    pub mahjong_seconds: f64,
    /// Reachable objects in the FPG.
    pub fpg_objects: usize,
    /// FPG edges.
    pub fpg_edges: usize,
    /// Average NFA size over merge candidates.
    pub avg_nfa_states: f64,
    /// Largest NFA.
    pub max_nfa_states: usize,
    /// Objects failing SINGLETYPE-CHECK.
    pub not_single_type: usize,
    /// Equivalence checks performed.
    pub equivalence_checks: u64,
}

/// Collects the Section 6.1.1 statistics for one prepared program.
pub fn pre_analysis_stats(name: &str, prepared: &Prepared) -> PreAnalysisStats {
    let stats = &prepared.mahjong.stats;
    PreAnalysisStats {
        program: name.to_owned(),
        ci_seconds: prepared.ci_seconds,
        fpg_seconds: prepared.fpg_seconds,
        mahjong_seconds: prepared.mahjong_seconds,
        fpg_objects: stats.objects,
        fpg_edges: prepared.fpg.edge_count(),
        avg_nfa_states: stats.avg_nfa_states,
        max_nfa_states: stats.max_nfa_states,
        not_single_type: stats.not_single_type,
        equivalence_checks: stats.equivalence_checks,
    }
}

// --- Ablations ------------------------------------------------------------------

/// One ablation configuration's outcome.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Ablation name.
    pub name: String,
    /// Abstract objects after merging.
    pub merged_objects: usize,
    /// Merge-phase seconds (DFA + merging).
    pub merge_seconds: f64,
    /// `#may-fail casts` under M-2cs with this abstraction.
    pub may_fail_casts_m2cs: Option<usize>,
}

/// Runs the design-choice ablations on one program: Condition 2 off,
/// null modeling off, parallel threads, and representative choice.
pub fn ablations(name: &str, scale: usize, budget: Budget) -> Vec<AblationRow> {
    let configs: Vec<(&str, MahjongConfig)> = vec![
        ("default", MahjongConfig::default()),
        (
            "no-condition2",
            MahjongConfig {
                enforce_condition2: false,
                ..MahjongConfig::default()
            },
        ),
        (
            "no-null-model",
            MahjongConfig {
                model_null: false,
                ..MahjongConfig::default()
            },
        ),
        (
            "parallel-8",
            MahjongConfig {
                threads: 8,
                ..MahjongConfig::default()
            },
        ),
        (
            "repr-largest",
            MahjongConfig {
                representative: Representative::Largest,
                ..MahjongConfig::default()
            },
        ),
    ];
    configs
        .into_iter()
        .map(|(label, config)| {
            let prepared = prepare(name, scale, &config);
            let outcome = run_configuration(
                &prepared.program,
                Sensitivity::Cs(2),
                HeapKind::Mahjong,
                &prepared.mahjong.mom,
                budget,
                1,
            );
            AblationRow {
                name: label.to_owned(),
                merged_objects: prepared.mahjong.stats.merged_objects,
                merge_seconds: prepared.mahjong_seconds,
                may_fail_casts_m2cs: outcome.may_fail_casts,
            }
        })
        .collect()
}

// --- Alias tradeoff (extension experiment) ----------------------------------------

/// The alias-tradeoff experiment: Mahjong keeps type-client metrics
/// while giving up may-alias precision (the scoping claim of the
/// paper's introduction).
#[derive(Clone, Debug)]
pub struct AliasTradeoffRow {
    /// Program name.
    pub program: String,
    /// May-alias pairs under 2obj with the allocation-site abstraction.
    pub baseline_alias_pairs: usize,
    /// May-alias pairs under M-2obj.
    pub mahjong_alias_pairs: usize,
    /// `#may-fail casts` under both (they match).
    pub may_fail_casts: usize,
    /// `#poly call sites` under both (they match).
    pub poly_call_sites: usize,
}

/// Measures the alias tradeoff on one program.
///
/// # Panics
///
/// Panics if either analysis exceeds the budget (use small scales).
pub fn alias_tradeoff(name: &str, scale: usize, budget: Budget) -> AliasTradeoffRow {
    let prepared = prepare(name, scale, &MahjongConfig::default());
    let p = &prepared.program;
    let base = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
        .budget(budget)
        .run(p)
        .expect("baseline fits budget");
    let merged = AnalysisConfig::new(ObjectSensitive::new(2), prepared.mahjong.mom.clone())
        .budget(budget)
        .run(p)
        .expect("merged run fits budget");
    let bm = ClientMetrics::compute(p, &base);
    let mm = ClientMetrics::compute(p, &merged);
    assert_eq!(bm.may_fail_casts, mm.may_fail_casts);
    assert_eq!(bm.poly_call_sites, mm.poly_call_sites);
    AliasTradeoffRow {
        program: name.to_owned(),
        baseline_alias_pairs: clients::alias::program_alias_stats(p, &base).aliased,
        mahjong_alias_pairs: clients::alias::program_alias_stats(p, &merged).aliased,
        may_fail_casts: mm.may_fail_casts,
        poly_call_sites: mm.poly_call_sites,
    }
}

pub mod cli;
pub mod serve;

// --- Micro-bench harness ----------------------------------------------------------

/// A dependency-free stand-in for a benchmark harness: warm-up, then
/// repeated timed runs until a wall-clock target, reporting min/mean.
///
/// The `benches/` binaries (built with `harness = false`) use this via
/// `cargo bench`; they ignore argv, so the `--bench` flag cargo passes
/// is harmless.
pub mod timing {
    use std::time::{Duration, Instant};

    /// One benchmark's timing result.
    #[derive(Clone, Debug)]
    pub struct Measurement {
        /// Benchmark label, e.g. `"table2/2obj/pmd"`.
        pub label: String,
        /// Timed iterations (after one warm-up).
        pub iters: u32,
        /// Fastest iteration.
        pub min: Duration,
        /// Mean over all timed iterations.
        pub mean: Duration,
    }

    /// Times `f`: one warm-up call, then timed calls until 300 ms of
    /// cumulative work or 25 iterations, whichever comes first.
    pub fn measure<T>(label: &str, mut f: impl FnMut() -> T) -> Measurement {
        std::hint::black_box(f());
        let target = Duration::from_millis(300);
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters = 0u32;
        while total < target && iters < 25 {
            let t = Instant::now();
            std::hint::black_box(f());
            let d = t.elapsed();
            total += d;
            min = min.min(d);
            iters += 1;
        }
        Measurement {
            label: label.to_owned(),
            iters,
            min,
            mean: total / iters.max(1),
        }
    }

    /// Times `f` and prints the result in one line.
    pub fn bench<T>(label: &str, f: impl FnMut() -> T) -> Measurement {
        let m = measure(label, f);
        println!(
            "{:<44} mean {:>12?}  min {:>12?}  ({} iters)",
            m.label, m.mean, m.min, m.iters
        );
        m
    }
}

// --- Formatting helpers -----------------------------------------------------------

/// Formats seconds or the paper's unscalable marker.
pub fn fmt_time(seconds: Option<f64>) -> String {
    match seconds {
        Some(s) => format!("{s:.3}s"),
        None => ">budget".to_owned(),
    }
}

/// Formats an optional count.
pub fn fmt_count(count: Option<usize>) -> String {
    match count {
        Some(c) => c.to_string(),
        None => "-".to_owned(),
    }
}
