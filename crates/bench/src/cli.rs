//! Shared command-line plumbing for the workspace binaries.
//!
//! `repro` and `mahjong_cli` accept the same observability and
//! execution flags (`--threads`, `--metrics-json`, `--trace`,
//! `--bench-json`/`--force`, `--heartbeat`). This module owns the one
//! parser, the one `--help` section, and the one record-emission path
//! for them, so the two binaries cannot drift: a flag added here is
//! parsed, documented, and honored identically in both.
//!
//! Binaries keep their own argument loops for binary-specific flags
//! and delegate everything else to [`CommonOpts::try_parse`]:
//!
//! ```no_run
//! let mut common = bench::cli::CommonOpts::default();
//! let mut args = std::env::args().skip(1);
//! while let Some(arg) = args.next() {
//!     match common.try_parse(&arg, &mut args) {
//!         Ok(true) => continue, // a shared flag; consumed
//!         Ok(false) => { /* binary-specific handling of `arg` */ }
//!         Err(msg) => { eprintln!("{msg}"); std::process::exit(2) }
//!     }
//! }
//! ```

use std::time::Duration;

/// Options every workspace binary accepts, parsed by
/// [`CommonOpts::try_parse`] and rendered by [`CommonOpts::HELP`].
#[derive(Clone, Debug, Default)]
pub struct CommonOpts {
    /// Solver/merge shard count as given (`None` = flag absent, the
    /// binary's default applies; `Some(0)` = one shard per available
    /// hardware thread; resolve with [`CommonOpts::resolve_threads`]).
    pub threads: Option<usize>,
    /// `--metrics-json PATH`: dump the telemetry registry as
    /// JSON-Lines on exit.
    pub metrics_json: Option<String>,
    /// `--trace PATH`: write a Chrome `trace_event` file on exit.
    pub trace: Option<String>,
    /// `--bench-json PATH`: where the benchmark record lands. Without
    /// it, the record defaults to `BENCH_pta.json` next to the
    /// `--metrics-json` file (see [`CommonOpts::bench_target`]).
    pub bench_json: Option<String>,
    /// `--force`: allow overwriting an existing benchmark record.
    pub force: bool,
    /// `--heartbeat SECS`: stderr progress pulse period (0 = off).
    pub heartbeat: u64,
}

impl CommonOpts {
    /// The `--help` paragraph for the shared flags, rendered verbatim
    /// by every binary so the documentation cannot drift either.
    pub const HELP: &'static str = "\
shared options:
  --threads N          solver/merge shard count (0 = one per hardware
                       thread; every count is bit-identical)
  --metrics-json PATH  dump the telemetry registry as JSON-Lines
  --trace PATH         write a Chrome trace_event file (about:tracing)
  --bench-json PATH    write the benchmark record here (default:
                       BENCH_pta.json next to --metrics-json); a
                       Mahjong-phase record is written as a sibling
  --force              overwrite an existing benchmark record
  --heartbeat SECS     print a progress pulse to stderr every SECS
  --help, -h           print this help";

    /// Attempts to consume `arg` as a shared flag, pulling its value
    /// from `rest` when it takes one. Returns `Ok(true)` when
    /// consumed, `Ok(false)` when `arg` is not a shared flag (the
    /// binary's own parser should handle it), and `Err` with a
    /// ready-to-print message when a shared flag's value is missing
    /// or malformed.
    pub fn try_parse(
        &mut self,
        arg: &str,
        rest: &mut dyn Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--threads" => {
                self.threads = Some(
                    rest.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads needs a number")?,
                );
            }
            "--metrics-json" => {
                self.metrics_json =
                    Some(rest.next().ok_or("--metrics-json needs a path")?);
            }
            "--trace" => {
                self.trace = Some(rest.next().ok_or("--trace needs a path")?);
            }
            "--bench-json" => {
                self.bench_json = Some(rest.next().ok_or("--bench-json needs a path")?);
            }
            "--force" => self.force = true,
            "--heartbeat" => {
                self.heartbeat = rest
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--heartbeat needs a number of seconds")?;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Resolves the flag to a shard count, with `default` applying
    /// when `--threads` was not given at all. `--threads 0` (and a
    /// `default` of 0) mean one shard per available hardware thread.
    pub fn resolve_threads(&self, default: usize) -> usize {
        match self.threads.unwrap_or(default) {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// Where the benchmark record lands: `--bench-json` if given,
    /// otherwise `BENCH_pta.json` next to the `--metrics-json` file,
    /// otherwise nowhere.
    pub fn bench_target(&self) -> Option<String> {
        self.bench_json
            .clone()
            .or_else(|| self.metrics_json.as_deref().map(bench_pta_path))
    }

    /// Validates the benchmark-record target up front: refusing to
    /// clobber only *after* a multi-minute run would throw the work
    /// away. Exits with status 1 on a would-clobber.
    pub fn check_bench_target(&self, bin: &str) {
        if let Some(bench) = self.bench_target() {
            refuse_clobber(bin, &bench, self.force);
        }
    }

    /// Emits the end-of-run artifacts the shared flags configure: the
    /// `--metrics-json` JSON-Lines dump, the benchmark-record pair
    /// (pta record plus the Mahjong sibling, both with no-clobber
    /// semantics), and the `--trace` Chrome trace. `header` stamps the
    /// records' provenance fields.
    pub fn emit_artifacts(&self, bin: &str, header: &RecordHeader) {
        if let Some(path) = &self.metrics_json {
            write_or_die(bin, path, &obs::export_jsonl());
        }
        if let Some(bench) = self.bench_target() {
            // Re-check: a file may have appeared while the run went on.
            refuse_clobber(bin, &bench, self.force);
            write_or_die(bin, &bench, &bench_pta_json(header));
            eprintln!("{bin}: wrote {bench}");
            // The Mahjong-phase record rides along as a sibling file
            // with the same no-clobber semantics (but skipping, not
            // aborting — the main record is already on disk here).
            let mahjong = bench_mahjong_path(&bench);
            if !self.force && std::path::Path::new(&mahjong).exists() {
                eprintln!("{bin}: keeping existing {mahjong} (pass --force to replace it)");
            } else {
                write_or_die(bin, &mahjong, &bench_mahjong_json(header));
                eprintln!("{bin}: wrote {mahjong}");
            }
        }
        if let Some(path) = &self.trace {
            write_or_die(bin, path, &obs::export_chrome_trace());
        }
    }

    /// Spawns the `--heartbeat` stderr pulse (detached; dies with the
    /// process). Reads the solver's live counters, which are updated
    /// once per wave, so the pulse tracks progress without touching
    /// hot paths.
    pub fn start_heartbeat(&self, bin: &'static str) {
        let secs = self.heartbeat;
        if secs == 0 {
            return;
        }
        let start = std::time::Instant::now();
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_secs(secs));
            eprintln!(
                "{bin}: [{}s] wave {} · {} pops · {} live words",
                start.elapsed().as_secs(),
                obs::counter("pta.live_wave_rounds").get(),
                obs::counter("pta.live_worklist_pops").get(),
                obs::gauge("pta.live_pts_words").get(),
            );
        });
    }
}

/// Provenance fields stamped into both benchmark records.
#[derive(Clone, Debug)]
pub struct RecordHeader {
    /// Experiment name (`"cli"` for the standalone tool).
    pub exp: String,
    /// Workload scale factor (0 when not applicable).
    pub scale: usize,
    /// Time budget in seconds.
    pub budget_secs: u64,
    /// Resolved shard count.
    pub threads: usize,
}

/// Exits with status 1 if `bench` already exists and `force` is off —
/// benchmark records are committed artifacts and never silently
/// replaced.
pub fn refuse_clobber(bin: &str, bench: &str, force: bool) {
    if !force && std::path::Path::new(bench).exists() {
        eprintln!("{bin}: refusing to overwrite {bench} (pass --force to replace it)");
        std::process::exit(1);
    }
}

/// Writes `contents` to `path` or exits with a diagnostic.
pub fn write_or_die(bin: &str, path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("{bin}: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

/// `BENCH_pta.json` lands next to the `--metrics-json` file.
pub fn bench_pta_path(metrics_path: &str) -> String {
    let p = std::path::Path::new(metrics_path);
    p.with_file_name("BENCH_pta.json")
        .to_string_lossy()
        .into_owned()
}

/// The Mahjong benchmark record lands next to the pta record:
/// `BENCH_pta.json` → `BENCH_mahjong.json`, and any other
/// `BENCH_<label>.json` → `BENCH_mahjong_<label>.json` (the pairing
/// `scripts/bench_table.py` reassembles).
pub fn bench_mahjong_path(bench_path: &str) -> String {
    let p = std::path::Path::new(bench_path);
    let name = p
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH_pta.json");
    let sibling = if name == "BENCH_pta.json" {
        "BENCH_mahjong.json".to_owned()
    } else if let Some(rest) = name.strip_prefix("BENCH_") {
        format!("BENCH_mahjong_{rest}")
    } else {
        format!("mahjong_{name}")
    };
    p.with_file_name(sibling).to_string_lossy().into_owned()
}

/// A small, stable-schema benchmark record for per-PR tracking: phase
/// wall-clock, propagation-volume counters, the peak (physical,
/// deduplicated) points-to footprint in 64-bit words, and the
/// hash-consing counters behind it.
pub fn bench_pta_json(h: &RecordHeader) -> String {
    let r = obs::registry();
    let phase = |name: &str| r.phase_time(name).as_secs_f64();
    format!(
        "{{\n  \"exp\": \"{}\",\n  \"scale\": {},\n  \"budget_secs\": {},\n  \"threads\": {},\n  \
         \"phase_secs\": {{\n    \"pre_analysis\": {:.6},\n    \"mahjong\": {:.6},\n    \
         \"main_analysis\": {:.6}\n  }},\n  \
         \"worklist_pops\": {},\n  \"propagated_objects\": {},\n  \"delta_objects\": {},\n  \
         \"copy_edges\": {},\n  \"pts_peak_words\": {},\n  \
         \"pts_interned\": {},\n  \"pts_dedup_hits\": {},\n  \"intern_probe_ns\": {},\n  \
         \"scc_collapsed_ptrs\": {},\n  \"collapse_sweeps\": {},\n  \"wave_rounds\": {},\n  \
         \"par_shards\": {},\n  \"par_steal_none\": {},\n  \"wave_barrier_ns\": {},\n  \
         \"par_merge_shards\": {},\n  \"mask_ranges\": {},\n  \"range_union_hits\": {}\n}}\n",
        h.exp,
        h.scale,
        h.budget_secs,
        h.threads,
        phase("pre_analysis"),
        phase("mahjong.fpg_build") + phase("mahjong.automata_build")
            + phase("mahjong.equivalence_check"),
        phase("main_analysis"),
        obs::counter("pta.worklist_pops").get(),
        obs::counter("pta.propagated_objects").get(),
        obs::counter("pta.delta_objects").get(),
        obs::counter("pta.copy_edges").get(),
        obs::gauge("pta.pts_peak_words").get(),
        obs::counter("pta.pts_interned").get(),
        obs::counter("pta.pts_dedup_hits").get(),
        obs::counter("pta.intern_probe_ns").get(),
        obs::counter("pta.scc_collapsed_ptrs").get(),
        obs::counter("pta.collapse_sweeps").get(),
        obs::counter("pta.wave_rounds").get(),
        obs::counter("pta.par_shards").get(),
        obs::counter("pta.par_steal_none").get(),
        obs::counter("pta.wave_barrier_ns").get(),
        obs::counter("pta.par_merge_shards").get(),
        obs::counter("pta.mask_ranges").get(),
        obs::counter("pta.range_union_hits").get(),
    )
}

/// The Mahjong pre-analysis record: per-phase wall-clock plus the
/// signature-pipeline counters (`hk_runs` is 0 on the fast path).
pub fn bench_mahjong_json(h: &RecordHeader) -> String {
    let r = obs::registry();
    let phase = |name: &str| r.phase_time(name).as_secs_f64();
    format!(
        "{{\n  \"exp\": \"{}\",\n  \"scale\": {},\n  \"threads\": {},\n  \
         \"phase_secs\": {{\n    \"fpg_build\": {:.6},\n    \"automata_build\": {:.6},\n    \
         \"equivalence_check\": {:.6}\n  }},\n  \
         \"objects\": {},\n  \"merged_objects\": {},\n  \"not_single_type\": {},\n  \
         \"dfa_built\": {},\n  \"sig_buckets\": {},\n  \"hk_runs\": {},\n  \
         \"canon_ns\": {},\n  \"shard_skew\": {}\n}}\n",
        h.exp,
        h.scale,
        h.threads,
        phase("mahjong.fpg_build"),
        phase("mahjong.automata_build"),
        phase("mahjong.equivalence_check"),
        obs::counter("mahjong.objects").get(),
        obs::counter("mahjong.merged_objects").get(),
        obs::counter("mahjong.not_single_type").get(),
        obs::counter("mahjong.dfa_built").get(),
        obs::counter("mahjong.sig_buckets").get(),
        obs::counter("mahjong.hk_runs").get(),
        obs::counter("mahjong.canon_ns").get(),
        obs::gauge("mahjong.shard_skew").get(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<(CommonOpts, Vec<String>), String> {
        let mut opts = CommonOpts::default();
        let mut leftover = Vec::new();
        let mut it = tokens.iter().map(|s| s.to_string());
        while let Some(arg) = it.next() {
            if !opts.try_parse(&arg, &mut it)? {
                leftover.push(arg);
            }
        }
        Ok((opts, leftover))
    }

    #[test]
    fn shared_flags_parse_and_leftovers_pass_through() {
        let (o, rest) = parse(&[
            "--exp", "table2", "--threads", "4", "--force", "--metrics-json", "m.jsonl",
            "--heartbeat", "30", "--bench-json", "b.json", "--trace", "t.json",
        ])
        .unwrap();
        assert_eq!(o.threads, Some(4));
        assert_eq!(o.resolve_threads(1), 4);
        assert!(o.force);
        assert_eq!(o.metrics_json.as_deref(), Some("m.jsonl"));
        assert_eq!(o.bench_json.as_deref(), Some("b.json"));
        assert_eq!(o.trace.as_deref(), Some("t.json"));
        assert_eq!(o.heartbeat, 30);
        // `--exp table2` is not shared; the binary's own loop sees it.
        assert_eq!(rest, vec!["--exp", "table2"]);
    }

    #[test]
    fn absent_threads_flag_keeps_the_binary_default() {
        let o = CommonOpts::default();
        assert_eq!(o.resolve_threads(1), 1);
        assert!(o.resolve_threads(0) >= 1); // auto: hardware threads
    }

    #[test]
    fn malformed_shared_flags_error() {
        assert!(parse(&["--threads"]).is_err());
        assert!(parse(&["--threads", "lots"]).is_err());
        assert!(parse(&["--metrics-json"]).is_err());
        assert!(parse(&["--heartbeat", "soon"]).is_err());
    }

    #[test]
    fn bench_target_defaults_next_to_metrics() {
        let (o, _) = parse(&["--metrics-json", "/tmp/x/m.jsonl"]).unwrap();
        assert_eq!(o.bench_target().as_deref(), Some("/tmp/x/BENCH_pta.json"));
        let (o, _) = parse(&["--bench-json", "/tmp/y/BENCH_pr9.json"]).unwrap();
        assert_eq!(o.bench_target().as_deref(), Some("/tmp/y/BENCH_pr9.json"));
        assert!(CommonOpts::default().bench_target().is_none());
    }

    #[test]
    fn mahjong_sibling_naming() {
        assert_eq!(bench_mahjong_path("a/BENCH_pta.json"), "a/BENCH_mahjong.json");
        assert_eq!(
            bench_mahjong_path("a/BENCH_pta_t4.json"),
            "a/BENCH_mahjong_pta_t4.json"
        );
        assert_eq!(bench_mahjong_path("a/other.json"), "a/mahjong_other.json");
    }

    #[test]
    fn help_names_every_shared_flag() {
        for flag in
            ["--threads", "--metrics-json", "--trace", "--bench-json", "--force", "--heartbeat"]
        {
            assert!(CommonOpts::HELP.contains(flag), "HELP lacks {flag}");
        }
    }
}
