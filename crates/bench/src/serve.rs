//! Concurrent query serving over a read-only analysis result.
//!
//! ROADMAP item 3: analyze once, then serve `points_to` / `may_alias`
//! / `call_targets` / cast-check queries from a long-lived process.
//! The [`QueryServer`] wraps a shared `&AnalysisResult` (immutable, so
//! worker threads need no locks) and answers [`Query`]s with typed
//! results: out-of-range variable, call-site, or cast ids come back as
//! [`QueryError`] values — the NotFound path of a serving API — never
//! as panics.
//!
//! [`run_bench`] is the benchmark driver behind `repro --serve-bench`:
//! N workers claim fixed-size batches from an atomic cursor and replay
//! a SplitMix64-generated query mix. Every query is a pure function of
//! its index and the seed, so the workload is identical regardless of
//! thread count or batch interleaving, and the order-independent
//! XOR-folded [`ServeReport::checksum`] is bit-identical across
//! configurations — the cross-thread determinism tests pin this.
//! Per-query-class latencies land in log₂ histograms (mirrored into
//! the `obs` registry under `serve.<class>_ns` when recording is
//! enabled) and the whole report renders to the committed
//! `BENCH_serve.json` via [`render_json`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use jir::{CallSiteId, CastId, Program, Stmt, TypeId, VarId};
use obs::rng::SplitMix64;
use pta::{AnalysisResult, CtxElem};

/// One serving query, ids as raw integers exactly as a wire protocol
/// would deliver them (nothing is pre-validated).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// The collapsed points-to set of a variable.
    PointsTo(u32),
    /// May two variables point to a common object?
    MayAlias(u32, u32),
    /// The call targets discovered for a call site.
    CallTargets(u32),
    /// May the cast at a cast site fail?
    CastCheck(u32),
}

impl Query {
    /// The query's class label, as used in histograms and the bench
    /// record (`"points_to"`, `"may_alias"`, `"call_targets"`,
    /// `"cast_check"`).
    pub fn class(&self) -> &'static str {
        match self {
            Query::PointsTo(_) => "points_to",
            Query::MayAlias(..) => "may_alias",
            Query::CallTargets(_) => "call_targets",
            Query::CastCheck(_) => "cast_check",
        }
    }
}

/// Typed NotFound: the query named an id the program does not have.
/// The server returns these — it never panics on garbage ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// No variable with this id.
    UnknownVar(u32),
    /// No call site with this id.
    UnknownCallSite(u32),
    /// No cast site with this id.
    UnknownCast(u32),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::UnknownVar(v) => write!(f, "unknown variable id {v}"),
            QueryError::UnknownCallSite(s) => write!(f, "unknown call site id {s}"),
            QueryError::UnknownCast(c) => write!(f, "unknown cast id {c}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A read-only query front end over one analysis result.
///
/// Construction scans the program once to index cast sites (cast id →
/// operand variable and target type); after that every query is
/// lock-free reads against the shared result.
#[derive(Debug)]
pub struct QueryServer<'a> {
    program: &'a Program,
    result: &'a AnalysisResult,
    /// Cast id → (operand variable, target type); `None` for a cast id
    /// that appears in no method body (defensive — ids come from the
    /// program, so in practice every entry is populated).
    casts: Vec<Option<(VarId, TypeId)>>,
}

impl<'a> QueryServer<'a> {
    /// Builds the front end for `(program, result)`.
    pub fn new(program: &'a Program, result: &'a AnalysisResult) -> Self {
        let mut casts = vec![None; program.cast_count()];
        for m in program.method_ids() {
            for stmt in program.method(m).body() {
                if let Stmt::Cast { rhs, site, .. } = *stmt {
                    casts[site.index()] = Some((rhs, program.cast(site).target_ty()));
                }
            }
        }
        QueryServer { program, result, casts }
    }

    /// Answers one query with a 64-bit FNV digest of the result value
    /// (a stand-in for a serialized response body: cheap to compare
    /// across runs, thread counts, and warm- vs fresh-start, yet
    /// sensitive to every element of the answer).
    pub fn answer(&self, q: Query) -> Result<u64, QueryError> {
        match q {
            Query::PointsTo(v) => {
                let var = self.var(v)?;
                let mut h = FNV_SEED;
                for o in self.result.points_to_collapsed(var).iter() {
                    fnv_mix(&mut h, o.index() as u64);
                }
                Ok(h)
            }
            Query::MayAlias(a, b) => {
                let (a, b) = (self.var(a)?, self.var(b)?);
                Ok(self
                    .result
                    .points_to_collapsed(a)
                    .intersects(self.result.points_to_collapsed(b))
                    as u64)
            }
            Query::CallTargets(s) => {
                if s as usize >= self.program.call_site_count() {
                    return Err(QueryError::UnknownCallSite(s));
                }
                let mut h = FNV_SEED;
                for &m in self.result.call_targets(CallSiteId::from_u32(s)) {
                    fnv_mix(&mut h, m.index() as u64);
                }
                Ok(h)
            }
            Query::CastCheck(c) => {
                let (rhs, target) = self
                    .casts
                    .get(c as usize)
                    .copied()
                    .flatten()
                    .ok_or(QueryError::UnknownCast(c))?;
                let _ = CastId::from_u32(c);
                let may_fail = self
                    .result
                    .points_to_collapsed(rhs)
                    .iter()
                    .any(|o| !self.program.is_subtype(self.result.obj_type(o), target));
                Ok(may_fail as u64)
            }
        }
    }

    fn var(&self, v: u32) -> Result<VarId, QueryError> {
        if (v as usize) < self.program.var_count() {
            Ok(VarId::from_u32(v))
        } else {
            Err(QueryError::UnknownVar(v))
        }
    }
}

/// The id spaces queries are drawn from.
#[derive(Clone, Copy, Debug)]
struct QuerySpaces {
    vars: u64,
    sites: u64,
    casts: u64,
}

/// About 1 in 32 generated ids is deliberately out of range, so the
/// NotFound path stays continuously exercised under load.
fn draw_id(rng: &mut SplitMix64, space: u64) -> u32 {
    let id = if space == 0 || rng.below(32) == 0 {
        space + rng.below(1024)
    } else {
        rng.below(space)
    };
    u32::try_from(id).unwrap_or(u32::MAX)
}

/// The `i`-th query of the mix: a pure function of `(seed, i)`, so any
/// thread can generate any index and the workload is identical under
/// every batching. Mix: 40% points-to, 30% may-alias, 20% call
/// targets, 10% cast checks.
fn query_for(i: u64, seed: u64, spaces: QuerySpaces) -> Query {
    let mut rng = SplitMix64::new(seed.wrapping_add(i));
    match rng.below(100) {
        0..=39 => Query::PointsTo(draw_id(&mut rng, spaces.vars)),
        40..=69 => Query::MayAlias(draw_id(&mut rng, spaces.vars), draw_id(&mut rng, spaces.vars)),
        70..=89 => Query::CallTargets(draw_id(&mut rng, spaces.sites)),
        _ => Query::CastCheck(draw_id(&mut rng, spaces.casts)),
    }
}

const FNV_SEED: u64 = 0xcbf29ce484222325;

fn fnv_mix(h: &mut u64, x: u64) {
    *h ^= x;
    *h = h.wrapping_mul(0x100000001b3);
}

/// The query classes a report covers: the four query kinds plus the
/// NotFound path.
pub const CLASSES: [&str; 5] =
    ["points_to", "may_alias", "call_targets", "cast_check", "not_found"];

/// A log₂-bucketed latency histogram (bucket 0 = value 0, bucket `b` =
/// values in `[2^(b-1), 2^b)`), mergeable across worker threads.
#[derive(Clone, Copy, Debug)]
struct Hist {
    buckets: [u64; 64],
    count: u64,
}

impl Hist {
    fn new() -> Self {
        Hist { buckets: [0; 64], count: 0 }
    }

    fn record(&mut self, v: u64) {
        let b = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[b.min(63)] += 1;
        self.count += 1;
    }

    fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
    }

    /// The upper bound of the bucket holding the `q`-quantile
    /// observation (0 when empty).
    fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if b == 0 { 0 } else { (1u64 << b) - 1 };
            }
        }
        u64::MAX
    }
}

/// Latency summary for one query class.
#[derive(Clone, Copy, Debug)]
pub struct ClassStats {
    /// Queries answered in this class.
    pub count: u64,
    /// Median latency (log₂-bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency (log₂-bucket upper bound), nanoseconds.
    pub p99_ns: u64,
}

/// Benchmark configuration for [`run_bench`].
#[derive(Clone, Copy, Debug)]
pub struct ServeOpts {
    /// Worker threads.
    pub threads: usize,
    /// Total queries in the mix.
    pub queries: u64,
    /// Queries per batch claim.
    pub batch: u64,
    /// Mix seed (same seed → identical workload and checksum).
    pub seed: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts { threads: 1, queries: 100_000, batch: 256, seed: 0xA11CE }
    }
}

/// What one [`run_bench`] run measured.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// The options the run used.
    pub opts: ServeOpts,
    /// Wall-clock of the query phase (excludes server construction).
    pub wall_secs: f64,
    /// Queries per second over the wall clock.
    pub qps: f64,
    /// XOR-fold of all per-query digests — order-independent, so
    /// bit-identical across thread counts and batchings.
    pub checksum: u64,
    /// Per-class latency stats, in [`CLASSES`] order.
    pub classes: Vec<(&'static str, ClassStats)>,
}

/// Drives the concurrent query benchmark: `opts.threads` workers claim
/// `opts.batch`-sized index ranges from a shared cursor until
/// `opts.queries` queries have been answered.
pub fn run_bench(program: &Program, result: &AnalysisResult, opts: ServeOpts) -> ServeReport {
    let server = QueryServer::new(program, result);
    let spaces = QuerySpaces {
        vars: program.var_count() as u64,
        sites: program.call_site_count() as u64,
        casts: program.cast_count() as u64,
    };
    let cursor = AtomicU64::new(0);
    let threads = opts.threads.max(1);

    struct WorkerOut {
        hists: [Hist; 5],
        checksum: u64,
    }

    let start = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let server = &server;
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut out = WorkerOut { hists: [Hist::new(); 5], checksum: 0 };
                    loop {
                        let lo = cursor.fetch_add(opts.batch, Ordering::Relaxed);
                        if lo >= opts.queries {
                            break;
                        }
                        let hi = (lo + opts.batch).min(opts.queries);
                        for i in lo..hi {
                            let q = query_for(i, opts.seed, spaces);
                            let t = Instant::now();
                            let answer = server.answer(q);
                            let ns = t.elapsed().as_nanos() as u64;
                            // A NotFound answer is its own class: the
                            // degraded path has its own latency story.
                            let class = match answer {
                                Ok(_) => CLASSES.iter().position(|c| *c == q.class()).unwrap(),
                                Err(_) => 4,
                            };
                            out.hists[class].record(ns);
                            // Per-query digest folds the index, the
                            // class, and the answer (or the error id),
                            // then XORs into an order-free total.
                            let mut h = FNV_SEED;
                            fnv_mix(&mut h, i);
                            fnv_mix(&mut h, class as u64);
                            match answer {
                                Ok(v) => fnv_mix(&mut h, v),
                                Err(QueryError::UnknownVar(v)) => fnv_mix(&mut h, 1 << 40 | v as u64),
                                Err(QueryError::UnknownCallSite(s)) => {
                                    fnv_mix(&mut h, 2 << 40 | s as u64)
                                }
                                Err(QueryError::UnknownCast(c)) => {
                                    fnv_mix(&mut h, 3 << 40 | c as u64)
                                }
                            }
                            out.checksum ^= h;
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut hists = [Hist::new(); 5];
    let mut checksum = 0u64;
    for out in &outs {
        for (a, b) in hists.iter_mut().zip(&out.hists) {
            a.merge(b);
        }
        checksum ^= out.checksum;
    }
    // Mirror the latency distributions into the global registry so
    // --metrics-json exports carry them (no-op when recording is off).
    for (name, hist) in CLASSES.iter().zip(&hists) {
        let h = obs::histogram(&format!("serve.{name}_ns"));
        for (b, &n) in hist.buckets.iter().enumerate() {
            let v = if b == 0 { 0 } else { 1u64 << (b - 1) };
            for _ in 0..n.min(1 << 16) {
                h.record(v);
            }
        }
    }
    obs::counter("serve.queries").add(opts.queries);

    ServeReport {
        opts,
        wall_secs,
        qps: if wall_secs > 0.0 { opts.queries as f64 / wall_secs } else { 0.0 },
        checksum,
        classes: CLASSES
            .iter()
            .zip(&hists)
            .map(|(name, h)| {
                (*name, ClassStats { count: h.count, p50_ns: h.quantile(0.50), p99_ns: h.quantile(0.99) })
            })
            .collect(),
    }
}

/// Provenance fields stamped into `BENCH_serve.json`.
#[derive(Clone, Debug)]
pub struct ServeHeader {
    /// Workload name.
    pub program: String,
    /// Workload scale.
    pub scale: usize,
    /// Context-sensitivity name.
    pub analysis: String,
    /// Heap-abstraction name.
    pub heap: String,
    /// `"snapshot"` for a warm start, `"fresh"` for an in-process run.
    pub source: String,
    /// Milliseconds to a queryable result (snapshot load + restore for
    /// warm starts; the full analysis for fresh ones).
    pub warm_start_ms: f64,
    /// Canonical result fingerprint (see [`canonical_fingerprint`]).
    pub fingerprint: u64,
}

/// Renders the committed `BENCH_serve.json` record
/// (`scripts/bench_table.py` validates and tabulates this schema).
pub fn render_json(header: &ServeHeader, report: &ServeReport) -> String {
    let mut classes = String::new();
    for (i, (name, s)) in report.classes.iter().enumerate() {
        let sep = if i + 1 == report.classes.len() { "" } else { "," };
        classes.push_str(&format!(
            "    \"{name}\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }}{sep}\n",
            s.count, s.p50_ns, s.p99_ns
        ));
    }
    format!(
        "{{\n  \"exp\": \"serve\",\n  \"program\": \"{}\",\n  \"scale\": {},\n  \
         \"analysis\": \"{}\",\n  \"heap\": \"{}\",\n  \"source\": \"{}\",\n  \
         \"threads\": {},\n  \"queries\": {},\n  \"batch\": {},\n  \"seed\": {},\n  \
         \"warm_start_ms\": {:.3},\n  \"fingerprint\": \"{:#018x}\",\n  \
         \"wall_secs\": {:.6},\n  \"qps\": {:.1},\n  \"checksum\": \"{:#018x}\",\n  \
         \"classes\": {{\n{classes}  }}\n}}\n",
        header.program,
        header.scale,
        header.analysis,
        header.heap,
        header.source,
        report.opts.threads,
        report.opts.queries,
        report.opts.batch,
        report.opts.seed,
        header.warm_start_ms,
        header.fingerprint,
        report.wall_secs,
        report.qps,
        report.checksum,
    )
}

/// Canonical, interning-order-independent fingerprint of a result: the
/// FNV mix of per-variable collapsed object sets (objects described by
/// allocation site plus heap-context element chain) and the sorted
/// call graph — the same hash the golden-fingerprint parity tests pin,
/// so a snapshot round trip can be checked against the committed
/// goldens from the command line.
pub fn canonical_fingerprint(program: &Program, result: &AnalysisResult) -> u64 {
    let canon_obj = |o: pta::ObjId| -> Vec<u64> {
        let mut out = vec![result.obj_alloc(o).index() as u64];
        for e in result.contexts().elems(result.obj_heap_context(o)) {
            out.push(match *e {
                CtxElem::CallSite(s) => 1 << 32 | s.index() as u64,
                CtxElem::Alloc(a) => 2 << 32 | a.index() as u64,
                CtxElem::Type(c) => 3 << 32 | c.index() as u64,
            });
        }
        out
    };
    let mut h: u64 = FNV_SEED;
    for v in (0..program.var_count()).map(VarId::from_usize) {
        let mut objs: Vec<Vec<u64>> =
            result.points_to_collapsed(v).iter().map(canon_obj).collect();
        objs.sort_unstable();
        objs.dedup();
        fnv_mix(&mut h, v.index() as u64 ^ 0xdead);
        for desc in objs {
            for w in desc {
                fnv_mix(&mut h, w);
            }
            fnv_mix(&mut h, 0xfeed);
        }
    }
    let mut edges: Vec<(usize, usize)> = result
        .call_graph_edges()
        .map(|(s, m)| (s.index(), m.index()))
        .collect();
    edges.sort_unstable();
    for (s, m) in edges {
        fnv_mix(&mut h, ((s as u64) << 32) | m as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use pta::{AllocSiteAbstraction, AnalysisConfig, ObjectSensitive};

    fn setup() -> (Program, AnalysisResult) {
        let program = jir::parse(
            "class A {
               field f: A;
               method id(this, v) { w = v; u = (A) w; return u; }
               entry static method main() {
                 a = new A; b = new A;
                 a.f = b;
                 r = virt a.id(b);
                 return;
               }
             }",
        )
        .expect("parses");
        let result = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
            .run(&program)
            .expect("fits budget");
        (program, result)
    }

    #[test]
    fn unknown_ids_return_typed_not_found() {
        let (p, r) = setup();
        let server = QueryServer::new(&p, &r);
        let big = u32::MAX;
        assert!(matches!(
            server.answer(Query::PointsTo(big)),
            Err(QueryError::UnknownVar(v)) if v == big
        ));
        assert!(matches!(
            server.answer(Query::MayAlias(0, big)),
            Err(QueryError::UnknownVar(_))
        ));
        assert!(matches!(
            server.answer(Query::CallTargets(big)),
            Err(QueryError::UnknownCallSite(_))
        ));
        assert!(matches!(
            server.answer(Query::CastCheck(big)),
            Err(QueryError::UnknownCast(_))
        ));
    }

    #[test]
    fn valid_queries_answer() {
        let (p, r) = setup();
        let server = QueryServer::new(&p, &r);
        for v in 0..p.var_count() as u32 {
            server.answer(Query::PointsTo(v)).expect("valid var");
        }
        for s in 0..p.call_site_count() as u32 {
            server.answer(Query::CallTargets(s)).expect("valid site");
        }
        for c in 0..p.cast_count() as u32 {
            server.answer(Query::CastCheck(c)).expect("valid cast");
        }
        assert!(p.cast_count() > 0, "test program has a cast");
    }

    #[test]
    fn checksum_is_thread_count_independent() {
        let (p, r) = setup();
        let base = run_bench(
            &p,
            &r,
            ServeOpts { threads: 1, queries: 5_000, batch: 64, seed: 7 },
        );
        for threads in [2, 4] {
            for batch in [1, 17, 1024] {
                let other = run_bench(
                    &p,
                    &r,
                    ServeOpts { threads, queries: 5_000, batch, seed: 7 },
                );
                assert_eq!(base.checksum, other.checksum, "threads={threads} batch={batch}");
                for ((n1, c1), (n2, c2)) in base.classes.iter().zip(&other.classes) {
                    assert_eq!(n1, n2);
                    assert_eq!(c1.count, c2.count, "class {n1} count under threads={threads}");
                }
            }
        }
    }

    #[test]
    fn every_class_appears_in_the_mix() {
        let (p, r) = setup();
        let report = run_bench(
            &p,
            &r,
            ServeOpts { threads: 2, queries: 20_000, batch: 128, seed: 3 },
        );
        for (name, stats) in &report.classes {
            assert!(stats.count > 0, "class {name} never exercised");
        }
        let total: u64 = report.classes.iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, 20_000);
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let (p, r) = setup();
        let report = run_bench(&p, &r, ServeOpts { queries: 1_000, ..ServeOpts::default() });
        let header = ServeHeader {
            program: "tiny".into(),
            scale: 1,
            analysis: "2obj".into(),
            heap: "alloc-site".into(),
            source: "fresh".into(),
            warm_start_ms: 1.5,
            fingerprint: canonical_fingerprint(&p, &r),
        };
        let json = render_json(&header, &report);
        for key in
            ["\"exp\": \"serve\"", "\"qps\"", "\"warm_start_ms\"", "\"not_found\"", "\"checksum\""]
        {
            assert!(json.contains(key), "record lacks {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
