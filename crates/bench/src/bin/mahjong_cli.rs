//! `mahjong-cli` — the standalone tool: read a `.jir` program, run the
//! pre-analysis, and print the merged-object map.
//!
//! ```text
//! mahjong-cli program.jir [--no-condition2] [--no-null] [--largest-repr]
//!             [--paranoid] [--budget SECS] [shared options]
//! ```
//!
//! The shared options (`--threads`, `--metrics-json`, `--trace`,
//! `--bench-json`/`--force`, `--heartbeat`) are parsed by
//! [`bench::cli::CommonOpts`] — the same parser and `--help` section
//! `repro` uses. `--threads` shards both pipeline stages: the
//! pre-analysis solver's parallel wave propagation and Mahjong's
//! automaton construction (results are bit-identical for any count).
//! `--paranoid` re-verifies every signature-directed merge with
//! Hopcroft–Karp (the runs appear in the `mahjong.hk_runs` counter,
//! which is 0 on the default fast path). Set `OBS_DISABLE=1` to turn
//! all recording into no-ops.
//!
//! The paper ships Mahjong as a standalone tool that any
//! allocation-site-based points-to framework can call; this binary is
//! that interface for JIR programs. It lives in the `bench` crate
//! (which already depends on `mahjong`) so it can share the CLI
//! plumbing without creating a dependency cycle.

use bench::cli::{CommonOpts, RecordHeader};
use mahjong::{build_with_fpg, MahjongConfig, Representative};
use pta::{AllocSiteAbstraction, AnalysisConfig, ContextInsensitive};

const USAGE: &str = "\
usage: mahjong-cli <program.jir> [options]

mahjong-cli options:
  --no-condition2      drop the paper's Condition 2 (field-sensitivity
                       guard) from the merge criterion
  --no-null            do not model null as a distinguished automaton
                       state
  --largest-repr       pick each class's largest object as the
                       representative (default: first)
  --paranoid           re-verify every signature-directed merge with
                       Hopcroft-Karp
  --budget SECS        abort the pre-analysis past this time budget";

fn main() {
    let mut path: Option<String> = None;
    let mut config = MahjongConfig::default();
    let mut budget_secs: Option<u64> = None;
    let mut common = CommonOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_parse(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(msg) => die(msg.as_ref()),
        }
        match arg.as_str() {
            "--no-condition2" => config.enforce_condition2 = false,
            "--no-null" => config.model_null = false,
            "--largest-repr" => config.representative = Representative::Largest,
            "--paranoid" => config.paranoid = true,
            "--budget" => {
                budget_secs = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--budget needs a number of seconds")),
                );
            }
            "--help" | "-h" => {
                println!("{USAGE}\n\n{}", CommonOpts::HELP);
                return;
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(arg),
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    config.threads = common.resolve_threads(config.threads);
    common.check_bench_target("mahjong-cli");
    common.start_heartbeat("mahjong-cli");
    let path = path.unwrap_or_else(|| die("missing input program"));
    let source = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let program = jir::parse(&source).unwrap_or_else(|e| die(&format!("parse error: {e}")));

    // The pre-analysis is a plain context-insensitive run; `--budget`
    // routes through the same `AnalysisConfig` builder every other
    // entry point uses, and `--threads` shards its wave propagation
    // exactly like the merge phase (results stay bit-identical).
    let mut pre_cfg = AnalysisConfig::new(ContextInsensitive, AllocSiteAbstraction)
        .threads(config.threads);
    if let Some(secs) = budget_secs {
        pre_cfg = pre_cfg.time_limit_secs(secs);
    }
    let pre = {
        let _phase = obs::span("pre_analysis");
        pre_cfg
            .run(&program)
            .unwrap_or_else(|e| die(&format!("pre-analysis exceeded its budget: {e}")))
    };
    let (fpg, out) = build_with_fpg(&program, &pre, &config);

    println!(
        "# mahjong: {} reachable objects -> {} abstract objects ({:.0}% reduction)",
        out.stats.objects,
        out.stats.merged_objects,
        100.0 * (1.0 - out.stats.merged_objects as f64 / out.stats.objects.max(1) as f64)
    );
    println!(
        "# fpg: {} edges; nfa avg {:.0} states, max {}; {} objects fail SINGLETYPE-CHECK",
        fpg.edge_count(),
        out.stats.avg_nfa_states,
        out.stats.max_nfa_states,
        out.stats.not_single_type
    );
    println!("# merged classes (size > 1):");
    for class in out.mom.classes() {
        if class.len() < 2 {
            continue;
        }
        let labels: Vec<String> = class.iter().map(|&a| program.alloc_label(a)).collect();
        println!("{}", labels.join(" ≡ "));
    }

    let header = RecordHeader {
        exp: "cli".to_owned(),
        scale: 0,
        budget_secs: budget_secs.unwrap_or(0),
        threads: config.threads,
    };
    common.emit_artifacts("mahjong-cli", &header);
}

fn die(msg: &str) -> ! {
    eprintln!("mahjong-cli: {msg}");
    std::process::exit(1);
}
