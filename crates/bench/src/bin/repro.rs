//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --exp table2 [--scale N] [--budget SECS] [--threads N] [--programs a,b,c]
//!       [--metrics-json PATH] [--bench-json PATH] [--force] [--trace PATH]
//!       [--profile] [--profile-json PATH] [--heartbeat SECS]
//! repro --exp fig8
//! repro --exp fig9
//! repro --exp table1
//! repro --exp motivation
//! repro --exp pre_analysis
//! repro --exp ablations
//! repro --exp alias
//! repro --exp all
//! ```
//!
//! `--threads` sets the solver's wave-propagation shard count (`0`,
//! the default, means one shard per available hardware thread; every
//! count produces bit-identical results). `--metrics-json` dumps the
//! telemetry registry as JSON-Lines and `--trace` writes a Chrome
//! `trace_event` file (load it in `about:tracing` or Perfetto). The
//! benchmark record lands at `--bench-json PATH` when given, otherwise
//! as `BENCH_pta.json` next to the `--metrics-json` file; a Mahjong
//! phase record (`BENCH_mahjong.json`) is written as a sibling. An
//! existing record is never overwritten unless `--force` is passed. `--exp all`
//! additionally prints a per-experiment phase-time summary
//! (pre-analysis vs. Mahjong vs. the main analysis). Set
//! `OBS_DISABLE=1` to turn recording into no-ops.
//!
//! `--profile` writes the solver-introspection profile (per-wave
//! timeline records, the memory-attribution breakdown, and the
//! hottest-pointer table — see `obs::timeline`) as `PROFILE_pta.json`
//! next to the benchmark record, or wherever `--profile-json PATH`
//! says (implies `--profile`). Unlike bench records the profile is a
//! derived artifact and is overwritten freely. `--heartbeat SECS`
//! prints a one-line progress pulse (wave round, worklist pops, live
//! set words) to stderr every `SECS` seconds so multi-minute runs are
//! not silent.

use std::time::Duration;

use bench::cli::{self, CommonOpts, RecordHeader};
use bench::{fmt_count, fmt_time};
use mahjong::MahjongConfig;
use pta::Budget;

/// Every experiment `--exp` accepts, in the order `--exp all` runs them
/// (plus `all` itself). Printed when an unknown name is given.
const EXPERIMENTS: &[&str] = &[
    "motivation",
    "fig8",
    "fig9",
    "table1",
    "pre_analysis",
    "table2",
    "ablations",
    "alias",
    "all",
];

const USAGE: &str = "\
usage: repro --exp NAME [options]

experiments: motivation, fig8, fig9, table1, pre_analysis, table2,
             ablations, alias, all (default)

repro options:
  --exp NAME           experiment to run (default: all)
  --scale N            workload scale factor (default: 4)
  --budget SECS        per-run time budget (default: 60)
  --programs a,b,c     restrict to a comma-separated program list
  --profile            write the solver-introspection profile
                       (PROFILE_pta.json next to the bench record)
  --profile-json PATH  profile destination (implies --profile)";

#[derive(Debug)]
struct Args {
    exp: String,
    scale: usize,
    budget: u64,
    /// Solver shard count, already resolved (`--threads 0` = auto).
    threads: usize,
    programs: Vec<String>,
    profile: bool,
    profile_json: Option<String>,
    common: CommonOpts,
}

fn parse_args() -> Args {
    let mut exp = "all".to_owned();
    let mut scale = 4;
    let mut budget = 60;
    let mut profile = false;
    let mut profile_json = None;
    let mut common = CommonOpts::default();
    let mut programs: Vec<String> = workloads::dacapo::PROGRAMS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_parse(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(msg) => {
                eprintln!("repro: {msg}");
                std::process::exit(2);
            }
        }
        match arg.as_str() {
            "--exp" => {
                exp = args.next().unwrap_or_default();
            }
            "--scale" => {
                scale = args.next().and_then(|s| s.parse().ok()).unwrap_or(scale);
            }
            "--budget" => {
                budget = args.next().and_then(|s| s.parse().ok()).unwrap_or(budget);
            }
            "--programs" => {
                programs = args
                    .next()
                    .map(|s| s.split(',').map(str::to_owned).collect())
                    .unwrap_or(programs);
            }
            "--profile" => profile = true,
            "--profile-json" => {
                profile_json = args.next();
                profile = true;
            }
            "--help" | "-h" => {
                println!("{USAGE}\n\n{}", CommonOpts::HELP);
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    Args {
        exp,
        scale,
        budget,
        threads: common.resolve_threads(0),
        programs,
        profile,
        profile_json,
        common,
    }
}

fn main() {
    let args = parse_args();
    // Validate the benchmark-record target up front: refusing to
    // clobber after a multi-minute run would throw the work away.
    args.common.check_bench_target("repro");
    args.common.start_heartbeat("repro");
    let budget = Budget::seconds(args.budget);
    match args.exp.as_str() {
        "table2" => table2(&args, budget),
        "fig8" => fig8(&args),
        "fig9" => fig9(&args),
        "table1" => table1(&args),
        "motivation" => motivation(&args, budget),
        "pre_analysis" => pre_analysis(&args),
        "ablations" => ablations(&args, budget),
        "alias" => alias(&args, budget),
        "all" => all(&args, budget),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("valid experiments: {}", EXPERIMENTS.join(", "));
            std::process::exit(2);
        }
    }
    let header = RecordHeader {
        exp: args.exp.clone(),
        scale: args.scale,
        budget_secs: args.budget,
        threads: args.threads,
    };
    args.common.emit_artifacts("repro", &header);
    if args.profile {
        let path = profile_path(&args, args.common.bench_target().as_deref());
        cli::write_or_die("repro", &path, &profile_json(&args));
        eprintln!("repro: wrote {path}");
    }
}

/// `PROFILE_pta.json` lands next to the benchmark record (or in the
/// working directory when no bench target is configured), unless
/// `--profile-json` says otherwise.
fn profile_path(args: &Args, bench_target: Option<&str>) -> String {
    if let Some(p) = &args.profile_json {
        return p.clone();
    }
    match bench_target {
        Some(b) => std::path::Path::new(b)
            .with_file_name("PROFILE_pta.json")
            .to_string_lossy()
            .into_owned(),
        None => "PROFILE_pta.json".to_owned(),
    }
}

/// The solver-introspection profile: run header plus the timeline's
/// own JSON export (records, memory breakdown, top-K table) under
/// `"profile"`.
fn profile_json(args: &Args) -> String {
    let r = obs::registry();
    format!(
        "{{\n  \"exp\": \"{}\",\n  \"scale\": {},\n  \"budget_secs\": {},\n  \"threads\": {},\n  \
         \"pre_analysis_secs\": {:.6},\n  \"main_analysis_secs\": {:.6},\n  \
         \"pts_peak_words\": {},\n  \"pending_peak_words\": {},\n  \"profile\": {}\n}}\n",
        args.exp,
        args.scale,
        args.budget,
        args.threads,
        r.phase_time("pre_analysis").as_secs_f64(),
        r.phase_time("main_analysis").as_secs_f64(),
        obs::gauge("pta.pts_peak_words").get(),
        obs::gauge("pta.pending_peak_words").get(),
        obs::timeline().export_json(),
    )
}

// --- `--exp all` with the phase-time summary -----------------------------------

/// Cumulative wall-clock in the three pipeline stages, read from the
/// telemetry registry's span log.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseClock {
    pre_analysis: Duration,
    mahjong: Duration,
    main_analysis: Duration,
}

fn phase_clock() -> PhaseClock {
    let r = obs::registry();
    PhaseClock {
        pre_analysis: r.phase_time("pre_analysis"),
        mahjong: r.phase_time("mahjong.fpg_build")
            + r.phase_time("mahjong.automata_build")
            + r.phase_time("mahjong.equivalence_check"),
        main_analysis: r.phase_time("main_analysis"),
    }
}

impl PhaseClock {
    fn since(self, earlier: PhaseClock) -> PhaseClock {
        PhaseClock {
            pre_analysis: self.pre_analysis - earlier.pre_analysis,
            mahjong: self.mahjong - earlier.mahjong,
            main_analysis: self.main_analysis - earlier.main_analysis,
        }
    }
}

/// One named experiment runner, as dispatched by `--exp all`.
type Experiment<'a> = (&'a str, Box<dyn Fn() + 'a>);

fn all(args: &Args, budget: Budget) {
    let experiments: Vec<Experiment> = vec![
        ("motivation", Box::new(|| motivation(args, budget))),
        ("fig8", Box::new(|| fig8(args))),
        ("fig9", Box::new(|| fig9(args))),
        ("table1", Box::new(|| table1(args))),
        ("pre_analysis", Box::new(|| pre_analysis(args))),
        ("table2", Box::new(|| table2(args, budget))),
        ("ablations", Box::new(|| ablations(args, budget))),
        ("alias", Box::new(|| alias(args, budget))),
    ];
    let mut summary: Vec<(&str, PhaseClock)> = Vec::new();
    for (name, run) in experiments {
        let before = phase_clock();
        run();
        summary.push((name, phase_clock().since(before)));
    }

    println!("## Phase-time summary — wall-clock per experiment");
    println!();
    println!("| experiment | pre-analysis | Mahjong | main analysis |");
    println!("|---|---|---|---|");
    let mut total = PhaseClock::default();
    for (name, clock) in &summary {
        println!(
            "| {} | {} | {} | {} |",
            name,
            fmt_time(Some(clock.pre_analysis.as_secs_f64())),
            fmt_time(Some(clock.mahjong.as_secs_f64())),
            fmt_time(Some(clock.main_analysis.as_secs_f64())),
        );
        total.pre_analysis += clock.pre_analysis;
        total.mahjong += clock.mahjong;
        total.main_analysis += clock.main_analysis;
    }
    println!(
        "| **total** | **{}** | **{}** | **{}** |",
        fmt_time(Some(total.pre_analysis.as_secs_f64())),
        fmt_time(Some(total.mahjong.as_secs_f64())),
        fmt_time(Some(total.main_analysis.as_secs_f64())),
    );
    println!();
}

fn table2(args: &Args, budget: Budget) {
    println!(
        "## Table 2 — main results (scale {}, budget {}s, {} thread{})",
        args.scale,
        args.budget,
        args.threads,
        if args.threads == 1 { "" } else { "s" }
    );
    println!();
    println!(
        "| program | pre (ci/FPG/Mahjong) | analysis | time | M-time | speedup | #fail-casts (A/M) | #poly (A/M) | #cg edges (A/M) |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for name in &args.programs {
        let (prepared, rows) = bench::table2_program(name, args.scale, budget, args.threads);
        for (i, row) in rows.iter().enumerate() {
            let pre = if i == 0 {
                format!(
                    "{:.2}s / {:.3}s / {:.3}s",
                    prepared.ci_seconds, prepared.fpg_seconds, prepared.mahjong_seconds
                )
            } else {
                String::new()
            };
            println!(
                "| {} | {} | {} | {} | {} | {} | {}/{} | {}/{} | {}/{} |",
                if i == 0 { name.as_str() } else { "" },
                pre,
                row.analysis,
                fmt_time(row.baseline.seconds),
                fmt_time(row.mahjong.seconds),
                row.speedup
                    .map(|s| format!("{s:.1}x"))
                    .unwrap_or_else(|| "-".to_owned()),
                fmt_count(row.baseline.may_fail_casts),
                fmt_count(row.mahjong.may_fail_casts),
                fmt_count(row.baseline.poly_call_sites),
                fmt_count(row.mahjong.poly_call_sites),
                fmt_count(row.baseline.call_graph_edges),
                fmt_count(row.mahjong.call_graph_edges),
            );
        }
    }
    println!();
}

fn fig8(args: &Args) {
    println!("## Figure 8 — abstract objects: allocation-site vs Mahjong (scale {})", args.scale);
    println!();
    println!("| program | alloc-site | Mahjong | reduction |");
    println!("|---|---|---|---|");
    let mut total_red = 0.0;
    let mut n = 0;
    for name in &args.programs {
        let prepared = bench::prepare(name, args.scale, &MahjongConfig::default());
        let row = bench::figure8_row(name, &prepared);
        println!(
            "| {} | {} | {} | {:.0}% |",
            name,
            row.alloc_site_objects,
            row.mahjong_objects,
            row.reduction_percent()
        );
        total_red += row.reduction_percent();
        n += 1;
    }
    if n > 0 {
        println!("| **average** | | | **{:.0}%** |", total_red / n as f64);
    }
    println!();
}

fn fig9(args: &Args) {
    println!("## Figure 9 — equivalence-class sizes (checkstyle, scale {})", args.scale);
    println!();
    let prepared = bench::prepare("checkstyle", args.scale, &MahjongConfig::default());
    println!("| class size | #classes |");
    println!("|---|---|");
    for p in bench::figure9(&prepared) {
        println!("| {} | {} |", p.size, p.count);
    }
    println!();
}

fn table1(args: &Args) {
    println!("## Table 1 — example equivalence classes (checkstyle, scale {})", args.scale);
    println!();
    let prepared = bench::prepare("checkstyle", args.scale, &MahjongConfig::default());
    println!("| rank | type | class size | total of type | contents |");
    println!("|---|---|---|---|---|");
    for row in bench::table1(&prepared, 12) {
        println!(
            "| {} | {} | {} | {} | {} |",
            row.rank, row.type_name, row.class_size, row.total_of_type, row.remark
        );
    }
    println!();
}

fn motivation(args: &Args, budget: Budget) {
    println!("## Section 2.1 — pmd under 3obj / T-3obj / M-3obj (scale {})", args.scale);
    println!();
    let (_prepared, m) = bench::motivation(args.scale, budget, args.threads);
    println!("| config | time | #cg edges | #fail-casts | #poly |");
    println!("|---|---|---|---|---|");
    for (name, run) in [("3obj", &m.obj3), ("T-3obj", &m.t_obj3), ("M-3obj", &m.m_obj3)] {
        println!(
            "| {} | {} | {} | {} | {} |",
            name,
            fmt_time(run.seconds),
            fmt_count(run.call_graph_edges),
            fmt_count(run.may_fail_casts),
            fmt_count(run.poly_call_sites),
        );
    }
    println!();
}

fn pre_analysis(args: &Args) {
    println!("## Section 6.1.1 — pre-analysis statistics (scale {})", args.scale);
    println!();
    println!(
        "| program | ci | FPG build | Mahjong | FPG objects | FPG edges | avg NFA | max NFA | !single-type | equiv checks |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for name in &args.programs {
        let prepared = bench::prepare(name, args.scale, &MahjongConfig::default());
        let s = bench::pre_analysis_stats(name, &prepared);
        println!(
            "| {} | {:.2}s | {:.3}s | {:.3}s | {} | {} | {:.0} | {} | {} | {} |",
            s.program,
            s.ci_seconds,
            s.fpg_seconds,
            s.mahjong_seconds,
            s.fpg_objects,
            s.fpg_edges,
            s.avg_nfa_states,
            s.max_nfa_states,
            s.not_single_type,
            s.equivalence_checks,
        );
    }
    println!();
}

fn alias(args: &Args, budget: Budget) {
    println!("## Extension — the may-alias tradeoff (scale {})", args.scale);
    println!();
    println!("| program | alias pairs (2obj) | alias pairs (M-2obj) | #fail-casts | #poly |");
    println!("|---|---|---|---|---|");
    for name in args.programs.iter().take(4) {
        let row = bench::alias_tradeoff(name, args.scale.min(2), budget);
        println!(
            "| {} | {} | {} | {} | {} |",
            row.program,
            row.baseline_alias_pairs,
            row.mahjong_alias_pairs,
            row.may_fail_casts,
            row.poly_call_sites
        );
    }
    println!();
    println!("type-dependent metrics match exactly while alias pairs grow — the");
    println!("designed tradeoff (paper Section 1).");
    println!();
}

fn ablations(args: &Args, budget: Budget) {
    let program = args
        .programs
        .first()
        .cloned()
        .unwrap_or_else(|| "pmd".to_owned());
    println!("## Ablations — design choices on {program} (scale {})", args.scale);
    println!();
    println!("| config | merged objects | merge time | M-2cs #fail-casts |");
    println!("|---|---|---|---|");
    for row in bench::ablations(&program, args.scale, budget) {
        println!(
            "| {} | {} | {:.3}s | {} |",
            row.name,
            row.merged_objects,
            row.merge_seconds,
            fmt_count(row.may_fail_casts_m2cs),
        );
    }
    println!();
}
