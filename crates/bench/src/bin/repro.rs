//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --exp table2 [--scale N] [--budget SECS] [--threads N] [--programs a,b,c]
//!       [--metrics-json PATH] [--bench-json PATH] [--force] [--trace PATH]
//!       [--profile] [--profile-json PATH] [--heartbeat SECS]
//! repro --exp fig8
//! repro --exp fig9
//! repro --exp table1
//! repro --exp motivation
//! repro --exp pre_analysis
//! repro --exp ablations
//! repro --exp alias
//! repro --exp all
//! ```
//!
//! `--threads` sets the solver's wave-propagation shard count (`0`,
//! the default, means one shard per available hardware thread; every
//! count produces bit-identical results). `--metrics-json` dumps the
//! telemetry registry as JSON-Lines and `--trace` writes a Chrome
//! `trace_event` file (load it in `about:tracing` or Perfetto). The
//! benchmark record lands at `--bench-json PATH` when given, otherwise
//! as `BENCH_pta.json` next to the `--metrics-json` file; a Mahjong
//! phase record (`BENCH_mahjong.json`) is written as a sibling. An
//! existing record is never overwritten unless `--force` is passed. `--exp all`
//! additionally prints a per-experiment phase-time summary
//! (pre-analysis vs. Mahjong vs. the main analysis). Set
//! `OBS_DISABLE=1` to turn recording into no-ops.
//!
//! `--profile` writes the solver-introspection profile (per-wave
//! timeline records, the memory-attribution breakdown, and the
//! hottest-pointer table — see `obs::timeline`) as `PROFILE_pta.json`
//! next to the benchmark record, or wherever `--profile-json PATH`
//! says (implies `--profile`). Unlike bench records the profile is a
//! derived artifact and is overwritten freely. `--heartbeat SECS`
//! prints a one-line progress pulse (wave round, worklist pops, live
//! set words) to stderr every `SECS` seconds so multi-minute runs are
//! not silent.
//!
//! # Snapshots and serving
//!
//! The serving pipeline (see `SERVING.md`) bypasses `--exp`:
//!
//! ```text
//! repro --programs luindex --scale 2 --save-snapshot luindex.mjsn
//! repro --load-snapshot luindex.mjsn --serve-bench
//! ```
//!
//! `--save-snapshot PATH` runs one configuration (`--analysis`,
//! `--heap`) on the first `--programs` entry and persists the result
//! as a versioned, checksummed binary snapshot. `--load-snapshot
//! PATH` warm-starts from it — no analysis — and both paths print the
//! canonical result fingerprint, so save→load equivalence is a string
//! comparison. `--serve-bench` then drives the concurrent query
//! benchmark (`bench::serve`) and writes `BENCH_serve.json`
//! (`--serve-json PATH` overrides; no-clobber unless `--force`).

use std::time::{Duration, Instant};

use bench::cli::{self, CommonOpts, RecordHeader};
use bench::{fmt_count, fmt_time};
use mahjong::MahjongConfig;
use pta::Budget;

/// Every experiment `--exp` accepts, in the order `--exp all` runs them
/// (plus `all` itself). Printed when an unknown name is given.
const EXPERIMENTS: &[&str] = &[
    "motivation",
    "fig8",
    "fig9",
    "table1",
    "pre_analysis",
    "table2",
    "ablations",
    "alias",
    "all",
];

const USAGE: &str = "\
usage: repro --exp NAME [options]

experiments: motivation, fig8, fig9, table1, pre_analysis, table2,
             ablations, alias, all (default)

repro options:
  --exp NAME           experiment to run (default: all)
  --scale N            workload scale factor (default: 4)
  --budget SECS        per-run time budget (default: 60)
  --programs a,b,c     restrict to a comma-separated program list
  --profile            write the solver-introspection profile
                       (PROFILE_pta.json next to the bench record)
  --profile-json PATH  profile destination (implies --profile)

serving options (bypass --exp; see SERVING.md):
  --analysis NAME      sensitivity for --save-snapshot / fresh serving:
                       ci, Kcs, Kobj, Ktype (default: 2obj)
  --heap NAME          heap abstraction: alloc, alloc-type, mahjong
                       (default: mahjong)
  --save-snapshot PATH analyze the first --programs entry, save the
                       result as a binary snapshot
  --load-snapshot PATH warm-start from a snapshot instead of analyzing
  --serve-bench        run the concurrent query benchmark
  --serve-queries N    total queries in the mix (default: 200000)
  --serve-batch N      queries per batch claim (default: 256)
  --serve-seed N       query-mix seed (default: 659918)
  --serve-json PATH    serve record target (default: BENCH_serve.json;
                       no-clobber unless --force)";

#[derive(Debug)]
struct Args {
    exp: String,
    scale: usize,
    budget: u64,
    /// Solver shard count, already resolved (`--threads 0` = auto).
    threads: usize,
    programs: Vec<String>,
    profile: bool,
    profile_json: Option<String>,
    analysis: String,
    heap: String,
    save_snapshot: Option<String>,
    load_snapshot: Option<String>,
    serve_bench: bool,
    serve_queries: u64,
    serve_batch: u64,
    serve_seed: u64,
    serve_json: Option<String>,
    common: CommonOpts,
}

fn parse_args() -> Args {
    let mut exp = "all".to_owned();
    let mut scale = 4;
    let mut budget = 60;
    let mut profile = false;
    let mut profile_json = None;
    let mut analysis = "2obj".to_owned();
    let mut heap = "mahjong".to_owned();
    let mut save_snapshot = None;
    let mut load_snapshot = None;
    let mut serve_bench = false;
    let mut serve_queries = 200_000;
    let mut serve_batch = 256;
    let mut serve_seed = 0xA11CE;
    let mut serve_json = None;
    let mut common = CommonOpts::default();
    let mut programs: Vec<String> = workloads::dacapo::PROGRAMS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match common.try_parse(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(msg) => {
                eprintln!("repro: {msg}");
                std::process::exit(2);
            }
        }
        match arg.as_str() {
            "--exp" => {
                exp = args.next().unwrap_or_default();
            }
            "--scale" => {
                scale = args.next().and_then(|s| s.parse().ok()).unwrap_or(scale);
            }
            "--budget" => {
                budget = args.next().and_then(|s| s.parse().ok()).unwrap_or(budget);
            }
            "--programs" => {
                programs = args
                    .next()
                    .map(|s| s.split(',').map(str::to_owned).collect())
                    .unwrap_or(programs);
            }
            "--profile" => profile = true,
            "--profile-json" => {
                profile_json = args.next();
                profile = true;
            }
            "--analysis" => {
                analysis = args.next().unwrap_or(analysis);
            }
            "--heap" => {
                heap = args.next().unwrap_or(heap);
            }
            "--save-snapshot" => {
                save_snapshot = args.next();
            }
            "--load-snapshot" => {
                load_snapshot = args.next();
            }
            "--serve-bench" => serve_bench = true,
            "--serve-queries" => {
                serve_queries = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_queries);
            }
            "--serve-batch" => {
                serve_batch = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_batch);
            }
            "--serve-seed" => {
                serve_seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(serve_seed);
            }
            "--serve-json" => {
                serve_json = args.next();
            }
            "--help" | "-h" => {
                println!("{USAGE}\n\n{}", CommonOpts::HELP);
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    Args {
        exp,
        scale,
        budget,
        threads: common.resolve_threads(0),
        programs,
        profile,
        profile_json,
        analysis,
        heap,
        save_snapshot,
        load_snapshot,
        serve_bench,
        serve_queries,
        serve_batch,
        serve_seed,
        serve_json,
        common,
    }
}

fn main() {
    let args = parse_args();
    // Validate the benchmark-record target up front: refusing to
    // clobber after a multi-minute run would throw the work away.
    args.common.check_bench_target("repro");
    args.common.start_heartbeat("repro");
    let budget = Budget::seconds(args.budget);
    if args.save_snapshot.is_some() || args.load_snapshot.is_some() || args.serve_bench {
        serve_pipeline(&args, budget);
        return;
    }
    match args.exp.as_str() {
        "table2" => table2(&args, budget),
        "fig8" => fig8(&args),
        "fig9" => fig9(&args),
        "table1" => table1(&args),
        "motivation" => motivation(&args, budget),
        "pre_analysis" => pre_analysis(&args),
        "ablations" => ablations(&args, budget),
        "alias" => alias(&args, budget),
        "all" => all(&args, budget),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("valid experiments: {}", EXPERIMENTS.join(", "));
            std::process::exit(2);
        }
    }
    let header = RecordHeader {
        exp: args.exp.clone(),
        scale: args.scale,
        budget_secs: args.budget,
        threads: args.threads,
    };
    args.common.emit_artifacts("repro", &header);
    if args.profile {
        let path = profile_path(&args, args.common.bench_target().as_deref());
        cli::write_or_die("repro", &path, &profile_json(&args));
        eprintln!("repro: wrote {path}");
    }
}

// --- Snapshots and query serving ------------------------------------------------

/// `--analysis` names: `ci` or `<k><cs|obj|type>` (e.g. `2obj`, `3type`).
fn parse_analysis(name: &str) -> Option<bench::Sensitivity> {
    if name == "ci" {
        return Some(bench::Sensitivity::Ci);
    }
    for (suffix, ctor) in [
        ("cs", bench::Sensitivity::Cs as fn(usize) -> _),
        ("obj", bench::Sensitivity::Obj as fn(usize) -> _),
        ("type", bench::Sensitivity::Type as fn(usize) -> _),
    ] {
        if let Some(k) = name.strip_suffix(suffix) {
            return k.parse().ok().filter(|&k| k > 0).map(ctor);
        }
    }
    None
}

/// `--heap` names, returned with the canonical spelling recorded in
/// snapshot metadata and bench records.
fn parse_heap(name: &str) -> Option<(bench::HeapKind, &'static str)> {
    match name {
        "alloc" | "alloc-site" => Some((bench::HeapKind::AllocSite, "alloc-site")),
        "alloc-type" => Some((bench::HeapKind::AllocType, "alloc-type")),
        "mahjong" => Some((bench::HeapKind::Mahjong, "mahjong")),
        _ => None,
    }
}

fn die(msg: String) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// The `--save-snapshot` / `--load-snapshot` / `--serve-bench`
/// pipeline: obtain a queryable result (fresh analysis or snapshot
/// warm-start), optionally persist it, optionally benchmark it. Both
/// sources print the canonical fingerprint, so `save → load` parity is
/// checkable by comparing two lines of output.
fn serve_pipeline(args: &Args, budget: Budget) {
    use bench::serve;

    let sensitivity = parse_analysis(&args.analysis)
        .unwrap_or_else(|| die(format!("unknown --analysis `{}` (ci, Kcs, Kobj, Ktype)", args.analysis)));
    let (heap_kind, heap_name) = parse_heap(&args.heap)
        .unwrap_or_else(|| die(format!("unknown --heap `{}` (alloc, alloc-type, mahjong)", args.heap)));

    let (program, result, meta, warm_start_ms, source) = if let Some(path) = &args.load_snapshot {
        // Warm start: everything (including the program name, scale,
        // and configuration labels) comes from the snapshot.
        let start = Instant::now();
        let snap = snapshot::load(std::path::Path::new(path))
            .unwrap_or_else(|e| die(format!("cannot load snapshot {path}: {e}")));
        let meta = snap.meta.clone();
        if !workloads::dacapo::PROGRAMS.contains(&meta.program.as_str()) {
            die(format!(
                "snapshot {path} names unknown program `{}` (known: {})",
                meta.program,
                workloads::dacapo::PROGRAMS.join(", ")
            ));
        }
        let program = workloads::dacapo::workload(&meta.program, meta.scale as usize).program;
        let result = pta::snapshot::restore(snap.raw)
            .unwrap_or_else(|e| die(format!("snapshot {path} fails validation: {e}")));
        let warm_ms = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "repro: warm start from {path}: {} @ scale {} ({}, {}) in {warm_ms:.1} ms",
            meta.program, meta.scale, meta.analysis, meta.heap
        );
        (program, result, meta, warm_ms, "snapshot")
    } else {
        // Fresh start: run the requested configuration on the first
        // `--programs` entry, then optionally persist it.
        let name = args
            .programs
            .first()
            .unwrap_or_else(|| die("--programs is empty".to_owned()));
        let start = Instant::now();
        let prepared = bench::prepare(name, args.scale, &MahjongConfig::default());
        let result = bench::run_for_result(
            &prepared.program,
            sensitivity,
            heap_kind,
            &prepared.mahjong.mom,
            budget,
            args.threads,
        )
        .unwrap_or_else(|_| {
            die(format!("{name} ({}) exceeded the {}s budget", args.analysis, args.budget))
        });
        let warm_ms = start.elapsed().as_secs_f64() * 1e3;
        let meta = snapshot::Meta {
            program: name.clone(),
            scale: args.scale as u32,
            analysis: sensitivity.name(),
            heap: heap_name.to_owned(),
            threads: args.threads as u32,
        };
        if let Some(path) = &args.save_snapshot {
            use pta::HeapAbstraction;
            let mom = match heap_kind {
                bench::HeapKind::Mahjong => Some(
                    (0..prepared.mahjong.mom.len())
                        .map(|i| prepared.mahjong.mom.repr(jir::AllocId::from_usize(i)).as_u32())
                        .collect(),
                ),
                _ => None,
            };
            let snap = snapshot::Snapshot {
                meta: meta.clone(),
                raw: pta::snapshot::extract(&result),
                mom,
            };
            let bytes = snapshot::save(std::path::Path::new(path), &snap)
                .unwrap_or_else(|e| die(format!("cannot save snapshot {path}: {e}")));
            println!("repro: wrote snapshot {path} ({bytes} bytes)");
        }
        (prepared.program, result, meta, warm_ms, "fresh")
    };

    let fingerprint = serve::canonical_fingerprint(&program, &result);
    println!("repro: fingerprint {fingerprint:#018x}");

    if !args.serve_bench {
        return;
    }
    let opts = serve::ServeOpts {
        threads: args.threads,
        queries: args.serve_queries,
        batch: args.serve_batch.max(1),
        seed: args.serve_seed,
    };
    let report = serve::run_bench(&program, &result, opts);
    println!(
        "## Serve bench — {} @ scale {} ({}, {}), {} threads",
        meta.program, meta.scale, meta.analysis, meta.heap, opts.threads
    );
    println!();
    println!(
        "{} queries in {:.3} s — {:.0} qps (warm start {:.1} ms, source {source})",
        opts.queries, report.wall_secs, report.qps, warm_start_ms
    );
    println!();
    println!("| class | count | p50 | p99 |");
    println!("|---|---|---|---|");
    for (name, s) in &report.classes {
        println!("| {name} | {} | {} ns | {} ns |", s.count, s.p50_ns, s.p99_ns);
    }
    println!();

    let header = serve::ServeHeader {
        program: meta.program.clone(),
        scale: meta.scale as usize,
        analysis: meta.analysis.clone(),
        heap: meta.heap.clone(),
        source: source.to_owned(),
        warm_start_ms,
        fingerprint,
    };
    let target = args
        .serve_json
        .clone()
        .unwrap_or_else(|| "BENCH_serve.json".to_owned());
    cli::refuse_clobber("repro", &target, args.common.force);
    cli::write_or_die("repro", &target, &serve::render_json(&header, &report));
    eprintln!("repro: wrote {target}");
}

/// `PROFILE_pta.json` lands next to the benchmark record (or in the
/// working directory when no bench target is configured), unless
/// `--profile-json` says otherwise.
fn profile_path(args: &Args, bench_target: Option<&str>) -> String {
    if let Some(p) = &args.profile_json {
        return p.clone();
    }
    match bench_target {
        Some(b) => std::path::Path::new(b)
            .with_file_name("PROFILE_pta.json")
            .to_string_lossy()
            .into_owned(),
        None => "PROFILE_pta.json".to_owned(),
    }
}

/// The solver-introspection profile: run header plus the timeline's
/// own JSON export (records, memory breakdown, top-K table) under
/// `"profile"`.
fn profile_json(args: &Args) -> String {
    let r = obs::registry();
    format!(
        "{{\n  \"exp\": \"{}\",\n  \"scale\": {},\n  \"budget_secs\": {},\n  \"threads\": {},\n  \
         \"pre_analysis_secs\": {:.6},\n  \"main_analysis_secs\": {:.6},\n  \
         \"pts_peak_words\": {},\n  \"pending_peak_words\": {},\n  \"profile\": {}\n}}\n",
        args.exp,
        args.scale,
        args.budget,
        args.threads,
        r.phase_time("pre_analysis").as_secs_f64(),
        r.phase_time("main_analysis").as_secs_f64(),
        obs::gauge("pta.pts_peak_words").get(),
        obs::gauge("pta.pending_peak_words").get(),
        obs::timeline().export_json(),
    )
}

// --- `--exp all` with the phase-time summary -----------------------------------

/// Cumulative wall-clock in the three pipeline stages, read from the
/// telemetry registry's span log.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseClock {
    pre_analysis: Duration,
    mahjong: Duration,
    main_analysis: Duration,
}

fn phase_clock() -> PhaseClock {
    let r = obs::registry();
    PhaseClock {
        pre_analysis: r.phase_time("pre_analysis"),
        mahjong: r.phase_time("mahjong.fpg_build")
            + r.phase_time("mahjong.automata_build")
            + r.phase_time("mahjong.equivalence_check"),
        main_analysis: r.phase_time("main_analysis"),
    }
}

impl PhaseClock {
    fn since(self, earlier: PhaseClock) -> PhaseClock {
        PhaseClock {
            pre_analysis: self.pre_analysis - earlier.pre_analysis,
            mahjong: self.mahjong - earlier.mahjong,
            main_analysis: self.main_analysis - earlier.main_analysis,
        }
    }
}

/// One named experiment runner, as dispatched by `--exp all`.
type Experiment<'a> = (&'a str, Box<dyn Fn() + 'a>);

fn all(args: &Args, budget: Budget) {
    let experiments: Vec<Experiment> = vec![
        ("motivation", Box::new(|| motivation(args, budget))),
        ("fig8", Box::new(|| fig8(args))),
        ("fig9", Box::new(|| fig9(args))),
        ("table1", Box::new(|| table1(args))),
        ("pre_analysis", Box::new(|| pre_analysis(args))),
        ("table2", Box::new(|| table2(args, budget))),
        ("ablations", Box::new(|| ablations(args, budget))),
        ("alias", Box::new(|| alias(args, budget))),
    ];
    let mut summary: Vec<(&str, PhaseClock)> = Vec::new();
    for (name, run) in experiments {
        let before = phase_clock();
        run();
        summary.push((name, phase_clock().since(before)));
    }

    println!("## Phase-time summary — wall-clock per experiment");
    println!();
    println!("| experiment | pre-analysis | Mahjong | main analysis |");
    println!("|---|---|---|---|");
    let mut total = PhaseClock::default();
    for (name, clock) in &summary {
        println!(
            "| {} | {} | {} | {} |",
            name,
            fmt_time(Some(clock.pre_analysis.as_secs_f64())),
            fmt_time(Some(clock.mahjong.as_secs_f64())),
            fmt_time(Some(clock.main_analysis.as_secs_f64())),
        );
        total.pre_analysis += clock.pre_analysis;
        total.mahjong += clock.mahjong;
        total.main_analysis += clock.main_analysis;
    }
    println!(
        "| **total** | **{}** | **{}** | **{}** |",
        fmt_time(Some(total.pre_analysis.as_secs_f64())),
        fmt_time(Some(total.mahjong.as_secs_f64())),
        fmt_time(Some(total.main_analysis.as_secs_f64())),
    );
    println!();
}

fn table2(args: &Args, budget: Budget) {
    println!(
        "## Table 2 — main results (scale {}, budget {}s, {} thread{})",
        args.scale,
        args.budget,
        args.threads,
        if args.threads == 1 { "" } else { "s" }
    );
    println!();
    println!(
        "| program | pre (ci/FPG/Mahjong) | analysis | time | M-time | speedup | #fail-casts (A/M) | #poly (A/M) | #cg edges (A/M) |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for name in &args.programs {
        let (prepared, rows) = bench::table2_program(name, args.scale, budget, args.threads);
        for (i, row) in rows.iter().enumerate() {
            let pre = if i == 0 {
                format!(
                    "{:.2}s / {:.3}s / {:.3}s",
                    prepared.ci_seconds, prepared.fpg_seconds, prepared.mahjong_seconds
                )
            } else {
                String::new()
            };
            println!(
                "| {} | {} | {} | {} | {} | {} | {}/{} | {}/{} | {}/{} |",
                if i == 0 { name.as_str() } else { "" },
                pre,
                row.analysis,
                fmt_time(row.baseline.seconds),
                fmt_time(row.mahjong.seconds),
                row.speedup
                    .map(|s| format!("{s:.1}x"))
                    .unwrap_or_else(|| "-".to_owned()),
                fmt_count(row.baseline.may_fail_casts),
                fmt_count(row.mahjong.may_fail_casts),
                fmt_count(row.baseline.poly_call_sites),
                fmt_count(row.mahjong.poly_call_sites),
                fmt_count(row.baseline.call_graph_edges),
                fmt_count(row.mahjong.call_graph_edges),
            );
        }
    }
    println!();
}

fn fig8(args: &Args) {
    println!("## Figure 8 — abstract objects: allocation-site vs Mahjong (scale {})", args.scale);
    println!();
    println!("| program | alloc-site | Mahjong | reduction |");
    println!("|---|---|---|---|");
    let mut total_red = 0.0;
    let mut n = 0;
    for name in &args.programs {
        let prepared = bench::prepare(name, args.scale, &MahjongConfig::default());
        let row = bench::figure8_row(name, &prepared);
        println!(
            "| {} | {} | {} | {:.0}% |",
            name,
            row.alloc_site_objects,
            row.mahjong_objects,
            row.reduction_percent()
        );
        total_red += row.reduction_percent();
        n += 1;
    }
    if n > 0 {
        println!("| **average** | | | **{:.0}%** |", total_red / n as f64);
    }
    println!();
}

fn fig9(args: &Args) {
    println!("## Figure 9 — equivalence-class sizes (checkstyle, scale {})", args.scale);
    println!();
    let prepared = bench::prepare("checkstyle", args.scale, &MahjongConfig::default());
    println!("| class size | #classes |");
    println!("|---|---|");
    for p in bench::figure9(&prepared) {
        println!("| {} | {} |", p.size, p.count);
    }
    println!();
}

fn table1(args: &Args) {
    println!("## Table 1 — example equivalence classes (checkstyle, scale {})", args.scale);
    println!();
    let prepared = bench::prepare("checkstyle", args.scale, &MahjongConfig::default());
    println!("| rank | type | class size | total of type | contents |");
    println!("|---|---|---|---|---|");
    for row in bench::table1(&prepared, 12) {
        println!(
            "| {} | {} | {} | {} | {} |",
            row.rank, row.type_name, row.class_size, row.total_of_type, row.remark
        );
    }
    println!();
}

fn motivation(args: &Args, budget: Budget) {
    println!("## Section 2.1 — pmd under 3obj / T-3obj / M-3obj (scale {})", args.scale);
    println!();
    let (_prepared, m) = bench::motivation(args.scale, budget, args.threads);
    println!("| config | time | #cg edges | #fail-casts | #poly |");
    println!("|---|---|---|---|---|");
    for (name, run) in [("3obj", &m.obj3), ("T-3obj", &m.t_obj3), ("M-3obj", &m.m_obj3)] {
        println!(
            "| {} | {} | {} | {} | {} |",
            name,
            fmt_time(run.seconds),
            fmt_count(run.call_graph_edges),
            fmt_count(run.may_fail_casts),
            fmt_count(run.poly_call_sites),
        );
    }
    println!();
}

fn pre_analysis(args: &Args) {
    println!("## Section 6.1.1 — pre-analysis statistics (scale {})", args.scale);
    println!();
    println!(
        "| program | ci | FPG build | Mahjong | FPG objects | FPG edges | avg NFA | max NFA | !single-type | equiv checks |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for name in &args.programs {
        let prepared = bench::prepare(name, args.scale, &MahjongConfig::default());
        let s = bench::pre_analysis_stats(name, &prepared);
        println!(
            "| {} | {:.2}s | {:.3}s | {:.3}s | {} | {} | {:.0} | {} | {} | {} |",
            s.program,
            s.ci_seconds,
            s.fpg_seconds,
            s.mahjong_seconds,
            s.fpg_objects,
            s.fpg_edges,
            s.avg_nfa_states,
            s.max_nfa_states,
            s.not_single_type,
            s.equivalence_checks,
        );
    }
    println!();
}

fn alias(args: &Args, budget: Budget) {
    println!("## Extension — the may-alias tradeoff (scale {})", args.scale);
    println!();
    println!("| program | alias pairs (2obj) | alias pairs (M-2obj) | #fail-casts | #poly |");
    println!("|---|---|---|---|---|");
    for name in args.programs.iter().take(4) {
        let row = bench::alias_tradeoff(name, args.scale.min(2), budget);
        println!(
            "| {} | {} | {} | {} | {} |",
            row.program,
            row.baseline_alias_pairs,
            row.mahjong_alias_pairs,
            row.may_fail_casts,
            row.poly_call_sites
        );
    }
    println!();
    println!("type-dependent metrics match exactly while alias pairs grow — the");
    println!("designed tradeoff (paper Section 1).");
    println!();
}

fn ablations(args: &Args, budget: Budget) {
    let program = args
        .programs
        .first()
        .cloned()
        .unwrap_or_else(|| "pmd".to_owned());
    println!("## Ablations — design choices on {program} (scale {})", args.scale);
    println!();
    println!("| config | merged objects | merge time | M-2cs #fail-casts |");
    println!("|---|---|---|---|");
    for row in bench::ablations(&program, args.scale, budget) {
        println!(
            "| {} | {} | {:.3}s | {} |",
            row.name,
            row.merged_objects,
            row.merge_seconds,
            fmt_count(row.may_fail_casts_m2cs),
        );
    }
    println!();
}
