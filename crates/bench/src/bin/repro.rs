//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro --exp table2 [--scale N] [--budget SECS] [--threads N] [--programs a,b,c]
//!       [--metrics-json PATH] [--bench-json PATH] [--force] [--trace PATH]
//!       [--profile] [--profile-json PATH] [--heartbeat SECS]
//! repro --exp fig8
//! repro --exp fig9
//! repro --exp table1
//! repro --exp motivation
//! repro --exp pre_analysis
//! repro --exp ablations
//! repro --exp alias
//! repro --exp all
//! ```
//!
//! `--threads` sets the solver's wave-propagation shard count (`0`,
//! the default, means one shard per available hardware thread; every
//! count produces bit-identical results). `--metrics-json` dumps the
//! telemetry registry as JSON-Lines and `--trace` writes a Chrome
//! `trace_event` file (load it in `about:tracing` or Perfetto). The
//! benchmark record lands at `--bench-json PATH` when given, otherwise
//! as `BENCH_pta.json` next to the `--metrics-json` file; a Mahjong
//! phase record (`BENCH_mahjong.json`) is written as a sibling. An
//! existing record is never overwritten unless `--force` is passed. `--exp all`
//! additionally prints a per-experiment phase-time summary
//! (pre-analysis vs. Mahjong vs. the main analysis). Set
//! `OBS_DISABLE=1` to turn recording into no-ops.
//!
//! `--profile` writes the solver-introspection profile (per-wave
//! timeline records, the memory-attribution breakdown, and the
//! hottest-pointer table — see `obs::timeline`) as `PROFILE_pta.json`
//! next to the benchmark record, or wherever `--profile-json PATH`
//! says (implies `--profile`). Unlike bench records the profile is a
//! derived artifact and is overwritten freely. `--heartbeat SECS`
//! prints a one-line progress pulse (wave round, worklist pops, live
//! set words) to stderr every `SECS` seconds so multi-minute runs are
//! not silent.

use std::time::Duration;

use bench::{fmt_count, fmt_time};
use mahjong::MahjongConfig;
use pta::Budget;

/// Every experiment `--exp` accepts, in the order `--exp all` runs them
/// (plus `all` itself). Printed when an unknown name is given.
const EXPERIMENTS: &[&str] = &[
    "motivation",
    "fig8",
    "fig9",
    "table1",
    "pre_analysis",
    "table2",
    "ablations",
    "alias",
    "all",
];

#[derive(Debug)]
struct Args {
    exp: String,
    scale: usize,
    budget: u64,
    /// Solver shard count, already resolved (`--threads 0` = auto).
    threads: usize,
    programs: Vec<String>,
    metrics_json: Option<String>,
    bench_json: Option<String>,
    force: bool,
    trace: Option<String>,
    profile: bool,
    profile_json: Option<String>,
    /// Heartbeat period in seconds (0 = off).
    heartbeat: u64,
}

fn parse_args() -> Args {
    let mut exp = "all".to_owned();
    let mut scale = 4;
    let mut budget = 60;
    let mut threads = 0;
    let mut metrics_json = None;
    let mut bench_json = None;
    let mut force = false;
    let mut trace = None;
    let mut profile = false;
    let mut profile_json = None;
    let mut heartbeat = 0u64;
    let mut programs: Vec<String> = workloads::dacapo::PROGRAMS
        .iter()
        .map(|s| s.to_string())
        .collect();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--exp" => {
                exp = argv.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--scale" => {
                scale = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(scale);
                i += 2;
            }
            "--budget" => {
                budget = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(budget);
                i += 2;
            }
            "--programs" => {
                programs = argv
                    .get(i + 1)
                    .map(|s| s.split(',').map(str::to_owned).collect())
                    .unwrap_or(programs);
                i += 2;
            }
            "--threads" => {
                threads = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(threads);
                i += 2;
            }
            "--metrics-json" => {
                metrics_json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--bench-json" => {
                bench_json = argv.get(i + 1).cloned();
                i += 2;
            }
            "--force" => {
                force = true;
                i += 1;
            }
            "--trace" => {
                trace = argv.get(i + 1).cloned();
                i += 2;
            }
            "--profile" => {
                profile = true;
                i += 1;
            }
            "--profile-json" => {
                profile_json = argv.get(i + 1).cloned();
                profile = true;
                i += 2;
            }
            "--heartbeat" => {
                heartbeat = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(heartbeat);
                i += 2;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    Args {
        exp,
        scale,
        budget,
        threads: match threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        },
        programs,
        metrics_json,
        bench_json,
        force,
        trace,
        profile,
        profile_json,
        heartbeat,
    }
}

fn main() {
    let args = parse_args();
    // Validate the benchmark-record target up front: refusing to
    // clobber after a multi-minute run would throw the work away.
    let bench_target = args
        .bench_json
        .clone()
        .or_else(|| args.metrics_json.as_deref().map(bench_pta_path));
    if let Some(bench) = &bench_target {
        if !args.force && std::path::Path::new(bench).exists() {
            eprintln!("repro: refusing to overwrite {bench} (pass --force to replace it)");
            std::process::exit(1);
        }
    }
    start_heartbeat(args.heartbeat);
    let budget = Budget::seconds(args.budget);
    match args.exp.as_str() {
        "table2" => table2(&args, budget),
        "fig8" => fig8(&args),
        "fig9" => fig9(&args),
        "table1" => table1(&args),
        "motivation" => motivation(&args, budget),
        "pre_analysis" => pre_analysis(&args),
        "ablations" => ablations(&args, budget),
        "alias" => alias(&args, budget),
        "all" => all(&args, budget),
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!("valid experiments: {}", EXPERIMENTS.join(", "));
            std::process::exit(2);
        }
    }
    if let Some(path) = &args.metrics_json {
        write_or_die(path, &obs::export_jsonl());
    }
    if let Some(bench) = &bench_target {
        // Re-check: a file may have appeared while the experiment ran.
        if !args.force && std::path::Path::new(bench).exists() {
            eprintln!("repro: refusing to overwrite {bench} (pass --force to replace it)");
            std::process::exit(1);
        }
        write_or_die(bench, &bench_pta_json(&args));
        eprintln!("repro: wrote {bench}");
        // The Mahjong-phase record rides along as a sibling file with
        // the same no-clobber semantics (but skipping, not aborting —
        // the main record is already on disk at this point).
        let mahjong = bench_mahjong_path(bench);
        if !args.force && std::path::Path::new(&mahjong).exists() {
            eprintln!("repro: keeping existing {mahjong} (pass --force to replace it)");
        } else {
            write_or_die(&mahjong, &bench_mahjong_json(&args));
            eprintln!("repro: wrote {mahjong}");
        }
    }
    if let Some(path) = &args.trace {
        write_or_die(path, &obs::export_chrome_trace());
    }
    if args.profile {
        let path = profile_path(&args, bench_target.as_deref());
        write_or_die(&path, &profile_json(&args));
        eprintln!("repro: wrote {path}");
    }
}

/// Spawns the `--heartbeat` stderr pulse (detached; dies with the
/// process). Reads the solver's live counters, which are updated once
/// per wave, so the pulse tracks progress without touching hot paths.
fn start_heartbeat(secs: u64) {
    if secs == 0 {
        return;
    }
    let start = std::time::Instant::now();
    std::thread::spawn(move || loop {
        std::thread::sleep(Duration::from_secs(secs));
        eprintln!(
            "repro: [{}s] wave {} · {} pops · {} live words",
            start.elapsed().as_secs(),
            obs::counter("pta.live_wave_rounds").get(),
            obs::counter("pta.live_worklist_pops").get(),
            obs::gauge("pta.live_pts_words").get(),
        );
    });
}

/// `PROFILE_pta.json` lands next to the benchmark record (or in the
/// working directory when no bench target is configured), unless
/// `--profile-json` says otherwise.
fn profile_path(args: &Args, bench_target: Option<&str>) -> String {
    if let Some(p) = &args.profile_json {
        return p.clone();
    }
    match bench_target {
        Some(b) => std::path::Path::new(b)
            .with_file_name("PROFILE_pta.json")
            .to_string_lossy()
            .into_owned(),
        None => "PROFILE_pta.json".to_owned(),
    }
}

/// The solver-introspection profile: run header plus the timeline's
/// own JSON export (records, memory breakdown, top-K table) under
/// `"profile"`.
fn profile_json(args: &Args) -> String {
    let r = obs::registry();
    format!(
        "{{\n  \"exp\": \"{}\",\n  \"scale\": {},\n  \"budget_secs\": {},\n  \"threads\": {},\n  \
         \"pre_analysis_secs\": {:.6},\n  \"main_analysis_secs\": {:.6},\n  \
         \"pts_peak_words\": {},\n  \"pending_peak_words\": {},\n  \"profile\": {}\n}}\n",
        args.exp,
        args.scale,
        args.budget,
        args.threads,
        r.phase_time("pre_analysis").as_secs_f64(),
        r.phase_time("main_analysis").as_secs_f64(),
        obs::gauge("pta.pts_peak_words").get(),
        obs::gauge("pta.pending_peak_words").get(),
        obs::timeline().export_json(),
    )
}

/// `BENCH_pta.json` lands next to the `--metrics-json` file.
fn bench_pta_path(metrics_path: &str) -> String {
    let p = std::path::Path::new(metrics_path);
    p.with_file_name("BENCH_pta.json")
        .to_string_lossy()
        .into_owned()
}

/// A small, stable-schema benchmark record for per-PR tracking: phase
/// wall-clock, propagation-volume counters, and the peak points-to-set
/// footprint in 64-bit words.
fn bench_pta_json(args: &Args) -> String {
    let r = obs::registry();
    let phase = |name: &str| r.phase_time(name).as_secs_f64();
    format!(
        "{{\n  \"exp\": \"{}\",\n  \"scale\": {},\n  \"budget_secs\": {},\n  \"threads\": {},\n  \
         \"phase_secs\": {{\n    \"pre_analysis\": {:.6},\n    \"mahjong\": {:.6},\n    \
         \"main_analysis\": {:.6}\n  }},\n  \
         \"worklist_pops\": {},\n  \"propagated_objects\": {},\n  \"delta_objects\": {},\n  \
         \"copy_edges\": {},\n  \"pts_peak_words\": {},\n  \
         \"scc_collapsed_ptrs\": {},\n  \"collapse_sweeps\": {},\n  \"wave_rounds\": {},\n  \
         \"par_shards\": {},\n  \"par_steal_none\": {},\n  \"wave_barrier_ns\": {}\n}}\n",
        args.exp,
        args.scale,
        args.budget,
        args.threads,
        phase("pre_analysis"),
        phase("mahjong.fpg_build") + phase("mahjong.automata_build")
            + phase("mahjong.equivalence_check"),
        phase("main_analysis"),
        obs::counter("pta.worklist_pops").get(),
        obs::counter("pta.propagated_objects").get(),
        obs::counter("pta.delta_objects").get(),
        obs::counter("pta.copy_edges").get(),
        obs::gauge("pta.pts_peak_words").get(),
        obs::counter("pta.scc_collapsed_ptrs").get(),
        obs::counter("pta.collapse_sweeps").get(),
        obs::counter("pta.wave_rounds").get(),
        obs::counter("pta.par_shards").get(),
        obs::counter("pta.par_steal_none").get(),
        obs::counter("pta.wave_barrier_ns").get(),
    )
}

/// The Mahjong benchmark record lands next to the pta record:
/// `BENCH_pta.json` → `BENCH_mahjong.json`, and any other
/// `BENCH_<label>.json` → `BENCH_mahjong_<label>.json` (the pairing
/// `scripts/bench_table.py` reassembles).
fn bench_mahjong_path(bench_path: &str) -> String {
    let p = std::path::Path::new(bench_path);
    let name = p
        .file_name()
        .and_then(|s| s.to_str())
        .unwrap_or("BENCH_pta.json");
    let sibling = if name == "BENCH_pta.json" {
        "BENCH_mahjong.json".to_owned()
    } else if let Some(rest) = name.strip_prefix("BENCH_") {
        format!("BENCH_mahjong_{rest}")
    } else {
        format!("mahjong_{name}")
    };
    p.with_file_name(sibling).to_string_lossy().into_owned()
}

/// The Mahjong pre-analysis record: per-phase wall-clock plus the
/// signature-pipeline counters (`hk_runs` is 0 on the fast path).
fn bench_mahjong_json(args: &Args) -> String {
    let r = obs::registry();
    let phase = |name: &str| r.phase_time(name).as_secs_f64();
    format!(
        "{{\n  \"exp\": \"{}\",\n  \"scale\": {},\n  \"threads\": {},\n  \
         \"phase_secs\": {{\n    \"fpg_build\": {:.6},\n    \"automata_build\": {:.6},\n    \
         \"equivalence_check\": {:.6}\n  }},\n  \
         \"objects\": {},\n  \"merged_objects\": {},\n  \"not_single_type\": {},\n  \
         \"dfa_built\": {},\n  \"sig_buckets\": {},\n  \"hk_runs\": {},\n  \
         \"canon_ns\": {},\n  \"shard_skew\": {}\n}}\n",
        args.exp,
        args.scale,
        args.threads,
        phase("mahjong.fpg_build"),
        phase("mahjong.automata_build"),
        phase("mahjong.equivalence_check"),
        obs::counter("mahjong.objects").get(),
        obs::counter("mahjong.merged_objects").get(),
        obs::counter("mahjong.not_single_type").get(),
        obs::counter("mahjong.dfa_built").get(),
        obs::counter("mahjong.sig_buckets").get(),
        obs::counter("mahjong.hk_runs").get(),
        obs::counter("mahjong.canon_ns").get(),
        obs::gauge("mahjong.shard_skew").get(),
    )
}

fn write_or_die(path: &str, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("repro: cannot write {path}: {e}");
        std::process::exit(1);
    }
}

// --- `--exp all` with the phase-time summary -----------------------------------

/// Cumulative wall-clock in the three pipeline stages, read from the
/// telemetry registry's span log.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseClock {
    pre_analysis: Duration,
    mahjong: Duration,
    main_analysis: Duration,
}

fn phase_clock() -> PhaseClock {
    let r = obs::registry();
    PhaseClock {
        pre_analysis: r.phase_time("pre_analysis"),
        mahjong: r.phase_time("mahjong.fpg_build")
            + r.phase_time("mahjong.automata_build")
            + r.phase_time("mahjong.equivalence_check"),
        main_analysis: r.phase_time("main_analysis"),
    }
}

impl PhaseClock {
    fn since(self, earlier: PhaseClock) -> PhaseClock {
        PhaseClock {
            pre_analysis: self.pre_analysis - earlier.pre_analysis,
            mahjong: self.mahjong - earlier.mahjong,
            main_analysis: self.main_analysis - earlier.main_analysis,
        }
    }
}

/// One named experiment runner, as dispatched by `--exp all`.
type Experiment<'a> = (&'a str, Box<dyn Fn() + 'a>);

fn all(args: &Args, budget: Budget) {
    let experiments: Vec<Experiment> = vec![
        ("motivation", Box::new(|| motivation(args, budget))),
        ("fig8", Box::new(|| fig8(args))),
        ("fig9", Box::new(|| fig9(args))),
        ("table1", Box::new(|| table1(args))),
        ("pre_analysis", Box::new(|| pre_analysis(args))),
        ("table2", Box::new(|| table2(args, budget))),
        ("ablations", Box::new(|| ablations(args, budget))),
        ("alias", Box::new(|| alias(args, budget))),
    ];
    let mut summary: Vec<(&str, PhaseClock)> = Vec::new();
    for (name, run) in experiments {
        let before = phase_clock();
        run();
        summary.push((name, phase_clock().since(before)));
    }

    println!("## Phase-time summary — wall-clock per experiment");
    println!();
    println!("| experiment | pre-analysis | Mahjong | main analysis |");
    println!("|---|---|---|---|");
    let mut total = PhaseClock::default();
    for (name, clock) in &summary {
        println!(
            "| {} | {} | {} | {} |",
            name,
            fmt_time(Some(clock.pre_analysis.as_secs_f64())),
            fmt_time(Some(clock.mahjong.as_secs_f64())),
            fmt_time(Some(clock.main_analysis.as_secs_f64())),
        );
        total.pre_analysis += clock.pre_analysis;
        total.mahjong += clock.mahjong;
        total.main_analysis += clock.main_analysis;
    }
    println!(
        "| **total** | **{}** | **{}** | **{}** |",
        fmt_time(Some(total.pre_analysis.as_secs_f64())),
        fmt_time(Some(total.mahjong.as_secs_f64())),
        fmt_time(Some(total.main_analysis.as_secs_f64())),
    );
    println!();
}

fn table2(args: &Args, budget: Budget) {
    println!(
        "## Table 2 — main results (scale {}, budget {}s, {} thread{})",
        args.scale,
        args.budget,
        args.threads,
        if args.threads == 1 { "" } else { "s" }
    );
    println!();
    println!(
        "| program | pre (ci/FPG/Mahjong) | analysis | time | M-time | speedup | #fail-casts (A/M) | #poly (A/M) | #cg edges (A/M) |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for name in &args.programs {
        let (prepared, rows) = bench::table2_program(name, args.scale, budget, args.threads);
        for (i, row) in rows.iter().enumerate() {
            let pre = if i == 0 {
                format!(
                    "{:.2}s / {:.3}s / {:.3}s",
                    prepared.ci_seconds, prepared.fpg_seconds, prepared.mahjong_seconds
                )
            } else {
                String::new()
            };
            println!(
                "| {} | {} | {} | {} | {} | {} | {}/{} | {}/{} | {}/{} |",
                if i == 0 { name.as_str() } else { "" },
                pre,
                row.analysis,
                fmt_time(row.baseline.seconds),
                fmt_time(row.mahjong.seconds),
                row.speedup
                    .map(|s| format!("{s:.1}x"))
                    .unwrap_or_else(|| "-".to_owned()),
                fmt_count(row.baseline.may_fail_casts),
                fmt_count(row.mahjong.may_fail_casts),
                fmt_count(row.baseline.poly_call_sites),
                fmt_count(row.mahjong.poly_call_sites),
                fmt_count(row.baseline.call_graph_edges),
                fmt_count(row.mahjong.call_graph_edges),
            );
        }
    }
    println!();
}

fn fig8(args: &Args) {
    println!("## Figure 8 — abstract objects: allocation-site vs Mahjong (scale {})", args.scale);
    println!();
    println!("| program | alloc-site | Mahjong | reduction |");
    println!("|---|---|---|---|");
    let mut total_red = 0.0;
    let mut n = 0;
    for name in &args.programs {
        let prepared = bench::prepare(name, args.scale, &MahjongConfig::default());
        let row = bench::figure8_row(name, &prepared);
        println!(
            "| {} | {} | {} | {:.0}% |",
            name,
            row.alloc_site_objects,
            row.mahjong_objects,
            row.reduction_percent()
        );
        total_red += row.reduction_percent();
        n += 1;
    }
    if n > 0 {
        println!("| **average** | | | **{:.0}%** |", total_red / n as f64);
    }
    println!();
}

fn fig9(args: &Args) {
    println!("## Figure 9 — equivalence-class sizes (checkstyle, scale {})", args.scale);
    println!();
    let prepared = bench::prepare("checkstyle", args.scale, &MahjongConfig::default());
    println!("| class size | #classes |");
    println!("|---|---|");
    for p in bench::figure9(&prepared) {
        println!("| {} | {} |", p.size, p.count);
    }
    println!();
}

fn table1(args: &Args) {
    println!("## Table 1 — example equivalence classes (checkstyle, scale {})", args.scale);
    println!();
    let prepared = bench::prepare("checkstyle", args.scale, &MahjongConfig::default());
    println!("| rank | type | class size | total of type | contents |");
    println!("|---|---|---|---|---|");
    for row in bench::table1(&prepared, 12) {
        println!(
            "| {} | {} | {} | {} | {} |",
            row.rank, row.type_name, row.class_size, row.total_of_type, row.remark
        );
    }
    println!();
}

fn motivation(args: &Args, budget: Budget) {
    println!("## Section 2.1 — pmd under 3obj / T-3obj / M-3obj (scale {})", args.scale);
    println!();
    let (_prepared, m) = bench::motivation(args.scale, budget, args.threads);
    println!("| config | time | #cg edges | #fail-casts | #poly |");
    println!("|---|---|---|---|---|");
    for (name, run) in [("3obj", &m.obj3), ("T-3obj", &m.t_obj3), ("M-3obj", &m.m_obj3)] {
        println!(
            "| {} | {} | {} | {} | {} |",
            name,
            fmt_time(run.seconds),
            fmt_count(run.call_graph_edges),
            fmt_count(run.may_fail_casts),
            fmt_count(run.poly_call_sites),
        );
    }
    println!();
}

fn pre_analysis(args: &Args) {
    println!("## Section 6.1.1 — pre-analysis statistics (scale {})", args.scale);
    println!();
    println!(
        "| program | ci | FPG build | Mahjong | FPG objects | FPG edges | avg NFA | max NFA | !single-type | equiv checks |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|");
    for name in &args.programs {
        let prepared = bench::prepare(name, args.scale, &MahjongConfig::default());
        let s = bench::pre_analysis_stats(name, &prepared);
        println!(
            "| {} | {:.2}s | {:.3}s | {:.3}s | {} | {} | {:.0} | {} | {} | {} |",
            s.program,
            s.ci_seconds,
            s.fpg_seconds,
            s.mahjong_seconds,
            s.fpg_objects,
            s.fpg_edges,
            s.avg_nfa_states,
            s.max_nfa_states,
            s.not_single_type,
            s.equivalence_checks,
        );
    }
    println!();
}

fn alias(args: &Args, budget: Budget) {
    println!("## Extension — the may-alias tradeoff (scale {})", args.scale);
    println!();
    println!("| program | alias pairs (2obj) | alias pairs (M-2obj) | #fail-casts | #poly |");
    println!("|---|---|---|---|---|");
    for name in args.programs.iter().take(4) {
        let row = bench::alias_tradeoff(name, args.scale.min(2), budget);
        println!(
            "| {} | {} | {} | {} | {} |",
            row.program,
            row.baseline_alias_pairs,
            row.mahjong_alias_pairs,
            row.may_fail_casts,
            row.poly_call_sites
        );
    }
    println!();
    println!("type-dependent metrics match exactly while alias pairs grow — the");
    println!("designed tradeoff (paper Section 1).");
    println!();
}

fn ablations(args: &Args, budget: Budget) {
    let program = args
        .programs
        .first()
        .cloned()
        .unwrap_or_else(|| "pmd".to_owned());
    println!("## Ablations — design choices on {program} (scale {})", args.scale);
    println!();
    println!("| config | merged objects | merge time | M-2cs #fail-casts |");
    println!("|---|---|---|---|");
    for row in bench::ablations(&program, args.scale, budget) {
        println!(
            "| {} | {} | {:.3}s | {} |",
            row.name,
            row.merged_objects,
            row.merge_seconds,
            fmt_count(row.may_fail_casts_m2cs),
        );
    }
    println!();
}
