//! Micro-bench for the automata substrate: NFA→DFA subset construction,
//! Hopcroft–Karp equivalence (the "almost linear time" claim of
//! paper Section 2.2.2), and the canonical signature that replaced
//! pairwise HK in the merge phase (DESIGN.md §11), on chains and
//! layered graphs of growing size. `signature/canonicalize` vs.
//! `hopcroft_karp/equivalent_chains` at the same `n` shows the
//! per-automaton cost trade: one canonicalization replaces *every* HK
//! query the automaton would have participated in.

use automata::{Dfa, NfaBuilder, Output, Symbol};
use bench::timing;

/// A chain automaton of `n` states over one symbol.
fn chain(n: usize, out_offset: u32) -> Dfa {
    let mut b = NfaBuilder::new();
    let states: Vec<_> = (0..n)
        .map(|i| b.add_state(Output(out_offset + (i % 4) as u32)))
        .collect();
    for w in states.windows(2) {
        b.add_transition(w[0], Symbol(0), w[1]);
    }
    b.finish(states[0]).to_dfa()
}

/// A layered nondeterministic automaton: `n` states in layers, two
/// successors per symbol into the next layer — nondeterministic but
/// with a polynomially-sized determinization (DFA states are subsets
/// within one layer of width ≤ 4), mirroring the shallow branching of
/// real field points-to graphs rather than the exponential worst case.
fn layered_nfa(n: usize, syms: u32) -> automata::Nfa {
    let width = 4usize;
    let mut b = NfaBuilder::new();
    let states: Vec<_> = (0..n).map(|i| b.add_state(Output((i % 3) as u32))).collect();
    let layers = n / width;
    for layer in 0..layers.saturating_sub(1) {
        for lane in 0..width {
            let i = layer * width + lane;
            for sym in 0..syms {
                let a = (layer + 1) * width + (lane + sym as usize) % width;
                let c = (layer + 1) * width + (lane + sym as usize + 1) % width;
                b.add_transition(states[i], Symbol(sym), states[a]);
                b.add_transition(states[i], Symbol(sym), states[c]);
            }
        }
    }
    b.finish(states[0])
}

fn main() {
    for n in [64usize, 256, 1024, 4096] {
        let a = chain(n, 0);
        let b = chain(n, 0);
        timing::bench(&format!("hopcroft_karp/equivalent_chains/{n}"), || {
            assert!(a.equivalent(&b))
        });
    }
    for n in [64usize, 256, 1024] {
        let nfa = layered_nfa(n, 3);
        timing::bench(&format!("subset_construction/to_dfa/{n}"), || {
            nfa.to_dfa().state_count()
        });
    }
    for n in [64usize, 256, 1024, 4096] {
        let a = chain(n, 0);
        let b = chain(n, 0);
        timing::bench(&format!("signature/canonicalize/{n}"), || {
            assert_eq!(a.signature(), b.signature())
        });
    }
}
