//! Bench for the Section 6.1.1 pre-analysis phase: the
//! context-insensitive points-to analysis and FPG construction.

use bench::timing;

fn main() {
    for name in ["luindex", "pmd", "eclipse"] {
        let w = workloads::dacapo::workload(name, 1);
        timing::bench(&format!("pre_analysis/ci/{name}"), || {
            pta::pre_analysis(&w.program).expect("fits budget")
        });
        let pre = pta::pre_analysis(&w.program).expect("fits budget");
        timing::bench(&format!("pre_analysis/fpg/{name}"), || {
            mahjong::FieldPointsToGraph::from_analysis(&w.program, &pre, true)
        });
    }
}
