//! Criterion bench for the Section 6.1.1 pre-analysis phase: the
//! context-insensitive points-to analysis and FPG construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn pre_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("pre_analysis");
    group.sample_size(10);
    for name in ["luindex", "pmd", "eclipse"] {
        let w = workloads::dacapo::workload(name, 1);
        group.bench_with_input(BenchmarkId::new("ci", name), &w.program, |b, p| {
            b.iter(|| pta::pre_analysis(p).expect("fits budget"))
        });
        let pre = pta::pre_analysis(&w.program).expect("fits budget");
        group.bench_with_input(
            BenchmarkId::new("fpg", name),
            &(&w.program, &pre),
            |b, (p, pre)| b.iter(|| mahjong::FieldPointsToGraph::from_analysis(p, pre, true)),
        );
    }
    group.finish();
}

criterion_group!(benches, pre_analysis);
criterion_main!(benches);
