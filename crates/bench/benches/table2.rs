//! Criterion bench for Table 2: each `(program, analysis, heap)` cell
//! as a measurable benchmark. Uses small scales so the full matrix
//! stays under Criterion's default time budget; the `repro` binary runs
//! the paper-scale version.

use bench::{HeapKind, Sensitivity};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mahjong::MahjongConfig;
use pta::Budget;

fn table2_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    let budget = Budget::seconds(120);

    for name in ["luindex", "pmd"] {
        let prepared = bench::prepare(name, 1, &MahjongConfig::default());
        for s in Sensitivity::TABLE2 {
            for (heap, label) in [(HeapKind::AllocSite, ""), (HeapKind::Mahjong, "M-")] {
                let id = BenchmarkId::new(format!("{label}{}", s.name()), name);
                group.bench_with_input(id, &prepared, |b, prepared| {
                    b.iter(|| {
                        bench::run_configuration(
                            &prepared.program,
                            s,
                            heap,
                            &prepared.mahjong.mom,
                            budget,
                        )
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, table2_cells);
criterion_main!(benches);
