//! Bench for Table 2: each `(program, analysis, heap)` cell as a
//! measurable benchmark. Uses small scales so the full matrix stays
//! fast; the `repro` binary runs the paper-scale version.

use bench::timing;
use bench::{HeapKind, Sensitivity};
use mahjong::MahjongConfig;
use pta::Budget;

fn main() {
    let budget = Budget::seconds(120);
    for name in ["luindex", "pmd"] {
        let prepared = bench::prepare(name, 1, &MahjongConfig::default());
        for s in Sensitivity::TABLE2 {
            for (heap, label) in [(HeapKind::AllocSite, ""), (HeapKind::Mahjong, "M-")] {
                timing::bench(&format!("table2/{label}{}/{name}", s.name()), || {
                    bench::run_configuration(
                        &prepared.program,
                        s,
                        heap,
                        &prepared.mahjong.mom,
                        budget,
                        1,
                    )
                });
            }
        }
    }
}
