//! Bench for Figure 8's production step: building the heap abstraction
//! (FPG + merge) per program, with the object counts reported as a
//! side effect once per program.

use bench::timing;
use mahjong::MahjongConfig;

fn main() {
    for name in workloads::dacapo::PROGRAMS {
        let w = workloads::dacapo::workload(name, 1);
        let pre = pta::pre_analysis(&w.program).expect("ci fits budget");
        // Report the Figure 8 pair once.
        let out = mahjong::build_heap_abstraction(&w.program, &pre, &MahjongConfig::default());
        eprintln!(
            "fig8 {name}: alloc-site={} mahjong={} ({:.0}% reduction)",
            out.stats.objects,
            out.stats.merged_objects,
            100.0 * (1.0 - out.stats.merged_objects as f64 / out.stats.objects as f64)
        );
        timing::bench(&format!("fig8_objects/merge/{name}"), || {
            mahjong::build_heap_abstraction(&w.program, &pre, &MahjongConfig::default())
        });
    }
}
