//! Criterion bench for Figure 8's production step: building the heap
//! abstraction (FPG + merge) per program, with the object counts
//! reported as a side effect once per program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mahjong::MahjongConfig;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_objects");
    group.sample_size(10);
    for name in workloads::dacapo::PROGRAMS {
        let w = workloads::dacapo::workload(name, 1);
        let pre = pta::pre_analysis(&w.program).expect("ci fits budget");
        // Report the Figure 8 pair once.
        let out = mahjong::build_heap_abstraction(&w.program, &pre, &MahjongConfig::default());
        eprintln!(
            "fig8 {name}: alloc-site={} mahjong={} ({:.0}% reduction)",
            out.stats.objects,
            out.stats.merged_objects,
            100.0 * (1.0 - out.stats.merged_objects as f64 / out.stats.objects as f64)
        );
        group.bench_with_input(
            BenchmarkId::new("merge", name),
            &(&w.program, &pre),
            |b, (program, pre)| {
                b.iter(|| mahjong::build_heap_abstraction(program, pre, &MahjongConfig::default()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
