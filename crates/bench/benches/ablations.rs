//! Criterion bench for the design-choice ablations DESIGN.md calls
//! out: Condition 2 on/off, null modeling on/off, sequential vs
//! parallel type-consistency checking, representative choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mahjong::{MahjongConfig, Representative};

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let w = workloads::dacapo::workload("pmd", 2);
    let pre = pta::pre_analysis(&w.program).expect("fits budget");
    let fpg = mahjong::FieldPointsToGraph::from_analysis(&w.program, &pre, true);

    let configs: Vec<(&str, MahjongConfig)> = vec![
        ("default", MahjongConfig::default()),
        (
            "no-condition2",
            MahjongConfig {
                enforce_condition2: false,
                ..MahjongConfig::default()
            },
        ),
        (
            "parallel-4",
            MahjongConfig {
                threads: 4,
                ..MahjongConfig::default()
            },
        ),
        (
            "parallel-8",
            MahjongConfig {
                threads: 8,
                ..MahjongConfig::default()
            },
        ),
        (
            "repr-largest",
            MahjongConfig {
                representative: Representative::Largest,
                ..MahjongConfig::default()
            },
        ),
    ];
    for (label, config) in configs {
        group.bench_with_input(BenchmarkId::new("merge", label), &config, |b, config| {
            b.iter(|| mahjong::merge_equivalent_objects(&fpg, config))
        });
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
