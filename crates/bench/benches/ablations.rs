//! Bench for the design-choice ablations DESIGN.md calls out:
//! Condition 2 on/off, null modeling on/off, sequential vs parallel
//! type-consistency checking, representative choice.

use bench::timing;
use mahjong::{MahjongConfig, Representative};

fn main() {
    let w = workloads::dacapo::workload("pmd", 2);
    let pre = pta::pre_analysis(&w.program).expect("fits budget");
    let fpg = mahjong::FieldPointsToGraph::from_analysis(&w.program, &pre, true);

    let configs: Vec<(&str, MahjongConfig)> = vec![
        ("default", MahjongConfig::default()),
        (
            "no-condition2",
            MahjongConfig {
                enforce_condition2: false,
                ..MahjongConfig::default()
            },
        ),
        (
            "parallel-4",
            MahjongConfig {
                threads: 4,
                ..MahjongConfig::default()
            },
        ),
        (
            "parallel-8",
            MahjongConfig {
                threads: 8,
                ..MahjongConfig::default()
            },
        ),
        (
            "repr-largest",
            MahjongConfig {
                representative: Representative::Largest,
                ..MahjongConfig::default()
            },
        ),
    ];
    for (label, config) in configs {
        timing::bench(&format!("ablations/merge/{label}"), || {
            mahjong::merge_equivalent_objects(&fpg, &config)
        });
    }
}
