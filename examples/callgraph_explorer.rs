//! Call-graph exploration: run the pipeline on a `.jir` file (or a
//! built-in sample), then dump the discovered call graph with
//! per-site devirtualization verdicts — the "downstream consumer" view
//! the paper argues Mahjong serves.
//!
//! ```text
//! cargo run --example callgraph_explorer [path/to/program.jir]
//! ```

use clients::{devirtualization, CallGraph};
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{AnalysisConfig, ObjectSensitive};

const SAMPLE: &str = "
class Event {
  method deliver(this) { return; }
}
class ClickEvent extends Event {
  method deliver(this) { return; }
}
class KeyEvent extends Event {
  method deliver(this) { return; }
}
class Queue {
  field head: Event;
  method push(this, e) { this.head = e; return; }
  method pop(this) { e = this.head; return e; }
}
class App {
  entry static method main() {
    q = new Queue;
    c = new ClickEvent;
    virt q.push(c);
    k = new KeyEvent;
    q2 = new Queue;
    virt q2.push(k);
    e = virt q.pop();
    virt e.deliver();
    return;
  }
}";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => SAMPLE.to_owned(),
    };
    let program = jir::parse(&source)?;

    let pre = pta::pre_analysis(&program)?;
    let out = build_heap_abstraction(&program, &pre, &MahjongConfig::default());
    let result = AnalysisConfig::new(ObjectSensitive::new(2), out.mom).run(&program)?;

    let cg = CallGraph::from_result(&result);
    let devirt = devirtualization(&program, &result);
    println!(
        "{} call-graph edges over {} reachable methods\n",
        cg.edge_count(),
        result.reachable_method_count()
    );
    for site in program.call_site_ids() {
        let targets: Vec<_> = cg.targets(site).collect();
        if targets.is_empty() {
            continue;
        }
        let caller = program.method(program.call_site(site).method());
        let verdict = if devirt.mono_sites.contains(&site) {
            "mono"
        } else if devirt.poly_sites.contains(&site) {
            "POLY"
        } else {
            "static"
        };
        let names: Vec<String> = targets
            .iter()
            .map(|&t| {
                let m = program.method(t);
                format!("{}::{}", program.class(m.class()).name(), m.name())
            })
            .collect();
        println!(
            "[{verdict}] {}::{} @ {site} -> {}",
            program.class(caller.class()).name(),
            caller.name(),
            names.join(", ")
        );
    }
    Ok(())
}
