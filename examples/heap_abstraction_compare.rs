//! Head-to-head heap abstractions on a realistic workload: the
//! allocation-site abstraction, the naive allocation-type abstraction
//! (paper Section 2.1), and Mahjong — the experiment the paper's
//! introduction motivates.
//!
//! ```text
//! cargo run --release --example heap_abstraction_compare [program] [scale]
//! ```

use std::time::Instant;

use clients::ClientMetrics;
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{AllocSiteAbstraction, AllocTypeAbstraction, AnalysisConfig, Budget, ObjectSensitive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "pmd".to_owned());
    let scale = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let workload = workloads::dacapo::workload(&name, scale);
    let program = &workload.program;
    println!(
        "{name} (scale {scale}): {} classes, {} allocation sites, {} call sites",
        program.class_count(),
        program.alloc_count(),
        program.call_site_count()
    );

    let pre = pta::pre_analysis(program)?;
    let out = build_heap_abstraction(program, &pre, &MahjongConfig::default());
    println!(
        "mahjong merged {} sites into {} abstract objects ({:.0}% reduction)\n",
        out.stats.objects,
        out.stats.merged_objects,
        100.0 * (1.0 - out.stats.merged_objects as f64 / out.stats.objects as f64)
    );

    println!("{:<22} {:>9} {:>12} {:>12} {:>12}", "config", "time", "#cg edges", "#poly", "#fail-casts");
    let budget = Budget::seconds(120);
    let report = |label: &str, r: Result<pta::AnalysisResult, pta::Unscalable>, t: Instant| {
        match r {
            Ok(r) => {
                let m = ClientMetrics::compute(program, &r);
                println!(
                    "{:<22} {:>8.3}s {:>12} {:>12} {:>12}",
                    label,
                    t.elapsed().as_secs_f64(),
                    m.call_graph_edges,
                    m.poly_call_sites,
                    m.may_fail_casts
                );
            }
            Err(e) => println!("{label:<22} unscalable: {e}"),
        }
    };

    let t = Instant::now();
    report(
        "2obj (alloc-site)",
        AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction)
            .budget(budget)
            .run(program),
        t,
    );
    let t = Instant::now();
    report(
        "T-2obj (alloc-type)",
        AnalysisConfig::new(ObjectSensitive::new(2), AllocTypeAbstraction::new(program))
            .budget(budget)
            .run(program),
        t,
    );
    let t = Instant::now();
    report(
        "M-2obj (mahjong)",
        AnalysisConfig::new(ObjectSensitive::new(2), out.mom.clone())
            .budget(budget)
            .run(program),
        t,
    );
    println!("\nexpected shape: T- fastest but least precise; M- nearly as fast with baseline precision");
    Ok(())
}
