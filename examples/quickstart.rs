//! Quickstart: the full Mahjong pipeline on the paper's Figure 1
//! program.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Steps: parse a `.jir` program, run the context-insensitive
//! pre-analysis, build the Mahjong heap abstraction, and compare a
//! 2-object-sensitive analysis under the allocation-site abstraction
//! versus Mahjong.

use clients::ClientMetrics;
use mahjong::{build_heap_abstraction, MahjongConfig};
use pta::{AllocSiteAbstraction, AnalysisConfig, ObjectSensitive};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 1: three A objects whose `f` fields hold a B
    // and two Cs; `a = z.f` flows into a virtual call and a (C) cast.
    let program = jir::parse(
        "class A {
           field f: A;
           method foo(this) { return; }
         }
         class B extends A { method foo(this) { return; } }
         class C extends A {
           method foo(this) { return; }
           entry static method main() {
             x = new A; y = new A; z = new A;
             b = new B; c5 = new C; c6 = new C;
             x.f = b; y.f = c5; z.f = c6;
             a = z.f;
             virt a.foo();
             c = (C) a;
             return;
           }
         }",
    )?;

    // 1. Pre-analysis: fast, context-insensitive, allocation-site-based.
    let pre = pta::pre_analysis(&program)?;
    println!("pre-analysis: {} abstract objects", pre.object_count());

    // 2. Mahjong: merge type-consistent objects.
    let out = build_heap_abstraction(&program, &pre, &MahjongConfig::default());
    println!(
        "mahjong:      {} abstract objects ({} merged away)",
        out.stats.merged_objects,
        out.stats.objects - out.stats.merged_objects
    );
    for class in out.mom.classes() {
        if class.len() > 1 {
            let names: Vec<String> =
                class.iter().map(|&a| program.alloc_label(a)).collect();
            println!("  merged: {}", names.join("  ≡  "));
        }
    }

    // 3. The downstream analysis, with and without Mahjong.
    let base = AnalysisConfig::new(ObjectSensitive::new(2), AllocSiteAbstraction).run(&program)?;
    let with_mahjong = AnalysisConfig::new(ObjectSensitive::new(2), out.mom).run(&program)?;

    let bm = ClientMetrics::compute(&program, &base);
    let mm = ClientMetrics::compute(&program, &with_mahjong);
    println!("2obj:   poly calls = {}, may-fail casts = {}", bm.poly_call_sites, bm.may_fail_casts);
    println!("M-2obj: poly calls = {}, may-fail casts = {}", mm.poly_call_sites, mm.may_fail_casts);
    assert_eq!(bm.poly_call_sites, mm.poly_call_sites);
    assert_eq!(bm.may_fail_casts, mm.may_fail_casts);
    println!("precision preserved — a.foo() devirtualizes and (C) a is safe under both");
    Ok(())
}
